#!/usr/bin/env bash
# Local CI gate. Run from the repo root:
#
#   ./ci.sh
#
# Stages (all offline — the workspace vendors every dependency):
#   1. formatting     cargo fmt --all --check
#   2. lints          cargo clippy --workspace --all-targets, warnings are errors
#   3. tier-1 gate    cargo build --release && cargo test -q
#   4. workspace      cargo test -q --workspace (every crate, incl. vendor stubs)
#   5. benches        cargo bench --no-run (benches must keep compiling)
#   6. kernel smoke   one pass over the kinetics hot-path workloads
#   7. sweep smoke    repro --quick --jobs 2 --summary on a stochastic
#                     experiment: report must match --jobs 1 byte-for-byte
#                     and the persisted summaries must parse and carry the
#                     per-cell simulator-metrics columns
set -euo pipefail
cd "$(dirname "$0")"

echo "== fmt =="
cargo fmt --all --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: build =="
cargo build --release

echo "== tier-1: test =="
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "== benches compile =="
cargo bench --workspace --no-run

echo "== kernel smoke =="
cargo bench -p molseq-bench --bench kinetics -- --test

echo "== sweep smoke: parallel determinism + per-cell metrics =="
SWEEP_TMP="$(mktemp -d)"
trap 'rm -rf "$SWEEP_TMP"' EXIT
target/release/repro e10 --quick --jobs 1 --summary "$SWEEP_TMP/j1" > "$SWEEP_TMP/report_j1.txt"
target/release/repro e10 --quick --jobs 2 --summary "$SWEEP_TMP/j2" > "$SWEEP_TMP/report_j2.txt"
# the "(generated in ...)" wall-clock line is the only permitted difference
diff <(grep -v "generated in" "$SWEEP_TMP/report_j1.txt") \
     <(grep -v "generated in" "$SWEEP_TMP/report_j2.txt") \
  || { echo "ci: repro e10 report differs between --jobs 1 and --jobs 2" >&2; exit 1; }
for summary in "$SWEEP_TMP"/j1/*.summary.json "$SWEEP_TMP"/j2/*.summary.json; do
  if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$summary" > /dev/null \
      || { echo "ci: summary is not valid JSON: $summary" >&2; exit 1; }
  else
    grep -q '"jobs"' "$summary" \
      || { echo "ci: summary missing jobs array: $summary" >&2; exit 1; }
  fi
done
for csv in "$SWEEP_TMP"/j1/*.summary.csv; do
  head -n 1 "$csv" | grep -q "ssa_events" \
    || { echo "ci: summary CSV missing simulator-metrics columns: $csv" >&2; exit 1; }
done

echo "ci: all stages passed"
