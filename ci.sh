#!/usr/bin/env bash
# Local CI gate. Run from the repo root:
#
#   ./ci.sh
#
# Stages (all offline — the workspace vendors every dependency):
#   1. formatting     cargo fmt --all --check
#   2. lints          cargo clippy --workspace --all-targets, warnings are errors
#   3. tier-1 gate    cargo build --release && cargo test -q
#   4. workspace      cargo test -q --workspace (every crate, incl. vendor stubs)
#   5. benches        cargo bench --no-run (benches must keep compiling)
#   6. kernel smoke   one pass over the kinetics hot-path workloads
set -euo pipefail
cd "$(dirname "$0")"

echo "== fmt =="
cargo fmt --all --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: build =="
cargo build --release

echo "== tier-1: test =="
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "== benches compile =="
cargo bench --workspace --no-run

echo "== kernel smoke =="
cargo bench -p molseq-bench --bench kinetics -- --test

echo "ci: all stages passed"
