#!/usr/bin/env bash
# Local CI gate. Run from the repo root:
#
#   ./ci.sh
#
# Stages (all offline — the workspace vendors every dependency):
#   1. formatting     cargo fmt --all --check
#   2. lints          cargo clippy --workspace --all-targets, warnings are errors
#   3. tier-1 gate    cargo build --release && cargo test -q
#   4. workspace      cargo test -q --workspace (every crate, incl. vendor stubs)
#   5. benches        cargo bench --no-run (benches must keep compiling)
#   6. kernel smoke   one pass over the kinetics hot-path workloads
#   7. sweep smoke    repro --quick --jobs 2 --summary on a stochastic
#                     experiment: report must match --jobs 1 byte-for-byte
#                     and the persisted summaries must parse and carry the
#                     per-cell simulator-metrics columns
#   8. trend gate     trend over the two stage-7 summary directories must
#                     pass (deterministic counters identical across worker
#                     counts); the checked-in fixture pair with an injected
#                     step-count regression must fail; --append must fold a
#                     trajectory entry into a BENCH-style file
#   9. stiff clock    repro e13 --quick: the implicit tau-leaper must
#                     complete the stiff clocked motif while the explicit
#                     leaper exhausts its budget, at a step ratio >= 10,
#                     deterministically across worker counts
#  10. tolerance      trend --tolerance NAME=REL must gate with the
#                     override applied and reject malformed values
#  11. deprecations   in-repo code must not call the deprecated pre-0.5
#                     simulation entry points (shims exist for external
#                     callers only)
#  12. batch server   boot `serve` on an ephemeral port at --workers 1 and
#                     --workers 4; `repro --via-server` must produce
#                     byte-identical persisted summaries at both counts,
#                     report nonzero compiled-CRN cache hits, and pass the
#                     cancel and budget-exceeded probes; the server must
#                     exit cleanly on the wire shutdown op
#  13. batched ODE     repro e6 at --batch 4/--batch 8 must reproduce the
#                     scalar run: reports byte-identical, summary labels,
#                     statuses and deterministic counters byte-identical,
#                     wall and batch-shape metrics tolerance-gated by
#                     trend; non-power-of-2 --batch values are usage
#                     errors, and trend --history renders the perf
#                     trajectory with a passing drift gate — while
#                     unfillable --gate-last windows (K > history length,
#                     single-entry history) are usage errors (exit 2),
#                     never vacuous passes
#  14. hybrid gate     repro e14 --quick: the hybrid ODE/SSA integrator
#                     must reproduce the stiff clocked motif's observable
#                     with <= 1/5 of pure SSA's exact-event count (in
#                     practice orders of magnitude fewer), byte-identically
#                     across worker counts; stage 12 additionally
#                     byte-compares the hybrid via-server sweep across
#                     server worker counts
#  15. batched stoch   repro e10 at --batch 4 must reproduce the scalar
#                     stochastic sweep (report byte-identical,
#                     batch-column-stripped summary CSVs byte-identical,
#                     per the stage-13 recipe); over the wire, an omitted
#                     batch width must auto-select from the cell count and
#                     byte-match the explicitly pinned width, and a
#                     tau-leap sweep at --batch 4 must reproduce its
#                     --batch 1 rows
#  16. netlist gate    every example netlist must compile and run through
#                     `repro --netlist`; the seqdet netlist's persisted
#                     sweep summary must byte-match the hand-assembled
#                     `--netlist-builtin seqdet` run locally and over the
#                     wire at --workers 1 and --workers 4 (all four
#                     byte-identical); a malformed netlist must exit 2
#                     with its source position before anything is
#                     submitted
set -euo pipefail
cd "$(dirname "$0")"

echo "== fmt =="
cargo fmt --all --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: build =="
cargo build --release

echo "== tier-1: test =="
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "== benches compile =="
cargo bench --workspace --no-run

echo "== kernel smoke =="
cargo bench -p molseq-bench --bench kinetics -- --test

echo "== sweep smoke: parallel determinism + per-cell metrics =="
SWEEP_TMP="$(mktemp -d)"
trap 'rm -rf "$SWEEP_TMP"' EXIT
target/release/repro e10 --quick --jobs 1 --summary "$SWEEP_TMP/j1" > "$SWEEP_TMP/report_j1.txt"
target/release/repro e10 --quick --jobs 2 --summary "$SWEEP_TMP/j2" > "$SWEEP_TMP/report_j2.txt"
# the "(generated in ...)" wall-clock line is the only permitted difference
diff <(grep -v "generated in" "$SWEEP_TMP/report_j1.txt") \
     <(grep -v "generated in" "$SWEEP_TMP/report_j2.txt") \
  || { echo "ci: repro e10 report differs between --jobs 1 and --jobs 2" >&2; exit 1; }
for summary in "$SWEEP_TMP"/j1/*.summary.json "$SWEEP_TMP"/j2/*.summary.json; do
  if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$summary" > /dev/null \
      || { echo "ci: summary is not valid JSON: $summary" >&2; exit 1; }
  else
    grep -q '"jobs"' "$summary" \
      || { echo "ci: summary missing jobs array: $summary" >&2; exit 1; }
  fi
done
for csv in "$SWEEP_TMP"/j1/*.summary.csv; do
  head -n 1 "$csv" | grep -q "ssa_events" \
    || { echo "ci: summary CSV missing simulator-metrics columns: $csv" >&2; exit 1; }
done

echo "== trend gate: counters stable across worker counts, fixtures gate =="
# the --jobs 1 and --jobs 2 runs of stage 7 are the same experiments on the
# same seeds, so every deterministic counter must match; per-cell wall
# clocks legitimately inflate under worker contention (2 workers on a
# 1-core container), so wall gating is disabled for this comparison
target/release/trend "$SWEEP_TMP/j1" "$SWEEP_TMP/j2" \
  --wall-tol 1000000 > "$SWEEP_TMP/trend.md" \
  || { echo "ci: trend gate failed between --jobs 1 and --jobs 2 summaries" >&2
       cat "$SWEEP_TMP/trend.md" >&2; exit 1; }
# the checked-in fixture pair carries an injected step-count regression and
# must make the gate fire with exit code 1 exactly
set +e
target/release/trend crates/bench/tests/fixtures/trend/baseline \
                     crates/bench/tests/fixtures/trend/regressed > "$SWEEP_TMP/trend_fixture.md"
TREND_STATUS=$?
set -e
[ "$TREND_STATUS" -eq 1 ] \
  || { echo "ci: fixture regression not caught (trend exited $TREND_STATUS, want 1)" >&2; exit 1; }
grep -q "ode_steps_accepted" "$SWEEP_TMP/trend_fixture.md" \
  || { echo "ci: trend report does not name the regressed counter" >&2; exit 1; }
# appending a trajectory entry must keep the BENCH file valid JSON (wall
# gating stays off here too — this step checks the append, not the gate)
cp BENCH_kinetics.json "$SWEEP_TMP/bench.json"
target/release/trend "$SWEEP_TMP/j1" "$SWEEP_TMP/j2" --wall-tol 1000000 \
  --append "$SWEEP_TMP/bench.json" --label ci-smoke > /dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "$SWEEP_TMP/bench.json" > /dev/null \
    || { echo "ci: --append corrupted the BENCH file" >&2; exit 1; }
fi
grep -q '"label": "ci-smoke"' "$SWEEP_TMP/bench.json" \
  || { echo "ci: --append did not record the trajectory entry" >&2; exit 1; }

echo "== stiff-clock gate: implicit tau-leaping >= 10x cheaper than explicit =="
target/release/repro e13 --quick --jobs 1 --summary "$SWEEP_TMP/e13_j1" > "$SWEEP_TMP/report_e13_j1.txt"
target/release/repro e13 --quick --jobs 2 --summary "$SWEEP_TMP/e13_j2" > "$SWEEP_TMP/report_e13_j2.txt"
diff <(grep -v "generated in" "$SWEEP_TMP/report_e13_j1.txt") \
     <(grep -v "generated in" "$SWEEP_TMP/report_e13_j2.txt") \
  || { echo "ci: repro e13 report differs between --jobs 1 and --jobs 2" >&2; exit 1; }
grep -q "explicit runs exhausting the budget = 1.0000" "$SWEEP_TMP/report_e13_j1.txt" \
  || { echo "ci: explicit leaper did not exhaust its budget on the stiff clock" >&2; exit 1; }
grep -q "implicit runs completing within budget = 1.0000" "$SWEEP_TMP/report_e13_j1.txt" \
  || { echo "ci: implicit leaper did not complete the stiff clock within budget" >&2; exit 1; }
E13_RATIO="$(sed -n 's/.*explicit\/implicit step ratio = //p' "$SWEEP_TMP/report_e13_j1.txt")"
[ -n "$E13_RATIO" ] \
  || { echo "ci: repro e13 report is missing the step-ratio metric" >&2; exit 1; }
awk -v r="$E13_RATIO" 'BEGIN { exit (r >= 10.0) ? 0 : 1 }' \
  || { echo "ci: implicit leaper only ${E13_RATIO}x cheaper than explicit (want >= 10x)" >&2; exit 1; }
head -n 1 "$SWEEP_TMP"/e13_j1/e13.summary.csv | grep -q "tau_leaps_implicit" \
  || { echo "ci: e13 summary CSV missing the implicit-leap column" >&2; exit 1; }

echo "== trend --tolerance smoke =="
# the override must be accepted and the gate still pass on identical runs
target/release/trend "$SWEEP_TMP/e13_j1" "$SWEEP_TMP/e13_j2" --wall-tol 1000000 \
  --tolerance newton_iterations=0.2 > "$SWEEP_TMP/trend_tol.md" \
  || { echo "ci: trend --tolerance gate failed on identical e13 summaries" >&2
       cat "$SWEEP_TMP/trend_tol.md" >&2; exit 1; }
# malformed override values must be rejected as usage errors (exit 2)
set +e
target/release/trend "$SWEEP_TMP/e13_j1" "$SWEEP_TMP/e13_j2" --tolerance bogus > /dev/null 2>&1
TOL_STATUS=$?
set -e
[ "$TOL_STATUS" -eq 2 ] \
  || { echo "ci: malformed --tolerance not rejected (trend exited $TOL_STATUS, want 2)" >&2; exit 1; }

echo "== deprecated-shim scoping =="
# the pre-0.5 entry points (simulate_ode/ssa/nrm/tau_leap, run_cycles*,
# respond/respond_compiled) stay available to external callers, but no
# in-repo target may use them; cargo replays cached warnings, so a fresh
# or cached build both surface any offender
DEPRECATED_USES="$(cargo build --workspace --all-targets 2>&1 | grep "use of deprecated" || true)"
[ -z "$DEPRECATED_USES" ] \
  || { echo "ci: in-repo call sites still use deprecated APIs:" >&2
       echo "$DEPRECATED_USES" >&2; exit 1; }

echo "== batch server: worker-count determinism, cache hits, cancel + budget =="
serve_roundtrip() { # <workers> <outdir>
  local workers="$1" outdir="$2" boot_log addr serve_pid
  boot_log="$SWEEP_TMP/serve_w${workers}.log"
  target/release/serve --workers "$workers" --budget-tenant strict=25 > "$boot_log" &
  serve_pid=$!
  for _ in $(seq 1 100); do
    grep -q "listening on " "$boot_log" && break
    kill -0 "$serve_pid" 2>/dev/null \
      || { echo "ci: serve (--workers $workers) died before binding" >&2; exit 1; }
    sleep 0.1
  done
  addr="$(sed -n 's/^listening on //p' "$boot_log")"
  [ -n "$addr" ] || { echo "ci: serve did not announce its address" >&2
                      kill "$serve_pid" 2>/dev/null; exit 1; }
  target/release/repro --via-server "$addr" --server-budget-tenant strict \
    --summary "$outdir" > "$outdir.report.txt" \
    || { echo "ci: repro --via-server failed against --workers $workers" >&2
         kill "$serve_pid" 2>/dev/null; exit 1; }
  # same server, hybrid method: the multiscale engine over the wire
  target/release/repro --via-server "$addr" --method hybrid \
    --summary "${outdir}_hybrid" > "${outdir}_hybrid.report.txt" \
    || { echo "ci: repro --via-server --method hybrid failed against --workers $workers" >&2
         kill "$serve_pid" 2>/dev/null; exit 1; }
  # the wire shutdown op, via bash's built-in tcp redirection
  exec 3<>"/dev/tcp/${addr%:*}/${addr##*:}"
  printf '{"op":"shutdown"}\n' >&3
  head -n 1 <&3 > /dev/null
  exec 3<&- 3>&-
  wait "$serve_pid" \
    || { echo "ci: serve (--workers $workers) exited nonzero after shutdown" >&2; exit 1; }
}
serve_roundtrip 1 "$SWEEP_TMP/srv_w1"
serve_roundtrip 4 "$SWEEP_TMP/srv_w4"
# the persisted sweep rows and server counters must not depend on the
# server's worker count — byte-for-byte
for artifact in via-server.summary.json via-server.summary.csv \
                server-stats.summary.json server-stats.summary.csv; do
  cmp "$SWEEP_TMP/srv_w1/$artifact" "$SWEEP_TMP/srv_w4/$artifact" \
    || { echo "ci: $artifact differs between --workers 1 and --workers 4" >&2; exit 1; }
  cmp "$SWEEP_TMP/srv_w1_hybrid/$artifact" "$SWEEP_TMP/srv_w4_hybrid/$artifact" \
    || { echo "ci: hybrid $artifact differs between --workers 1 and --workers 4" >&2; exit 1; }
done
grep -q "main sweep (hybrid) 9 cells Ok twice, byte-identical" "$SWEEP_TMP/srv_w1_hybrid.report.txt" \
  || { echo "ci: hybrid via-server sweep did not complete byte-identically" >&2; exit 1; }
head -n 1 "$SWEEP_TMP/srv_w1_hybrid/via-server.summary.csv" | grep -q "hybrid_fast_steps" \
  || { echo "ci: hybrid via-server summary missing the hybrid metric columns" >&2; exit 1; }
grep -q "cache 1 hit(s)" "$SWEEP_TMP/srv_w1.report.txt" \
  || { echo "ci: via-server run did not report a compiled-CRN cache hit" >&2; exit 1; }
grep -q "all Cancelled" "$SWEEP_TMP/srv_w1.report.txt" \
  || { echo "ci: via-server cancel probe did not drain as Cancelled" >&2; exit 1; }
grep -q "budget probe cut all" "$SWEEP_TMP/srv_w1.report.txt" \
  || { echo "ci: via-server budget probe did not cut the strict tenant" >&2; exit 1; }
grep -q '\["cache_hits",2' "$SWEEP_TMP/srv_w1/server-stats.summary.json" \
  || { echo "ci: server-stats summary does not carry the cache-hit counter" >&2; exit 1; }
# the stats artifact rides the standard summary pipeline: trend must accept
# it as a baseline/candidate pair across the two worker counts
target/release/trend "$SWEEP_TMP/srv_w1" "$SWEEP_TMP/srv_w4" > "$SWEEP_TMP/trend_serve.md" \
  || { echo "ci: trend gate failed across server worker counts" >&2
       cat "$SWEEP_TMP/trend_serve.md" >&2; exit 1; }

echo "== batched ODE: lock-step batch reproduces the scalar sweep =="
target/release/repro e6 --quick --jobs 2 --summary "$SWEEP_TMP/e6_scalar" > "$SWEEP_TMP/report_e6_scalar.txt"
target/release/repro e6 --quick --jobs 2 --batch 4 --summary "$SWEEP_TMP/e6_b4" > "$SWEEP_TMP/report_e6_b4.txt"
target/release/repro e6 --quick --jobs 1 --batch 8 --summary "$SWEEP_TMP/e6_b8" > "$SWEEP_TMP/report_e6_b8.txt"
for batched in e6_b4 e6_b8; do
  # the experiment report (moving-average traces, fitted slopes) must not
  # depend on the batch width at all
  diff <(grep -v "generated in" "$SWEEP_TMP/report_e6_scalar.txt") \
       <(grep -v "generated in" "$SWEEP_TMP/report_$batched.txt") \
    || { echo "ci: repro e6 report differs between scalar and $batched" >&2; exit 1; }
  # summary rows: every column except the wall clock and the batch-shape
  # metrics (batch_width, lanes_retired) must be byte-identical
  for csv in "$SWEEP_TMP/$batched"/*.summary.csv; do
    base_csv="$SWEEP_TMP/e6_scalar/$(basename "$csv")"
    strip_batch_columns() {
      awk -F, 'NR==1 { for (i=1;i<=NF;i++) drop[i] = ($i=="wall_secs" || $i=="batch_width" || $i=="lanes_retired") }
               { out=""; for (i=1;i<=NF;i++) if (!drop[i]) out = out (out=="" ? "" : ",") $i; print out }' "$1"
    }
    cmp <(strip_batch_columns "$base_csv") <(strip_batch_columns "$csv") \
      || { echo "ci: $csv deterministic columns differ from the scalar run" >&2; exit 1; }
  done
  # the wall clock and batch-shape metrics are gated, not byte-compared:
  # trend's symmetric per-metric bands absorb them, everything else exact
  target/release/trend "$SWEEP_TMP/e6_scalar" "$SWEEP_TMP/$batched" --wall-tol 1000000 \
    --tolerance batch_width=1000000000 --tolerance lanes_retired=1000000000 \
    > "$SWEEP_TMP/trend_$batched.md" \
    || { echo "ci: trend gate failed between scalar and $batched e6 summaries" >&2
         cat "$SWEEP_TMP/trend_$batched.md" >&2; exit 1; }
done
# --batch only takes power-of-2 lane counts; 0 and 3 are usage errors
for bad in 0 3; do
  set +e
  target/release/repro e6 --quick --batch "$bad" > /dev/null 2>&1
  BATCH_STATUS=$?
  set -e
  [ "$BATCH_STATUS" -eq 2 ] \
    || { echo "ci: repro --batch $bad not rejected (exited $BATCH_STATUS, want 2)" >&2; exit 1; }
done
# trend --history must render the checked-in perf trajectory and pass its
# drift gate (entries from other experiment sets are skipped, not compared)
target/release/trend --history BENCH_kinetics.json --gate-last 2 > "$SWEEP_TMP/history.md" \
  || { echo "ci: trend --history gate failed on BENCH_kinetics.json" >&2
       cat "$SWEEP_TMP/history.md" >&2; exit 1; }
grep -q "drift gate" "$SWEEP_TMP/history.md" \
  || { echo "ci: trend --history report is missing the drift gate" >&2; exit 1; }
# unfillable --gate-last windows are usage errors, never vacuous passes:
# a window wider than the history, and any window over a one-entry history
for gate_case in "BENCH_kinetics.json 99" \
                 "crates/bench/tests/fixtures/trend/history_single.json 1"; do
  read -r gate_file gate_k <<< "$gate_case"
  set +e
  target/release/trend --history "$gate_file" --gate-last "$gate_k" \
    > /dev/null 2> "$SWEEP_TMP/gate_err.txt"
  GATE_STATUS=$?
  set -e
  [ "$GATE_STATUS" -eq 2 ] \
    || { echo "ci: --gate-last $gate_k on $gate_file not rejected (exited $GATE_STATUS, want 2)" >&2; exit 1; }
  grep -q "gate-last" "$SWEEP_TMP/gate_err.txt" \
    || { echo "ci: --gate-last rejection for $gate_file lacks a clear message" >&2; exit 1; }
done

echo "== hybrid gate: hybrid ODE/SSA <= 1/5 of pure SSA's exact events =="
target/release/repro e14 --quick --jobs 1 --summary "$SWEEP_TMP/e14_j1" > "$SWEEP_TMP/report_e14_j1.txt"
target/release/repro e14 --quick --jobs 2 --summary "$SWEEP_TMP/e14_j2" > "$SWEEP_TMP/report_e14_j2.txt"
diff <(grep -v "generated in" "$SWEEP_TMP/report_e14_j1.txt") \
     <(grep -v "generated in" "$SWEEP_TMP/report_e14_j2.txt") \
  || { echo "ci: repro e14 report differs between --jobs 1 and --jobs 2" >&2; exit 1; }
E14_RATIO="$(sed -n 's/.*SSA\/hybrid event ratio = //p' "$SWEEP_TMP/report_e14_j1.txt")"
[ -n "$E14_RATIO" ] \
  || { echo "ci: repro e14 report is missing the event-ratio metric" >&2; exit 1; }
awk -v r="$E14_RATIO" 'BEGIN { exit (r >= 5.0) ? 0 : 1 }' \
  || { echo "ci: hybrid drew ${E14_RATIO}x fewer events than pure SSA (want >= 5x)" >&2; exit 1; }
E14_ERR="$(sed -n 's/.*worst clock-observable relative error = //p' "$SWEEP_TMP/report_e14_j1.txt")"
awk -v e="$E14_ERR" 'BEGIN { exit (e <= 0.35) ? 0 : 1 }' \
  || { echo "ci: hybrid/SSA clock observable off by ${E14_ERR} (want <= 0.35)" >&2; exit 1; }
head -n 1 "$SWEEP_TMP"/e14_j1/e14.summary.csv | grep -q "hybrid_slow_events" \
  || { echo "ci: e14 summary CSV missing the hybrid metric columns" >&2; exit 1; }

echo "== batched stochastic: lock-step SSA/tau lanes reproduce the scalar runs =="
# local: the e10 replicate sweep under --batch 4 must reproduce the scalar
# stage-7 run — report byte-identical, summary rows byte-identical once the
# wall clock and batch-shape columns are stripped (same recipe as stage 13)
target/release/repro e10 --quick --jobs 2 --batch 4 --summary "$SWEEP_TMP/e10_b4" > "$SWEEP_TMP/report_e10_b4.txt"
diff <(grep -v "generated in" "$SWEEP_TMP/report_j1.txt") \
     <(grep -v "generated in" "$SWEEP_TMP/report_e10_b4.txt") \
  || { echo "ci: repro e10 report differs between scalar and --batch 4" >&2; exit 1; }
strip_batch_columns() {
  awk -F, 'NR==1 { for (i=1;i<=NF;i++) drop[i] = ($i=="wall_secs" || $i=="batch_width" || $i=="lanes_retired") }
           { out=""; for (i=1;i<=NF;i++) if (!drop[i]) out = out (out=="" ? "" : ",") $i; print out }' "$1"
}
for csv in "$SWEEP_TMP/e10_b4"/*.summary.csv; do
  base_csv="$SWEEP_TMP/j1/$(basename "$csv")"
  cmp <(strip_batch_columns "$base_csv") <(strip_batch_columns "$csv") \
    || { echo "ci: $csv deterministic columns differ from the scalar e10 run" >&2; exit 1; }
done
# over the wire: boot one server for the width probes
BATCH_BOOT_LOG="$SWEEP_TMP/serve_batch.log"
target/release/serve --workers 2 > "$BATCH_BOOT_LOG" &
BATCH_SERVE_PID=$!
for _ in $(seq 1 100); do
  grep -q "listening on " "$BATCH_BOOT_LOG" && break
  kill -0 "$BATCH_SERVE_PID" 2>/dev/null \
    || { echo "ci: serve (batch probe) died before binding" >&2; exit 1; }
  sleep 0.1
done
BATCH_ADDR="$(sed -n 's/^listening on //p' "$BATCH_BOOT_LOG")"
[ -n "$BATCH_ADDR" ] || { echo "ci: serve (batch probe) did not announce its address" >&2
                          kill "$BATCH_SERVE_PID" 2>/dev/null; exit 1; }
# an omitted batch width auto-selects from the cell count (the 9-cell main
# sweep lands on the cap, 8), so it must byte-match pinning --batch 8 —
# batch_width columns included, no stripping
target/release/repro --via-server "$BATCH_ADDR" --summary "$SWEEP_TMP/srv_auto" > /dev/null \
  || { echo "ci: repro --via-server (auto width) failed" >&2
       kill "$BATCH_SERVE_PID" 2>/dev/null; exit 1; }
target/release/repro --via-server "$BATCH_ADDR" --batch 8 --summary "$SWEEP_TMP/srv_b8" > /dev/null \
  || { echo "ci: repro --via-server --batch 8 failed" >&2
       kill "$BATCH_SERVE_PID" 2>/dev/null; exit 1; }
for artifact in via-server.summary.json via-server.summary.csv; do
  cmp "$SWEEP_TMP/srv_auto/$artifact" "$SWEEP_TMP/srv_b8/$artifact" \
    || { echo "ci: $artifact differs between auto-selected and explicit batch widths" >&2; exit 1; }
done
# tau-leaping over the wire: --batch 4 must reproduce the --batch 1 rows
# (widths differ, so the batch-shape columns are stripped before comparing)
target/release/repro --via-server "$BATCH_ADDR" --method tau --batch 1 --summary "$SWEEP_TMP/srv_tau1" > /dev/null \
  || { echo "ci: repro --via-server --method tau --batch 1 failed" >&2
       kill "$BATCH_SERVE_PID" 2>/dev/null; exit 1; }
target/release/repro --via-server "$BATCH_ADDR" --method tau --batch 4 --summary "$SWEEP_TMP/srv_tau4" > /dev/null \
  || { echo "ci: repro --via-server --method tau --batch 4 failed" >&2
       kill "$BATCH_SERVE_PID" 2>/dev/null; exit 1; }
cmp <(strip_batch_columns "$SWEEP_TMP/srv_tau1/via-server.summary.csv") \
    <(strip_batch_columns "$SWEEP_TMP/srv_tau4/via-server.summary.csv") \
  || { echo "ci: tau via-server rows differ between --batch 1 and --batch 4" >&2; exit 1; }
exec 3<>"/dev/tcp/${BATCH_ADDR%:*}/${BATCH_ADDR##*:}"
printf '{"op":"shutdown"}\n' >&3
head -n 1 <&3 > /dev/null
exec 3<&- 3>&-
wait "$BATCH_SERVE_PID" \
  || { echo "ci: serve (batch probe) exited nonzero after shutdown" >&2; exit 1; }
# an unusable horizon is a usage error before anything touches the wire
set +e
target/release/repro --via-server "$BATCH_ADDR" --t-end -1 > /dev/null 2>&1
TEND_STATUS=$?
set -e
[ "$TEND_STATUS" -eq 2 ] \
  || { echo "ci: repro --t-end -1 not rejected (exited $TEND_STATUS, want 2)" >&2; exit 1; }

echo "== netlist front-end: textual circuits byte-match their hand-assembled twins =="
# every example netlist compiles and runs end to end (in-process server)
for nl in examples/netlists/*.nl; do
  target/release/repro --netlist "$nl" > /dev/null \
    || { echo "ci: repro --netlist $nl failed" >&2; exit 1; }
done
# locally: the seqdet netlist and its hand-assembled twin (shipped as the
# lowered CRN text) must persist byte-identical sweep summaries
target/release/repro --netlist examples/netlists/seqdet.nl --summary "$SWEEP_TMP/nl_file" > /dev/null
target/release/repro --netlist-builtin seqdet --summary "$SWEEP_TMP/nl_builtin" > /dev/null
for artifact in netlist.summary.json netlist.summary.csv; do
  cmp "$SWEEP_TMP/nl_file/$artifact" "$SWEEP_TMP/nl_builtin/$artifact" \
    || { echo "ci: $artifact differs between the netlist and its hand-assembled twin" >&2; exit 1; }
done
# over the wire: byte-identical at --workers 1 and --workers 4, and both
# identical to the local run
for workers in 1 4; do
  NL_BOOT_LOG="$SWEEP_TMP/serve_nl_w$workers.log"
  target/release/serve --workers "$workers" > "$NL_BOOT_LOG" &
  NL_SERVE_PID=$!
  for _ in $(seq 1 100); do
    grep -q "listening on " "$NL_BOOT_LOG" && break
    kill -0 "$NL_SERVE_PID" 2>/dev/null \
      || { echo "ci: serve (netlist probe, $workers workers) died before binding" >&2; exit 1; }
    sleep 0.1
  done
  NL_ADDR="$(sed -n 's/^listening on //p' "$NL_BOOT_LOG")"
  [ -n "$NL_ADDR" ] || { echo "ci: serve (netlist probe) did not announce its address" >&2
                         kill "$NL_SERVE_PID" 2>/dev/null; exit 1; }
  target/release/repro --netlist examples/netlists/seqdet.nl --via-server "$NL_ADDR" \
    --summary "$SWEEP_TMP/nl_w$workers" > /dev/null \
    || { echo "ci: repro --netlist --via-server ($workers workers) failed" >&2
         kill "$NL_SERVE_PID" 2>/dev/null; exit 1; }
  exec 3<>"/dev/tcp/${NL_ADDR%:*}/${NL_ADDR##*:}"
  printf '{"op":"shutdown"}\n' >&3
  head -n 1 <&3 > /dev/null
  exec 3<&- 3>&-
  wait "$NL_SERVE_PID" \
    || { echo "ci: serve (netlist probe, $workers workers) exited nonzero" >&2; exit 1; }
done
for artifact in netlist.summary.json netlist.summary.csv; do
  cmp "$SWEEP_TMP/nl_w1/$artifact" "$SWEEP_TMP/nl_w4/$artifact" \
    || { echo "ci: $artifact differs between 1 and 4 server workers" >&2; exit 1; }
  cmp "$SWEEP_TMP/nl_file/$artifact" "$SWEEP_TMP/nl_w1/$artifact" \
    || { echo "ci: $artifact differs between the local and via-server netlist runs" >&2; exit 1; }
done
# a malformed netlist is a usage error carrying its source position,
# rejected before anything is submitted
printf 'module m {\n  wire y = nope\n}\n' > "$SWEEP_TMP/bad.nl"
set +e
NL_BAD_MSG="$(target/release/repro --netlist "$SWEEP_TMP/bad.nl" 2>&1 > /dev/null)"
NL_BAD_STATUS=$?
set -e
[ "$NL_BAD_STATUS" -eq 2 ] \
  || { echo "ci: bad netlist not rejected (exited $NL_BAD_STATUS, want 2)" >&2; exit 1; }
echo "$NL_BAD_MSG" | grep -q "line 2" \
  || { echo "ci: bad-netlist error does not carry its source position: $NL_BAD_MSG" >&2; exit 1; }

echo "ci: all stages passed"
