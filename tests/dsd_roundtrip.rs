//! Abstract network vs its strand-displacement image: the computation must
//! survive the compilation.

use molseq::crn::{Crn, RateAssignment};
use molseq::dsd::{DsdParams, DsdSystem};
use molseq::kinetics::{CompiledCrn, OdeOptions, SimSpec, Simulation, State};
use molseq::modules::{add, annihilate, halve, subtract};

fn final_state(crn: &Crn, init: &State, t_end: f64) -> Vec<f64> {
    let compiled = CompiledCrn::new(crn, &SimSpec::default());
    Simulation::new(crn, &compiled)
        .init(init)
        .options(
            OdeOptions::default()
                .with_t_end(t_end)
                .with_record_interval(t_end / 20.0),
        )
        .run()
        .expect("simulates")
        .final_state()
        .to_vec()
}

/// Builds, simulates abstract + compiled, returns (abstract, dsd) values
/// of the requested output species.
fn roundtrip(crn: &Crn, initial: &[(usize, f64)], output: usize, t_end: f64) -> (f64, f64) {
    let mut init = State::new(crn);
    for &(i, v) in initial {
        init.set(molseq::crn::SpeciesId::from_index(i), v);
    }
    let abstract_final = final_state(crn, &init, t_end);

    let dsd = DsdSystem::compile(crn, RateAssignment::default(), &DsdParams::default())
        .expect("compiles");
    let dsd_init = dsd.initial_state(init.as_slice());
    let dsd_compiled = CompiledCrn::new(dsd.crn(), &SimSpec::default());
    let trace = Simulation::new(dsd.crn(), &dsd_compiled)
        .init(&dsd_init)
        .options(
            OdeOptions::default()
                .with_t_end(t_end)
                .with_record_interval(t_end / 20.0),
        )
        .run()
        .expect("dsd simulates");
    let out_id = molseq::crn::SpeciesId::from_index(output);
    let dsd_value: f64 = dsd
        .apparent(out_id)
        .iter()
        .map(|s| trace.final_state()[s.index()])
        .sum();
    (abstract_final[output], dsd_value)
}

#[test]
fn average_survives_compilation() {
    // y = (a + b) / 2
    let mut crn = Crn::new();
    let a = crn.species("a");
    let b = crn.species("b");
    let s = crn.species("s");
    let y = crn.species("y");
    add(&mut crn, &[a, b], s).expect("add");
    halve(&mut crn, s, y).expect("halve");
    let (abstract_y, dsd_y) = roundtrip(
        &crn,
        &[(a.index(), 30.0), (b.index(), 14.0)],
        y.index(),
        80.0,
    );
    assert!((abstract_y - 22.0).abs() < 0.1, "{abstract_y}");
    assert!(
        (dsd_y - abstract_y).abs() < 0.5,
        "dsd {dsd_y} vs {abstract_y}"
    );
}

#[test]
fn clamped_subtraction_survives_compilation() {
    let mut crn = Crn::new();
    let a = crn.species("a");
    let b = crn.species("b");
    let y = crn.species("y");
    subtract(&mut crn, a, b, y).expect("subtract");
    let (abstract_y, dsd_y) = roundtrip(
        &crn,
        &[(a.index(), 50.0), (b.index(), 18.0)],
        y.index(),
        80.0,
    );
    assert!((abstract_y - 32.0).abs() < 0.1, "{abstract_y}");
    assert!(
        (dsd_y - abstract_y).abs() < 1.0,
        "dsd {dsd_y} vs {abstract_y}"
    );
}

#[test]
fn comparator_survives_compilation() {
    let mut crn = Crn::new();
    let a = crn.species("a");
    let b = crn.species("b");
    annihilate(&mut crn, a, b).expect("annihilate");
    let (abstract_a, dsd_a) = roundtrip(
        &crn,
        &[(a.index(), 41.0), (b.index(), 17.0)],
        a.index(),
        80.0,
    );
    assert!((abstract_a - 24.0).abs() < 0.1, "{abstract_a}");
    assert!(
        (dsd_a - abstract_a).abs() < 1.0,
        "dsd {dsd_a} vs {abstract_a}"
    );
}
