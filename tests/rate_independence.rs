//! The paper's central property, tested end to end: answers do not depend
//! on the rate constants, only on the fast/slow categories.

use molseq::crn::{JitterSpec, RateAssignment, RateJitter};
use molseq::dsp::{moving_average, rmse};
use molseq::kinetics::SimSpec;
use molseq::sync::{ClockSpec, RunConfig};

#[test]
fn filter_answers_survive_a_rate_ratio_sweep() {
    let filter = moving_average(2, ClockSpec::default()).expect("builds");
    let samples = [10.0, 60.0, 30.0];
    let ideal = filter.ideal_response(&samples);

    for ratio in [100.0, 1_000.0, 10_000.0] {
        let config = RunConfig {
            spec: SimSpec::new(RateAssignment::from_ratio(ratio)),
            cycle_time_hint: 120.0,
            ..RunConfig::default()
        };
        let measured = filter.respond_with(&samples, &config, None).expect("runs");
        assert!(
            rmse(&measured, &ideal) < 2.0,
            "ratio {ratio}: {measured:?} vs {ideal:?}"
        );
    }
}

#[test]
fn filter_answers_survive_per_reaction_jitter() {
    let filter = moving_average(2, ClockSpec::default()).expect("builds");
    let samples = [10.0, 60.0, 30.0];
    let ideal = filter.ideal_response(&samples);

    for seed in 0..3u64 {
        let jitter = RateJitter::sample(filter.system().crn(), JitterSpec::new(0.5, seed));
        let config = RunConfig {
            spec: SimSpec::default().with_jitter(jitter),
            cycle_time_hint: 90.0,
            ..RunConfig::default()
        };
        let measured = filter.respond_with(&samples, &config, None).expect("runs");
        assert!(
            rmse(&measured, &ideal) < 2.0,
            "seed {seed}: {measured:?} vs {ideal:?}"
        );
    }
}
