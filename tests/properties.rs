//! Property-based tests on the core invariants. Case counts are small —
//! each case integrates a stiff ODE system — but the inputs are random.

use molseq::crn::{conservation_laws, law_value, Crn, Rate};
use molseq::kinetics::{CompiledCrn, OdeOptions, SimSpec, Simulation, State};
use molseq::modules::{add, fanout, halve};
use molseq::sync::{drive_cycles, ClockSpec, CycleResources, RunConfig, SyncCircuit};
use proptest::prelude::*;

fn amount() -> impl Strategy<Value = f64> {
    // Representative quantities, away from both zero and huge values.
    // The scheme has a quantization floor: signals below a few units sink
    // into the indicator-equilibrium leak rates (see DESIGN.md §3), so
    // property inputs start at 5.
    (5u32..=120).prop_map(f64::from)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        failure_persistence: None,
        ..ProptestConfig::default()
    })]

    /// A register is a pure delay: any sample stream comes out one cycle
    /// later, unchanged.
    #[test]
    fn register_is_a_pure_delay(samples in proptest::collection::vec(amount(), 2..4)) {
        let mut circuit = SyncCircuit::new(ClockSpec::default());
        let x = circuit.input("x");
        let d = circuit.delay("d", x);
        circuit.output("y", d);
        let system = circuit.compile().expect("compiles");
        let run = drive_cycles(
            &system,
            &[("x", &samples)],
            samples.len() + 1,
            &RunConfig::default(),
            CycleResources::default(),
        )
        .expect("runs");
        let d_series = run.register_series("d").expect("d");
        for (k, &expect) in samples.iter().enumerate() {
            prop_assert!(
                (d_series[k] - expect).abs() < 0.03 * expect.max(20.0),
                "cycle {}: {} vs {}", k, d_series[k], expect
            );
        }
    }

    /// Combinational identity: fanout then add is the identity times the
    /// fanout width.
    #[test]
    fn fanout_then_add_multiplies(x in amount(), width in 2usize..4) {
        let mut crn = Crn::new();
        let input = crn.species("in");
        let copies: Vec<_> = (0..width).map(|i| crn.species(format!("c{i}"))).collect();
        let out = crn.species("out");
        fanout(&mut crn, input, &copies).expect("fanout");
        add(&mut crn, &copies, out).expect("add");

        let mut init = State::new(&crn);
        init.set(input, x);
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let trace = Simulation::new(&crn, &compiled)
            .init(&init)
            .options(OdeOptions::default().with_t_end(50.0))
            .run()
            .expect("simulates");
        let y = trace.final_state()[out.index()];
        prop_assert!((y - x * width as f64).abs() < 1e-3, "{y} vs {}", x * width as f64);
    }

    /// Halving twice divides by four, for any input quantity.
    #[test]
    fn double_halving_quarters(x in amount()) {
        let mut crn = Crn::new();
        let input = crn.species("in");
        let mid = crn.species("mid");
        let out = crn.species("out");
        halve(&mut crn, input, mid).expect("halve");
        halve(&mut crn, mid, out).expect("halve");

        let mut init = State::new(&crn);
        init.set(input, x);
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let trace = Simulation::new(&crn, &compiled)
            .init(&init)
            .options(OdeOptions::default().with_t_end(400.0))
            .run()
            .expect("simulates");
        let y = trace.final_state()[out.index()];
        prop_assert!((y - x / 4.0).abs() < 0.02 * x, "{y} vs {}", x / 4.0);
    }

    /// Conservation laws found by structural analysis hold numerically
    /// along random trajectories of random closed transfer rings.
    #[test]
    fn conservation_laws_hold_on_trajectories(
        n in 2usize..5,
        seed_amounts in proptest::collection::vec(amount(), 2..5),
    ) {
        let mut crn = Crn::new();
        let species: Vec<_> = (0..n).map(|i| crn.species(format!("s{i}"))).collect();
        for i in 0..n {
            crn.reaction(&[(species[i], 1)], &[(species[(i + 1) % n], 1)], Rate::Slow)
                .expect("ring reaction");
        }
        let laws = conservation_laws(&crn);
        prop_assert_eq!(laws.len(), 1);

        let mut init = State::new(&crn);
        for (i, &v) in seed_amounts.iter().take(n).enumerate() {
            init.set(species[i], v);
        }
        let initial_value = law_value(&laws[0], init.as_slice());
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let trace = Simulation::new(&crn, &compiled)
            .init(&init)
            .options(OdeOptions::default().with_t_end(5.0))
            .run()
            .expect("simulates");
        for i in 0..trace.len() {
            let v = law_value(&laws[0], trace.state(i));
            prop_assert!((v - initial_value).abs() < 1e-4 * initial_value.max(1.0));
        }
    }
}
