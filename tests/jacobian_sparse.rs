//! Property tests for the precomputed sparse Jacobian
//! ([`CompiledCrn::jacobian_sparse`]) and the stiff integrator's
//! Jacobian-reuse policy.
//!
//! Three invariants, over random mass-action networks:
//!
//! 1. the CSR-scattered sparse Jacobian agrees with the dense one
//!    **bitwise** (both paths accumulate in the same order),
//! 2. the dense Jacobian agrees with a central difference of
//!    [`CompiledCrn::derivative`] (mass action with per-species order ≤ 2
//!    makes the difference quotient exact up to rounding),
//! 3. reusing a factored Jacobian across accepted steps (the default
//!    policy) does not move test-visible observables of the paper's E1
//!    clock compared to refreshing every step.

use molseq::crn::{Crn, Rate};
use molseq::kinetics::{estimate_period, CompiledCrn, OdeOptions, SimSpec, Simulation};
use molseq::sync::{Clock, SchemeConfig};
use proptest::prelude::*;

/// One sampled reaction: reactant indices/stoichiometries, a product, and
/// the rate category. Indices are reduced modulo the species count when
/// the network is built.
type RawReaction = ((usize, u32), (usize, u32), (usize, u32), bool);

/// Builds a random mass-action CRN from sampled raw reactions, plus a
/// strictly positive state to evaluate it at.
fn build(n: usize, raw: &[RawReaction], amounts: &[f64]) -> (Crn, Vec<f64>) {
    let mut crn = Crn::new();
    let species: Vec<_> = (0..n).map(|i| crn.species(format!("s{i}"))).collect();
    for &((r1, s1), (r2, has2), (p, sp), fast) in raw {
        let a = species[r1 % n];
        let b = species[r2 % n];
        let mut reactants = vec![(a, s1)];
        // a distinct second reactant, order-1, only when sampled and not a
        // duplicate of the first (total order stays ≤ 3)
        if has2 == 1 && b != a {
            reactants.push((b, 1));
        }
        let products = [(species[p % n], sp)];
        let rate = if fast { Rate::Fast } else { Rate::Slow };
        crn.reaction(&reactants, &products, rate).expect("reaction");
    }
    let state: Vec<f64> = (0..n).map(|i| amounts[i % amounts.len()]).collect();
    (crn, state)
}

fn raw_reaction() -> impl Strategy<Value = RawReaction> {
    (
        (0usize..8, 1u32..=2),
        (0usize..8, 0u32..=1),
        (0usize..8, 1u32..=2),
        prop_oneof![Just(true), Just(false)],
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        failure_persistence: None,
        ..ProptestConfig::default()
    })]

    /// The sparse Jacobian scattered onto the CSR pattern is bitwise
    /// identical to the dense assembly.
    #[test]
    fn sparse_jacobian_matches_dense_exactly(
        n in 2usize..7,
        raw in proptest::collection::vec(raw_reaction(), 1..9),
        amounts in proptest::collection::vec(1u32..=500, 2..8),
    ) {
        let amounts: Vec<f64> = amounts.iter().map(|&a| f64::from(a) / 10.0).collect();
        let (crn, x) = build(n, &raw, &amounts);
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());

        let mut dense = vec![0.0; n * n];
        compiled.jacobian(&x, &mut dense);
        let mut vals = vec![0.0; compiled.jacobian_nnz()];
        compiled.jacobian_sparse(&x, &mut vals);
        let mut scattered = vec![0.0; n * n];
        compiled.jacobian_sparse_to_dense(&vals, &mut scattered);

        for (i, (&d, &s)) in dense.iter().zip(&scattered).enumerate() {
            prop_assert!(
                d.to_bits() == s.to_bits(),
                "entry ({}, {}): dense {d:e} != scattered {s:e}", i / n, i % n
            );
        }
        // and every entry outside the pattern is structurally zero
        let (row_ptr, col_idx) = compiled.jacobian_pattern();
        for i in 0..n {
            let cols: Vec<usize> = col_idx[row_ptr[i]..row_ptr[i + 1]].to_vec();
            for j in 0..n {
                if !cols.contains(&j) {
                    prop_assert_eq!(dense[i * n + j], 0.0);
                }
            }
        }
    }

    /// The analytic Jacobian agrees with a central difference of the
    /// derivative kernel.
    #[test]
    fn jacobian_matches_central_difference(
        n in 2usize..6,
        raw in proptest::collection::vec(raw_reaction(), 1..7),
        amounts in proptest::collection::vec(1u32..=500, 2..8),
    ) {
        let amounts: Vec<f64> = amounts.iter().map(|&a| f64::from(a) / 10.0).collect();
        let (crn, x) = build(n, &raw, &amounts);
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());

        let mut jac = vec![0.0; n * n];
        compiled.jacobian(&x, &mut jac);
        let scale = jac.iter().fold(1.0f64, |m, v| m.max(v.abs()));

        let (mut fp, mut fm) = (vec![0.0; n], vec![0.0; n]);
        let mut xp = x.clone();
        for j in 0..n {
            let h = 1e-5 * (1.0 + x[j].abs());
            let saved = xp[j];
            xp[j] = saved + h;
            compiled.derivative(&xp, &mut fp);
            xp[j] = saved - h;
            compiled.derivative(&xp, &mut fm);
            xp[j] = saved;
            for i in 0..n {
                let cd = (fp[i] - fm[i]) / (2.0 * h);
                prop_assert!(
                    (cd - jac[i * n + j]).abs() <= 1e-6 * scale,
                    "d f_{i} / d x_{j}: analytic {} vs central difference {cd}",
                    jac[i * n + j]
                );
            }
        }
    }
}

/// Opting in to Jacobian reuse across accepted steps must not move the
/// E1 clock's test-asserted observables: the period estimate and the
/// final phase amounts, compared against the evaluate-every-step default
/// (`DEFAULT_JACOBIAN_REUSE = 0`). Staleness may cost step size — the
/// rejection/refresh policy keeps it from costing accuracy.
#[test]
fn jacobian_reuse_preserves_clock_observables() {
    let token = 100.0;
    let clock = Clock::build(SchemeConfig::default(), token).expect("clock");
    let spec = SimSpec::default();
    let compiled = CompiledCrn::new(clock.crn(), &spec);
    let base = OdeOptions::default()
        .with_t_end(30.0)
        .with_record_interval(0.02);

    let run = |opts: &OdeOptions| {
        Simulation::new(clock.crn(), &compiled)
            .init(&clock.initial_state())
            .options(*opts)
            .run()
            .expect("clock simulates")
    };
    let fresh = run(&base);
    let reused = run(&base.with_jacobian_reuse(8));

    let period = |trace: &molseq::kinetics::Trace| {
        estimate_period(trace.times(), &trace.series(clock.red()), token / 2.0)
            .expect("clock oscillates")
    };
    let (p_fresh, p_reused) = (period(&fresh), period(&reused));
    assert!(
        (p_fresh - p_reused).abs() < 0.02 * p_fresh,
        "period moved: {p_fresh} vs {p_reused}"
    );
    for s in [clock.red(), clock.green(), clock.blue()] {
        let (a, b) = (
            fresh.final_state()[s.index()],
            reused.final_state()[s.index()],
        );
        assert!(
            (a - b).abs() < 0.02 * token,
            "final phase amount moved: {a} vs {b}"
        );
    }
}
