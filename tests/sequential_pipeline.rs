//! Integration tests spanning the whole stack: circuit builder → scheme
//! generator → stiff ODE simulation → cycle-level harness.

use molseq::dsp::{biquad, fir, iir_first_order, moving_average, rmse, Ratio};
use molseq::sync::{
    drive_cycles, BinaryCounter, ClockSpec, CycleResources, Fsm, RunConfig, SyncCircuit,
};

#[test]
fn two_register_pipeline_delays_by_two_cycles() {
    let mut circuit = SyncCircuit::new(ClockSpec::default());
    let x = circuit.input("x");
    let d1 = circuit.delay("d1", x);
    let d2 = circuit.delay("d2", d1);
    circuit.output("y", d2);
    let system = circuit.compile().expect("compiles");

    let samples = [60.0, 20.0, 80.0];
    let run = drive_cycles(
        &system,
        &[("x", &samples)],
        6,
        &RunConfig::default(),
        CycleResources::default(),
    )
    .expect("runs");
    let d2_series = run.register_series("d2").expect("d2 exists");
    for (k, &expect) in samples.iter().enumerate() {
        assert!(
            (d2_series[k + 1] - expect).abs() < 1.5,
            "d2 at cycle {}: {} vs {expect}",
            k + 1,
            d2_series[k + 1]
        );
    }
}

#[test]
fn moving_average_tracks_ideal_end_to_end() {
    let filter = moving_average(2, ClockSpec::default()).expect("builds");
    let samples = [10.0, 50.0, 10.0, 80.0, 20.0];
    let measured = filter
        .respond_with(&samples, &RunConfig::default(), None)
        .expect("runs");
    let ideal = filter.ideal_response(&samples);
    assert!(
        rmse(&measured, &ideal) < 1.5,
        "measured {measured:?} vs ideal {ideal:?}"
    );
}

#[test]
fn weighted_fir_computes_its_coefficients() {
    // y(n) = ¾·x(n) + ¼·x(n−1)
    let filter = fir(
        &[
            Ratio::new(3, 4).expect("ratio"),
            Ratio::new(1, 4).expect("ratio"),
        ],
        ClockSpec::default(),
    )
    .expect("builds");
    let samples = [40.0, 0.0, 80.0];
    let measured = filter
        .respond_with(&samples, &RunConfig::default(), None)
        .expect("runs");
    let ideal = filter.ideal_response(&samples);
    assert_eq!(ideal, vec![30.0, 10.0, 60.0]);
    assert!(rmse(&measured, &ideal) < 1.5, "{measured:?}");
}

#[test]
fn leaky_integrator_feedback_loop_converges() {
    // y(n) = ½·y(n−1) + ½·x(n) with constant input 40 converges to 40
    let filter = iir_first_order(
        Ratio::new(1, 2).expect("ratio"),
        Ratio::new(1, 2).expect("ratio"),
        ClockSpec::default(),
    )
    .expect("builds");
    let samples = [40.0; 6];
    let measured = filter
        .respond_with(&samples, &RunConfig::default(), None)
        .expect("runs");
    let ideal = filter.ideal_response(&samples);
    assert!(rmse(&measured, &ideal) < 1.5, "{measured:?} vs {ideal:?}");
    assert!(
        (measured.last().expect("nonempty") - 39.375).abs() < 1.5,
        "{measured:?}"
    );
}

#[test]
fn biquad_with_negative_feedback_tracks_ideal() {
    // y(n) = ½x(n) + ¼x(n−1) + ¼x(n−2) − ½y(n−1) − ¼y(n−2), clamped at 0
    let filter = biquad(
        [
            Ratio::new(1, 2).expect("ratio"),
            Ratio::new(1, 4).expect("ratio"),
            Ratio::new(1, 4).expect("ratio"),
        ],
        [
            Ratio::new(1, 2).expect("ratio"),
            Ratio::new(1, 4).expect("ratio"),
        ],
        ClockSpec::default(),
    )
    .expect("builds");
    let samples = [40.0, 40.0, 40.0, 0.0, 0.0, 40.0];
    let measured = filter
        .respond_with(&samples, &RunConfig::default(), None)
        .expect("runs");
    let ideal = filter.ideal_response(&samples);
    assert!(
        rmse(&measured, &ideal) < 2.0,
        "measured {measured:?} vs ideal {ideal:?}"
    );
}

#[test]
fn fsm_divides_input_frequency() {
    // parity machine = divide-by-two of the `1` stream
    let fsm = Fsm::build(ClockSpec::default(), 60.0, &[[0, 1], [1, 0]], 0).expect("builds");
    let bits = [true, true, true, true, true];
    let (_, states) = fsm.run(&bits, &RunConfig::default()).expect("runs");
    assert_eq!(states, vec![1, 0, 1, 0, 1]);
}

#[test]
fn counter_counts_five_pulses() {
    let counter = BinaryCounter::build(3, 60.0, ClockSpec::default()).expect("builds");
    let pulses = [true, true, true, true, true, false, false, false];
    let samples = counter.pulse_train(&pulses);
    let run = drive_cycles(
        counter.system(),
        &[("pulse", &samples)],
        samples.len() + 1,
        &RunConfig::default(),
        CycleResources::default(),
    )
    .expect("runs");
    assert_eq!(counter.decode(&run, run.cycles() - 1).expect("decodes"), 5);
}

#[test]
fn clock_period_is_stable_inside_a_circuit() {
    let mut circuit = SyncCircuit::new(ClockSpec::default());
    let x = circuit.input("x");
    let d = circuit.delay("d", x);
    circuit.output("y", d);
    let system = circuit.compile().expect("compiles");
    let run = drive_cycles(
        &system,
        &[("x", &[50.0, 0.0, 50.0])],
        5,
        &RunConfig::default(),
        CycleResources::default(),
    )
    .expect("runs");
    let period = run.mean_period().expect("at least two cycles");
    assert!(period > 1.0 && period < 60.0, "period {period}");
    // successive sample times are roughly evenly spaced
    let times = run.sample_times();
    for pair in times.windows(2) {
        let gap = pair[1] - pair[0];
        assert!(
            gap > 0.3 * period && gap < 3.0 * period,
            "irregular cycle: {gap} vs mean {period}"
        );
    }
}
