//! The synchronous machinery under discrete (Gillespie) dynamics — the
//! regime a DNA implementation actually lives in.

use molseq::crn::RateAssignment;
use molseq::kinetics::{CompiledCrn, Schedule, SimSpec, Simulation, SsaOptions};
use molseq::sync::{
    stored_final_value, BinaryCounter, ClockSpec, DelayChain, SchemeConfig, SyncRun,
};

#[test]
fn delay_chain_is_mass_exact_under_ssa() {
    let chain = DelayChain::build(SchemeConfig::default(), 2).expect("builds");
    let init = chain.initial_state(40.0, &[12.0, 7.0]).expect("state");
    let opts = SsaOptions::default()
        .with_t_end(300.0)
        .with_record_interval(2.0)
        .with_seed(5);
    let spec = SimSpec::new(RateAssignment::from_ratio(100.0));
    let compiled = CompiledCrn::new(chain.crn(), &spec);
    let trace = Simulation::new(chain.crn(), &compiled)
        .init(&init)
        .options(opts)
        .run()
        .expect("runs");
    // pure transfers conserve every molecule: 40 + 12 + 7 arrive exactly
    let y = stored_final_value(chain.crn(), &trace, chain.output());
    assert_eq!(y, 59.0, "all molecules delivered");
}

#[test]
fn counter_decodes_exactly_at_small_amplitude() {
    let counter = BinaryCounter::build(2, 8.0, ClockSpec::default()).expect("builds");
    let system = counter.system();
    let pulses = counter.pulse_train(&[true, true, true, false, false, false]);
    let schedule =
        Schedule::new().trigger(system.input_trigger("pulse", &pulses).expect("trigger"));
    let opts = SsaOptions::default()
        .with_t_end(220.0)
        .with_record_interval(1.0)
        .with_seed(3);
    let compiled = CompiledCrn::new(system.crn(), &SimSpec::default());
    let trace = Simulation::new(system.crn(), &compiled)
        .init(&system.initial_state())
        .schedule(&schedule)
        .options(opts)
        .run()
        .expect("runs");
    let run = SyncRun::from_trace(system, trace);
    assert!(
        run.cycles() >= 6,
        "enough cycles completed: {}",
        run.cycles()
    );
    assert_eq!(
        counter.decode(&run, run.cycles() - 1).expect("decodes"),
        3,
        "three pulses counted with 8-molecule logic levels"
    );
}
