//! Golden equivalence for the netlist front-end: textual netlists must
//! compile to the *byte-identical* reaction systems their hand-built
//! module counterparts produce — same CRN text, same structural hash —
//! and therefore drive to bit-identical [`SyncRun`] traces, scalar and
//! batched.

use molseq::crn::RateAssignment;
use molseq::dsp::moving_average;
use molseq::kinetics::{BatchedOdeWorkspace, CompiledCrn, SimSpec};
use molseq::sync::{
    compile_netlist_source, drive_cycles, drive_cycles_batch, BatchCell, BinaryCounter, ClockSpec,
    CompiledSystem, CycleResources, Fsm, RunConfig, SyncRun,
};

const SEQDET_NL: &str = include_str!("../examples/netlists/seqdet.nl");
const COUNTER2_NL: &str = include_str!("../examples/netlists/counter2.nl");
const MAVG2_NL: &str = include_str!("../examples/netlists/mavg2.nl");

fn assert_same_system(netlist: &CompiledSystem, module: &CompiledSystem, what: &str) {
    assert_eq!(
        netlist.crn().to_string(),
        module.crn().to_string(),
        "{what}: CRN text differs"
    );
    assert_eq!(
        netlist.crn().structural_hash(),
        module.crn().structural_hash(),
        "{what}: structural hash differs"
    );
}

fn assert_same_run(a: &SyncRun, b: &SyncRun, system: &CompiledSystem, what: &str) {
    assert_eq!(a.sample_times(), b.sample_times(), "{what}: sample times");
    for name in system.register_names() {
        assert_eq!(
            a.register_series(name).expect("register in run a"),
            b.register_series(name).expect("register in run b"),
            "{what}: register `{name}` trace differs"
        );
    }
}

/// The ripple-counter netlist, generated for any width — the textual
/// counterpart of [`BinaryCounter::build`] at amplitude 60.
fn counter_netlist(bits: usize) -> String {
    let mut s = String::from("module counter {\n  input pulse\n  const K = 60\n");
    for i in 0..bits {
        let carry_in = if i == 0 {
            "pulse".to_owned()
        } else {
            format!("c{}", i - 1)
        };
        s.push_str(&format!(
            "  reg b{i}\n  wire s{i} = b{i} + {carry_in}\n  wire carry{i} = s{i} - K\n  \
             wire cc{i} = 2 * carry{i}\n  wire next{i} = s{i} - cc{i}\n  b{i} <= next{i}\n  \
             reg c{i}\n  c{i} <= carry{i}\n"
        ));
    }
    s.push_str(&format!("  output overflow = c{}\n}}\n", bits - 1));
    s
}

#[test]
fn counter_netlists_match_the_module_for_widths_2_3_4() {
    for bits in [2usize, 3, 4] {
        let text = counter_netlist(bits);
        let from_text =
            compile_netlist_source(&text, ClockSpec::default()).expect("netlist compiles");
        let module = BinaryCounter::build(bits, 60.0, ClockSpec::default()).expect("module builds");
        assert_same_system(&from_text, module.system(), &format!("{bits}-bit counter"));
    }
}

#[test]
fn counter2_example_file_matches_the_module() {
    let from_file =
        compile_netlist_source(COUNTER2_NL, ClockSpec::default()).expect("example compiles");
    let module = BinaryCounter::build(2, 60.0, ClockSpec::default()).expect("module builds");
    assert_same_system(&from_file, module.system(), "counter2.nl");
}

#[test]
fn seqdet_example_matches_the_fsm_and_its_trace() {
    let from_file =
        compile_netlist_source(SEQDET_NL, ClockSpec::default()).expect("example compiles");
    let fsm = Fsm::build(ClockSpec::default(), 60.0, &[[0, 1], [0, 2], [2, 2]], 0)
        .expect("module builds");
    assert_same_system(&from_file, fsm.system(), "seqdet.nl");

    // identical structure + deterministic ODE harness ⇒ identical traces
    let bits = [true, false, true, true, false];
    let samples = fsm.input_train(&bits);
    let run = |system: &CompiledSystem| {
        drive_cycles(
            system,
            &[("x", &samples)],
            bits.len(),
            &RunConfig::default(),
            CycleResources::default(),
        )
        .expect("runs")
    };
    let a = run(&from_file);
    let b = run(fsm.system());
    assert_same_run(&a, &b, fsm.system(), "seqdet trace");
    // and the machine still detects "11"
    let states: Vec<usize> = (0..bits.len())
        .map(|k| fsm.decode(&a, k).expect("decodes"))
        .collect();
    assert_eq!(states, vec![1, 0, 1, 2, 2]);
}

#[test]
fn mavg2_example_matches_the_filter_and_its_trace() {
    let from_file =
        compile_netlist_source(MAVG2_NL, ClockSpec::default()).expect("example compiles");
    let filter = moving_average(2, ClockSpec::default()).expect("module builds");
    assert_same_system(&from_file, filter.system(), "mavg2.nl");

    let samples = [10.0, 50.0, 80.0];
    let run = |system: &CompiledSystem| {
        drive_cycles(
            system,
            &[("x", &samples)],
            samples.len() + 1,
            &RunConfig::default(),
            CycleResources::default(),
        )
        .expect("runs")
    };
    assert_same_run(
        &run(&from_file),
        &run(filter.system()),
        filter.system(),
        "mavg2 trace",
    );
}

/// The batched lock-step engine sees the same bytes from both origins:
/// four rate-ratio cells of the netlist-compiled counter match the
/// module-compiled counter lane for lane.
#[test]
fn counter_batch_of_4_is_bitwise_identical_across_origins() {
    let from_text = compile_netlist_source(&counter_netlist(2), ClockSpec::default())
        .expect("netlist compiles");
    let module = BinaryCounter::build(2, 60.0, ClockSpec::default()).expect("module builds");

    let pulses = module.pulse_train(&[true, true, false]);
    let ratios = [100.0, 400.0, 1000.0, 4000.0];
    let batch = |system: &CompiledSystem| {
        let base = CompiledCrn::new(system.crn(), &SimSpec::default());
        let compiled: Vec<CompiledCrn> = ratios
            .iter()
            .map(|&r| base.rebind(&SimSpec::new(RateAssignment::from_ratio(r))))
            .collect();
        let cells: Vec<BatchCell> = compiled
            .iter()
            .map(|c| BatchCell {
                compiled: c,
                config: RunConfig::default(),
            })
            .collect();
        let mut ws = BatchedOdeWorkspace::new();
        drive_cycles_batch(system, &[("pulse", &pulses)], 4, &cells, &mut ws)
            .expect("batch runs")
            .into_iter()
            .map(|cell| cell.expect("cell runs"))
            .collect::<Vec<SyncRun>>()
    };

    let a = batch(&from_text);
    let b = batch(module.system());
    assert_eq!(a.len(), b.len());
    for (lane, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_same_run(x, y, module.system(), &format!("counter batch lane {lane}"));
        assert_eq!(module.decode(x, 3).expect("decodes"), 2);
    }
}
