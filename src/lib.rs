//! # molseq — synchronous sequential computation with molecular reactions
//!
//! A Rust reproduction of *"Synchronous Sequential Computation with
//! Molecular Reactions"* (Jiang, Riedel, Parhi — DAC 2011): computing with
//! chemical concentrations instead of voltages, with memory, synchronized by
//! a clock that is itself a set of chemical reactions.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`crn`] — reaction network model (species, reactions, fast/slow rate
//!   categories),
//! * [`kinetics`] — mass-action ODE and Gillespie SSA simulators,
//! * [`modules`] — rate-independent combinational modules,
//! * [`sync`] — **the paper's contribution**: absence indicators, delay
//!   elements, the chemical clock, the synchronous circuit builder, plus
//!   finite-state machines and iterative programs (multiplier, log) built
//!   on it,
//! * [`asynchronous`] — the companion self-timed scheme,
//! * [`dsp`] — signal-flow-graph synthesis (filters) onto `sync`,
//! * [`dsd`] — compilation of any network to DNA strand displacement.
//!
//! ## Quickstart
//!
//! ```
//! use molseq::sync::{drive_cycles, ClockSpec, CycleResources, RunConfig, SyncCircuit};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A one-register circuit: y(n) = x(n − 1), delayed by one clock cycle.
//! let mut circuit = SyncCircuit::new(ClockSpec::default());
//! let x = circuit.input("x");
//! let d = circuit.delay("d", x);
//! circuit.output("y", d);
//! let system = circuit.compile()?;
//!
//! let samples = [60.0, 20.0];
//! let run = drive_cycles(
//!     &system,
//!     &[("x", &samples)],
//!     3,
//!     &RunConfig::default(),
//!     CycleResources::default(),
//! )?;
//! let d_values = run.register_series("d")?;
//! assert!((d_values[0] - 60.0).abs() < 1.5);
//! assert!((d_values[1] - 20.0).abs() < 1.5);
//! # Ok(())
//! # }
//! ```

//! ## How a circuit becomes chemistry
//!
//! 1. You describe a netlist ([`sync::SyncCircuit`]): inputs, registers,
//!    an expression DAG (add / scale / clamped subtract), outputs.
//! 2. The compiler assigns every generated species a **color** (red,
//!    green, blue) and lowers the netlist onto one global three-phase
//!    rotation: register contents rest in red, first-level logic settles
//!    in the green stage, second-level logic in the blue stage, and the
//!    blue→red phase commits next-cycle values.
//! 3. Phase order is enforced chemically by **absence indicators** —
//!    species that exist only while an entire color category is empty —
//!    and made crisp by autocatalytic feedback driven by the clock ring's
//!    large token.
//! 4. The result is a plain [`crn::Crn`]: simulate it with the unified
//!    [`kinetics::Simulation`] builder — deterministically
//!    ([`kinetics::SimMethod::Ode`], stiff Rosenbrock by default),
//!    stochastically ([`kinetics::SimMethod::Ssa`] /
//!    [`kinetics::SimMethod::Nrm`]), or with explicit/implicit tau-leaping
//!    ([`kinetics::SimMethod::TauLeap`] /
//!    [`kinetics::SimMethod::TauLeapImplicit`]) — drive inputs per clock
//!    cycle and read registers per cycle with [`sync::drive_cycles`], or
//!    compile the whole thing to DNA strand displacement
//!    ([`dsd::DsdSystem`]) and simulate *that*.
//!
//! The defining property, inherited from the paper: only the **coarse rate
//! categories** matter. Every generated reaction is `fast` or `slow`, and
//! the computed answers are unchanged under any numeric assignment with
//! `fast ≫ slow` — sweep the ratio or jitter every constant independently
//! and the filters still filter, the counters still count (see
//! `EXPERIMENTS.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use molseq_async as asynchronous;
pub use molseq_crn as crn;
pub use molseq_dsd as dsd;
pub use molseq_dsp as dsp;
pub use molseq_kinetics as kinetics;
pub use molseq_modules as modules;
pub use molseq_sync as sync;
