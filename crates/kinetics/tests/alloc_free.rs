//! Regression test: the warm ODE hot path must not allocate per step.
//!
//! A counting [`GlobalAlloc`] wraps the system allocator; a warm
//! workspace-backed [`Simulation`] run is allowed a small constant number
//! of allocations (the returned `Trace`'s preallocated buffers, species
//! name clones, trigger runtime) but the count must not grow with the
//! number of integration steps — doubling the time span may not add
//! meaningfully to it. Before the workspace refactor the integrator
//! allocated fresh scratch per segment and a fresh sample `Vec` per
//! record, which this test would catch as O(steps) growth.
//!
//! Single `#[test]` on purpose: parallel tests in the same binary would
//! share (and pollute) the global counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use molseq_crn::{Crn, Rate};
use molseq_kinetics::{
    CompiledCrn, OdeOptions, OdeWorkspace, Schedule, SimSpec, Simulation, State,
};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn count_allocs(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn warm_ode_run_allocates_a_step_independent_constant() {
    // A stiff fast/slow ring: plenty of steps, no triggers or injections.
    let mut crn = Crn::new();
    let a = crn.species("a");
    let b = crn.species("b");
    let c = crn.species("c");
    crn.reaction(&[(a, 1)], &[(b, 1)], Rate::Fast).unwrap();
    crn.reaction(&[(b, 1)], &[(c, 1)], Rate::Fast).unwrap();
    crn.reaction(&[(c, 1)], &[(a, 1)], Rate::Slow).unwrap();
    let compiled = CompiledCrn::new(&crn, &SimSpec::default());
    let mut init = State::new(&crn);
    init.set(a, 50.0);

    let schedule = Schedule::new();
    let opts_for = |t_end: f64| {
        OdeOptions::default()
            .with_t_end(t_end)
            .with_record_interval(0.01)
    };

    let mut workspace = OdeWorkspace::new();
    // Warm-up: let the workspace and any lazy runtime structures size
    // themselves (also warms the allocator itself).
    let warm = Simulation::new(&crn, &compiled)
        .init(&init)
        .schedule(&schedule)
        .options(opts_for(40.0))
        .workspace(&mut workspace)
        .run()
        .expect("warm-up simulates");
    assert!(warm.len() > 1000, "workload too small to be meaningful");

    let mut run = |t_end: f64| {
        let mut trace = None;
        let n = count_allocs(|| {
            trace = Some(
                Simulation::new(&crn, &compiled)
                    .init(&init)
                    .schedule(&schedule)
                    .options(opts_for(t_end))
                    .workspace(&mut workspace)
                    .run()
                    .expect("simulates"),
            );
        });
        (n, trace.unwrap())
    };

    let (short_allocs, short_trace) = run(20.0);
    let (long_allocs, long_trace) = run(40.0);
    assert!(
        long_trace.len() >= 2 * short_trace.len() - 2,
        "long run should take ~2x the records: {} vs {}",
        long_trace.len(),
        short_trace.len()
    );

    // The absolute budget: the returned Trace's buffers plus one name
    // clone per species plus small fixed runtime state.
    assert!(
        short_allocs < 64,
        "warm run made {short_allocs} allocations; hot path is allocating"
    );
    // The regression criterion: doubling the step count must not scale
    // the allocation count.
    assert!(
        long_allocs <= short_allocs + 8,
        "allocation count grows with steps: {short_allocs} for T, {long_allocs} for 2T"
    );
}
