//! Property tests for the cross-request compiled-CRN cache.
//!
//! The cache's correctness claim has two halves:
//!
//! * **Sharing** — two *structurally identical* networks share one cache
//!   entry, even when they were built independently and are simulated
//!   under different rate constants (the entry stores the default-spec
//!   compile; requests rebind it).
//! * **Transparency** — what a cache hit returns is bit-identical to
//!   compiling the request's network fresh under the request's spec, so
//!   caching can never change simulation results.

use molseq_crn::{Crn, Rate, RateAssignment};
use molseq_kinetics::{CompiledCache, CompiledCrn, SimSpec};
use proptest::prelude::*;

/// A generated network recipe: species count plus reaction draws
/// `(reactant species, product species, rate choice)`. Building the same
/// recipe twice yields two independently constructed but structurally
/// identical `Crn`s.
fn build(species: usize, reactions: &[(usize, usize, usize)]) -> Crn {
    let mut crn = Crn::new();
    let ids: Vec<_> = (0..species).map(|i| crn.species(format!("S{i}"))).collect();
    for &(r, p, rate) in reactions {
        let rate = match rate {
            0 => Rate::Fast,
            1 => Rate::Slow,
            _ => Rate::Fixed(2.5),
        };
        let (r, p) = (ids[r % species], ids[p % species]);
        crn.reaction(&[(r, 1)], &[(p, 1)], rate)
            .expect("unary reactions over interned species are valid");
    }
    crn
}

fn spec(k_fast: u32, k_slow: u32) -> SimSpec {
    // ranges keep k_fast >= 10 > 9 >= k_slow, so `new` cannot fail
    SimSpec::new(
        RateAssignment::new(f64::from(k_fast), f64::from(k_slow))
            .expect("generated k_fast > k_slow"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn structurally_identical_networks_share_one_entry_and_hits_match_fresh_compiles(
        species in 1usize..6,
        reactions in collection::vec((0usize..8, 0usize..8, 0usize..3), 0..6),
        ka in (10u32..10_000, 1u32..9),
        kb in (10u32..10_000, 1u32..9),
    ) {
        let crn_a = build(species, &reactions);
        let crn_b = build(species, &reactions);
        prop_assert_eq!(crn_a.structural_hash(), crn_b.structural_hash());

        let spec_a = spec(ka.0, ka.1);
        let spec_b = spec(kb.0, kb.1);
        let cache = CompiledCache::new();
        let a = cache.get_or_compile(&crn_a, &spec_a);
        let b = cache.get_or_compile(&crn_b, &spec_b);

        // one structural entry serves both, whatever the rate constants
        prop_assert_eq!(cache.len(), 1);
        prop_assert_eq!(cache.misses(), 1);
        prop_assert_eq!(cache.hits(), 1);

        // a cache hit is bit-identical to a fresh compile under the
        // request's own spec (PartialEq on CompiledCrn compares every
        // resolved rate constant exactly)
        prop_assert_eq!(&*a, &CompiledCrn::new(&crn_a, &spec_a));
        prop_assert_eq!(&*b, &CompiledCrn::new(&crn_b, &spec_b));
    }

    #[test]
    fn rate_constants_never_perturb_the_structural_key(
        species in 1usize..5,
        reactions in collection::vec((0usize..6, 0usize..6, 0usize..3), 1..5),
        k in (10u32..10_000, 1u32..9),
    ) {
        let crn = build(species, &reactions);
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let rebound = compiled.rebind(&spec(k.0, k.1));
        prop_assert_eq!(rebound.structural_hash(), compiled.structural_hash());
        prop_assert_eq!(compiled.structural_hash(), crn.structural_hash());
    }
}
