//! Trajectory recording and waveform analysis.

use molseq_crn::{Crn, SpeciesId};

/// A recorded trajectory: sample times, state snapshots, and the marks left
/// by triggers.
///
/// Samples are appended by the simulators at the recording interval given in
/// their options, plus one sample at every event (injection or trigger
/// firing) so that discontinuities are visible.
///
/// State snapshots are stored in one flat row-major buffer (`width` values
/// per sample) rather than one `Vec` per sample: recording a sample is a
/// single `extend_from_slice` into an amortized buffer instead of a fresh
/// heap allocation, and [`Trace::state`] is a stride-indexed subslice.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    names: Vec<String>,
    /// Number of species per snapshot (row width of `data`).
    width: usize,
    times: Vec<f64>,
    /// Row-major snapshots: sample `i` is `data[i*width .. (i+1)*width]`.
    data: Vec<f64>,
    marks: Vec<(f64, usize)>,
}

impl Trace {
    /// Creates an empty trace that records the species of `crn`.
    #[must_use]
    pub fn new(crn: &Crn) -> Self {
        Trace::with_capacity(crn, 0)
    }

    /// Creates an empty trace preallocated for `samples` snapshots.
    #[must_use]
    pub fn with_capacity(crn: &Crn, samples: usize) -> Self {
        let names: Vec<String> = crn
            .species_iter()
            .map(|(_, s)| s.name().to_owned())
            .collect();
        let width = names.len();
        Trace {
            names,
            width,
            times: Vec::with_capacity(samples),
            data: Vec::with_capacity(samples * width),
            marks: Vec::new(),
        }
    }

    pub(crate) fn push(&mut self, time: f64, state: &[f64]) {
        debug_assert_eq!(state.len(), self.width, "snapshot width mismatch");
        self.times.push(time);
        self.data.extend_from_slice(state);
    }

    pub(crate) fn push_mark(&mut self, time: f64, trigger: usize) {
        self.marks.push((time, trigger));
    }

    /// Appends another trace of the same network (used when integrating in
    /// chunks). A duplicate boundary sample is skipped.
    ///
    /// # Panics
    ///
    /// Panics if the traces record different species sets.
    pub fn append(&mut self, other: &Trace) {
        assert_eq!(self.names, other.names, "traces must share a network");
        let skip_first = !other.is_empty()
            && self
                .times
                .last()
                .is_some_and(|&t| (t - other.times[0]).abs() < 1e-12);
        let from = usize::from(skip_first);
        self.times.extend_from_slice(&other.times[from..]);
        self.data
            .extend_from_slice(&other.data[from * other.width..]);
        self.marks.extend_from_slice(&other.marks);
    }

    /// Sample times, ascending.
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True if nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Species names, aligned with state indices.
    #[must_use]
    pub fn species_names(&self) -> &[String] {
        &self.names
    }

    /// The state snapshot at sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn state(&self, i: usize) -> &[f64] {
        assert!(i < self.len(), "sample index {i} out of range");
        &self.data[i * self.width..(i + 1) * self.width]
    }

    /// The last recorded state.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    #[must_use]
    pub fn final_state(&self) -> &[f64] {
        assert!(!self.is_empty(), "trace is not empty");
        self.state(self.len() - 1)
    }

    /// The time series of one species.
    #[must_use]
    pub fn series(&self, species: SpeciesId) -> Vec<f64> {
        self.data
            .iter()
            .skip(species.index())
            .step_by(self.width.max(1))
            .copied()
            .collect()
    }

    /// Linear interpolation of one species at time `t` (clamped to the
    /// recorded span).
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    #[must_use]
    pub fn value_at(&self, species: SpeciesId, t: f64) -> f64 {
        assert!(!self.is_empty(), "trace is empty");
        let idx = species.index();
        if t <= self.times[0] {
            return self.state(0)[idx];
        }
        if t >= *self.times.last().expect("nonempty") {
            return self.final_state()[idx];
        }
        let hi = self.times.partition_point(|&x| x < t);
        let lo = hi - 1;
        let (t0, t1) = (self.times[lo], self.times[hi]);
        let (v0, v1) = (self.state(lo)[idx], self.state(hi)[idx]);
        if t1 == t0 {
            return v1;
        }
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }

    /// Full state by linear interpolation at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    #[must_use]
    pub fn state_at(&self, t: f64) -> Vec<f64> {
        (0..self.names.len())
            .map(|i| self.value_at(SpeciesId::from_index(i), t))
            .collect()
    }

    /// All marks as `(time, trigger index)`, in firing order.
    #[must_use]
    pub fn marks(&self) -> &[(f64, usize)] {
        &self.marks
    }

    /// The firing times of one trigger.
    #[must_use]
    pub fn mark_times(&self, trigger: usize) -> Vec<f64> {
        self.marks
            .iter()
            .filter(|(_, id)| *id == trigger)
            .map(|(t, _)| *t)
            .collect()
    }

    /// Maximum value reached by a species over the whole trace.
    #[must_use]
    pub fn max_of(&self, species: SpeciesId) -> f64 {
        self.data
            .iter()
            .skip(species.index())
            .step_by(self.width.max(1))
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Writes the trace as CSV (`time` column plus one column per
    /// species) — the interchange format for external plotting.
    ///
    /// Species names containing commas or quotes are quoted per RFC 4180.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer. A `&mut` reference can be
    /// passed as the writer.
    pub fn write_csv<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        let quote = |name: &str| -> String {
            if name.contains(',') || name.contains('"') || name.contains('\n') {
                format!("\"{}\"", name.replace('"', "\"\""))
            } else {
                name.to_owned()
            }
        };
        write!(w, "time")?;
        for name in &self.names {
            write!(w, ",{}", quote(name))?;
        }
        writeln!(w)?;
        for (i, &t) in self.times.iter().enumerate() {
            write!(w, "{t}")?;
            for v in self.state(i) {
                write!(w, ",{v}")?;
            }
            writeln!(w)?;
        }
        Ok(())
    }
}

/// Direction of a threshold crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// The series rose through the threshold.
    Up,
    /// The series fell through the threshold.
    Down,
}

/// One threshold crossing of a waveform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Crossing {
    /// Interpolated crossing time.
    pub time: f64,
    /// Direction of the crossing.
    pub direction: Direction,
}

/// Finds all threshold crossings of `series` sampled at `times`, with linear
/// interpolation of the crossing instants.
///
/// # Panics
///
/// Panics if `times` and `series` differ in length.
///
/// # Examples
///
/// ```
/// use molseq_kinetics::{crossings, Direction};
///
/// let times = [0.0, 1.0, 2.0, 3.0];
/// let series = [0.0, 10.0, 0.0, 10.0];
/// let found = crossings(&times, &series, 5.0);
/// assert_eq!(found.len(), 3);
/// assert_eq!(found[0].direction, Direction::Up);
/// assert!((found[0].time - 0.5).abs() < 1e-12);
/// ```
#[must_use]
pub fn crossings(times: &[f64], series: &[f64], threshold: f64) -> Vec<Crossing> {
    assert_eq!(times.len(), series.len(), "times and series must align");
    let mut out = Vec::new();
    for i in 1..times.len() {
        let (a, b) = (series[i - 1], series[i]);
        let crossed_up = a <= threshold && b > threshold;
        let crossed_down = a >= threshold && b < threshold;
        if !(crossed_up || crossed_down) {
            continue;
        }
        let frac = if b == a {
            1.0
        } else {
            (threshold - a) / (b - a)
        };
        out.push(Crossing {
            time: times[i - 1] + frac * (times[i] - times[i - 1]),
            direction: if crossed_up {
                Direction::Up
            } else {
                Direction::Down
            },
        });
    }
    out
}

/// Estimates the period of an oscillating series from the mean spacing of
/// its upward threshold crossings. Returns `None` when fewer than two
/// upward crossings exist.
///
/// # Examples
///
/// ```
/// use molseq_kinetics::estimate_period;
///
/// let times: Vec<f64> = (0..1000).map(|i| i as f64 * 0.01).collect();
/// let series: Vec<f64> = times.iter().map(|t| (t * std::f64::consts::TAU).sin()).collect();
/// let period = estimate_period(&times, &series, 0.0).expect("oscillates");
/// assert!((period - 1.0).abs() < 0.01);
/// ```
#[must_use]
pub fn estimate_period(times: &[f64], series: &[f64], threshold: f64) -> Option<f64> {
    let ups: Vec<f64> = crossings(times, series, threshold)
        .into_iter()
        .filter(|c| c.direction == Direction::Up)
        .map(|c| c.time)
        .collect();
    if ups.len() < 2 {
        return None;
    }
    Some((ups[ups.len() - 1] - ups[0]) / (ups.len() - 1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use molseq_crn::Crn;

    fn trace_with(data: &[(f64, [f64; 2])]) -> (Trace, SpeciesId, SpeciesId) {
        let mut crn = Crn::new();
        let a = crn.species("A");
        let b = crn.species("B");
        let mut t = Trace::new(&crn);
        for (time, state) in data {
            t.push(*time, state);
        }
        (t, a, b)
    }

    #[test]
    fn series_and_final_state() {
        let (t, a, b) = trace_with(&[(0.0, [1.0, 2.0]), (1.0, [3.0, 4.0])]);
        assert_eq!(t.series(a), vec![1.0, 3.0]);
        assert_eq!(t.series(b), vec![2.0, 4.0]);
        assert_eq!(t.final_state(), &[3.0, 4.0]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.species_names(), &["A".to_owned(), "B".to_owned()]);
    }

    #[test]
    fn interpolation_is_linear_and_clamped() {
        let (t, a, _) = trace_with(&[(0.0, [0.0, 0.0]), (2.0, [10.0, 0.0])]);
        assert_eq!(t.value_at(a, 1.0), 5.0);
        assert_eq!(t.value_at(a, -1.0), 0.0);
        assert_eq!(t.value_at(a, 3.0), 10.0);
        assert_eq!(t.state_at(1.0), vec![5.0, 0.0]);
    }

    #[test]
    fn marks_filter_by_trigger() {
        let (mut t, _, _) = trace_with(&[(0.0, [0.0, 0.0])]);
        t.push_mark(1.0, 0);
        t.push_mark(2.0, 1);
        t.push_mark(3.0, 0);
        assert_eq!(t.mark_times(0), vec![1.0, 3.0]);
        assert_eq!(t.mark_times(1), vec![2.0]);
        assert_eq!(t.marks().len(), 3);
    }

    #[test]
    fn max_of_scans_whole_trace() {
        let (t, a, _) = trace_with(&[(0.0, [1.0, 0.0]), (1.0, [7.0, 0.0]), (2.0, [3.0, 0.0])]);
        assert_eq!(t.max_of(a), 7.0);
    }

    #[test]
    fn csv_round_trips_structure() {
        let mut crn = Crn::new();
        let _a = crn.species("plain");
        let _b = crn.species("with,comma");
        let mut t = Trace::new(&crn);
        t.push(0.0, &[1.0, 2.0]);
        t.push(0.5, &[3.0, 4.0]);
        let mut out = Vec::new();
        t.write_csv(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "time,plain,\"with,comma\"");
        assert_eq!(lines[1], "0,1,2");
        assert_eq!(lines[2], "0.5,3,4");
        assert_eq!(lines.len(), 3);
    }

    /// The flat row-major storage must be observationally identical to the
    /// obvious `Vec<Vec<f64>>` representation it replaced: same states,
    /// same interpolation, same CSV bytes, same append/boundary-dedup
    /// behavior.
    #[test]
    fn flat_storage_matches_nested_reference_model() {
        let mut crn = Crn::new();
        let a = crn.species("A");
        let b = crn.species("B");
        let c = crn.species("C");

        // Deterministic pseudo-random sample set (LCG; no rand dep here).
        let mut seed = 0x2545F491u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut reference: Vec<(f64, Vec<f64>)> = Vec::new();
        let mut trace = Trace::with_capacity(&crn, 8); // deliberately small hint
        for i in 0..100 {
            let t = i as f64 * 0.25;
            let row = vec![next(), next(), next()];
            trace.push(t, &row);
            reference.push((t, row));
        }

        assert_eq!(trace.len(), reference.len());
        for (i, (t, row)) in reference.iter().enumerate() {
            assert_eq!(trace.times()[i], *t);
            assert_eq!(trace.state(i), row.as_slice());
        }
        assert_eq!(trace.final_state(), reference.last().unwrap().1.as_slice());
        for (k, sp) in [a, b, c].into_iter().enumerate() {
            let expect: Vec<f64> = reference.iter().map(|(_, r)| r[k]).collect();
            assert_eq!(trace.series(sp), expect);
            let max = expect.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(trace.max_of(sp), max);
        }

        // Interpolation between two reference rows.
        let mid = 0.5 * (reference[3].0 + reference[4].0);
        let expect_mid = 0.5 * (reference[3].1[1] + reference[4].1[1]);
        assert!((trace.value_at(b, mid) - expect_mid).abs() < 1e-12);

        // CSV bytes match a hand-rolled writer over the reference model.
        let mut got = Vec::new();
        trace.write_csv(&mut got).unwrap();
        let mut want = String::from("time,A,B,C\n");
        for (t, row) in &reference {
            want.push_str(&format!("{t},{},{},{}\n", row[0], row[1], row[2]));
        }
        assert_eq!(String::from_utf8(got).unwrap(), want);

        // Append with duplicate boundary sample: the boundary row is kept
        // once, exactly as the nested representation did it.
        let mut tail = Trace::new(&crn);
        let boundary = reference.last().unwrap().clone();
        tail.push(boundary.0, &boundary.1);
        tail.push(boundary.0 + 1.0, &[9.0, 8.0, 7.0]);
        tail.push_mark(boundary.0 + 1.0, 2);
        let before = trace.len();
        trace.append(&tail);
        assert_eq!(trace.len(), before + 1);
        assert_eq!(trace.final_state(), &[9.0, 8.0, 7.0]);
        assert_eq!(trace.marks(), &[(boundary.0 + 1.0, 2)]);
    }

    #[test]
    fn crossing_directions() {
        let times = [0.0, 1.0, 2.0];
        let series = [0.0, 10.0, 0.0];
        let c = crossings(&times, &series, 5.0);
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].direction, Direction::Up);
        assert_eq!(c[1].direction, Direction::Down);
        assert!((c[1].time - 1.5).abs() < 1e-12);
    }

    #[test]
    fn no_crossings_for_flat_series() {
        let times = [0.0, 1.0];
        let series = [1.0, 1.0];
        assert!(crossings(&times, &series, 5.0).is_empty());
        assert!(estimate_period(&times, &series, 5.0).is_none());
    }
}
