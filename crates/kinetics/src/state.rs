//! Initial-state construction.

use molseq_crn::{Crn, SpeciesId};

/// A concentration (or copy-number) vector aligned with a network's species
/// indices, with a small builder API for setting initial conditions.
///
/// # Examples
///
/// ```
/// use molseq_crn::Crn;
/// use molseq_kinetics::State;
///
/// let mut crn: Crn = "X -> Y @slow".parse().unwrap();
/// let x = crn.species("X");
/// let mut state = State::new(&crn);
/// state.set(x, 80.0);
/// assert_eq!(state.get(x), 80.0);
/// assert_eq!(state.as_slice().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    values: Vec<f64>,
}

impl State {
    /// An all-zero state sized for `crn`.
    #[must_use]
    pub fn new(crn: &Crn) -> Self {
        State {
            values: vec![0.0; crn.species_count()],
        }
    }

    /// Builds a state from a raw vector.
    ///
    /// Useful when resuming from a [`Trace`](crate::Trace) snapshot.
    #[must_use]
    pub fn from_vec(values: Vec<f64>) -> Self {
        State { values }
    }

    /// Sets the amount of one species.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range or the amount is negative/non-finite.
    pub fn set(&mut self, species: SpeciesId, amount: f64) -> &mut Self {
        assert!(
            amount.is_finite() && amount >= 0.0,
            "amounts must be finite and non-negative"
        );
        self.values[species.index()] = amount;
        self
    }

    /// Adds to the amount of one species.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn add(&mut self, species: SpeciesId, amount: f64) -> &mut Self {
        self.values[species.index()] += amount;
        self
    }

    /// Reads the amount of one species.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn get(&self, species: SpeciesId) -> f64 {
        self.values[species.index()]
    }

    /// The underlying vector, indexed by species index.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Consumes the state, returning the underlying vector.
    #[must_use]
    pub fn into_vec(self) -> Vec<f64> {
        self.values
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the state has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let mut crn = Crn::new();
        let a = crn.species("A");
        let b = crn.species("B");
        let mut s = State::new(&crn);
        s.set(a, 1.0).add(b, 2.0).add(b, 3.0);
        assert_eq!(s.get(a), 1.0);
        assert_eq!(s.get(b), 5.0);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "amounts must be finite")]
    fn rejects_negative() {
        let mut crn = Crn::new();
        let a = crn.species("A");
        State::new(&crn).set(a, -1.0);
    }

    #[test]
    fn from_vec_round_trips() {
        let s = State::from_vec(vec![1.0, 2.0]);
        assert_eq!(s.clone().into_vec(), vec![1.0, 2.0]);
        assert_eq!(s.as_slice(), &[1.0, 2.0]);
    }
}
