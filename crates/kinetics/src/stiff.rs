//! A linearly implicit (Rosenbrock) stiff integrator.
//!
//! The networks in this workspace are stiff by construction: fast
//! reactions run at `k_fast·X ≈ 10⁵` while the phenomena of interest live
//! on the `k_slow` timescale. Explicit methods are stability-limited to
//! steps of `~1/(k_fast·X)`; the Rosenbrock method here (the classic
//! ode23s pair of Shampine & Reichelt) takes steps sized by *accuracy*
//! instead, using the analytic mass-action Jacobian.
//!
//! Three structural optimizations keep the per-step cost down on the
//! large networks (multi-bit counters run past 100 species):
//!
//! * the Jacobian is evaluated through the precomputed CSR pattern
//!   ([`CompiledCrn::jacobian_sparse`]) and `W = I − h·d·J` is assembled
//!   by scattering only the nonzeros — no dense Jacobian is ever formed;
//! * the linear algebra exploits that W's sparsity pattern is *fixed*
//!   across the whole simulation: a one-time symbolic analysis
//!   ([`Symbolic`]) closes the pattern under the fill-in of Gaussian
//!   elimination, and the per-step numeric factorization and the three
//!   triangular solves then visit only structural nonzeros (a few percent
//!   of the dense positions on the counter networks). The factorization
//!   runs without pivoting — at the step sizes the controller accepts,
//!   `W = I − h·d·J` is dominated by its unit diagonal — but every pivot
//!   and multiplier is checked against a stability guard, and a step
//!   whose elimination misbehaves transparently falls back to the
//!   pivoted dense LU ([`Lu`], slice-based and vectorized);
//! * all scratch, including the symbolic structure, lives in
//!   [`RosenbrockWork`] and is reused across steps, segments and whole
//!   simulations.
//!
//! The Jacobian (and, when `h` repeats bit-identically, the whole LU) can
//! additionally be *reused* across accepted steps
//! (`OdeOptions::with_jacobian_reuse`), refreshed on rejection or after
//! the configured number of accepted steps. This is off by default:
//! ode23s is not a W-method — a lagged Jacobian inflates the embedded
//! error estimate, and on this workspace's autocatalytic networks the
//! resulting reject/refresh/retry cycles cost more than the skipped
//! factorizations save (see `DEFAULT_JACOBIAN_REUSE`). The machinery is
//! kept for genuinely slowly varying systems, and the error estimate
//! still bounds local error under staleness, so opting in affects step
//! size, never accuracy.

// Index loops mirror the textbook linear-algebra formulas.
#![allow(clippy::needless_range_loop)]

use crate::compiled::CompiledCrn;

pub(crate) const D: f64 = 0.2928932188134524; // 1 / (2 + √2)
pub(crate) const C32: f64 = 7.414213562373095; // 6 + √2

/// A multiplier this large during the no-pivot elimination means the
/// natural ordering is numerically unstable for this particular `W`;
/// the step falls back to the pivoted dense factorization. Partial
/// pivoting bounds multipliers by 1, so 10⁴ already concedes ~4 digits —
/// on the mass-action `W = I − h·d·J` matrices here, where the unit
/// diagonal dominates at accepted step sizes, the guard never trips in
/// practice.
const MULTIPLIER_GUARD: f64 = 1e4;

/// Dense LU factorization with partial pivoting (row-major `n×n`).
/// The fallback backend when the no-pivot sparse elimination trips its
/// stability guard, and the reference the sparse path is tested against.
pub(crate) struct Lu {
    lu: Vec<f64>,
    pivots: Vec<usize>,
    n: usize,
}

impl Lu {
    /// Factors `a` in place, reusing `pivots` as the permutation storage.
    /// Returns both buffers untouched as the error value for a
    /// (numerically) singular matrix, so callers can recover them instead
    /// of re-allocating.
    pub(crate) fn factor(
        mut a: Vec<f64>,
        mut pivots: Vec<usize>,
        n: usize,
    ) -> Result<Lu, (Vec<f64>, Vec<usize>)> {
        pivots.clear();
        pivots.resize(n, 0);
        for col in 0..n {
            // pivot search
            let mut pivot_row = col;
            let mut best = a[col * n + col].abs();
            for row in (col + 1)..n {
                let v = a[row * n + col].abs();
                if v > best {
                    best = v;
                    pivot_row = row;
                }
            }
            if best < 1e-300 {
                return Err((a, pivots));
            }
            pivots[col] = pivot_row;
            if pivot_row != col {
                for k in 0..n {
                    a.swap(col * n + k, pivot_row * n + k);
                }
            }
            let inv = 1.0 / a[col * n + col];
            // Slice the pivot row off so the update is over plain slices:
            // the bounds-check-free zip below vectorizes.
            let (top, below) = a.split_at_mut((col + 1) * n);
            let pivot_tail = &top[col * n + col + 1..];
            for row in below.chunks_exact_mut(n) {
                let factor = row[col] * inv;
                row[col] = factor;
                if factor != 0.0 {
                    for (x, &p) in row[col + 1..].iter_mut().zip(pivot_tail) {
                        *x -= factor * p;
                    }
                }
            }
        }
        Ok(Lu { lu: a, pivots, n })
    }

    /// Solves `A·x = b` in place.
    pub(crate) fn solve(&self, b: &mut [f64]) {
        let n = self.n;
        for col in 0..n {
            b.swap(col, self.pivots[col]);
        }
        // forward substitution (unit lower triangle); row-major dot
        // products over slices so the reductions vectorize
        for row in 1..n {
            let lu_row = &self.lu[row * n..row * n + row];
            let mut acc = b[row];
            for (&l, &x) in lu_row.iter().zip(b.iter()) {
                acc -= l * x;
            }
            b[row] = acc;
        }
        // back substitution
        for row in (0..n).rev() {
            let lu_row = &self.lu[row * n + row + 1..(row + 1) * n];
            let mut acc = b[row];
            for (&l, &x) in lu_row.iter().zip(b[row + 1..].iter()) {
                acc -= l * x;
            }
            b[row] = acc / self.lu[row * n + row];
        }
    }

    /// Releases the factor and pivot storage for reuse as scratch.
    pub(crate) fn into_buffers(self) -> (Vec<f64>, Vec<usize>) {
        (self.lu, self.pivots)
    }
}

/// Greedy minimum-degree ordering of the symmetrized pattern: repeatedly
/// eliminate the vertex with the fewest remaining neighbors, connecting
/// its neighborhood into a clique (the fill that elimination would
/// create). The sequential networks here contain hub species — the clock
/// phases couple to almost every reaction — whose early elimination fills
/// the matrix almost completely (66% on the 2-bit counter, vs 7.5%
/// structural); deferring them keeps the factors sparse. Quadratic-ish
/// and dense-matrix naive, but it runs once per workspace and `n` stays
/// in the low hundreds.
fn min_degree_order(n: usize, pat: &[bool]) -> Vec<usize> {
    let mut adj = vec![false; n * n];
    for i in 0..n {
        for j in 0..n {
            if i != j && (pat[i * n + j] || pat[j * n + i]) {
                adj[i * n + j] = true;
                adj[j * n + i] = true;
            }
        }
    }
    let mut eliminated = vec![false; n];
    let mut perm = Vec::with_capacity(n);
    for _ in 0..n {
        let (mut best, mut best_deg) = (usize::MAX, usize::MAX);
        for v in 0..n {
            if eliminated[v] {
                continue;
            }
            let deg = (0..n).filter(|&u| !eliminated[u] && adj[v * n + u]).count();
            if deg < best_deg {
                best_deg = deg;
                best = v;
            }
        }
        eliminated[best] = true;
        let nbrs: Vec<usize> = (0..n)
            .filter(|&u| !eliminated[u] && adj[best * n + u])
            .collect();
        for (k, &u) in nbrs.iter().enumerate() {
            for &v in &nbrs[k + 1..] {
                adj[u * n + v] = true;
                adj[v * n + u] = true;
            }
        }
        perm.push(best);
    }
    perm
}

/// One-time symbolic factorization of `W = I − h·d·J`: a fill-reducing
/// (minimum-degree) symmetric permutation of the Jacobian pattern plus
/// the diagonal, closed under the fill-in of Gaussian elimination in the
/// permuted order. The numeric factorization and the triangular solves
/// iterate over these index lists instead of scanning dense rows, so
/// their cost scales with structural nonzeros, not with `n²`/`n³`.
pub(crate) struct Symbolic {
    n: usize,
    /// Copy of the source Jacobian pattern — the compatibility key that
    /// decides whether a recycled workspace still matches a network.
    src_row_ptr: Vec<usize>,
    src_col_idx: Vec<usize>,
    /// `perm[k]` = the original index eliminated at step `k`; `pinv` is
    /// its inverse. The factored matrix is `W' = P·W·Pᵀ`, i.e.
    /// `W'[k, l] = W[perm[k], perm[l]]`.
    perm: Vec<usize>,
    pinv: Vec<usize>,
    /// For each pivot column `k`: rows `i > k` with a (filled) nonzero at
    /// `(i, k)` — the L column pattern driving the elimination.
    below_ptr: Vec<usize>,
    below_idx: Vec<usize>,
    /// For each row `k`: columns `j > k` with a (filled) nonzero — the U
    /// row pattern, shared by the update loop and back substitution.
    right_ptr: Vec<usize>,
    right_idx: Vec<usize>,
    /// For each row `i`: columns `j < i` with a (filled) nonzero — the L
    /// row pattern, used in forward substitution.
    lrow_ptr: Vec<usize>,
    lrow_idx: Vec<usize>,
    /// Permuted dense positions inside the elimination structure that the
    /// assemble scatter does not write (fill-in slots plus pattern-absent
    /// diagonals). The unmasked assemble zeroes exactly these instead of
    /// wiping all `n²` entries — everything the factorization and the
    /// solves read is either scattered or on this list.
    fill_idx: Vec<usize>,
}

impl Symbolic {
    pub(crate) fn new(compiled: &CompiledCrn) -> Self {
        let n = compiled.species_count();
        let (row_ptr, col_idx) = compiled.jacobian_pattern();
        let mut src = vec![false; n * n];
        for i in 0..n {
            src[i * n + i] = true;
            for s in row_ptr[i]..row_ptr[i + 1] {
                src[i * n + col_idx[s]] = true;
            }
        }
        let perm = min_degree_order(n, &src);
        let mut pinv = vec![0usize; n];
        for (k, &v) in perm.iter().enumerate() {
            pinv[v] = k;
        }
        // the pattern of W' = P·W·Pᵀ
        let mut pat = vec![false; n * n];
        for i in 0..n {
            for j in 0..n {
                if src[i * n + j] {
                    pat[pinv[i] * n + pinv[j]] = true;
                }
            }
        }
        // Fill-in: eliminating column k against pivot row k creates a
        // nonzero at (i, j) whenever (i, k) and (k, j) are nonzero. One
        // boolean Gaussian elimination, run once per workspace.
        for k in 0..n {
            let (top, below) = pat.split_at_mut((k + 1) * n);
            let pivot_tail = &top[k * n + k + 1..];
            for row in below.chunks_exact_mut(n) {
                if row[k] {
                    for (x, &p) in row[k + 1..].iter_mut().zip(pivot_tail) {
                        *x |= p;
                    }
                }
            }
        }
        let mut written = vec![false; n * n];
        for i in 0..n {
            for s in row_ptr[i]..row_ptr[i + 1] {
                written[pinv[i] * n + pinv[col_idx[s]]] = true;
            }
        }
        let fill_idx: Vec<usize> = (0..n * n).filter(|&p| pat[p] && !written[p]).collect();
        let mut sym = Symbolic {
            n,
            src_row_ptr: row_ptr.to_vec(),
            src_col_idx: col_idx.to_vec(),
            perm,
            pinv,
            below_ptr: Vec::with_capacity(n + 1),
            below_idx: Vec::new(),
            right_ptr: Vec::with_capacity(n + 1),
            right_idx: Vec::new(),
            lrow_ptr: Vec::with_capacity(n + 1),
            lrow_idx: Vec::new(),
            fill_idx,
        };
        sym.below_ptr.push(0);
        sym.right_ptr.push(0);
        sym.lrow_ptr.push(0);
        for k in 0..n {
            for i in (k + 1)..n {
                if pat[i * n + k] {
                    sym.below_idx.push(i);
                }
            }
            sym.below_ptr.push(sym.below_idx.len());
            for j in (k + 1)..n {
                if pat[k * n + j] {
                    sym.right_idx.push(j);
                }
            }
            sym.right_ptr.push(sym.right_idx.len());
            for j in 0..k {
                if pat[k * n + j] {
                    sym.lrow_idx.push(j);
                }
            }
            sym.lrow_ptr.push(sym.lrow_idx.len());
        }
        sym
    }

    /// Whether this symbolic analysis was built for exactly `compiled`'s
    /// Jacobian pattern (species count included).
    pub(crate) fn matches(&self, compiled: &CompiledCrn) -> bool {
        let (row_ptr, col_idx) = compiled.jacobian_pattern();
        self.n == compiled.species_count()
            && self.src_row_ptr.as_slice() == row_ptr
            && self.src_col_idx.as_slice() == col_idx
    }

    /// Scatters `W' = P·(I − h·d·J)·Pᵀ` over the permuted Jacobian
    /// pattern into the dense scratch matrix `w` (`hd = h·D`).
    pub(crate) fn assemble(
        &self,
        compiled: &CompiledCrn,
        jac_vals: &[f64],
        hd: f64,
        w: &mut [f64],
    ) {
        let n = self.n;
        w.fill(0.0);
        let (row_ptr, col_idx) = compiled.jacobian_pattern();
        for i in 0..n {
            let base = self.pinv[i] * n;
            for s in row_ptr[i]..row_ptr[i + 1] {
                w[base + self.pinv[col_idx[s]]] = -hd * jac_vals[s];
            }
            w[base + self.pinv[i]] += 1.0;
        }
    }

    /// No-pivot numeric LU of `a` (dense row-major storage, zero outside
    /// the unfilled pattern) over the precomputed structure. On success
    /// the unit-lower L and U overwrite `a` in place. Returns `false` —
    /// leaving `a` partially eliminated — when a pivot vanishes or a
    /// multiplier exceeds [`MULTIPLIER_GUARD`]; the caller then rebuilds
    /// `W` and falls back to the pivoted dense [`Lu`].
    // The negated comparisons are deliberate: they send NaN pivots and
    // multipliers down the bail-out path too.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub(crate) fn factor(&self, a: &mut [f64]) -> bool {
        let n = self.n;
        for k in 0..n {
            let piv = a[k * n + k];
            if !(piv.abs() > 1e-300) {
                return false;
            }
            let inv = 1.0 / piv;
            let right = &self.right_idx[self.right_ptr[k]..self.right_ptr[k + 1]];
            for &i in &self.below_idx[self.below_ptr[k]..self.below_ptr[k + 1]] {
                let m = a[i * n + k] * inv;
                if !(m.abs() <= MULTIPLIER_GUARD) {
                    return false;
                }
                a[i * n + k] = m;
                if m != 0.0 {
                    for &j in right {
                        a[i * n + j] -= m * a[k * n + j];
                    }
                }
            }
        }
        true
    }

    /// Solves `W·x = b` in place against a factor produced by
    /// [`Symbolic::factor`], visiting only structural nonzeros. `b` is in
    /// original species order; `scratch` (length `n`) holds the permuted
    /// right-hand side while the triangular solves run.
    pub(crate) fn solve(&self, a: &[f64], b: &mut [f64], scratch: &mut [f64]) {
        let n = self.n;
        // W'·(P·x) = P·b
        for k in 0..n {
            scratch[k] = b[self.perm[k]];
        }
        // forward substitution (unit lower triangle)
        for i in 1..n {
            let mut acc = scratch[i];
            for &j in &self.lrow_idx[self.lrow_ptr[i]..self.lrow_ptr[i + 1]] {
                acc -= a[i * n + j] * scratch[j];
            }
            scratch[i] = acc;
        }
        // back substitution
        for i in (0..n).rev() {
            let mut acc = scratch[i];
            for &j in &self.right_idx[self.right_ptr[i]..self.right_ptr[i + 1]] {
                acc -= a[i * n + j] * scratch[j];
            }
            scratch[i] = acc / a[i * n + i];
        }
        for k in 0..n {
            b[self.perm[k]] = scratch[k];
        }
    }

    /// Multi-lane [`assemble`](Self::assemble): `jac_vals` holds `width`
    /// lanes of Jacobian nonzeros (slot-major, lane-contiguous), `hd` the
    /// per-lane `h·D`, and `w` the `n×n×width` matrix block (entry-major,
    /// lane-contiguous). Only lanes with `need[l]` set are written; the
    /// others keep their cached factor bits untouched. When the caller
    /// can prove no lane's cached bits will ever be read again (`all` —
    /// every lane is either needed now or retired) the per-lane selects
    /// collapse to plain full-width writes; needed lanes receive
    /// bit-identical values either way.
    pub(crate) fn assemble_batch(
        &self,
        compiled: &CompiledCrn,
        jac_vals: &[f64],
        hd: &[f64],
        need: &[bool],
        all: bool,
        w: &mut [f64],
    ) {
        // monomorphize the hot widths so the lane loops unroll and
        // vectorize with a compile-time trip count (WDC = 0 keeps one
        // dynamic-width body for everything else)
        match hd.len() {
            2 => self.assemble_batch_impl::<2>(compiled, jac_vals, hd, need, all, w),
            4 => self.assemble_batch_impl::<4>(compiled, jac_vals, hd, need, all, w),
            8 => self.assemble_batch_impl::<8>(compiled, jac_vals, hd, need, all, w),
            16 => self.assemble_batch_impl::<16>(compiled, jac_vals, hd, need, all, w),
            32 => self.assemble_batch_impl::<32>(compiled, jac_vals, hd, need, all, w),
            _ => self.assemble_batch_impl::<0>(compiled, jac_vals, hd, need, all, w),
        }
    }

    #[inline(always)]
    fn assemble_batch_impl<const WDC: usize>(
        &self,
        compiled: &CompiledCrn,
        jac_vals: &[f64],
        hd: &[f64],
        need: &[bool],
        all: bool,
        w: &mut [f64],
    ) {
        let n = self.n;
        let wd = if WDC == 0 { hd.len() } else { WDC };
        debug_assert_eq!(hd.len(), wd);
        debug_assert_eq!(need.len(), wd);
        debug_assert_eq!(w.len(), n * n * wd);
        if all {
            // only the slots the factorization/solves read and the
            // scatter below does not overwrite need zeroing; everything
            // outside the elimination structure is never read
            for &p in &self.fill_idx {
                w[p * wd..(p + 1) * wd].fill(0.0);
            }
        } else {
            for chunk in w.chunks_exact_mut(wd) {
                for (x, &nd) in chunk.iter_mut().zip(need) {
                    *x = if nd { 0.0 } else { *x };
                }
            }
        }
        let (row_ptr, col_idx) = compiled.jacobian_pattern();
        for i in 0..n {
            let base = self.pinv[i] * n;
            for s in row_ptr[i]..row_ptr[i + 1] {
                let dst = (base + self.pinv[col_idx[s]]) * wd;
                let vals = &jac_vals[s * wd..(s + 1) * wd];
                let out = &mut w[dst..dst + wd];
                if all {
                    for ((x, &v), &h) in out.iter_mut().zip(vals).zip(hd) {
                        *x = -h * v;
                    }
                } else {
                    for ((x, &v), (&h, &nd)) in out.iter_mut().zip(vals).zip(hd.iter().zip(need)) {
                        *x = if nd { -h * v } else { *x };
                    }
                }
            }
            let dst = (base + self.pinv[i]) * wd;
            let out = &mut w[dst..dst + wd];
            if all {
                for x in out.iter_mut() {
                    *x += 1.0;
                }
            } else {
                for (x, &nd) in out.iter_mut().zip(need) {
                    *x = if nd { *x + 1.0 } else { *x };
                }
            }
        }
    }

    /// Multi-lane [`factor`](Self::factor): one pass over the elimination
    /// structure factors every lane with `need[l]` set, in exactly the
    /// scalar operation order per lane. Instead of bailing out, a lane
    /// whose pivot vanishes or whose multiplier trips the guard has its
    /// `ok[l]` cleared (sticky) and keeps computing — the garbage stays in
    /// that lane and the caller routes it to the dense fallback, exactly
    /// as the scalar path does after `factor` returns `false`. Lanes
    /// without `need[l]` keep their cached factor bits untouched.
    /// `inv`/`m`/`upd` are `width`-long scratch buffers.
    // Negated comparisons deliberately classify NaN as failed, as in the
    // scalar `factor`.
    #[allow(clippy::neg_cmp_op_on_partial_ord, clippy::too_many_arguments)]
    pub(crate) fn factor_batch(
        &self,
        a: &mut [f64],
        need: &[bool],
        ok: &mut [bool],
        inv: &mut [f64],
        m: &mut [f64],
        upd: &mut [bool],
        all: bool,
    ) {
        match need.len() {
            2 => self.factor_batch_impl::<2>(a, need, ok, inv, m, upd, all),
            4 => self.factor_batch_impl::<4>(a, need, ok, inv, m, upd, all),
            8 => self.factor_batch_impl::<8>(a, need, ok, inv, m, upd, all),
            16 => self.factor_batch_impl::<16>(a, need, ok, inv, m, upd, all),
            32 => self.factor_batch_impl::<32>(a, need, ok, inv, m, upd, all),
            _ => self.factor_batch_impl::<0>(a, need, ok, inv, m, upd, all),
        }
    }

    /// `all` — every lane is either needed or retired, so keep-old-bits
    /// selects can become plain writes (retired lanes receive garbage
    /// nobody reads; needed lanes get bit-identical values).
    #[allow(clippy::neg_cmp_op_on_partial_ord, clippy::too_many_arguments)]
    #[inline(always)]
    fn factor_batch_impl<const WDC: usize>(
        &self,
        a: &mut [f64],
        need: &[bool],
        ok: &mut [bool],
        inv: &mut [f64],
        m: &mut [f64],
        upd: &mut [bool],
        all: bool,
    ) {
        let n = self.n;
        let wd = if WDC == 0 { need.len() } else { WDC };
        debug_assert_eq!(need.len(), wd);
        debug_assert_eq!(a.len(), n * n * wd);
        for (o, &nd) in ok.iter_mut().zip(need) {
            *o = nd;
        }
        for k in 0..n {
            let kk = (k * n + k) * wd;
            {
                let diag = &a[kk..kk + wd];
                if all {
                    // `ok` starts as `need`, so retired lanes stay false
                    // without re-reading the mask
                    for ((iv, o), &piv) in inv.iter_mut().zip(ok.iter_mut()).zip(diag) {
                        if *o && !(piv.abs() > 1e-300) {
                            *o = false;
                        }
                        *iv = 1.0 / piv;
                    }
                } else {
                    for (((iv, o), &nd), &piv) in
                        inv.iter_mut().zip(ok.iter_mut()).zip(need).zip(diag)
                    {
                        if nd && *o && !(piv.abs() > 1e-300) {
                            *o = false;
                        }
                        *iv = 1.0 / piv;
                    }
                }
            }
            let right = &self.right_idx[self.right_ptr[k]..self.right_ptr[k + 1]];
            for &i in &self.below_idx[self.below_ptr[k]..self.below_ptr[k + 1]] {
                let ik = (i * n + k) * wd;
                {
                    let col = &mut a[ik..ik + wd];
                    if all {
                        for l in 0..wd {
                            let mm = col[l] * inv[l];
                            if ok[l] && !(mm.abs() <= MULTIPLIER_GUARD) {
                                ok[l] = false;
                            }
                            col[l] = mm;
                            m[l] = mm;
                            upd[l] = mm != 0.0;
                        }
                    } else {
                        for l in 0..wd {
                            let mm = col[l] * inv[l];
                            if need[l] && ok[l] && !(mm.abs() <= MULTIPLIER_GUARD) {
                                ok[l] = false;
                            }
                            col[l] = if need[l] { mm } else { col[l] };
                            m[l] = mm;
                            upd[l] = need[l] && mm != 0.0;
                        }
                    }
                }
                // the row update is the O(fill²) kernel; when no lane has a
                // nonzero multiplier every write below would keep its old
                // bits, so the whole sweep is a no-op — skip it, exactly as
                // the scalar factor's `m != 0` branch does per cell
                if !upd.iter().any(|&up| up) {
                    continue;
                }
                for &j in right {
                    let kj = (k * n + j) * wd;
                    let ij = (i * n + j) * wd;
                    // i > k, so the pivot-row read and the target-row
                    // write never alias
                    let (head, tail) = a.split_at_mut(ij);
                    let src = &head[kj..kj + wd];
                    let dst = &mut tail[..wd];
                    // the per-lane select stays even in the `all` path:
                    // the scalar factor skips m == 0 row updates, and
                    // `x - 0·s` is not a bitwise no-op (−0.0, inf·0)
                    for (((x, &s), &mm), &up) in
                        dst.iter_mut().zip(src).zip(m.iter()).zip(upd.iter())
                    {
                        let nv = *x - mm * s;
                        *x = if up { nv } else { *x };
                    }
                }
            }
        }
    }

    /// Multi-lane [`solve`](Self::solve) against a factor from
    /// [`factor_batch`](Self::factor_batch): `b` and `scratch` hold
    /// `width` right-hand sides (species-major, lane-contiguous). The
    /// triangular sweeps run full-width — per lane in the scalar
    /// operation order — and the final scatter writes back only lanes
    /// with `write[l]` set, so lanes solved elsewhere (dense fallback,
    /// retired) keep their `b` bits.
    pub(crate) fn solve_batch(
        &self,
        a: &[f64],
        b: &mut [f64],
        scratch: &mut [f64],
        write: &[bool],
        all: bool,
    ) {
        match write.len() {
            2 => self.solve_batch_impl::<2>(a, b, scratch, write, all),
            4 => self.solve_batch_impl::<4>(a, b, scratch, write, all),
            8 => self.solve_batch_impl::<8>(a, b, scratch, write, all),
            16 => self.solve_batch_impl::<16>(a, b, scratch, write, all),
            32 => self.solve_batch_impl::<32>(a, b, scratch, write, all),
            _ => self.solve_batch_impl::<0>(a, b, scratch, write, all),
        }
    }

    /// `all` — every lane is either written back or retired, so the final
    /// scatter is a plain copy (retired lanes receive garbage nobody
    /// reads; written lanes get bit-identical values).
    #[inline(always)]
    fn solve_batch_impl<const WDC: usize>(
        &self,
        a: &[f64],
        b: &mut [f64],
        scratch: &mut [f64],
        write: &[bool],
        all: bool,
    ) {
        let n = self.n;
        let wd = if WDC == 0 { write.len() } else { WDC };
        debug_assert_eq!(write.len(), wd);
        debug_assert_eq!(a.len(), n * n * wd);
        debug_assert_eq!(b.len(), n * wd);
        debug_assert_eq!(scratch.len(), n * wd);
        for k in 0..n {
            let src = self.perm[k] * wd;
            scratch[k * wd..(k + 1) * wd].copy_from_slice(&b[src..src + wd]);
        }
        // forward substitution (unit lower triangle)
        for i in 1..n {
            let (lo, hi) = scratch.split_at_mut(i * wd);
            let row = &mut hi[..wd];
            for &j in &self.lrow_idx[self.lrow_ptr[i]..self.lrow_ptr[i + 1]] {
                let av = &a[(i * n + j) * wd..(i * n + j + 1) * wd];
                let sv = &lo[j * wd..(j + 1) * wd];
                for ((x, &am), &sm) in row.iter_mut().zip(av).zip(sv) {
                    *x -= am * sm;
                }
            }
        }
        // back substitution
        for i in (0..n).rev() {
            let (lo, hi) = scratch.split_at_mut((i + 1) * wd);
            let row = &mut lo[i * wd..];
            for &j in &self.right_idx[self.right_ptr[i]..self.right_ptr[i + 1]] {
                let av = &a[(i * n + j) * wd..(i * n + j + 1) * wd];
                let sv = &hi[(j - i - 1) * wd..(j - i) * wd];
                for ((x, &am), &sm) in row.iter_mut().zip(av).zip(sv) {
                    *x -= am * sm;
                }
            }
            let diag = &a[(i * n + i) * wd..(i * n + i + 1) * wd];
            for (x, &dv) in row.iter_mut().zip(diag) {
                *x /= dv;
            }
        }
        for k in 0..n {
            let dst = self.perm[k] * wd;
            let out = &mut b[dst..dst + wd];
            let sv = &scratch[k * wd..(k + 1) * wd];
            if all {
                out.copy_from_slice(sv);
            } else {
                for ((x, &s), &wr) in out.iter_mut().zip(sv).zip(write) {
                    *x = if wr { s } else { *x };
                }
            }
        }
    }
}

/// A factored `W`, ready to back the three stage solves of a step (also
/// reused by the implicit tau-leaper's Newton solves, whose matrix
/// `I − τ·ν·(∂a/∂x)` shares the Jacobian pattern).
pub(crate) enum Factored {
    /// No-pivot LU over the symbolic pattern; values in dense storage.
    Sparse(Vec<f64>),
    /// Pivoted dense LU — the fallback when the stability guard trips.
    Dense(Lu),
}

impl Factored {
    pub(crate) fn solve(&self, sym: &Symbolic, b: &mut [f64], scratch: &mut [f64]) {
        match self {
            Factored::Sparse(a) => sym.solve(a, b, scratch),
            Factored::Dense(lu) => lu.solve(b),
        }
    }
}

/// Scatters `W = I − h·d·J` over the Jacobian pattern into the dense
/// scratch matrix `w` (`hd = h·D`), in original (unpermuted) species
/// order — the layout the pivoted dense fallback factors.
pub(crate) fn assemble_w(compiled: &CompiledCrn, jac_vals: &[f64], hd: f64, w: &mut [f64]) {
    let n = compiled.species_count();
    w.fill(0.0);
    let (row_ptr, col_idx) = compiled.jacobian_pattern();
    for i in 0..n {
        let base = i * n;
        for s in row_ptr[i]..row_ptr[i + 1] {
            w[base + col_idx[s]] = -hd * jac_vals[s];
        }
        w[base + i] += 1.0;
    }
}

/// Reusable buffers and cached factorization state for Rosenbrock
/// stepping. Survives across steps, segments and — via
/// [`OdeWorkspace`](crate::OdeWorkspace) — across whole simulation calls;
/// no per-step allocation happens once constructed.
pub(crate) struct RosenbrockWork {
    n: usize,
    /// Elimination structure of `W`'s fixed sparsity pattern.
    sym: Symbolic,
    /// Jacobian nonzeros aligned with the compiled CSR pattern.
    jac_vals: Vec<f64>,
    /// True when `jac_vals` holds an evaluation the reuse policy still
    /// accepts (fresh at some accepted state, aged `jac_age` steps).
    jac_fresh: bool,
    /// Accepted steps since `jac_vals` was evaluated.
    jac_age: usize,
    /// Cached factorization of `W = I − h·d·J` for `lu_h` and the current
    /// `jac_vals`; `None` when it must be rebuilt.
    lu: Option<Factored>,
    lu_h: f64,
    /// The `n×n` scratch matrix when `lu` does not own it.
    w_spare: Vec<f64>,
    /// The pivot permutation buffer when no `Factored::Dense` owns it.
    pivots_spare: Vec<usize>,
    f0: Vec<f64>,
    f1: Vec<f64>,
    f2: Vec<f64>,
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    ytmp: Vec<f64>,
    /// Permuted right-hand side scratch for the sparse triangular solves.
    bperm: Vec<f64>,
    /// Completed numeric factorizations of `W` over the workspace's
    /// lifetime (sparse and pivoted-dense both count; a guard-tripped
    /// sparse attempt that falls back to dense counts once).
    factorizations: u64,
    /// The advanced solution of the trial step.
    pub y_new: Vec<f64>,
    /// Per-component error estimate of the trial step.
    pub err: Vec<f64>,
}

impl RosenbrockWork {
    pub(crate) fn new(compiled: &CompiledCrn) -> Self {
        let n = compiled.species_count();
        let nnz = compiled.jacobian_nnz();
        RosenbrockWork {
            n,
            sym: Symbolic::new(compiled),
            jac_vals: vec![0.0; nnz],
            jac_fresh: false,
            jac_age: 0,
            lu: None,
            lu_h: f64::NAN,
            w_spare: vec![0.0; n * n],
            pivots_spare: vec![0usize; n],
            f0: vec![0.0; n],
            f1: vec![0.0; n],
            f2: vec![0.0; n],
            k1: vec![0.0; n],
            k2: vec![0.0; n],
            k3: vec![0.0; n],
            ytmp: vec![0.0; n],
            bperm: vec![0.0; n],
            factorizations: 0,
            y_new: vec![0.0; n],
            err: vec![0.0; n],
        }
    }

    /// Cumulative completed numeric factorizations (monotone over the
    /// workspace's lifetime; callers snapshot-and-subtract to attribute
    /// them to one simulation call).
    pub(crate) fn factorizations(&self) -> u64 {
        self.factorizations
    }

    /// Whether this workspace (buffer sizes *and* symbolic elimination
    /// structure) was built for `compiled` — the compatibility key for
    /// workspace reuse across simulation calls.
    pub(crate) fn matches(&self, compiled: &CompiledCrn) -> bool {
        self.jac_vals.len() == compiled.jacobian_nnz() && self.sym.matches(compiled)
    }

    /// Forgets the cached Jacobian and factorization. Call when the state
    /// changes discontinuously (injections, trigger firings) or when the
    /// workspace is recycled for a new simulation: the next step then
    /// behaves exactly like the first step of a fresh workspace.
    pub(crate) fn invalidate(&mut self) {
        self.jac_fresh = false;
        self.jac_age = 0;
    }

    /// Bookkeeping after an accepted step: the cached Jacobian is now one
    /// state older.
    pub(crate) fn on_accept(&mut self) {
        self.jac_age += 1;
    }

    /// Bookkeeping after a rejected step: a Jacobian evaluated at the
    /// current state is still exact (only `h` was wrong), but an *aged*
    /// one is suspect — the staleness may be what caused the rejection —
    /// so force a refresh before the retry.
    pub(crate) fn on_reject(&mut self) {
        if self.jac_age > 0 {
            self.jac_fresh = false;
        }
    }

    /// Recovers the `n×n` scratch matrix and pivot buffer from wherever
    /// they currently live.
    fn take_w(&mut self) -> (Vec<f64>, Vec<usize>) {
        match self.lu.take() {
            Some(Factored::Sparse(a)) => (a, std::mem::take(&mut self.pivots_spare)),
            Some(Factored::Dense(lu)) => lu.into_buffers(),
            None => (
                std::mem::take(&mut self.w_spare),
                std::mem::take(&mut self.pivots_spare),
            ),
        }
    }

    /// One ode23s trial step of size `h` from `y`. Fills `y_new` and
    /// `err`; returns `false` when the linear system is singular (caller
    /// should shrink the step).
    ///
    /// The Jacobian is re-evaluated only when the cache is invalid or has
    /// aged past `max_age` accepted steps (`max_age == 0` reproduces the
    /// evaluate-every-step behavior exactly). The LU factorization is
    /// additionally reused when `h` is bit-identical to the cached one —
    /// which it is whenever the controller pins `h` at `h_max`.
    pub(crate) fn step(
        &mut self,
        compiled: &CompiledCrn,
        y: &[f64],
        h: f64,
        max_age: usize,
    ) -> bool {
        let n = self.n;
        if !self.jac_fresh || self.jac_age > max_age {
            compiled.jacobian_sparse(y, &mut self.jac_vals);
            self.jac_fresh = true;
            self.jac_age = 0;
            // any cached factorization was built from the old values
            match self.lu.take() {
                Some(Factored::Sparse(a)) => self.w_spare = a,
                Some(Factored::Dense(lu)) => {
                    (self.w_spare, self.pivots_spare) = lu.into_buffers();
                }
                None => {}
            }
        }
        if self.lu.is_none() || self.lu_h != h {
            let (mut w, pivots) = self.take_w();
            let hd = h * D;
            self.sym.assemble(compiled, &self.jac_vals, hd, &mut w);
            if self.sym.factor(&mut w) {
                self.lu = Some(Factored::Sparse(w));
                self.pivots_spare = pivots;
                self.lu_h = h;
                self.factorizations += 1;
            } else {
                // the guard tripped mid-elimination and clobbered `w`:
                // rebuild it — unpermuted this time — and fall back to
                // the pivoted factorization
                assemble_w(compiled, &self.jac_vals, hd, &mut w);
                match Lu::factor(w, pivots, n) {
                    Ok(lu) => {
                        self.lu = Some(Factored::Dense(lu));
                        self.lu_h = h;
                        self.factorizations += 1;
                    }
                    Err((buf, pivots)) => {
                        self.w_spare = buf;
                        self.pivots_spare = pivots;
                        // retry from an exact Jacobian at the smaller step
                        self.jac_fresh = false;
                        return false;
                    }
                }
            }
        }
        let lu = self.lu.take().expect("factored above");

        compiled.derivative(y, &mut self.f0);
        self.k1.copy_from_slice(&self.f0);
        lu.solve(&self.sym, &mut self.k1, &mut self.bperm);

        for i in 0..n {
            self.ytmp[i] = y[i] + 0.5 * h * self.k1[i];
        }
        compiled.derivative(&self.ytmp, &mut self.f1);
        for i in 0..n {
            self.k2[i] = self.f1[i] - self.k1[i];
        }
        lu.solve(&self.sym, &mut self.k2, &mut self.bperm);
        for i in 0..n {
            self.k2[i] += self.k1[i];
        }

        for i in 0..n {
            self.y_new[i] = y[i] + h * self.k2[i];
        }
        compiled.derivative(&self.y_new, &mut self.f2);
        for i in 0..n {
            self.k3[i] =
                self.f2[i] - C32 * (self.k2[i] - self.f1[i]) - 2.0 * (self.k1[i] - self.f0[i]);
        }
        lu.solve(&self.sym, &mut self.k3, &mut self.bperm);

        for i in 0..n {
            self.err[i] = h / 6.0 * (self.k1[i] - 2.0 * self.k2[i] + self.k3[i]);
        }
        // keep the factorization for possible reuse at the same h
        self.lu = Some(lu);
        true
    }

    /// Max over components of `|err| / (atol + rtol·max(|y|, |y_new|))`.
    pub(crate) fn error_ratio(&self, y: &[f64], rtol: f64, atol: f64) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..self.n {
            let scale = atol + rtol * y[i].abs().max(self.y_new[i].abs());
            worst = worst.max(self.err[i].abs() / scale);
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimSpec, State};
    use molseq_crn::{Crn, Rate};

    #[test]
    fn lu_solves_a_known_system() {
        // A = [[2, 1], [1, 3]], b = [5, 10] → x = [1, 3]
        let a = vec![2.0, 1.0, 1.0, 3.0];
        let lu = Lu::factor(a, Vec::new(), 2).unwrap_or_else(|_| panic!("nonsingular"));
        let mut b = vec![5.0, 10.0];
        lu.solve(&mut b);
        assert!((b[0] - 1.0).abs() < 1e-12);
        assert!((b[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn lu_needs_pivoting() {
        // zero on the diagonal forces a row swap
        let a = vec![0.0, 1.0, 1.0, 0.0];
        let lu =
            Lu::factor(a, Vec::new(), 2).unwrap_or_else(|_| panic!("nonsingular with pivoting"));
        let mut b = vec![2.0, 3.0];
        lu.solve(&mut b);
        assert!((b[0] - 3.0).abs() < 1e-12);
        assert!((b[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lu_detects_singular_and_returns_the_buffer() {
        let a = vec![1.0, 2.0, 2.0, 4.0];
        let (buf, pivots) = Lu::factor(a, Vec::new(), 2).err().expect("singular");
        assert_eq!(buf.len(), 4);
        assert_eq!(pivots.len(), 2);
    }

    /// A star network whose hub species couples to every leaf: eliminating
    /// the hub column fills the whole trailing block, so this exercises
    /// the fill-in computation, not just the original pattern.
    fn star_crn(leaves: usize) -> Crn {
        let mut crn = Crn::new();
        let hub = crn.species("hub");
        let leaf: Vec<_> = (0..leaves)
            .map(|i| crn.species(format!("leaf{i}")))
            .collect();
        for (i, &l) in leaf.iter().enumerate() {
            let next = leaf[(i + 1) % leaves];
            crn.reaction(&[(hub, 1), (l, 1)], &[(next, 1)], Rate::Slow)
                .expect("reaction");
            crn.reaction(&[(l, 1)], &[(hub, 1)], Rate::Fast)
                .expect("reaction");
        }
        crn
    }

    #[test]
    fn sparse_factor_matches_pivoted_dense() {
        let crn = star_crn(5);
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let n = compiled.species_count();
        let sym = Symbolic::new(&compiled);

        let x: Vec<f64> = (0..n).map(|i| 1.5 + i as f64).collect();
        let mut jac_vals = vec![0.0; compiled.jacobian_nnz()];
        compiled.jacobian_sparse(&x, &mut jac_vals);
        // the sparse path factors the permuted W, the dense reference the
        // unpermuted one; both solve the same original-order system
        let mut wp = vec![0.0; n * n];
        sym.assemble(&compiled, &jac_vals, 1e-4 * D, &mut wp);
        let mut wd = vec![0.0; n * n];
        assemble_w(&compiled, &jac_vals, 1e-4 * D, &mut wd);

        let dense = Lu::factor(wd, Vec::new(), n).unwrap_or_else(|_| panic!("nonsingular"));
        assert!(sym.factor(&mut wp), "guard must not trip on a tame W");

        let b0: Vec<f64> = (0..n).map(|i| (i as f64) - 2.0).collect();
        let mut bs = b0.clone();
        let mut bd = b0.clone();
        let mut scratch = vec![0.0; n];
        sym.solve(&wp, &mut bs, &mut scratch);
        dense.solve(&mut bd);
        for (s, d) in bs.iter().zip(&bd) {
            assert!((s - d).abs() <= 1e-12 * d.abs().max(1.0), "{s} vs {d}");
        }
    }

    /// A fully dense 2×2 structure with the identity ordering, so the
    /// test controls exactly which entry becomes the first pivot.
    fn dense_2x2_symbolic() -> Symbolic {
        Symbolic {
            n: 2,
            src_row_ptr: vec![0, 2, 4],
            src_col_idx: vec![0, 1, 0, 1],
            perm: vec![0, 1],
            pinv: vec![0, 1],
            below_ptr: vec![0, 1, 1],
            below_idx: vec![1],
            right_ptr: vec![0, 1, 1],
            right_idx: vec![1],
            lrow_ptr: vec![0, 0, 1],
            lrow_idx: vec![0],
            // fully dense source pattern: the scatter writes every slot
            fill_idx: vec![],
        }
    }

    #[test]
    fn sparse_factor_guard_rejects_unstable_elimination() {
        // a tiny leading pivot makes the multiplier blow past the guard
        // without pivoting, while a row swap keeps the matrix perfectly
        // well-conditioned for the pivoted backend
        let sym = dense_2x2_symbolic();
        let w = vec![1e-9, 1.0, 1.0, 1.0];
        assert!(!sym.factor(&mut w.clone()), "guard must trip");
        assert!(Lu::factor(w, Vec::new(), 2).is_ok());
        // an exactly singular leading pivot is rejected too
        let mut singular = vec![0.0, 1.0, 1.0, 1.0];
        assert!(!sym.factor(&mut singular));
    }

    #[test]
    fn symbolic_matches_is_pattern_exact() {
        let a = CompiledCrn::new(&star_crn(4), &SimSpec::default());
        let b = CompiledCrn::new(&star_crn(5), &SimSpec::default());
        let sym = Symbolic::new(&a);
        assert!(sym.matches(&a));
        assert!(!sym.matches(&b));
    }

    #[test]
    fn rosenbrock_step_matches_decay() {
        let crn: Crn = "X -> 0 @slow".parse().unwrap();
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let mut work = RosenbrockWork::new(&compiled);
        let y = State::from_vec(vec![1.0]);
        assert!(work.step(&compiled, y.as_slice(), 0.01, 0));
        // exp(-0.01) ≈ 0.99004983…; a 2nd-order step is close
        assert!((work.y_new[0] - (-0.01f64).exp()).abs() < 1e-7);
        assert!(work.error_ratio(y.as_slice(), 1e-6, 1e-9) < 100.0);
    }

    #[test]
    fn reused_jacobian_matches_fresh_on_linear_system() {
        // For a linear network J is constant, so reuse is *exact*: the
        // second step must agree bit-for-bit whether or not the Jacobian
        // is re-evaluated.
        let crn: Crn = "X -> 0 @slow".parse().unwrap();
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());

        let mut fresh = RosenbrockWork::new(&compiled);
        let mut reused = RosenbrockWork::new(&compiled);
        let y0 = [1.0];
        assert!(fresh.step(&compiled, &y0, 0.01, 0));
        assert!(reused.step(&compiled, &y0, 0.01, 8));
        assert_eq!(fresh.y_new, reused.y_new);
        let y1 = [fresh.y_new[0]];
        fresh.on_accept();
        reused.on_accept();
        assert!(fresh.step(&compiled, &y1, 0.01, 0));
        assert!(reused.step(&compiled, &y1, 0.01, 8));
        assert_eq!(fresh.y_new, reused.y_new);
        assert_eq!(fresh.err, reused.err);
    }

    #[test]
    fn invalidate_forces_refresh() {
        let crn: Crn = "2X -> Y @slow".parse().unwrap();
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let mut work = RosenbrockWork::new(&compiled);
        let ya = [4.0, 0.0];
        assert!(work.step(&compiled, &ya, 0.01, usize::MAX));
        work.on_accept();
        // without invalidation the Jacobian from `ya` would be reused;
        // after invalidation the step must match a fresh workspace at `yb`
        let yb = [1.0, 1.5];
        work.invalidate();
        assert!(work.step(&compiled, &yb, 0.02, usize::MAX));
        let mut fresh = RosenbrockWork::new(&compiled);
        assert!(fresh.step(&compiled, &yb, 0.02, 0));
        assert_eq!(work.y_new, fresh.y_new);
        assert_eq!(work.err, fresh.err);
    }
}
