//! A linearly implicit (Rosenbrock) stiff integrator.
//!
//! The networks in this workspace are stiff by construction: fast
//! reactions run at `k_fast·X ≈ 10⁵` while the phenomena of interest live
//! on the `k_slow` timescale. Explicit methods are stability-limited to
//! steps of `~1/(k_fast·X)`; the Rosenbrock method here (the classic
//! ode23s pair of Shampine & Reichelt) takes steps sized by *accuracy*
//! instead, using the analytic mass-action Jacobian and one dense LU
//! factorization per step.

// Index loops mirror the textbook linear-algebra formulas.
#![allow(clippy::needless_range_loop)]

use crate::compiled::CompiledCrn;

const D: f64 = 0.2928932188134524; // 1 / (2 + √2)
const C32: f64 = 7.414213562373095; // 6 + √2

/// Dense LU factorization with partial pivoting (row-major `n×n`).
pub(crate) struct Lu {
    lu: Vec<f64>,
    pivots: Vec<usize>,
    n: usize,
}

impl Lu {
    /// Factors `a` in place. Returns `None` for a (numerically) singular
    /// matrix.
    pub(crate) fn factor(mut a: Vec<f64>, n: usize) -> Option<Lu> {
        let mut pivots = vec![0usize; n];
        for col in 0..n {
            // pivot search
            let mut pivot_row = col;
            let mut best = a[col * n + col].abs();
            for row in (col + 1)..n {
                let v = a[row * n + col].abs();
                if v > best {
                    best = v;
                    pivot_row = row;
                }
            }
            if best < 1e-300 {
                return None;
            }
            pivots[col] = pivot_row;
            if pivot_row != col {
                for k in 0..n {
                    a.swap(col * n + k, pivot_row * n + k);
                }
            }
            let inv = 1.0 / a[col * n + col];
            for row in (col + 1)..n {
                let factor = a[row * n + col] * inv;
                a[row * n + col] = factor;
                if factor != 0.0 {
                    for k in (col + 1)..n {
                        a[row * n + k] -= factor * a[col * n + k];
                    }
                }
            }
        }
        Some(Lu { lu: a, pivots, n })
    }

    /// Solves `A·x = b` in place.
    pub(crate) fn solve(&self, b: &mut [f64]) {
        let n = self.n;
        for col in 0..n {
            b.swap(col, self.pivots[col]);
        }
        // forward substitution (unit lower triangle)
        for row in 1..n {
            let mut acc = b[row];
            for k in 0..row {
                acc -= self.lu[row * n + k] * b[k];
            }
            b[row] = acc;
        }
        // back substitution
        for row in (0..n).rev() {
            let mut acc = b[row];
            for k in (row + 1)..n {
                acc -= self.lu[row * n + k] * b[k];
            }
            b[row] = acc / self.lu[row * n + row];
        }
    }
}

/// Reusable buffers for Rosenbrock stepping.
pub(crate) struct RosenbrockWork {
    n: usize,
    jac: Vec<f64>,
    w: Vec<f64>,
    f0: Vec<f64>,
    f1: Vec<f64>,
    f2: Vec<f64>,
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    ytmp: Vec<f64>,
    /// 5th-order… rather, the advanced solution of the trial step.
    pub y_new: Vec<f64>,
    /// Per-component error estimate of the trial step.
    pub err: Vec<f64>,
}

impl RosenbrockWork {
    pub(crate) fn new(n: usize) -> Self {
        RosenbrockWork {
            n,
            jac: vec![0.0; n * n],
            w: vec![0.0; n * n],
            f0: vec![0.0; n],
            f1: vec![0.0; n],
            f2: vec![0.0; n],
            k1: vec![0.0; n],
            k2: vec![0.0; n],
            k3: vec![0.0; n],
            ytmp: vec![0.0; n],
            y_new: vec![0.0; n],
            err: vec![0.0; n],
        }
    }

    /// One ode23s trial step of size `h` from `y`. Fills `y_new` and
    /// `err`; returns `false` when the linear system is singular (caller
    /// should shrink the step).
    pub(crate) fn step(&mut self, compiled: &CompiledCrn, y: &[f64], h: f64) -> bool {
        let n = self.n;
        compiled.jacobian(y, &mut self.jac);
        // W = I − h·d·J
        let hd = h * D;
        for i in 0..n {
            for j in 0..n {
                let idx = i * n + j;
                self.w[idx] = -hd * self.jac[idx];
            }
            self.w[i * n + i] += 1.0;
        }
        let Some(lu) = Lu::factor(std::mem::take(&mut self.w), n) else {
            self.w = vec![0.0; n * n];
            return false;
        };

        compiled.derivative(y, &mut self.f0);
        self.k1.copy_from_slice(&self.f0);
        lu.solve(&mut self.k1);

        for i in 0..n {
            self.ytmp[i] = y[i] + 0.5 * h * self.k1[i];
        }
        compiled.derivative(&self.ytmp, &mut self.f1);
        for i in 0..n {
            self.k2[i] = self.f1[i] - self.k1[i];
        }
        lu.solve(&mut self.k2);
        for i in 0..n {
            self.k2[i] += self.k1[i];
        }

        for i in 0..n {
            self.y_new[i] = y[i] + h * self.k2[i];
        }
        compiled.derivative(&self.y_new, &mut self.f2);
        for i in 0..n {
            self.k3[i] =
                self.f2[i] - C32 * (self.k2[i] - self.f1[i]) - 2.0 * (self.k1[i] - self.f0[i]);
        }
        lu.solve(&mut self.k3);

        for i in 0..n {
            self.err[i] = h / 6.0 * (self.k1[i] - 2.0 * self.k2[i] + self.k3[i]);
        }
        // recover W's buffer for the next step
        self.w = lu.lu;
        true
    }

    /// Max over components of `|err| / (atol + rtol·max(|y|, |y_new|))`.
    pub(crate) fn error_ratio(&self, y: &[f64], rtol: f64, atol: f64) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..self.n {
            let scale = atol + rtol * y[i].abs().max(self.y_new[i].abs());
            worst = worst.max(self.err[i].abs() / scale);
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimSpec, State};
    use molseq_crn::Crn;

    #[test]
    fn lu_solves_a_known_system() {
        // A = [[2, 1], [1, 3]], b = [5, 10] → x = [1, 3]
        let a = vec![2.0, 1.0, 1.0, 3.0];
        let lu = Lu::factor(a, 2).expect("nonsingular");
        let mut b = vec![5.0, 10.0];
        lu.solve(&mut b);
        assert!((b[0] - 1.0).abs() < 1e-12);
        assert!((b[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn lu_needs_pivoting() {
        // zero on the diagonal forces a row swap
        let a = vec![0.0, 1.0, 1.0, 0.0];
        let lu = Lu::factor(a, 2).expect("nonsingular with pivoting");
        let mut b = vec![2.0, 3.0];
        lu.solve(&mut b);
        assert!((b[0] - 3.0).abs() < 1e-12);
        assert!((b[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lu_detects_singular() {
        let a = vec![1.0, 2.0, 2.0, 4.0];
        assert!(Lu::factor(a, 2).is_none());
    }

    #[test]
    fn rosenbrock_step_matches_decay() {
        let crn: Crn = "X -> 0 @slow".parse().unwrap();
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let mut work = RosenbrockWork::new(1);
        let y = State::from_vec(vec![1.0]);
        assert!(work.step(&compiled, y.as_slice(), 0.01));
        // exp(-0.01) ≈ 0.99004983…; a 2nd-order step is close
        assert!((work.y_new[0] - (-0.01f64).exp()).abs() < 1e-7);
        assert!(work.error_ratio(y.as_slice(), 1e-6, 1e-9) < 100.0);
    }
}
