//! The unified simulation front end.
//!
//! Every integrator in this crate — deterministic ODE, exact SSA/NRM, and
//! the explicit/implicit tau-leapers — is driven through one builder:
//!
//! ```
//! use molseq_crn::Crn;
//! use molseq_kinetics::{CompiledCrn, OdeOptions, Simulation, SimSpec, State};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let crn: Crn = "X -> 0 @slow".parse()?;
//! let x = crn.find_species("X").expect("parsed");
//! let mut init = State::new(&crn);
//! init.set(x, 1.0);
//! let compiled = CompiledCrn::new(&crn, &SimSpec::default());
//! let trace = Simulation::new(&crn, &compiled)
//!     .init(&init)
//!     .options(OdeOptions::default().with_t_end(2.0))
//!     .run()?;
//! assert!(trace.final_state()[x.index()] < 0.2);
//! # Ok(())
//! # }
//! ```
//!
//! The method is normally inferred from the options genre
//! ([`OdeOptions`] → [`SimMethod::Ode`], [`SsaOptions`] →
//! [`SimMethod::Ssa`], and so on); only [`SimMethod::Nrm`] — which shares
//! [`SsaOptions`] with the direct method — must be requested explicitly
//! via [`Simulation::method`]. The builder is the single entry point to
//! every integrator: running the same options twice produces
//! bit-identical traces.

use crate::compiled::CompiledCrn;
use crate::hybrid::HybridOptions;
use crate::metrics::MetricsSink;
use crate::ode::{OdeOptions, OdeWorkspace, StepHook};
use crate::ssa::SsaOptions;
use crate::tau::TauLeapOptions;
use crate::tau_implicit::TauLeapImplicitOptions;
use crate::{Schedule, SimError, State, Trace};
use molseq_crn::Crn;

/// Which integrator a [`Simulation`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimMethod {
    /// Deterministic mass-action ODE integration (see [`OdeOptions`]).
    Ode,
    /// Gillespie's direct stochastic simulation algorithm.
    Ssa,
    /// Gibson–Bruck next-reaction method (exact, like SSA, but with a
    /// dependency-graph-driven event queue). Shares [`SsaOptions`] with
    /// the direct method, so it must be selected explicitly.
    Nrm,
    /// Explicit (Cao–Gillespie) tau-leaping.
    TauLeap,
    /// Stiffness-aware tau-leaping that switches per leap between the
    /// explicit update and an implicit (damped-Newton) one.
    TauLeapImplicit,
    /// Hybrid ODE/SSA multiscale simulation: fast reversible reaction
    /// pairs integrate as a continuous subsystem, slow reactions fire as
    /// exact discrete events (see [`HybridOptions`]).
    Hybrid,
}

/// Options for one simulation, tagged by integrator genre. Usually built
/// implicitly through the `From` impls — pass the concrete options type
/// straight to [`Simulation::options`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimOptions<'h> {
    /// Deterministic options ([`SimMethod::Ode`]).
    Ode(OdeOptions<'h>),
    /// Exact stochastic options ([`SimMethod::Ssa`] or, selected
    /// explicitly, [`SimMethod::Nrm`]).
    Stochastic(SsaOptions<'h>),
    /// Explicit tau-leaping options ([`SimMethod::TauLeap`]).
    TauLeap(TauLeapOptions<'h>),
    /// Implicit tau-leaping options ([`SimMethod::TauLeapImplicit`]).
    TauLeapImplicit(TauLeapImplicitOptions<'h>),
    /// Hybrid ODE/SSA options ([`SimMethod::Hybrid`]).
    Hybrid(HybridOptions<'h>),
}

impl<'h> From<OdeOptions<'h>> for SimOptions<'h> {
    fn from(opts: OdeOptions<'h>) -> Self {
        SimOptions::Ode(opts)
    }
}

impl<'h> From<SsaOptions<'h>> for SimOptions<'h> {
    fn from(opts: SsaOptions<'h>) -> Self {
        SimOptions::Stochastic(opts)
    }
}

impl<'h> From<TauLeapOptions<'h>> for SimOptions<'h> {
    fn from(opts: TauLeapOptions<'h>) -> Self {
        SimOptions::TauLeap(opts)
    }
}

impl<'h> From<TauLeapImplicitOptions<'h>> for SimOptions<'h> {
    fn from(opts: TauLeapImplicitOptions<'h>) -> Self {
        SimOptions::TauLeapImplicit(opts)
    }
}

impl<'h> From<HybridOptions<'h>> for SimOptions<'h> {
    fn from(opts: HybridOptions<'h>) -> Self {
        SimOptions::Hybrid(opts)
    }
}

impl<'h> SimOptions<'h> {
    /// The method this options genre selects by default.
    fn default_method(&self) -> SimMethod {
        match self {
            SimOptions::Ode(_) => SimMethod::Ode,
            SimOptions::Stochastic(_) => SimMethod::Ssa,
            SimOptions::TauLeap(_) => SimMethod::TauLeap,
            SimOptions::TauLeapImplicit(_) => SimMethod::TauLeapImplicit,
            SimOptions::Hybrid(_) => SimMethod::Hybrid,
        }
    }

    /// Whether this options genre can drive `method`.
    fn supports(&self, method: SimMethod) -> bool {
        matches!(
            (self, method),
            (SimOptions::Ode(_), SimMethod::Ode)
                | (SimOptions::Stochastic(_), SimMethod::Ssa | SimMethod::Nrm)
                | (SimOptions::TauLeap(_), SimMethod::TauLeap)
                | (SimOptions::TauLeapImplicit(_), SimMethod::TauLeapImplicit)
                | (SimOptions::Hybrid(_), SimMethod::Hybrid)
        )
    }

    /// The default options for `method`.
    fn defaults_for(method: SimMethod) -> Self {
        match method {
            SimMethod::Ode => SimOptions::Ode(OdeOptions::default()),
            SimMethod::Ssa | SimMethod::Nrm => SimOptions::Stochastic(SsaOptions::default()),
            SimMethod::TauLeap => SimOptions::TauLeap(TauLeapOptions::default()),
            SimMethod::TauLeapImplicit => {
                SimOptions::TauLeapImplicit(TauLeapImplicitOptions::default())
            }
            SimMethod::Hybrid => SimOptions::Hybrid(HybridOptions::default()),
        }
    }

    fn set_step_hook(&mut self, hook: StepHook<'h>) {
        match self {
            SimOptions::Ode(o) => *o = o.with_step_hook(hook),
            SimOptions::Stochastic(o) => *o = o.with_step_hook(hook),
            SimOptions::TauLeap(o) => o.base = o.base.with_step_hook(hook),
            SimOptions::TauLeapImplicit(o) => o.base.base = o.base.base.with_step_hook(hook),
            SimOptions::Hybrid(o) => *o = o.with_step_hook(hook),
        }
    }

    fn set_metrics(&mut self, sink: MetricsSink<'h>) {
        match self {
            SimOptions::Ode(o) => *o = o.with_metrics(sink),
            SimOptions::Stochastic(o) => *o = o.with_metrics(sink),
            SimOptions::TauLeap(o) => o.base = o.base.with_metrics(sink),
            SimOptions::TauLeapImplicit(o) => o.base.base = o.base.base.with_metrics(sink),
            SimOptions::Hybrid(o) => *o = o.with_metrics(sink),
        }
    }
}

/// Builder for one simulation run over a precompiled network.
///
/// Required: [`Simulation::init`]. Everything else defaults: an empty
/// schedule, options inferred from [`Simulation::method`] (or
/// [`OdeOptions::default`] when neither is given), a fresh scratch
/// workspace. See the [module docs](self) for an end-to-end example.
pub struct Simulation<'a, 'h> {
    crn: &'a Crn,
    compiled: &'a CompiledCrn,
    init: Option<&'a State>,
    schedule: Option<&'a Schedule>,
    method: Option<SimMethod>,
    options: Option<SimOptions<'h>>,
    workspace: Option<&'a mut OdeWorkspace>,
    metrics: Option<MetricsSink<'h>>,
    step_hook: Option<StepHook<'h>>,
}

impl<'a, 'h> Simulation<'a, 'h> {
    /// Starts a builder for `crn` under the rate bindings of `compiled`.
    /// Compile once and reuse `compiled` (rebinding rates per sweep cell
    /// as needed); the builder itself is cheap.
    #[must_use]
    pub fn new(crn: &'a Crn, compiled: &'a CompiledCrn) -> Self {
        Simulation {
            crn,
            compiled,
            init: None,
            schedule: None,
            method: None,
            options: None,
            workspace: None,
            metrics: None,
            step_hook: None,
        }
    }

    /// Sets the initial state (required).
    #[must_use]
    pub fn init(mut self, init: &'a State) -> Self {
        self.init = Some(init);
        self
    }

    /// Sets the event schedule (timed injections and, for the methods
    /// that support them, triggers). Defaults to an empty schedule.
    #[must_use]
    pub fn schedule(mut self, schedule: &'a Schedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Selects the integrator explicitly. Only needed for
    /// [`SimMethod::Nrm`] (which shares options with [`SimMethod::Ssa`])
    /// or to run a method on its default options; otherwise the genre of
    /// [`Simulation::options`] picks the method.
    #[must_use]
    pub fn method(mut self, method: SimMethod) -> Self {
        self.method = Some(method);
        self
    }

    /// Sets the integrator options; accepts any concrete options type
    /// ([`OdeOptions`], [`SsaOptions`], [`TauLeapOptions`],
    /// [`TauLeapImplicitOptions`]) via `Into`.
    #[must_use]
    pub fn options(mut self, options: impl Into<SimOptions<'h>>) -> Self {
        self.options = Some(options.into());
        self
    }

    /// Attaches a reusable [`OdeWorkspace`] so repeated runs (sweep
    /// cells, harness retries) do not re-allocate integrator buffers.
    /// Used by [`SimMethod::Ode`], [`SimMethod::TauLeapImplicit`] and
    /// [`SimMethod::Hybrid`]; ignored by the other methods. Results are
    /// bit-identical with or without a caller-supplied workspace.
    #[must_use]
    pub fn workspace(mut self, workspace: &'a mut OdeWorkspace) -> Self {
        self.workspace = Some(workspace);
        self
    }

    /// Installs a metrics sink, overriding any sink already present in
    /// the options. See [`crate::SimMetrics`].
    #[must_use]
    pub fn metrics(mut self, sink: MetricsSink<'h>) -> Self {
        self.metrics = Some(sink);
        self
    }

    /// Installs a cooperative interruption hook, overriding any hook
    /// already present in the options. See [`StepHook`].
    #[must_use]
    pub fn step_hook(mut self, hook: StepHook<'h>) -> Self {
        self.step_hook = Some(hook);
        self
    }

    /// Runs the simulation.
    ///
    /// # Panics
    ///
    /// Panics if [`Simulation::init`] was never called, or if an explicit
    /// [`Simulation::method`] disagrees with the genre of the supplied
    /// options (e.g. `SimMethod::Ode` with [`SsaOptions`]).
    ///
    /// # Errors
    ///
    /// Whatever the dispatched integrator reports: dimension mismatches,
    /// bad time spans, exhausted step budgets, hook interruptions,
    /// non-finite states.
    pub fn run(self) -> Result<Trace, SimError> {
        let Simulation {
            crn,
            compiled,
            init,
            schedule,
            method,
            options,
            workspace,
            metrics,
            step_hook,
        } = self;
        let init = init.expect("Simulation::init(..) must be called before run()");
        let empty_schedule;
        let schedule = match schedule {
            Some(s) => s,
            None => {
                empty_schedule = Schedule::new();
                &empty_schedule
            }
        };
        let mut options = match (method, options) {
            (_, Some(o)) => {
                if let Some(m) = method {
                    assert!(
                        o.supports(m),
                        "Simulation: method {m:?} does not match the supplied options genre"
                    );
                }
                o
            }
            (Some(m), None) => SimOptions::defaults_for(m),
            (None, None) => SimOptions::defaults_for(SimMethod::Ode),
        };
        let method = method.unwrap_or_else(|| options.default_method());
        if let Some(hook) = step_hook {
            options.set_step_hook(hook);
        }
        if let Some(sink) = metrics {
            options.set_metrics(sink);
        }

        match (method, options) {
            (SimMethod::Ode, SimOptions::Ode(opts)) => match workspace {
                Some(ws) => crate::ode::run_ode(crn, compiled, init, schedule, &opts, ws),
                None => {
                    let mut ws = OdeWorkspace::new();
                    crate::ode::run_ode(crn, compiled, init, schedule, &opts, &mut ws)
                }
            },
            (SimMethod::Ssa, SimOptions::Stochastic(opts)) => {
                crate::ssa::run_ssa(crn, compiled, init, schedule, &opts)
            }
            (SimMethod::Nrm, SimOptions::Stochastic(opts)) => {
                crate::nrm::run_nrm(crn, compiled, init, schedule, &opts)
            }
            (SimMethod::TauLeap, SimOptions::TauLeap(opts)) => {
                crate::tau::run_tau(crn, compiled, init, schedule, &opts)
            }
            (SimMethod::TauLeapImplicit, SimOptions::TauLeapImplicit(opts)) => match workspace {
                Some(ws) => {
                    crate::tau_implicit::run_tau_implicit(crn, compiled, init, schedule, &opts, ws)
                }
                None => {
                    let mut ws = OdeWorkspace::new();
                    crate::tau_implicit::run_tau_implicit(
                        crn, compiled, init, schedule, &opts, &mut ws,
                    )
                }
            },
            (SimMethod::Hybrid, SimOptions::Hybrid(opts)) => match workspace {
                Some(ws) => crate::hybrid::run_hybrid(crn, compiled, init, schedule, &opts, ws),
                None => {
                    let mut ws = OdeWorkspace::new();
                    crate::hybrid::run_hybrid(crn, compiled, init, schedule, &opts, &mut ws)
                }
            },
            // `supports` was asserted above; inferred methods always match.
            _ => unreachable!("method/options genre mismatch survived validation"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimSpec;
    use std::cell::Cell;

    fn decay_setup() -> (Crn, CompiledCrn, State) {
        let crn: Crn = "X -> 0 @slow\n0 -> X @slow".parse().unwrap();
        let x = crn.find_species("X").unwrap();
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let mut init = State::new(&crn);
        init.set(x, 40.0);
        (crn, compiled, init)
    }

    #[test]
    fn method_is_inferred_from_options_genre() {
        let (crn, compiled, init) = decay_setup();
        let sink = Cell::new(crate::SimMetrics::default());
        // SSA options without an explicit method must run the SSA core:
        // stochastic events get counted, ODE steps do not.
        let trace = Simulation::new(&crn, &compiled)
            .init(&init)
            .options(SsaOptions::default().with_t_end(1.0).with_seed(7))
            .metrics(&sink)
            .run()
            .unwrap();
        assert!(trace.len() > 1);
        let m = sink.get();
        assert!(m.ssa_events > 0);
        assert_eq!(m.ode_steps_accepted, 0);
        assert_eq!(m.seed, 7);
    }

    #[test]
    fn defaults_to_ode_when_nothing_is_specified() {
        let (crn, compiled, init) = decay_setup();
        let sink = Cell::new(crate::SimMetrics::default());
        Simulation::new(&crn, &compiled)
            .init(&init)
            .metrics(&sink)
            .run()
            .unwrap();
        assert!(sink.get().ode_steps_accepted > 0);
        assert_eq!(sink.get().ssa_events, 0);
    }

    #[test]
    fn explicit_method_with_default_options_runs() {
        let (crn, compiled, init) = decay_setup();
        let sink = Cell::new(crate::SimMetrics::default());
        Simulation::new(&crn, &compiled)
            .init(&init)
            .method(SimMethod::Nrm)
            .metrics(&sink)
            .run()
            .unwrap();
        assert!(sink.get().ssa_events > 0);
    }

    #[test]
    #[should_panic(expected = "does not match the supplied options genre")]
    fn method_options_genre_mismatch_panics() {
        let (crn, compiled, init) = decay_setup();
        let _ = Simulation::new(&crn, &compiled)
            .init(&init)
            .method(SimMethod::Ode)
            .options(SsaOptions::default())
            .run();
    }

    #[test]
    #[should_panic(expected = "must be called before run()")]
    fn missing_init_panics() {
        let (crn, compiled, _) = decay_setup();
        let _ = Simulation::new(&crn, &compiled).run();
    }

    #[test]
    fn builder_hook_overrides_options_hook() {
        let (crn, compiled, init) = decay_setup();
        let hook = |steps: u64, _t: f64| {
            if steps >= 2 {
                std::ops::ControlFlow::Break("builder hook".to_owned())
            } else {
                std::ops::ControlFlow::Continue(())
            }
        };
        let err = Simulation::new(&crn, &compiled)
            .init(&init)
            .options(SsaOptions::default().with_seed(3))
            .step_hook(&hook)
            .run()
            .unwrap_err();
        assert!(
            matches!(err, SimError::Interrupted { ref reason, .. } if reason == "builder hook"),
            "{err:?}"
        );
    }

    /// The builder is the single entry point (the pre-0.6 `simulate_*`
    /// shims were dropped): the contract is now that each method, driven
    /// through the builder with the same options, is bit-identical run to
    /// run — freshly compiled or through a shared compile + rebind, with
    /// or without an explicit method selection.
    #[test]
    fn builder_runs_are_bit_identical_per_method() {
        let (crn, compiled, init) = decay_setup();
        let recompiled = CompiledCrn::new(&crn, &SimSpec::default());
        let ssa_opts = SsaOptions::default().with_t_end(3.0).with_seed(42);
        let tau_opts = TauLeapOptions {
            base: ssa_opts,
            ..TauLeapOptions::default()
        };
        let imp_opts = TauLeapImplicitOptions {
            base: tau_opts,
            ..TauLeapImplicitOptions::default()
        };
        let hybrid_opts = crate::HybridOptions::default()
            .with_t_end(3.0)
            .with_seed(42);
        let runs: Vec<(&str, SimOptions)> = vec![
            ("ODE", OdeOptions::default().with_t_end(2.0).into()),
            ("SSA", ssa_opts.into()),
            ("tau-leap", tau_opts.into()),
            ("implicit tau-leap", imp_opts.into()),
            ("hybrid", hybrid_opts.into()),
        ];
        for (label, opts) in runs {
            let first = Simulation::new(&crn, &compiled)
                .init(&init)
                .options(opts)
                .run()
                .unwrap();
            let second = Simulation::new(&crn, &recompiled)
                .init(&init)
                .options(opts)
                .run()
                .unwrap();
            assert_eq!(first, second, "{label}");
        }
        // NRM shares SsaOptions and must be selected explicitly.
        let first = Simulation::new(&crn, &compiled)
            .init(&init)
            .method(SimMethod::Nrm)
            .options(ssa_opts)
            .run()
            .unwrap();
        let second = Simulation::new(&crn, &recompiled)
            .init(&init)
            .method(SimMethod::Nrm)
            .options(ssa_opts)
            .run()
            .unwrap();
        assert_eq!(first, second, "NRM");
    }

    #[test]
    fn supplied_workspace_is_bit_identical_to_fresh() {
        let (crn, compiled, init) = decay_setup();
        let opts = OdeOptions::default().with_t_end(2.0);
        let mut ws = OdeWorkspace::new();
        let reused = Simulation::new(&crn, &compiled)
            .init(&init)
            .options(opts)
            .workspace(&mut ws)
            .run()
            .unwrap();
        let fresh = Simulation::new(&crn, &compiled)
            .init(&init)
            .options(opts)
            .run()
            .unwrap();
        assert_eq!(reused, fresh);
    }
}
