//! Per-simulation instrumentation.
//!
//! Every integrator in this crate (ODE, SSA, NRM, tau-leaping) can report
//! what it actually did — steps accepted and rejected, LU refactorizations,
//! stochastic events fired, leaps taken — into a caller-supplied
//! [`SimMetrics`] cell. The sweep engine threads one sink per cell, so a
//! parameter sweep records not just *what* each cell computed but *how
//! much work* it cost, and `repro --summary DIR` persists the counters
//! alongside the timings.
//!
//! The sink is a `&Cell<SimMetrics>` rather than a `&mut` reference so the
//! same options value (which is `Copy` and may be cloned into several
//! simulation calls, e.g. the chunked quiescence driver or the harness's
//! horizon-doubling retries) can keep appending to one accumulator:
//! integrators *absorb* their counters into the sink on every exit path,
//! successful or not, rather than overwriting it.

use std::cell::Cell;

/// A caller-supplied accumulator for one logical unit of simulation work
/// (typically one sweep cell). Integrators add into it on exit; see
/// [`SimMetrics::absorb`].
pub type MetricsSink<'h> = &'h Cell<SimMetrics>;

/// Work counters for one or more simulation runs.
///
/// All counters are cumulative across the runs that reported into the same
/// sink; `final_time` and `seed` reflect the most recent run.
///
/// # Examples
///
/// ```
/// use std::cell::Cell;
/// use molseq_crn::Crn;
/// use molseq_kinetics::{CompiledCrn, OdeOptions, SimMetrics, SimSpec, Simulation, State};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let crn: Crn = "X -> 0 @slow".parse()?;
/// let x = crn.find_species("X").expect("parsed");
/// let mut init = State::new(&crn);
/// init.set(x, 1.0);
/// let sink = Cell::new(SimMetrics::default());
/// let compiled = CompiledCrn::new(&crn, &SimSpec::default());
/// let opts = OdeOptions::default().with_t_end(1.0).with_metrics(&sink);
/// Simulation::new(&crn, &compiled).init(&init).options(opts).run()?;
/// let m = sink.get();
/// assert!(m.ode_steps_accepted > 0);
/// assert_eq!(m.final_time, 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimMetrics {
    /// Accepted deterministic integrator steps (all ODE methods).
    pub ode_steps_accepted: u64,
    /// Rejected trial steps (adaptive ODE methods; includes singular-`W`
    /// retries of the Rosenbrock stepper).
    pub ode_steps_rejected: u64,
    /// Numeric LU factorizations of `W = I − h·d·J` (Rosenbrock only;
    /// sparse and pivoted-dense fallback factorizations both count).
    pub lu_factorizations: u64,
    /// Exact stochastic reaction events fired (SSA and NRM, plus the
    /// exact-step fallback of tau-leaping).
    pub ssa_events: u64,
    /// Tau-leap steps taken (each fires a Poisson batch of reactions).
    /// Counts explicit leaps only; implicit leaps have their own counter.
    pub tau_leaps: u64,
    /// Implicit tau-leap steps taken (each solves a damped-Newton system
    /// and fires a rounded batch of reaction extents).
    pub tau_leaps_implicit: u64,
    /// Newton iterations spent inside implicit leaps (each assembles and
    /// solves one `I − τ·ν·(∂a/∂x)` system).
    pub newton_iterations: u64,
    /// Explicit↔implicit regime changes between consecutive leaps of the
    /// stiffness-aware leaper.
    pub leap_switchovers: u64,
    /// Simulated time reached by the most recent run that reported into
    /// this record.
    pub final_time: f64,
    /// RNG seed of the most recent stochastic run (`0` for deterministic
    /// runs).
    pub seed: u64,
    /// Lane count of the batched engine (ODE, SSA or tau-leap) for the
    /// most recent run that reported into this record (`0` for scalar
    /// runs).
    pub batch_width: u64,
    /// For a cell run through a batched engine: how many sibling lanes of
    /// its batch had already retired (finished or failed) when this
    /// cell's lane retired. Cumulative across runs, like the step
    /// counters, so harness retries show the total retirement churn.
    pub lanes_retired: u64,
    /// Discrete reaction events fired on the slow (SSA) side of the hybrid
    /// engine. Each is also counted into `ssa_events`, so event totals
    /// compare directly across pure-SSA and hybrid arms of an experiment.
    pub hybrid_slow_events: u64,
    /// Accepted ODE steps taken on the fast (continuous) side of the
    /// hybrid engine. Each is also counted into `ode_steps_accepted`.
    pub hybrid_fast_steps: u64,
    /// Automatic repartitions of the hybrid engine that *changed* the fast
    /// set (recomputations that confirmed the current partition don't
    /// count).
    pub hybrid_repartitions: u64,
}

impl SimMetrics {
    /// Adds `other`'s counters into `self`; `final_time` and `seed` take
    /// `other`'s values (the more recent run wins).
    pub fn absorb(&mut self, other: &SimMetrics) {
        self.ode_steps_accepted += other.ode_steps_accepted;
        self.ode_steps_rejected += other.ode_steps_rejected;
        self.lu_factorizations += other.lu_factorizations;
        self.ssa_events += other.ssa_events;
        self.tau_leaps += other.tau_leaps;
        self.tau_leaps_implicit += other.tau_leaps_implicit;
        self.newton_iterations += other.newton_iterations;
        self.leap_switchovers += other.leap_switchovers;
        self.lanes_retired += other.lanes_retired;
        self.hybrid_slow_events += other.hybrid_slow_events;
        self.hybrid_fast_steps += other.hybrid_fast_steps;
        self.hybrid_repartitions += other.hybrid_repartitions;
        self.final_time = other.final_time;
        if other.seed != 0 {
            self.seed = other.seed;
        }
        if other.batch_width != 0 {
            self.batch_width = other.batch_width;
        }
    }

    /// Absorbs `update` into `sink` if one is installed. Integrators call
    /// this once per exit path (including error returns, so interrupted
    /// cells still report the work they did).
    pub(crate) fn flush(sink: Option<MetricsSink<'_>>, update: SimMetrics) {
        if let Some(cell) = sink {
            let mut current = cell.get();
            current.absorb(&update);
            cell.set(current);
        }
    }
}

/// Metric sinks compare by identity (same cell), not contents — mirrors
/// how step hooks compare in the options types.
pub(crate) fn sinks_eq(a: Option<MetricsSink<'_>>, b: Option<MetricsSink<'_>>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(a), Some(b)) => std::ptr::eq(a, b),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates_counters_and_takes_latest_time() {
        let mut total = SimMetrics {
            ode_steps_accepted: 10,
            ode_steps_rejected: 1,
            lu_factorizations: 5,
            ssa_events: 0,
            tau_leaps: 0,
            tau_leaps_implicit: 2,
            newton_iterations: 6,
            leap_switchovers: 1,
            final_time: 4.0,
            seed: 7,
            batch_width: 0,
            lanes_retired: 0,
            hybrid_slow_events: 4,
            hybrid_fast_steps: 8,
            hybrid_repartitions: 1,
        };
        total.absorb(&SimMetrics {
            ode_steps_accepted: 2,
            ssa_events: 30,
            tau_leaps_implicit: 3,
            newton_iterations: 9,
            leap_switchovers: 2,
            final_time: 9.0,
            batch_width: 8,
            lanes_retired: 3,
            hybrid_slow_events: 6,
            hybrid_fast_steps: 2,
            hybrid_repartitions: 1,
            ..SimMetrics::default()
        });
        assert_eq!(total.ode_steps_accepted, 12);
        assert_eq!(total.ode_steps_rejected, 1);
        assert_eq!(total.ssa_events, 30);
        assert_eq!(total.tau_leaps_implicit, 5);
        assert_eq!(total.newton_iterations, 15);
        assert_eq!(total.leap_switchovers, 3);
        assert_eq!(total.final_time, 9.0);
        // a deterministic follow-up run (seed 0) keeps the stochastic seed
        assert_eq!(total.seed, 7);
        assert_eq!(total.batch_width, 8);
        assert_eq!(total.lanes_retired, 3);
        assert_eq!(total.hybrid_slow_events, 10);
        assert_eq!(total.hybrid_fast_steps, 10);
        assert_eq!(total.hybrid_repartitions, 2);
        // a scalar follow-up (width 0) keeps the batched width
        total.absorb(&SimMetrics::default());
        assert_eq!(total.batch_width, 8);
    }

    #[test]
    fn flush_into_cell_accumulates() {
        let sink = Cell::new(SimMetrics::default());
        SimMetrics::flush(
            Some(&sink),
            SimMetrics {
                ssa_events: 4,
                ..SimMetrics::default()
            },
        );
        SimMetrics::flush(
            Some(&sink),
            SimMetrics {
                ssa_events: 6,
                ..SimMetrics::default()
            },
        );
        assert_eq!(sink.get().ssa_events, 10);
        // a missing sink is a no-op
        SimMetrics::flush(None, SimMetrics::default());
    }

    #[test]
    fn sinks_compare_by_identity() {
        let a = Cell::new(SimMetrics::default());
        let b = Cell::new(SimMetrics::default());
        assert!(sinks_eq(Some(&a), Some(&a)));
        assert!(!sinks_eq(Some(&a), Some(&b)));
        assert!(!sinks_eq(Some(&a), None));
        assert!(sinks_eq(None, None));
    }
}
