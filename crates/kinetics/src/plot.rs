//! Terminal rendering of traces — the experiment binaries print the
//! paper's figures as ASCII waveforms.

use crate::Trace;
use molseq_crn::SpeciesId;

/// Renders one series as a single-line sparkline using eight block levels.
///
/// # Examples
///
/// ```
/// use molseq_kinetics::sparkline;
///
/// let line = sparkline(&[0.0, 0.5, 1.0, 0.5, 0.0]);
/// assert_eq!(line.chars().count(), 5);
/// ```
#[must_use]
pub fn sparkline(series: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if series.is_empty() {
        return String::new();
    }
    let lo = series.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = series.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-300);
    series
        .iter()
        .map(|&v| {
            let idx = (((v - lo) / span) * 7.0).round().clamp(0.0, 7.0) as usize;
            LEVELS[idx]
        })
        .collect()
}

/// Downsamples a series to `width` points by averaging buckets.
#[must_use]
pub fn downsample(series: &[f64], width: usize) -> Vec<f64> {
    if series.is_empty() || width == 0 {
        return Vec::new();
    }
    if series.len() <= width {
        return series.to_vec();
    }
    (0..width)
        .map(|i| {
            let lo = i * series.len() / width;
            let hi = (((i + 1) * series.len()) / width).max(lo + 1);
            series[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

/// Renders several species of a trace as labelled sparklines sharing the
/// time axis.
///
/// Each line reads `name  min..max  ▁▂▃…`. `width` is the number of
/// rendered columns.
#[must_use]
pub fn render_species(trace: &Trace, species: &[(SpeciesId, &str)], width: usize) -> String {
    let label_width = species
        .iter()
        .map(|(_, name)| name.len())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for &(id, name) in species {
        let series = trace.series(id);
        let lo = series.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = series.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let compact = downsample(&series, width);
        out.push_str(&format!(
            "{name:<label_width$}  [{lo:8.2} .. {hi:8.2}]  {}\n",
            sparkline(&compact)
        ));
    }
    if let (Some(&first), Some(&last)) = (trace.times().first(), trace.times().last()) {
        out.push_str(&format!(
            "{:label_width$}  {:22}  t = {first:.1} .. {last:.1}\n",
            "", ""
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use molseq_crn::Crn;

    #[test]
    fn sparkline_maps_extremes() {
        let line = sparkline(&[0.0, 1.0]);
        assert_eq!(line, "▁█");
        assert_eq!(sparkline(&[]), "");
        // constant series stays at the bottom
        assert_eq!(sparkline(&[5.0, 5.0]), "▁▁");
    }

    #[test]
    fn downsample_preserves_mean_structure() {
        let series: Vec<f64> = (0..100).map(f64::from).collect();
        let ds = downsample(&series, 10);
        assert_eq!(ds.len(), 10);
        assert!(ds[0] < ds[9]);
        assert_eq!(downsample(&series, 200).len(), 100);
        assert!(downsample(&[], 10).is_empty());
    }

    #[test]
    fn render_species_produces_labelled_lines() {
        let mut crn = Crn::new();
        let a = crn.species("alpha");
        let mut trace = Trace::new(&crn);
        trace.push(0.0, &[0.0]);
        trace.push(1.0, &[10.0]);
        let text = render_species(&trace, &[(a, "alpha")], 20);
        assert!(text.contains("alpha"));
        assert!(text.contains("t = 0.0 .. 1.0"));
    }
}
