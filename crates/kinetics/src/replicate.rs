//! Replicate fan-out: compile once, simulate under many seeds.
//!
//! Stochastic experiments (E10's amplitude×replicate grid, noise scans)
//! re-simulate one network under many RNG seeds. A [`Replicator`] pairs a
//! shared, pre-built [`CompiledCrn`] with a base seed and stamps out one
//! [`SweepJob`](molseq_sweep::SweepJob) per replicate, so the sweep engine
//! runs the replicates in parallel while every replicate reuses the same
//! compiled reaction structure.
//!
//! Replicate seeds are derived from the *base seed and replicate number
//! only* — never from the job's position in the sweep's job list — so a
//! replicate keeps its seed (and therefore its trajectory) when jobs are
//! added, removed, or reordered around it. That is what makes replicate
//! grids extensible without invalidating previously published numbers.

use crate::compiled::CompiledCrn;
use molseq_sweep::{JobCtx, JobError, SweepJob};
use std::sync::Arc;

/// A compiled network plus a base seed, from which per-replicate sweep
/// jobs are stamped out.
///
/// # Examples
///
/// ```
/// use molseq_crn::Crn;
/// use molseq_kinetics::{
///     CompiledCrn, Replicator, SimSpec, Simulation, SsaOptions, State,
/// };
/// use molseq_sweep::{run_sweep, SweepOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let crn: Crn = "X -> 0 @slow".parse()?;
/// let x = crn.find_species("X").expect("parsed");
/// let compiled = CompiledCrn::new(&crn, &SimSpec::default());
/// let mut init = State::new(&crn);
/// init.set(x, 40.0);
///
/// let rep = Replicator::new(&compiled, 11);
/// let jobs = rep.jobs("decay", 4, move |compiled, seed, _job| {
///     let opts = SsaOptions::default().with_t_end(0.5).with_seed(seed);
///     let trace = Simulation::new(&crn, compiled)
///         .init(&init)
///         .options(opts)
///         .run()
///         .map_err(molseq_sweep::JobError::failed)?;
///     Ok(trace.final_state()[x.index()])
/// });
/// let out = run_sweep(&jobs, &SweepOptions::default());
/// assert_eq!(out.cells.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Replicator<'c> {
    compiled: &'c CompiledCrn,
    base_seed: u64,
}

impl<'c> Replicator<'c> {
    /// A replicator over `compiled` whose replicate seeds derive from
    /// `base_seed`.
    #[must_use]
    pub fn new(compiled: &'c CompiledCrn, base_seed: u64) -> Self {
        Replicator {
            compiled,
            base_seed,
        }
    }

    /// The shared compiled network.
    #[must_use]
    pub fn compiled(&self) -> &'c CompiledCrn {
        self.compiled
    }

    /// The seed of replicate `r`: a SplitMix64 finalizer over the base
    /// seed and the replicate number, so adjacent replicates get
    /// statistically independent streams. Depends on nothing else — in
    /// particular not on the sweep's job order.
    #[must_use]
    pub fn seed(&self, replicate: usize) -> u64 {
        let mut z = self
            .base_seed
            .wrapping_add((replicate as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Stamps out one [`SweepJob`] per replicate. Each job is labelled
    /// `"{label} rep={r} seed={seed}"` and calls `f(compiled, seed, ctx)`
    /// with the replicate's stable seed baked in, so the result of a
    /// replicate is independent of which worker runs it and where it sits
    /// in the job list.
    pub fn jobs<T, F>(
        &self,
        label: impl Into<String>,
        replicates: usize,
        f: F,
    ) -> Vec<SweepJob<'c, T>>
    where
        F: Fn(&'c CompiledCrn, u64, &JobCtx) -> Result<T, JobError> + Send + Sync + 'c,
    {
        let label = label.into();
        let f = Arc::new(f);
        let compiled = self.compiled;
        (0..replicates)
            .map(|r| {
                let seed = self.seed(r);
                let f = Arc::clone(&f);
                SweepJob::new(format!("{label} rep={r} seed={seed}"), move |ctx| {
                    f(compiled, seed, ctx)
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimSpec, Simulation, SsaOptions, State};
    use molseq_crn::Crn;
    use molseq_sweep::{run_sweep, SweepOptions};

    fn decay_setup() -> (Crn, CompiledCrn, State) {
        let crn: Crn = "X -> 0 @slow".parse().unwrap();
        let x = crn.find_species("X").unwrap();
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let mut init = State::new(&crn);
        init.set(x, 30.0);
        (crn, compiled, init)
    }

    #[test]
    fn seeds_are_deterministic_distinct_and_index_free() {
        let (_crn, compiled, _init) = decay_setup();
        let rep = Replicator::new(&compiled, 42);
        let seeds: Vec<u64> = (0..32).map(|r| rep.seed(r)).collect();
        assert_eq!(seeds, (0..32).map(|r| rep.seed(r)).collect::<Vec<_>>());
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len(), "no collisions");
        assert_ne!(
            Replicator::new(&compiled, 42).seed(0),
            Replicator::new(&compiled, 43).seed(0)
        );
    }

    #[test]
    fn replicate_results_are_stable_under_job_reordering() {
        // The same replicates embedded at different positions of a sweep
        // must produce identical values: seeds are baked in at job
        // construction, not derived from the job index.
        let (crn, compiled, init) = decay_setup();
        let x = crn.find_species("X").unwrap();
        let rep = Replicator::new(&compiled, 7);
        let run_one = {
            let crn = &crn;
            let init = &init;
            move |compiled: &CompiledCrn, seed: u64| {
                let opts = SsaOptions::default().with_t_end(0.4).with_seed(seed);
                Simulation::new(crn, compiled)
                    .init(init)
                    .options(opts)
                    .run()
                    .map(|tr| tr.final_state()[x.index()])
                    .map_err(JobError::failed)
            }
        };

        let forward = rep.jobs("fwd", 6, move |c, seed, _ctx| run_one(c, seed));
        let mut shuffled = rep.jobs("rev", 6, move |c, seed, _ctx| run_one(c, seed));
        shuffled.reverse();

        let a = run_sweep(&forward, &SweepOptions::default());
        let b = run_sweep(&shuffled, &SweepOptions::default().with_workers(3));
        for r in 0..6 {
            let fwd = a
                .cells
                .iter()
                .find(|c| c.label.contains(&format!("rep={r} ")))
                .unwrap();
            let rev = b
                .cells
                .iter()
                .find(|c| c.label.contains(&format!("rep={r} ")))
                .unwrap();
            assert_eq!(
                fwd.value().expect("forward replicate succeeded"),
                rev.value().expect("reordered replicate succeeded"),
                "replicate {r} changed value when reordered"
            );
        }
    }

    #[test]
    fn labels_carry_replicate_and_seed() {
        let (_crn, compiled, _init) = decay_setup();
        let rep = Replicator::new(&compiled, 3);
        let jobs = rep.jobs("cell n=8", 2, |_c, _seed, _ctx| Ok::<_, JobError>(0u8));
        assert!(jobs[0].label().starts_with("cell n=8 rep=0 seed="));
        assert!(jobs[1].label().starts_with("cell n=8 rep=1 seed="));
        assert!(jobs[0].label().ends_with(&rep.seed(0).to_string()));
    }
}
