//! Lock-step batched ODE integration: N structurally identical cells, one
//! symbolic analysis, structure-of-arrays state.
//!
//! The rate-ratio sweeps behind the paper's figures simulate one network
//! under many rate bindings: every cell shares the CRN structure, hence
//! the Jacobian sparsity pattern, hence the minimum-degree symbolic
//! factorization of `W = I − h·d·J`. [`run_ode_batch`] exploits that by
//! advancing up to `width` cells in lock-step through one Rosenbrock
//! driver: per attempted step it evaluates all lanes' fluxes and Jacobian
//! nonzeros with shared index decoding, assembles and factors every
//! stale lane's `W` in one pass over the shared elimination structure,
//! and back-solves the three stage systems for all lanes at once.
//!
//! State lives species-major, lane-contiguous (`x[i * width + l]`), so
//! the inner loops are stride-1 over lanes and autovectorize — no
//! intrinsics, plain `std`.
//!
//! **Determinism contract.** Every lane reproduces the scalar
//! [`run_ode`](crate::ode) path *bit for bit*, at any batch width: lanes
//! share index structure, never floating-point values. Each lane keeps
//! its own step controller (`h`), Jacobian freshness flags, cached-LU
//! key and metrics; everywhere the scalar code path has a data-dependent
//! skip (zero flux, zero Jacobian partial, zero multiplier, cached
//! factorization), the batched kernels use a per-lane select of the same
//! condition, preserving even `-0.0` signs. Lanes that finish, fail, or
//! get budget-cut *retire*: their state is zeroed (keeping the unmasked
//! full-width arithmetic finite) and they stop contributing bookkeeping,
//! while surviving lanes continue unperturbed.

use crate::compiled::CompiledCrn;
use crate::events::{Injection, TriggerRuntime};
use crate::metrics::SimMetrics;
use crate::ode::{expected_records, initial_step, OdeMethod, OdeOptions};
use crate::stiff::{assemble_w, Lu, Symbolic, C32, D};
use crate::{Schedule, SimError, State, Trace};
use molseq_crn::Crn;
use std::ops::ControlFlow;

/// One cell of a batched run: its rate-bound network, initial state,
/// event schedule and integrator options.
///
/// All lanes passed to one [`run_ode_batch`] call must share the network
/// *structure* (same species, reactions and Jacobian pattern — e.g.
/// produced by [`CompiledCrn::rebind`] from one compilation); only the
/// rate constants, initial states, schedules and options may differ.
pub struct BatchLane<'a, 'h> {
    /// Rate-bound network for this lane.
    pub compiled: &'a CompiledCrn,
    /// Initial state (must match the network's species count).
    pub init: &'a State,
    /// Timed injections and condition triggers for this lane.
    pub schedule: &'a Schedule,
    /// Integrator options. The method must be [`OdeMethod::Rosenbrock`]
    /// (the batched engine is the stiff path; other methods stay scalar).
    pub options: OdeOptions<'h>,
}

/// Reusable storage for [`run_ode_batch`]: the shared symbolic
/// factorization plus every structure-of-arrays buffer, sized lazily per
/// call and reused across calls (harness retries, consecutive sweep
/// batches over the same network structure pay no re-analysis and no
/// re-allocation).
#[derive(Default)]
pub struct BatchedOdeWorkspace {
    sym: Option<Symbolic>,
    /// SoA state and stage buffers, `n × width`, lane-contiguous.
    x: Vec<f64>,
    x_prev: Vec<f64>,
    ytmp: Vec<f64>,
    y_new: Vec<f64>,
    f0: Vec<f64>,
    f1: Vec<f64>,
    f2: Vec<f64>,
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    err: Vec<f64>,
    solve_scratch: Vec<f64>,
    /// Jacobian nonzeros, `nnz × width`.
    jac_vals: Vec<f64>,
    /// The `W` matrices, `n² × width` (entry-major, lane-contiguous).
    w: Vec<f64>,
    /// Per-lane rate constants, `reactions × width`.
    ks: Vec<f64>,
    // width-long lane scratch
    flux: Vec<f64>,
    inv: Vec<f64>,
    mul: Vec<f64>,
    h_try: Vec<f64>,
    hd: Vec<f64>,
    coeff: Vec<f64>,
    need: Vec<bool>,
    okf: Vec<bool>,
    upd: Vec<bool>,
    solve_mask: Vec<bool>,
    dense_mask: Vec<bool>,
    attempting: Vec<bool>,
    step_fail: Vec<bool>,
    needs_jac: Vec<bool>,
    // n- and nnz-long single-lane scratch
    lane_buf: Vec<f64>,
    lane_jac: Vec<f64>,
    sample: Vec<f64>,
    /// Per-lane pivoted dense fallback factors (kept across calls only as
    /// buffer capacity; numerically rebuilt whenever used).
    dense: Vec<Option<Lu>>,
}

impl BatchedOdeWorkspace {
    /// An empty workspace; buffers are allocated on first use.
    #[must_use]
    pub fn new() -> Self {
        BatchedOdeWorkspace::default()
    }

    fn prepare(&mut self, reference: &CompiledCrn, wd: usize) {
        if !self.sym.as_ref().is_some_and(|s| s.matches(reference)) {
            self.sym = Some(Symbolic::new(reference));
        }
        let n = reference.species_count();
        let nnz = reference.jacobian_nnz();
        for buf in [
            &mut self.x,
            &mut self.x_prev,
            &mut self.ytmp,
            &mut self.y_new,
            &mut self.f0,
            &mut self.f1,
            &mut self.f2,
            &mut self.k1,
            &mut self.k2,
            &mut self.k3,
            &mut self.err,
            &mut self.solve_scratch,
        ] {
            buf.clear();
            buf.resize(n * wd, 0.0);
        }
        self.jac_vals.clear();
        self.jac_vals.resize(nnz * wd, 0.0);
        self.w.clear();
        self.w.resize(n * n * wd, 0.0);
        for buf in [
            &mut self.flux,
            &mut self.inv,
            &mut self.mul,
            &mut self.h_try,
            &mut self.hd,
            &mut self.coeff,
        ] {
            buf.clear();
            buf.resize(wd, 0.0);
        }
        for buf in [
            &mut self.need,
            &mut self.okf,
            &mut self.upd,
            &mut self.solve_mask,
            &mut self.dense_mask,
            &mut self.attempting,
            &mut self.step_fail,
            &mut self.needs_jac,
        ] {
            buf.clear();
            buf.resize(wd, false);
        }
        self.lane_buf.clear();
        self.lane_buf.resize(n, 0.0);
        self.lane_jac.clear();
        self.lane_jac.resize(nnz, 0.0);
        self.sample.clear();
        self.sample.resize(n, 0.0);
        self.dense.clear();
        self.dense.resize_with(wd, || None);
    }
}

/// Copies lane `l` of a lane-contiguous SoA buffer into a contiguous
/// single-cell buffer.
pub(crate) fn extract_lane(soa: &[f64], buf: &mut [f64], wd: usize, l: usize) {
    for (i, b) in buf.iter_mut().enumerate() {
        *b = soa[i * wd + l];
    }
}

/// Scatters a contiguous single-cell buffer back into lane `l` of a
/// lane-contiguous SoA buffer.
pub(crate) fn store_lane(soa: &mut [f64], buf: &[f64], wd: usize, l: usize) {
    for (i, &b) in buf.iter().enumerate() {
        soa[i * wd + l] = b;
    }
}

/// Everything one lane owns: the scalar driver's locals, per-lane.
struct LaneState<'a, 'h> {
    compiled: &'a CompiledCrn,
    schedule: &'a Schedule,
    opts: OdeOptions<'h>,
    rtol: f64,
    atol: f64,
    injections: Vec<Injection>,
    next_injection: usize,
    triggers: TriggerRuntime,
    trace: Trace,
    metrics: SimMetrics,
    t: f64,
    segment_end: f64,
    h_adaptive: f64,
    next_record: f64,
    steps_used: usize,
    // Rosenbrock cache flags, mirroring `RosenbrockWork`
    jac_fresh: bool,
    jac_age: usize,
    lu_valid: bool,
    lu_sparse: bool,
    lu_h: f64,
    factorizations: u64,
    /// `Some(Ok(()))` once the trace is complete, `Some(Err)` on failure.
    done: Option<Result<(), SimError>>,
}

impl<'a, 'h> LaneState<'a, 'h> {
    fn new(crn: &Crn, lane: &BatchLane<'a, 'h>) -> Self {
        let opts = lane.options;
        let (rtol, atol) = match opts.method() {
            OdeMethod::Rosenbrock { rtol, atol } => (rtol, atol),
            other => panic!("run_ode_batch supports only OdeMethod::Rosenbrock, got {other:?}"),
        };
        // validation mirrors run_ode's, per lane
        let done = if lane.compiled.species_count() != crn.species_count() {
            Some(Err(SimError::DimensionMismatch {
                supplied: lane.compiled.species_count(),
                expected: crn.species_count(),
            }))
        } else if lane.init.len() != crn.species_count() {
            Some(Err(SimError::DimensionMismatch {
                supplied: lane.init.len(),
                expected: crn.species_count(),
            }))
        } else if !opts.t_start().is_finite()
            || !opts.t_end().is_finite()
            || opts.t_end() <= opts.t_start()
        {
            Some(Err(SimError::BadTimeSpan {
                t_start: opts.t_start(),
                t_end: opts.t_end(),
            }))
        } else {
            None
        };
        let mut trace = Trace::with_capacity(crn, expected_records(&opts, lane.schedule));
        let triggers = TriggerRuntime::new(lane.schedule, lane.init.as_slice());
        if done.is_none() {
            trace.push(opts.t_start(), lane.init.as_slice());
        }
        LaneState {
            compiled: lane.compiled,
            schedule: lane.schedule,
            opts,
            rtol,
            atol,
            injections: lane.schedule.sorted_injections(),
            next_injection: 0,
            triggers,
            trace,
            metrics: SimMetrics::default(),
            t: opts.t_start(),
            segment_end: f64::NAN,
            h_adaptive: initial_step(&opts),
            next_record: opts.t_start() + opts.record_interval(),
            steps_used: 0,
            jac_fresh: false,
            jac_age: 0,
            lu_valid: false,
            lu_sparse: false,
            lu_h: f64::NAN,
            factorizations: 0,
            done,
        }
    }
}

/// Finishes a lane: flushes its metrics (every exit path reports its
/// cost, as in the scalar driver), records the retirement ordinal, marks
/// it done and zeroes its state lanes so the unmasked full-width stage
/// arithmetic stays finite for the survivors.
fn retire_lane(
    st: &mut LaneState,
    outcome: Result<(), SimError>,
    x: &mut [f64],
    wd: usize,
    l: usize,
    retired: &mut u64,
) {
    let n = st.compiled.species_count();
    st.metrics.final_time = st.t;
    st.metrics.lu_factorizations = st.factorizations;
    st.metrics.batch_width = wd as u64;
    st.metrics.lanes_retired = *retired;
    *retired += 1;
    SimMetrics::flush(st.opts.metrics_sink(), st.metrics);
    st.done = Some(outcome);
    for i in 0..n {
        x[i * wd + l] = 0.0;
    }
}

/// Replays the scalar driver's between-steps bookkeeping for one lane
/// until it is either ready to attempt a step (returns `true`) or done
/// (completed, step-limited — returns `false` with `st.done` set).
fn advance_to_attempt(
    st: &mut LaneState,
    x: &mut [f64],
    lane_buf: &mut [f64],
    wd: usize,
    l: usize,
    retired: &mut u64,
) -> bool {
    loop {
        let t_end = st.opts.t_end();
        if st.t < t_end {
            let segment_end = st
                .injections
                .get(st.next_injection)
                .map_or(t_end, |inj| inj.time.clamp(st.opts.t_start(), t_end));
            if segment_end > st.t && st.t < segment_end - 1e-15 {
                // about to attempt a step: the scalar loop checks the
                // budget first
                if st.steps_used >= st.opts.max_steps() {
                    retire_lane(
                        st,
                        Err(SimError::StepLimitExceeded {
                            reached: st.t,
                            t_end,
                            max_steps: st.opts.max_steps(),
                        }),
                        x,
                        wd,
                        l,
                        retired,
                    );
                    return false;
                }
                st.segment_end = segment_end;
                return true;
            }
            // segment boundary: apply due injections, then poll triggers
            let mut injected = false;
            while let Some(inj) = st.injections.get(st.next_injection) {
                if inj.time <= st.t + 1e-12 {
                    x[inj.species.index() * wd + l] += inj.amount;
                    st.next_injection += 1;
                    injected = true;
                } else {
                    break;
                }
            }
            if injected {
                extract_lane(x, lane_buf, wd, l);
                st.trace.push(st.t, lane_buf);
                let fired = st.triggers.poll(st.schedule, st.t, lane_buf);
                store_lane(x, lane_buf, wd, l);
                for f in fired {
                    st.trace.push_mark(st.t, f);
                }
                // the state jumped: cached Jacobian is for the old state
                st.jac_fresh = false;
                st.jac_age = 0;
            }
            continue;
        }
        // span complete: flush, push the final sample, succeed
        extract_lane(x, lane_buf, wd, l);
        retire_lane(st, Ok(()), x, wd, l, retired);
        st.trace.push(st.t, lane_buf);
        return false;
    }
}

/// Integrates up to `lanes.len()` structurally identical cells in
/// lock-step through one shared symbolic analysis, returning one result
/// per lane in input order. See the module docs for the layout and the
/// determinism contract; each lane's trace, metrics and error behavior
/// are bit-identical to running it alone through
/// [`Simulation`](crate::Simulation).
///
/// # Panics
///
/// Panics if any lane's method is not [`OdeMethod::Rosenbrock`], or if
/// the lanes do not all share one network structure (callers group by
/// [`molseq_crn::Crn::structural_hash`]).
#[allow(clippy::too_many_lines)]
pub fn run_ode_batch<'h>(
    crn: &Crn,
    lanes: &[BatchLane<'_, 'h>],
    workspace: &mut BatchedOdeWorkspace,
) -> Vec<Result<Trace, SimError>> {
    let wd = lanes.len();
    if wd == 0 {
        return Vec::new();
    }
    let mut states: Vec<LaneState> = lanes.iter().map(|lane| LaneState::new(crn, lane)).collect();
    let Some(reference) = states.iter().find(|s| s.done.is_none()).map(|s| s.compiled) else {
        // every lane failed validation
        return states
            .into_iter()
            .map(|s| Err(s.done.expect("validated").expect_err("failed")))
            .collect();
    };
    let n = reference.species_count();
    for st in states.iter().filter(|s| s.done.is_none()) {
        let (rp, ci) = st.compiled.jacobian_pattern();
        let (rp0, ci0) = reference.jacobian_pattern();
        assert!(
            st.compiled.species_count() == n && rp == rp0 && ci == ci0,
            "run_ode_batch lanes must share one network structure"
        );
    }
    workspace.prepare(reference, wd);
    let BatchedOdeWorkspace {
        sym,
        x,
        x_prev,
        ytmp,
        y_new,
        f0,
        f1,
        f2,
        k1,
        k2,
        k3,
        err,
        solve_scratch,
        jac_vals,
        w,
        ks,
        flux,
        inv,
        mul,
        h_try,
        hd,
        coeff,
        need,
        okf,
        upd,
        solve_mask,
        dense_mask,
        attempting,
        step_fail,
        needs_jac,
        lane_buf,
        lane_jac,
        sample,
        dense,
    } = workspace;
    let sym = sym.as_ref().expect("prepared above");
    {
        // per-lane rate constants; invalid lanes never step, any
        // structurally identical stand-in keeps the gather total
        let lane_refs: Vec<&CompiledCrn> = states
            .iter()
            .map(|s| {
                if s.done.is_none() {
                    s.compiled
                } else {
                    reference
                }
            })
            .collect();
        reference.gather_rates(&lane_refs, ks);
    }
    for (l, lane) in lanes.iter().enumerate() {
        if states[l].done.is_none() {
            store_lane(x, lane.init.as_slice(), wd, l);
        }
    }
    // `true` exactly while every lane's reuse horizon is 0 (the default):
    // then any lane the refresh pass skips holds a fresh age-0 Jacobian
    // evaluated at its *current* state, so the full-width recompute below
    // reproduces its cached values bit-for-bit and the whole batch can
    // share one kernel pass. Any nonzero horizon means deliberately stale
    // lanes, which must keep their bits — those batches refresh per lane.
    let uniform_reuse_zero = states.iter().all(|s| s.opts.jacobian_reuse() == 0);
    let mut retired: u64 = 0;

    loop {
        // --- bookkeeping: walk every live lane to its next attempt ---
        let mut any = false;
        for (l, st) in states.iter_mut().enumerate() {
            attempting[l] =
                st.done.is_none() && advance_to_attempt(st, x, lane_buf, wd, l, &mut retired);
            any |= attempting[l];
        }
        if !any {
            break;
        }

        // --- per-lane step-size selection ---
        x_prev.copy_from_slice(x);
        for (l, st) in states.iter().enumerate() {
            if attempting[l] {
                let h_cap = (st.segment_end - st.t).min(st.opts.h_max());
                h_try[l] = st.h_adaptive.min(h_cap).max(1e-14);
            }
            step_fail[l] = false;
        }

        // --- Jacobian refresh ---
        for (l, st) in states.iter().enumerate() {
            needs_jac[l] =
                attempting[l] && (!st.jac_fresh || st.jac_age > st.opts.jacobian_reuse());
        }
        if needs_jac.iter().any(|&b| b) {
            if uniform_reuse_zero {
                reference.jacobian_sparse_batch(ks, x, jac_vals, flux);
            } else {
                for (l, st) in states.iter().enumerate() {
                    if needs_jac[l] {
                        extract_lane(x, lane_buf, wd, l);
                        st.compiled.jacobian_sparse(lane_buf, lane_jac);
                        for (s, &v) in lane_jac.iter().enumerate() {
                            jac_vals[s * wd + l] = v;
                        }
                    }
                }
            }
            for (l, st) in states.iter_mut().enumerate() {
                if needs_jac[l] {
                    st.jac_fresh = true;
                    st.jac_age = 0;
                    // any cached factorization was built from old values
                    st.lu_valid = false;
                }
            }
        }

        // --- factorization (shared symbolic pass, masked per lane) ---
        for (l, st) in states.iter().enumerate() {
            need[l] = attempting[l] && (!st.lu_valid || st.lu_h != h_try[l]);
            hd[l] = h_try[l] * D;
        }
        if need.iter().any(|&b| b) {
            // when every lane is either factored now or retired, no cached
            // w bits can ever be read again, so the kernels may take their
            // unmasked fast paths (needed lanes stay bit-identical)
            let all_need = states
                .iter()
                .enumerate()
                .all(|(l, st)| need[l] || st.done.is_some());
            sym.assemble_batch(reference, jac_vals, hd, need, all_need, w);
            sym.factor_batch(w, need, okf, inv, mul, upd, all_need);
            for (l, st) in states.iter_mut().enumerate() {
                if !need[l] {
                    continue;
                }
                st.lu_valid = false;
                if okf[l] {
                    st.lu_sparse = true;
                    st.lu_valid = true;
                    st.lu_h = h_try[l];
                    st.factorizations += 1;
                } else {
                    // the guard tripped for this lane: rebuild its W
                    // unpermuted and fall back to the pivoted dense LU,
                    // exactly as the scalar step does
                    extract_lane(jac_vals, lane_jac, wd, l);
                    let (mut buf, piv) = dense[l]
                        .take()
                        .map_or_else(|| (Vec::new(), Vec::new()), Lu::into_buffers);
                    buf.clear();
                    buf.resize(n * n, 0.0);
                    assemble_w(st.compiled, lane_jac, hd[l], &mut buf);
                    match Lu::factor(buf, piv, n) {
                        Ok(lu) => {
                            dense[l] = Some(lu);
                            st.lu_sparse = false;
                            st.lu_valid = true;
                            st.lu_h = h_try[l];
                            st.factorizations += 1;
                        }
                        Err(_) => {
                            // singular W: this lane rejects and retries
                            // from an exact Jacobian at a smaller step
                            st.jac_fresh = false;
                            step_fail[l] = true;
                        }
                    }
                }
            }
        }
        // `all_solve`: every lane is either solved through the sparse sweep
        // or retired — the solve scatter can skip its write mask
        let mut all_solve = true;
        for (l, st) in states.iter().enumerate() {
            let live = attempting[l] && !step_fail[l] && st.lu_valid;
            solve_mask[l] = live && st.lu_sparse;
            dense_mask[l] = live && !st.lu_sparse;
            all_solve &= solve_mask[l] || st.done.is_some();
        }

        // --- the three Rosenbrock stages, full width ---
        reference.derivative_batch(ks, x, f0, flux);
        k1.copy_from_slice(f0);
        stage_solve(
            sym,
            w,
            k1,
            solve_scratch,
            solve_mask,
            all_solve,
            dense_mask,
            dense,
            lane_buf,
            wd,
        );
        for (c, &h) in coeff.iter_mut().zip(h_try.iter()) {
            *c = 0.5 * h;
        }
        saxpy(ytmp, x, coeff, k1);
        reference.derivative_batch(ks, ytmp, f1, flux);
        for ((o, &a), &b) in k2.iter_mut().zip(f1.iter()).zip(k1.iter()) {
            *o = a - b;
        }
        stage_solve(
            sym,
            w,
            k2,
            solve_scratch,
            solve_mask,
            all_solve,
            dense_mask,
            dense,
            lane_buf,
            wd,
        );
        for (o, &a) in k2.iter_mut().zip(k1.iter()) {
            *o += a;
        }
        saxpy(y_new, x, h_try, k2);
        reference.derivative_batch(ks, y_new, f2, flux);
        for i in 0..k3.len() {
            k3[i] = f2[i] - C32 * (k2[i] - f1[i]) - 2.0 * (k1[i] - f0[i]);
        }
        stage_solve(
            sym,
            w,
            k3,
            solve_scratch,
            solve_mask,
            all_solve,
            dense_mask,
            dense,
            lane_buf,
            wd,
        );
        for (c, &h) in coeff.iter_mut().zip(h_try.iter()) {
            *c = h / 6.0;
        }
        for row in 0..n {
            let base = row * wd;
            for l in 0..wd {
                err[base + l] = coeff[l] * (k1[base + l] - 2.0 * k2[base + l] + k3[base + l]);
            }
        }

        // --- per-lane controller, projection, recording, triggers ---
        for (l, st) in states.iter_mut().enumerate() {
            if !attempting[l] {
                continue;
            }
            let (h_taken, accepted) = if step_fail[l] {
                st.h_adaptive = (h_try[l] * 0.5).max(1e-14);
                (0.0, false)
            } else {
                let mut err_ratio = 0.0f64;
                for i in 0..n {
                    let scale =
                        st.atol + st.rtol * x[i * wd + l].abs().max(y_new[i * wd + l].abs());
                    err_ratio = err_ratio.max(err[i * wd + l].abs() / scale);
                }
                if err_ratio <= 1.0 {
                    for i in 0..n {
                        x[i * wd + l] = y_new[i * wd + l];
                    }
                    st.jac_age += 1;
                    let grow = if err_ratio > 0.0 {
                        0.9 * err_ratio.powf(-1.0 / 3.0)
                    } else {
                        5.0
                    };
                    st.h_adaptive = (h_try[l] * grow.clamp(0.2, 5.0)).min(st.opts.h_max());
                    (h_try[l], true)
                } else {
                    if st.jac_age > 0 {
                        st.jac_fresh = false;
                    }
                    let shrink = (0.9 * err_ratio.powf(-1.0 / 3.0)).clamp(0.1, 0.9);
                    st.h_adaptive = (h_try[l] * shrink).max(1e-14);
                    (0.0, false)
                }
            };
            st.steps_used += 1;
            if accepted {
                st.metrics.ode_steps_accepted += 1;
            } else {
                st.metrics.ode_steps_rejected += 1;
            }
            if let Some(hook) = st.opts.step_hook() {
                if let ControlFlow::Break(reason) = hook(st.steps_used as u64, st.t) {
                    retire_lane(
                        st,
                        Err(SimError::Interrupted { time: st.t, reason }),
                        x,
                        wd,
                        l,
                        &mut retired,
                    );
                    continue;
                }
            }
            if !accepted {
                continue;
            }
            let t_prev = st.t;
            st.t += h_taken;
            let mut nonfinite = None;
            for i in 0..n {
                let v = x[i * wd + l];
                if !v.is_finite() {
                    nonfinite = Some(i);
                    break;
                }
                if v < 0.0 {
                    x[i * wd + l] = 0.0;
                }
            }
            if let Some(species) = nonfinite {
                retire_lane(
                    st,
                    Err(SimError::NonFiniteState {
                        time: st.t,
                        species,
                    }),
                    x,
                    wd,
                    l,
                    &mut retired,
                );
                continue;
            }
            while st.next_record <= st.t + 1e-12 {
                let alpha = if h_taken > 0.0 {
                    ((st.next_record - t_prev) / h_taken).clamp(0.0, 1.0)
                } else {
                    1.0
                };
                for (i, s) in sample.iter_mut().enumerate() {
                    let a = x_prev[i * wd + l];
                    *s = a + alpha * (x[i * wd + l] - a);
                }
                st.trace.push(st.next_record, sample);
                st.next_record += st.opts.record_interval();
            }
            extract_lane(x, lane_buf, wd, l);
            let fired = st.triggers.poll(st.schedule, st.t, lane_buf);
            store_lane(x, lane_buf, wd, l);
            for &f in &fired {
                st.trace.push_mark(st.t, f);
                st.trace.push(st.t, lane_buf);
            }
            if !fired.is_empty() {
                // queue injections may have jumped the state
                st.jac_fresh = false;
                st.jac_age = 0;
            }
        }
    }

    states
        .into_iter()
        .map(|st| match st.done.expect("driver drained every lane") {
            Ok(()) => Ok(st.trace),
            Err(e) => Err(e),
        })
        .collect()
}

/// `out[i,l] = base[i,l] + coeff[l] · v[i,l]`, full width.
fn saxpy(out: &mut [f64], base: &[f64], coeff: &[f64], v: &[f64]) {
    let wd = coeff.len();
    for ((o_row, b_row), v_row) in out
        .chunks_exact_mut(wd)
        .zip(base.chunks_exact(wd))
        .zip(v.chunks_exact(wd))
    {
        for (((o, &b), &c), &vv) in o_row.iter_mut().zip(b_row).zip(coeff).zip(v_row) {
            *o = b + c * vv;
        }
    }
}

/// Solves one stage system for every live lane: sparse lanes through the
/// shared batched triangular sweeps (write-back masked to them), dense
/// fallback lanes extracted, solved scalar and scattered back.
#[allow(clippy::too_many_arguments)]
fn stage_solve(
    sym: &Symbolic,
    w: &[f64],
    b: &mut [f64],
    scratch: &mut [f64],
    solve_mask: &[bool],
    all_solve: bool,
    dense_mask: &[bool],
    dense: &[Option<Lu>],
    lane_buf: &mut [f64],
    wd: usize,
) {
    for (l, &is_dense) in dense_mask.iter().enumerate() {
        if is_dense {
            extract_lane(b, lane_buf, wd, l);
            dense[l].as_ref().expect("factored dense").solve(lane_buf);
            store_lane(b, lane_buf, wd, l);
        }
    }
    sym.solve_batch(w, b, scratch, solve_mask, all_solve);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OdeOptions, SimSpec, Simulation};
    use molseq_crn::{Crn, RateAssignment};
    use std::cell::Cell;

    fn lane_opts(t_end: f64) -> OdeOptions<'static> {
        OdeOptions::default().with_t_end(t_end)
    }

    fn scalar_trace(
        crn: &Crn,
        compiled: &CompiledCrn,
        init: &State,
        schedule: &Schedule,
        opts: &OdeOptions,
    ) -> Result<Trace, SimError> {
        Simulation::new(crn, compiled)
            .init(init)
            .schedule(schedule)
            .options(*opts)
            .run()
    }

    #[test]
    fn soa_pack_unpack_round_trips() {
        let wd = 4;
        let n = 5;
        let mut soa: Vec<f64> = (0..n * wd).map(|i| i as f64 * 0.5 - 3.0).collect();
        // include signed zero and subnormal bit patterns
        soa[0] = -0.0;
        soa[7] = f64::MIN_POSITIVE / 2.0;
        let reference = soa.clone();
        let mut buf = vec![0.0; n];
        for l in 0..wd {
            extract_lane(&soa, &mut buf, wd, l);
            store_lane(&mut soa, &buf, wd, l);
        }
        assert_eq!(
            soa.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn width_one_is_bit_identical_to_scalar() {
        // injections + a trigger exercise every bookkeeping path
        let crn: Crn = "A + B -> C @fast\nC -> A @slow\nA -> 0 @slow"
            .parse()
            .unwrap();
        let a = crn.find_species("A").unwrap();
        let b = crn.find_species("B").unwrap();
        let mut init = State::new(&crn);
        init.set(a, 2.0).set(b, 1.5);
        let schedule = Schedule::new()
            .inject(3.0, b, 2.0)
            .trigger(crate::Trigger::mark(crate::Condition::Above {
                species: crn.find_species("C").unwrap(),
                threshold: 0.4,
            }));
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let opts = lane_opts(12.0);
        let scalar = scalar_trace(&crn, &compiled, &init, &schedule, &opts).unwrap();
        let mut ws = BatchedOdeWorkspace::new();
        let lanes = [BatchLane {
            compiled: &compiled,
            init: &init,
            schedule: &schedule,
            options: opts,
        }];
        let batched = run_ode_batch(&crn, &lanes, &mut ws).pop().unwrap().unwrap();
        assert_eq!(scalar, batched);
        // a reused workspace must stay bit-identical
        let again = run_ode_batch(&crn, &lanes, &mut ws).pop().unwrap().unwrap();
        assert_eq!(scalar, again);
    }

    #[test]
    fn wide_batch_lanes_match_their_scalar_runs_bitwise() {
        let crn: Crn = "X -> 2X @slow\n2X -> X @fast\nX -> 0 @slow"
            .parse()
            .unwrap();
        let xs = crn.find_species("X").unwrap();
        let mut init = State::new(&crn);
        init.set(xs, 1.25);
        let base = CompiledCrn::new(&crn, &SimSpec::default());
        let ratios = [10.0, 100.0, 1e3, 1e4, 20.0, 300.0, 4e3];
        let compiled: Vec<CompiledCrn> = ratios
            .iter()
            .map(|&r| base.rebind(&SimSpec::new(RateAssignment::from_ratio(r))))
            .collect();
        let schedule = Schedule::new();
        let opts = lane_opts(8.0);
        let mut ws = BatchedOdeWorkspace::new();
        let lanes: Vec<BatchLane> = compiled
            .iter()
            .map(|c| BatchLane {
                compiled: c,
                init: &init,
                schedule: &schedule,
                options: opts,
            })
            .collect();
        let batched = run_ode_batch(&crn, &lanes, &mut ws);
        for (c, result) in compiled.iter().zip(batched) {
            let scalar = scalar_trace(&crn, c, &init, &schedule, &opts).unwrap();
            assert_eq!(scalar, result.unwrap());
        }
    }

    #[test]
    fn batched_metrics_match_scalar_counters() {
        let crn: Crn = "A -> B @fast\n0 -> A @slow".parse().unwrap();
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let init = State::new(&crn);
        let schedule = Schedule::new();
        let scalar_sink = Cell::new(SimMetrics::default());
        let opts = lane_opts(5.0);
        scalar_trace(
            &crn,
            &compiled,
            &init,
            &schedule,
            &opts.with_metrics(&scalar_sink),
        )
        .unwrap();
        let batch_sink = Cell::new(SimMetrics::default());
        let lanes = [BatchLane {
            compiled: &compiled,
            init: &init,
            schedule: &schedule,
            options: opts.with_metrics(&batch_sink),
        }];
        run_ode_batch(&crn, &lanes, &mut BatchedOdeWorkspace::new())
            .pop()
            .unwrap()
            .unwrap();
        let s = scalar_sink.get();
        let b = batch_sink.get();
        assert_eq!(s.ode_steps_accepted, b.ode_steps_accepted);
        assert_eq!(s.ode_steps_rejected, b.ode_steps_rejected);
        assert_eq!(s.lu_factorizations, b.lu_factorizations);
        assert_eq!(s.final_time, b.final_time);
        assert_eq!(b.batch_width, 1);
        assert_eq!(b.lanes_retired, 0);
    }

    #[test]
    fn budget_cut_retires_one_lane_and_leaves_the_rest_bit_identical() {
        let crn: Crn = "X -> 2X @slow\n2X -> X @fast".parse().unwrap();
        let xs = crn.find_species("X").unwrap();
        let mut init = State::new(&crn);
        init.set(xs, 1.0);
        let base = CompiledCrn::new(&crn, &SimSpec::default());
        let compiled: Vec<CompiledCrn> = [50.0, 500.0, 5000.0]
            .iter()
            .map(|&r| base.rebind(&SimSpec::new(RateAssignment::from_ratio(r))))
            .collect();
        let schedule = Schedule::new();
        let opts = lane_opts(6.0);
        // cut lane 1 after 10 attempted steps
        let hook = |steps: u64, _t: f64| {
            if steps >= 10 {
                ControlFlow::Break("budget".to_owned())
            } else {
                ControlFlow::Continue(())
            }
        };
        let cut_opts = opts.with_step_hook(&hook);
        let sink = Cell::new(SimMetrics::default());
        let lanes: Vec<BatchLane> = compiled
            .iter()
            .enumerate()
            .map(|(i, c)| BatchLane {
                compiled: c,
                init: &init,
                schedule: &schedule,
                options: if i == 1 {
                    cut_opts
                } else {
                    opts.with_metrics(&sink)
                },
            })
            .collect();
        let mut results = run_ode_batch(&crn, &lanes, &mut BatchedOdeWorkspace::new());
        let r2 = results.pop().unwrap();
        let r1 = results.pop().unwrap();
        let r0 = results.pop().unwrap();
        assert!(
            matches!(r1, Err(SimError::Interrupted { ref reason, .. }) if reason == "budget"),
            "{r1:?}"
        );
        // survivors match their solo scalar runs exactly
        for (c, r) in [(&compiled[0], r0), (&compiled[2], r2)] {
            let scalar = scalar_trace(&crn, c, &init, &schedule, &opts).unwrap();
            assert_eq!(scalar, r.unwrap());
        }
        // the cut lane retired first: the survivors each saw one earlier
        // retirement, and both report the batch width
        let m = sink.get();
        assert_eq!(m.batch_width, 3);
        assert_eq!(m.lanes_retired, 1 + 2);
    }

    #[test]
    fn validation_errors_are_per_lane() {
        let crn: Crn = "X -> 0 @slow".parse().unwrap();
        let xs = crn.find_species("X").unwrap();
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let mut good_init = State::new(&crn);
        good_init.set(xs, 1.0);
        let bad_init = State::from_vec(vec![1.0, 2.0]);
        let schedule = Schedule::new();
        let opts = lane_opts(1.0);
        let bad_span = lane_opts(1.0).with_t_start(5.0);
        let lanes = [
            BatchLane {
                compiled: &compiled,
                init: &good_init,
                schedule: &schedule,
                options: opts,
            },
            BatchLane {
                compiled: &compiled,
                init: &bad_init,
                schedule: &schedule,
                options: opts,
            },
            BatchLane {
                compiled: &compiled,
                init: &good_init,
                schedule: &schedule,
                options: bad_span,
            },
        ];
        let results = run_ode_batch(&crn, &lanes, &mut BatchedOdeWorkspace::new());
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(SimError::DimensionMismatch { .. })
        ));
        assert!(matches!(results[2], Err(SimError::BadTimeSpan { .. })));
        let scalar = scalar_trace(&crn, &compiled, &good_init, &schedule, &opts).unwrap();
        assert_eq!(&scalar, results[0].as_ref().unwrap());
    }

    #[test]
    fn empty_batch_returns_nothing() {
        let crn: Crn = "X -> 0 @slow".parse().unwrap();
        assert!(run_ode_batch(&crn, &[], &mut BatchedOdeWorkspace::new()).is_empty());
    }

    #[test]
    fn jacobian_reuse_lanes_match_scalar_bitwise() {
        // a nonzero reuse horizon forces the per-lane refresh path
        let crn: Crn = "A + B -> C @fast\nC -> A + B @slow\nA -> 0 @slow"
            .parse()
            .unwrap();
        let a = crn.find_species("A").unwrap();
        let b = crn.find_species("B").unwrap();
        let mut init = State::new(&crn);
        init.set(a, 3.0).set(b, 2.0);
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let schedule = Schedule::new();
        let plain = lane_opts(10.0);
        let reusing = plain.with_jacobian_reuse(4);
        let lanes = [
            BatchLane {
                compiled: &compiled,
                init: &init,
                schedule: &schedule,
                options: reusing,
            },
            BatchLane {
                compiled: &compiled,
                init: &init,
                schedule: &schedule,
                options: plain,
            },
        ];
        let results = run_ode_batch(&crn, &lanes, &mut BatchedOdeWorkspace::new());
        for (opts, result) in [reusing, plain].iter().zip(results) {
            let scalar = scalar_trace(&crn, &compiled, &init, &schedule, opts).unwrap();
            assert_eq!(scalar, result.unwrap());
        }
    }
}
