//! Lock-step batched stochastic simulation: N structurally identical
//! cells, one shared compiled network, structure-of-arrays propensities.
//!
//! The stochastic workloads behind E10 (and the Markov-chain / pattern-
//! recognition experiment families on the roadmap) simulate one network
//! under many seeds or rate bindings: every cell shares the CRN structure,
//! hence the reactant index lists the propensity evaluation walks.
//! [`run_ssa_batch`] and [`run_tau_batch`] exploit that by advancing up to
//! `width` lanes round-robin through one shared [`CompiledCrn`]: each
//! round recomputes every live lane's propensities in a single
//! species-major, lane-contiguous SoA kernel
//! (`CompiledCrn::propensity_batch`, stride-1 over lanes, autovectorized —
//! no intrinsics, plain `std`), then plays exactly one iteration of the
//! scalar event loop per lane — one Gillespie event (or plateau segment)
//! for SSA, one leap or exact step for tau-leaping. Tau lanes leap in
//! lock-step; SSA lanes advance round-robin toward the shared horizon
//! `t_end`.
//!
//! **Determinism contract.** Every lane reproduces the scalar
//! [`run_ssa`](crate::ssa)/[`run_tau`](crate::tau) path *bit for bit*, at
//! any batch width: lanes share index structure, never floating-point
//! values and never RNG draws. Each lane keeps its own `StdRng` stream
//! (seeded from its own options), its own event/leap counters and
//! metrics, and consumes draws in exactly the scalar order — the SoA
//! propensity row merely stands in for the scalar loop-top recompute,
//! which is a pure function of the lane's state and so bitwise equal.
//! Lanes that finish, fail, or get budget-cut *retire*: they flush their
//! metrics (stamped with the batch width and a retirement ordinal) and
//! stop contributing to the rounds, while surviving lanes continue
//! unperturbed.

use crate::compiled::CompiledCrn;
use crate::events::{Injection, TriggerRuntime};
use crate::metrics::SimMetrics;
use crate::ssa::{record_until, select_reaction, sync_back, to_count};
use crate::tau::{apply_injection, poisson, TauLeapOptions};
use crate::{Schedule, SimError, SsaOptions, State, Trace};
use molseq_crn::Crn;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::ops::ControlFlow;

/// One cell of a batched SSA run: its rate-bound network, initial state,
/// event schedule and options.
///
/// All lanes passed to one [`run_ssa_batch`] call must share the network
/// *structure* (same species and reactions — e.g. produced by
/// [`CompiledCrn::rebind`] from one compilation); only the rate
/// constants, initial states, schedules, seeds and options may differ.
pub struct SsaBatchLane<'a, 'h> {
    /// Rate-bound network for this lane.
    pub compiled: &'a CompiledCrn,
    /// Initial state (must match the network's species count).
    pub init: &'a State,
    /// Timed injections and condition triggers for this lane.
    pub schedule: &'a Schedule,
    /// Stochastic options (span, recording, seed, budget, hook, sink).
    pub options: SsaOptions<'h>,
}

/// One cell of a batched tau-leap run. Same structure-sharing rules as
/// [`SsaBatchLane`]; the schedule must carry no triggers (the scalar
/// tau-leaper does not support them, and neither does the batched one).
pub struct TauBatchLane<'a, 'h> {
    /// Rate-bound network for this lane.
    pub compiled: &'a CompiledCrn,
    /// Initial state (must match the network's species count).
    pub init: &'a State,
    /// Timed injections for this lane (no triggers).
    pub schedule: &'a Schedule,
    /// Tau-leap options (shared stochastic options plus `epsilon`).
    pub options: TauLeapOptions<'h>,
}

/// Reusable storage for [`run_ssa_batch`]/[`run_tau_batch`]: the
/// structure-of-arrays copy-number and propensity buffers, sized lazily
/// per call and reused across calls (consecutive sweep batches over the
/// same network structure pay no re-allocation).
#[derive(Default)]
pub struct BatchedStochWorkspace {
    /// SoA copy numbers, `species × width`, lane-contiguous.
    n_soa: Vec<i64>,
    /// SoA propensities, `reactions × width`, lane-contiguous.
    props: Vec<f64>,
    /// Per-lane rate constants, `reactions × width`.
    ks: Vec<f64>,
    /// One lane's extracted propensity row, `reactions` long.
    lane_props: Vec<f64>,
}

impl BatchedStochWorkspace {
    /// An empty workspace; buffers are allocated on first use.
    #[must_use]
    pub fn new() -> Self {
        BatchedStochWorkspace::default()
    }

    fn prepare(&mut self, reference: &CompiledCrn, wd: usize) {
        let n = reference.species_count();
        let m = reference.reaction_count();
        self.n_soa.clear();
        self.n_soa.resize(n * wd, 0);
        self.props.clear();
        self.props.resize(m * wd, 0.0);
        self.lane_props.clear();
        self.lane_props.resize(m, 0.0);
    }
}

/// Everything one stochastic lane owns: the scalar core's locals,
/// per-lane.
struct StochLane<'a, 'h> {
    compiled: &'a CompiledCrn,
    schedule: &'a Schedule,
    base: SsaOptions<'h>,
    epsilon: f64,
    injections: Vec<Injection>,
    next_injection: usize,
    triggers: TriggerRuntime,
    n: Vec<i64>,
    f: Vec<f64>,
    rng: StdRng,
    trace: Trace,
    stats: SimMetrics,
    t: f64,
    next_record: f64,
    /// SSA events fired (direct method) or loop steps taken (tau) — the
    /// counter the scalar cores budget against `max_events`.
    events: usize,
    /// An initial-state conversion error: in the scalar cores this is a
    /// *core* error (metrics flush), unlike validation errors (no flush).
    pending: Option<SimError>,
    /// `Some(Ok(()))` once the trace is complete, `Some(Err)` on failure.
    done: Option<Result<(), SimError>>,
}

impl<'a, 'h> StochLane<'a, 'h> {
    fn new(
        crn: &Crn,
        compiled: &'a CompiledCrn,
        init: &State,
        schedule: &'a Schedule,
        base: SsaOptions<'h>,
        epsilon: f64,
        validation: Option<SimError>,
    ) -> Self {
        let done = validation.map(Err);
        let mut pending = None;
        let mut n: Vec<i64> = Vec::with_capacity(init.len());
        if done.is_none() {
            for &v in init.as_slice() {
                match to_count(v) {
                    Ok(c) => n.push(c),
                    Err(e) => {
                        pending = Some(e);
                        break;
                    }
                }
            }
        }
        let live = done.is_none() && pending.is_none();
        let f: Vec<f64> = if live {
            n.iter().map(|&v| v as f64).collect()
        } else {
            vec![0.0; crn.species_count()]
        };
        let mut trace = Trace::new(crn);
        if live {
            trace.push(base.t_start(), &f);
        }
        // dead lanes get a runtime over a zero state: never polled, but
        // keeps construction total even when `init` has the wrong length
        let triggers = TriggerRuntime::new(schedule, &f);
        StochLane {
            compiled,
            schedule,
            base,
            epsilon,
            injections: schedule.sorted_injections(),
            next_injection: 0,
            triggers,
            n,
            f,
            rng: StdRng::seed_from_u64(base.seed()),
            trace,
            stats: SimMetrics {
                seed: base.seed(),
                final_time: base.t_start(),
                ..SimMetrics::default()
            },
            t: base.t_start(),
            next_record: base.t_start() + base.record_interval(),
            events: 0,
            pending,
            done,
        }
    }
}

/// Finishes a lane: flushes its metrics (every core exit path reports its
/// cost, as in the scalar drivers), stamped with the batch width and the
/// retirement ordinal, and marks it done so the rounds skip it.
fn retire(st: &mut StochLane, outcome: Result<(), SimError>, wd: usize, retired: &mut u64) {
    st.stats.final_time = st.t;
    st.stats.batch_width = wd as u64;
    st.stats.lanes_retired = *retired;
    *retired += 1;
    SimMetrics::flush(st.base.metrics(), st.stats);
    st.done = Some(outcome);
}

/// The shared driver prologue: retire initial-state conversion failures
/// (with a metrics flush, like the scalar cores), pick the reference
/// network, assert structure sharing, and pack the per-lane rates.
/// Returns `false` when no lane survived.
fn setup(
    states: &mut [StochLane],
    workspace: &mut BatchedStochWorkspace,
    wd: usize,
    retired: &mut u64,
    entry: &str,
) -> bool {
    for st in states.iter_mut() {
        if let Some(e) = st.pending.take() {
            retire(st, Err(e), wd, retired);
        }
    }
    let Some(reference) = states.iter().find(|s| s.done.is_none()).map(|s| s.compiled) else {
        return false;
    };
    for st in states.iter().filter(|s| s.done.is_none()) {
        assert!(
            st.compiled.structural_hash() == reference.structural_hash(),
            "{entry} lanes must share one network structure"
        );
    }
    workspace.prepare(reference, wd);
    let lane_refs: Vec<&CompiledCrn> = states
        .iter()
        .map(|s| {
            if s.done.is_none() {
                s.compiled
            } else {
                reference
            }
        })
        .collect();
    reference.gather_rates(&lane_refs, &mut workspace.ks);
    true
}

/// Recomputes every live lane's propensities in one SoA pass: gathers the
/// copy numbers lane-contiguously (retired lanes contribute zeros) and
/// runs the vectorized kernel over the full width.
fn recompute_round(
    reference: &CompiledCrn,
    states: &[StochLane],
    workspace: &mut BatchedStochWorkspace,
    wd: usize,
) {
    workspace.n_soa.fill(0);
    for (l, st) in states.iter().enumerate() {
        if st.done.is_none() {
            for (i, &c) in st.n.iter().enumerate() {
                workspace.n_soa[i * wd + l] = c;
            }
        }
    }
    reference.propensity_batch(&workspace.ks, &workspace.n_soa, &mut workspace.props, wd);
}

/// Unpacks the final per-lane results in input order.
fn finish(states: Vec<StochLane>) -> Vec<Result<Trace, SimError>> {
    states
        .into_iter()
        .map(|s| match s.done.expect("every lane settled") {
            Ok(()) => Ok(s.trace),
            Err(e) => Err(e),
        })
        .collect()
}

/// Simulates up to `lanes.len()` structurally identical cells with the
/// Gillespie direct method, advancing the lanes round-robin (one event
/// per lane per round) with shared SoA propensity recomputation, and
/// returns one result per lane in input order. See the module docs for
/// the determinism contract; each lane's trace, metrics and error
/// behavior are bit-identical to running it alone through
/// [`Simulation`](crate::Simulation) with
/// [`SimMethod::Ssa`](crate::SimMethod::Ssa).
///
/// # Panics
///
/// Panics if the lanes do not all share one network structure (callers
/// group by [`molseq_crn::Crn::structural_hash`]).
pub fn run_ssa_batch<'h>(
    crn: &Crn,
    lanes: &[SsaBatchLane<'_, 'h>],
    workspace: &mut BatchedStochWorkspace,
) -> Vec<Result<Trace, SimError>> {
    let wd = lanes.len();
    if wd == 0 {
        return Vec::new();
    }
    let mut states: Vec<StochLane> = lanes
        .iter()
        .map(|lane| {
            // validation mirrors run_ssa's, per lane
            let opts = &lane.options;
            let validation = if lane.compiled.species_count() != crn.species_count() {
                Some(SimError::DimensionMismatch {
                    supplied: lane.compiled.species_count(),
                    expected: crn.species_count(),
                })
            } else if lane.init.len() != crn.species_count() {
                Some(SimError::DimensionMismatch {
                    supplied: lane.init.len(),
                    expected: crn.species_count(),
                })
            } else if !opts.t_start().is_finite()
                || !opts.t_end().is_finite()
                || opts.t_end() <= opts.t_start()
            {
                Some(SimError::BadTimeSpan {
                    t_start: opts.t_start(),
                    t_end: opts.t_end(),
                })
            } else {
                None
            };
            StochLane::new(
                crn,
                lane.compiled,
                lane.init,
                lane.schedule,
                lane.options,
                0.0,
                validation,
            )
        })
        .collect();
    let mut retired: u64 = 0;
    if !setup(&mut states, workspace, wd, &mut retired, "run_ssa_batch") {
        return finish(states);
    }
    let reference = states
        .iter()
        .find(|s| s.done.is_none())
        .map(|s| s.compiled)
        .expect("setup found a live lane");
    while states.iter().any(|s| s.done.is_none()) {
        recompute_round(reference, &states, workspace, wd);
        for (l, st) in states.iter_mut().enumerate().take(wd) {
            if st.done.is_some() {
                continue;
            }
            for (j, p) in workspace.lane_props.iter_mut().enumerate() {
                *p = workspace.props[j * wd + l];
            }
            ssa_lane_round(st, &workspace.lane_props, wd, &mut retired);
        }
    }
    finish(states)
}

/// One iteration of the scalar `ssa_core` loop for one lane: the round's
/// SoA-computed propensity row stands in for the loop-top recompute
/// (bitwise equal — propensities are pure in the lane's state, which is
/// unchanged since the round gathered it).
fn ssa_lane_round(st: &mut StochLane, lane_props: &[f64], wd: usize, retired: &mut u64) {
    let injection_time = st
        .injections
        .get(st.next_injection)
        .map_or(f64::INFINITY, |inj| inj.time);

    // Total propensity and waiting time.
    let mut a0 = 0.0;
    for &p in lane_props {
        a0 += p;
    }
    let t_next = if a0 > 0.0 {
        let u: f64 = 1.0 - st.rng.random::<f64>();
        st.t - u.ln() / a0
    } else {
        f64::INFINITY
    };

    // Which comes first: reaction, injection, or end of span?
    let stop = st.base.t_end().min(injection_time);
    if t_next >= stop {
        record_until(&mut st.trace, &st.f, &mut st.next_record, stop, &st.base);
        st.t = stop;
        st.stats.final_time = st.t;
        if injection_time <= st.base.t_end() {
            let inj = &st.injections[st.next_injection];
            match to_count(inj.amount) {
                Ok(c) => st.n[inj.species.index()] += c,
                Err(e) => return retire(st, Err(e), wd, retired),
            }
            st.f[inj.species.index()] = st.n[inj.species.index()] as f64;
            st.trace.push(st.t, &st.f);
            st.next_injection += 1;
            for fired in st.triggers.poll(st.schedule, st.t, &mut st.f) {
                st.trace.push_mark(st.t, fired);
                if let Err(e) = sync_back(&mut st.n, &st.f) {
                    return retire(st, Err(e), wd, retired);
                }
            }
            return; // scalar `continue`: next round recomputes
        }
        // span complete: push the final sample, succeed
        st.trace.push(st.t, &st.f);
        return retire(st, Ok(()), wd, retired);
    }

    // Fire one reaction.
    if st.events >= st.base.max_events() {
        let err = SimError::StepLimitExceeded {
            reached: st.t,
            t_end: st.base.t_end(),
            max_steps: st.base.max_events(),
        };
        return retire(st, Err(err), wd, retired);
    }
    st.events += 1;
    st.stats.ssa_events = st.events as u64;
    if let Some(hook) = st.base.step_hook() {
        if let ControlFlow::Break(reason) = hook(st.events as u64, st.t) {
            return retire(
                st,
                Err(SimError::Interrupted { time: st.t, reason }),
                wd,
                retired,
            );
        }
    }
    record_until(&mut st.trace, &st.f, &mut st.next_record, t_next, &st.base);
    st.t = t_next;
    st.stats.final_time = st.t;
    let pick: f64 = st.rng.random::<f64>() * a0;
    let chosen = select_reaction(lane_props.len(), |j| lane_props[j], pick);
    st.compiled.fire(chosen, &mut st.n);
    for (fv, &c) in st.f.iter_mut().zip(&st.n) {
        *fv = c as f64;
    }
    if !st.schedule.triggers().is_empty() {
        for fired in st.triggers.poll(st.schedule, st.t, &mut st.f) {
            st.trace.push_mark(st.t, fired);
            st.trace.push(st.t, &st.f);
            if let Err(e) = sync_back(&mut st.n, &st.f) {
                return retire(st, Err(e), wd, retired);
            }
        }
    }
}

/// Simulates up to `lanes.len()` structurally identical cells with
/// explicit tau-leaping, leaping the lanes in lock-step (one leap or
/// exact step per lane per round) with shared SoA propensity
/// recomputation, and returns one result per lane in input order. See
/// the module docs for the determinism contract; each lane's trace,
/// metrics and error behavior are bit-identical to running it alone
/// through [`Simulation`](crate::Simulation) with
/// [`SimMethod::TauLeap`](crate::SimMethod::TauLeap).
///
/// # Panics
///
/// Panics if any lane's schedule carries triggers (the scalar tau-leaper
/// does not support them), or if the lanes do not all share one network
/// structure (callers group by [`molseq_crn::Crn::structural_hash`]).
pub fn run_tau_batch<'h>(
    crn: &Crn,
    lanes: &[TauBatchLane<'_, 'h>],
    workspace: &mut BatchedStochWorkspace,
) -> Vec<Result<Trace, SimError>> {
    let wd = lanes.len();
    if wd == 0 {
        return Vec::new();
    }
    for lane in lanes {
        assert!(
            lane.schedule.triggers().is_empty(),
            "tau-leaping does not support triggers"
        );
    }
    let mut states: Vec<StochLane> = lanes
        .iter()
        .map(|lane| {
            // validation mirrors run_tau's, per lane
            let base = &lane.options.base;
            let validation = if lane.compiled.species_count() != crn.species_count() {
                Some(SimError::DimensionMismatch {
                    supplied: lane.compiled.species_count(),
                    expected: crn.species_count(),
                })
            } else if lane.init.len() != crn.species_count() {
                Some(SimError::DimensionMismatch {
                    supplied: lane.init.len(),
                    expected: crn.species_count(),
                })
            } else if !base.t_start().is_finite()
                || !base.t_end().is_finite()
                || base.t_end() <= base.t_start()
                || lane.options.epsilon.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
            {
                Some(SimError::BadTimeSpan {
                    t_start: base.t_start(),
                    t_end: base.t_end(),
                })
            } else {
                None
            };
            StochLane::new(
                crn,
                lane.compiled,
                lane.init,
                lane.schedule,
                lane.options.base,
                lane.options.epsilon,
                validation,
            )
        })
        .collect();
    let mut retired: u64 = 0;
    if !setup(&mut states, workspace, wd, &mut retired, "run_tau_batch") {
        return finish(states);
    }
    let reference = states
        .iter()
        .find(|s| s.done.is_none())
        .map(|s| s.compiled)
        .expect("setup found a live lane");
    while states.iter().any(|s| s.done.is_none()) {
        recompute_round(reference, &states, workspace, wd);
        for (l, st) in states.iter_mut().enumerate().take(wd) {
            if st.done.is_some() {
                continue;
            }
            for (j, p) in workspace.lane_props.iter_mut().enumerate() {
                *p = workspace.props[j * wd + l];
            }
            tau_lane_round(st, &workspace.lane_props, wd, &mut retired);
        }
    }
    finish(states)
}

/// One iteration of the scalar `tau_core` loop for one lane: the round's
/// SoA-computed propensity row stands in for the per-iteration recompute
/// (the scalar core checks the budget and polls the hook *before*
/// recomputing; computing the pure, draw-free propensities early is
/// unobservable).
#[allow(clippy::too_many_lines)]
fn tau_lane_round(st: &mut StochLane, lane_props: &[f64], wd: usize, retired: &mut u64) {
    let m = lane_props.len();
    // loop condition: `while t < t_end`
    if st.t >= st.base.t_end() {
        st.trace.push(st.t, &st.f);
        return retire(st, Ok(()), wd, retired);
    }
    if st.events >= st.base.max_events() {
        let err = SimError::StepLimitExceeded {
            reached: st.t,
            t_end: st.base.t_end(),
            max_steps: st.base.max_events(),
        };
        return retire(st, Err(err), wd, retired);
    }
    st.events += 1;
    if let Some(hook) = st.base.step_hook() {
        if let ControlFlow::Break(reason) = hook(st.events as u64, st.t) {
            return retire(
                st,
                Err(SimError::Interrupted { time: st.t, reason }),
                wd,
                retired,
            );
        }
    }

    let injection_time = st
        .injections
        .get(st.next_injection)
        .map_or(f64::INFINITY, |inj| inj.time);

    let mut a0 = 0.0;
    for &p in lane_props {
        a0 += p;
    }
    if a0 <= 0.0 {
        let stop = st.base.t_end().min(injection_time);
        record_until(&mut st.trace, &st.f, &mut st.next_record, stop, &st.base);
        st.t = stop;
        st.stats.final_time = st.t;
        if injection_time <= st.base.t_end() {
            let outcome = apply_injection(
                &st.injections[st.next_injection],
                &mut st.n,
                &mut st.f,
                &mut st.trace,
                st.t,
            );
            if let Err(e) = outcome {
                return retire(st, Err(e), wd, retired);
            }
            st.next_injection += 1;
            return; // scalar `continue`
        }
        st.trace.push(st.t, &st.f);
        return retire(st, Ok(()), wd, retired);
    }

    // Cao–Gillespie step selection: bound the relative change of each
    // species that any reaction consumes.
    let mut tau = f64::INFINITY;
    for j in 0..m {
        if lane_props[j] == 0.0 {
            continue;
        }
        for &(i, _) in st.compiled.changed_species(j) {
            // net drift and noise of species i
            let mut mu = 0.0;
            let mut sigma2 = 0.0;
            for (jj, &p) in lane_props.iter().enumerate() {
                let v = st
                    .compiled
                    .changed_species(jj)
                    .iter()
                    .find(|&&(ii, _)| ii == i)
                    .map_or(0, |&(_, d)| d) as f64;
                mu += v * p;
                sigma2 += v * v * p;
            }
            let bound = (st.epsilon * st.n[i].max(1) as f64).max(1.0);
            if mu != 0.0 {
                tau = tau.min(bound / mu.abs());
            }
            if sigma2 > 0.0 {
                tau = tau.min(bound * bound / sigma2);
            }
        }
    }

    // If the leap is not worth it, take one exact step.
    if tau < 10.0 / a0 {
        let u: f64 = 1.0 - st.rng.random::<f64>();
        let dt = -u.ln() / a0;
        let t_next = st.t + dt;
        let stop = st.base.t_end().min(injection_time);
        if t_next >= stop {
            record_until(&mut st.trace, &st.f, &mut st.next_record, stop, &st.base);
            st.t = stop;
            st.stats.final_time = st.t;
            if injection_time <= st.base.t_end() {
                let outcome = apply_injection(
                    &st.injections[st.next_injection],
                    &mut st.n,
                    &mut st.f,
                    &mut st.trace,
                    st.t,
                );
                if let Err(e) = outcome {
                    return retire(st, Err(e), wd, retired);
                }
                st.next_injection += 1;
                return; // scalar `continue`
            }
            st.trace.push(st.t, &st.f);
            return retire(st, Ok(()), wd, retired);
        }
        record_until(&mut st.trace, &st.f, &mut st.next_record, t_next, &st.base);
        st.t = t_next;
        st.stats.final_time = st.t;
        st.stats.ssa_events += 1;
        let pick: f64 = st.rng.random::<f64>() * a0;
        let chosen = select_reaction(m, |j| lane_props[j], pick);
        st.compiled.fire(chosen, &mut st.n);
        for &(i, _) in st.compiled.changed_species(chosen) {
            st.f[i] = st.n[i] as f64;
        }
        return; // scalar `continue`
    }

    // Leap (clipped at the next hard stop).
    let stop = st.base.t_end().min(injection_time);
    let tau = tau.min(stop - st.t);
    st.stats.tau_leaps += 1;
    for (j, &p) in lane_props.iter().enumerate() {
        let k = poisson(&mut st.rng, p * tau);
        if k == 0 {
            continue;
        }
        for &(i, d) in st.compiled.changed_species(j) {
            st.n[i] = (st.n[i] + d * k as i64).max(0);
        }
    }
    for (fv, &c) in st.f.iter_mut().zip(&st.n) {
        *fv = c as f64;
    }
    let t_next = st.t + tau;
    record_until(&mut st.trace, &st.f, &mut st.next_record, t_next, &st.base);
    st.t = t_next;
    st.stats.final_time = st.t;
    if (st.t - injection_time).abs() < 1e-12 && injection_time <= st.base.t_end() {
        let outcome = apply_injection(
            &st.injections[st.next_injection],
            &mut st.n,
            &mut st.f,
            &mut st.trace,
            st.t,
        );
        if let Err(e) = outcome {
            return retire(st, Err(e), wd, retired);
        }
        st.next_injection += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{Condition, Trigger};
    use crate::sim::Simulation;
    use crate::SimSpec;
    use molseq_crn::{Crn, RateAssignment};
    use std::cell::Cell;

    fn counter_crn() -> Crn {
        "X -> Y @slow\nY -> X @slow\n2X -> Z @fast\nZ -> X @slow"
            .parse()
            .unwrap()
    }

    fn scalar_ssa(
        crn: &Crn,
        compiled: &CompiledCrn,
        init: &State,
        schedule: &Schedule,
        opts: SsaOptions,
    ) -> Result<Trace, SimError> {
        Simulation::new(crn, compiled)
            .init(init)
            .schedule(schedule)
            .options(opts)
            .run()
    }

    fn scalar_tau(
        crn: &Crn,
        compiled: &CompiledCrn,
        init: &State,
        schedule: &Schedule,
        opts: TauLeapOptions,
    ) -> Result<Trace, SimError> {
        Simulation::new(crn, compiled)
            .init(init)
            .schedule(schedule)
            .options(opts)
            .run()
    }

    #[test]
    fn batched_propensities_match_scalar_bitwise() {
        let crn = counter_crn();
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let fast = compiled.rebind(&SimSpec::new(RateAssignment::from_ratio(250.0)));
        let lanes = [&compiled, &fast, &compiled];
        let wd = lanes.len();
        let mut ks = Vec::new();
        compiled.gather_rates(&lanes, &mut ks);
        let states: [&[i64]; 3] = [&[7, 3, 2], &[0, 5, 1], &[2, 2, 0]];
        let mut n_soa = vec![0i64; compiled.species_count() * wd];
        for (l, st) in states.iter().enumerate() {
            for (i, &c) in st.iter().enumerate() {
                n_soa[i * wd + l] = c;
            }
        }
        let mut props = vec![0.0; compiled.reaction_count() * wd];
        compiled.propensity_batch(&ks, &n_soa, &mut props, wd);
        for (l, st) in states.iter().enumerate() {
            for j in 0..compiled.reaction_count() {
                let scalar = lanes[l].propensity(j, st);
                assert_eq!(
                    props[j * wd + l].to_bits(),
                    scalar.to_bits(),
                    "lane {l} reaction {j}"
                );
            }
        }
    }

    #[test]
    fn ssa_width_one_is_bit_identical_to_scalar() {
        let crn = counter_crn();
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let mut init = State::new(&crn);
        init.set(crn.find_species("X").unwrap(), 40.0);
        let schedule = Schedule::new().inject(1.5, crn.find_species("Y").unwrap(), 12.0);
        let opts = SsaOptions::default().with_t_end(4.0).with_seed(17);
        let scalar = scalar_ssa(&crn, &compiled, &init, &schedule, opts).unwrap();
        let mut ws = BatchedStochWorkspace::new();
        let lanes = [SsaBatchLane {
            compiled: &compiled,
            init: &init,
            schedule: &schedule,
            options: opts,
        }];
        let got = run_ssa_batch(&crn, &lanes, &mut ws);
        assert_eq!(got.len(), 1);
        assert_eq!(*got[0].as_ref().unwrap(), scalar);
        // workspace reuse must not perturb a rerun
        let again = run_ssa_batch(&crn, &lanes, &mut ws);
        assert_eq!(*again[0].as_ref().unwrap(), scalar);
    }

    #[test]
    fn ssa_wide_batches_match_their_scalar_runs_bitwise() {
        let crn = counter_crn();
        let base = CompiledCrn::new(&crn, &SimSpec::default());
        let x = crn.find_species("X").unwrap();
        let ratios = [10.0, 100.0, 1.0e3, 1.0e4, 20.0, 300.0, 4.0e3, 40.0];
        let rebound: Vec<CompiledCrn> = ratios
            .iter()
            .map(|&r| base.rebind(&SimSpec::new(RateAssignment::from_ratio(r))))
            .collect();
        let mut init = State::new(&crn);
        init.set(x, 25.0);
        let schedule = Schedule::new();
        for width in [2usize, 4, 8] {
            let lanes: Vec<SsaBatchLane> = (0..width)
                .map(|l| SsaBatchLane {
                    compiled: &rebound[l],
                    init: &init,
                    schedule: &schedule,
                    options: SsaOptions::default()
                        .with_t_end(0.8)
                        .with_seed(100 + l as u64),
                })
                .collect();
            let mut ws = BatchedStochWorkspace::new();
            let got = run_ssa_batch(&crn, &lanes, &mut ws);
            for (l, lane) in lanes.iter().enumerate() {
                let scalar =
                    scalar_ssa(&crn, lane.compiled, lane.init, lane.schedule, lane.options)
                        .unwrap();
                assert_eq!(
                    *got[l].as_ref().unwrap(),
                    scalar,
                    "width {width} lane {l} diverged from scalar"
                );
            }
        }
    }

    #[test]
    fn tau_wide_batches_match_their_scalar_runs_bitwise() {
        let crn = counter_crn();
        let base = CompiledCrn::new(&crn, &SimSpec::default());
        let x = crn.find_species("X").unwrap();
        let ratios = [10.0, 100.0, 1.0e3, 1.0e4, 20.0, 300.0, 4.0e3, 40.0];
        let rebound: Vec<CompiledCrn> = ratios
            .iter()
            .map(|&r| base.rebind(&SimSpec::new(RateAssignment::from_ratio(r))))
            .collect();
        let mut init = State::new(&crn);
        init.set(x, 50_000.0);
        let schedule = Schedule::new().inject(0.3, x, 10_000.0);
        for width in [1usize, 2, 4, 8] {
            let lanes: Vec<TauBatchLane> = (0..width)
                .map(|l| TauBatchLane {
                    compiled: &rebound[l],
                    init: &init,
                    schedule: &schedule,
                    options: TauLeapOptions {
                        base: SsaOptions::default()
                            .with_t_end(0.6)
                            .with_seed(7 + l as u64),
                        ..TauLeapOptions::default()
                    },
                })
                .collect();
            let mut ws = BatchedStochWorkspace::new();
            let got = run_tau_batch(&crn, &lanes, &mut ws);
            for (l, lane) in lanes.iter().enumerate() {
                let scalar =
                    scalar_tau(&crn, lane.compiled, lane.init, lane.schedule, lane.options)
                        .unwrap();
                assert_eq!(
                    *got[l].as_ref().unwrap(),
                    scalar,
                    "width {width} lane {l} diverged from scalar"
                );
            }
        }
    }

    #[test]
    fn batched_metrics_match_scalar_counters() {
        let crn = counter_crn();
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let mut init = State::new(&crn);
        init.set(crn.find_species("X").unwrap(), 60.0);
        let schedule = Schedule::new();

        let scalar_sink = Cell::new(SimMetrics::default());
        let opts = SsaOptions::default()
            .with_t_end(2.0)
            .with_seed(3)
            .with_metrics(&scalar_sink);
        scalar_ssa(&crn, &compiled, &init, &schedule, opts).unwrap();

        let batch_sink = Cell::new(SimMetrics::default());
        let lanes = [SsaBatchLane {
            compiled: &compiled,
            init: &init,
            schedule: &schedule,
            options: SsaOptions::default()
                .with_t_end(2.0)
                .with_seed(3)
                .with_metrics(&batch_sink),
        }];
        let mut ws = BatchedStochWorkspace::new();
        run_ssa_batch(&crn, &lanes, &mut ws);
        let scalar = scalar_sink.get();
        let batched = batch_sink.get();
        assert_eq!(batched.ssa_events, scalar.ssa_events);
        assert_eq!(batched.final_time, scalar.final_time);
        assert_eq!(batched.seed, scalar.seed);
        assert_eq!(batched.batch_width, 1);
        assert_eq!(batched.lanes_retired, 0);
    }

    #[test]
    fn ssa_budget_cut_retires_one_lane_and_leaves_the_rest_bit_identical() {
        let crn = counter_crn();
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let mut init = State::new(&crn);
        init.set(crn.find_species("X").unwrap(), 500.0);
        let schedule = Schedule::new();
        let hook = |events: u64, _t: f64| {
            if events >= 10 {
                ControlFlow::Break("cut".to_owned())
            } else {
                ControlFlow::Continue(())
            }
        };
        let shared = Cell::new(SimMetrics::default());
        let mk = |seed: u64| {
            SsaOptions::default()
                .with_t_end(1.0)
                .with_seed(seed)
                .with_metrics(&shared)
        };
        let lanes = [
            SsaBatchLane {
                compiled: &compiled,
                init: &init,
                schedule: &schedule,
                options: mk(1),
            },
            SsaBatchLane {
                compiled: &compiled,
                init: &init,
                schedule: &schedule,
                options: mk(2).with_step_hook(&hook),
            },
            SsaBatchLane {
                compiled: &compiled,
                init: &init,
                schedule: &schedule,
                options: mk(3),
            },
        ];
        let mut ws = BatchedStochWorkspace::new();
        let got = run_ssa_batch(&crn, &lanes, &mut ws);
        assert!(matches!(got[1], Err(SimError::Interrupted { .. })));
        for l in [0usize, 2] {
            let scalar = scalar_ssa(&crn, &compiled, &init, &schedule, lanes[l].options).unwrap();
            assert_eq!(*got[l].as_ref().unwrap(), scalar, "lane {l}");
        }
        // the hooked lane retired first (ordinal 0), survivors after it:
        // the shared sink accumulates ordinals 0 + 1 + 2
        let m = shared.get();
        assert_eq!(m.batch_width, 3);
        assert_eq!(m.lanes_retired, 3);
    }

    #[test]
    fn tau_budget_cut_retires_one_lane_and_leaves_the_rest_bit_identical() {
        let crn = counter_crn();
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let mut init = State::new(&crn);
        init.set(crn.find_species("X").unwrap(), 30_000.0);
        let schedule = Schedule::new();
        let hook = |steps: u64, _t: f64| {
            if steps >= 4 {
                ControlFlow::Break("cut".to_owned())
            } else {
                ControlFlow::Continue(())
            }
        };
        let mk = |seed: u64| TauLeapOptions {
            base: SsaOptions::default().with_t_end(0.5).with_seed(seed),
            ..TauLeapOptions::default()
        };
        let mut cut = mk(2);
        cut.base = cut.base.with_step_hook(&hook);
        let lanes = [
            TauBatchLane {
                compiled: &compiled,
                init: &init,
                schedule: &schedule,
                options: mk(1),
            },
            TauBatchLane {
                compiled: &compiled,
                init: &init,
                schedule: &schedule,
                options: cut,
            },
            TauBatchLane {
                compiled: &compiled,
                init: &init,
                schedule: &schedule,
                options: mk(3),
            },
        ];
        let mut ws = BatchedStochWorkspace::new();
        let got = run_tau_batch(&crn, &lanes, &mut ws);
        assert!(matches!(got[1], Err(SimError::Interrupted { .. })));
        for l in [0usize, 2] {
            let scalar = scalar_tau(&crn, &compiled, &init, &schedule, lanes[l].options).unwrap();
            assert_eq!(*got[l].as_ref().unwrap(), scalar, "lane {l}");
        }
    }

    #[test]
    fn validation_errors_are_per_lane_and_do_not_flush() {
        let crn = counter_crn();
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let mut init = State::new(&crn);
        init.set(crn.find_species("X").unwrap(), 10.0);
        let schedule = Schedule::new();
        let sink = Cell::new(SimMetrics::default());
        let lanes = [
            SsaBatchLane {
                compiled: &compiled,
                init: &init,
                schedule: &schedule,
                options: SsaOptions::default().with_t_end(0.5).with_seed(1),
            },
            SsaBatchLane {
                compiled: &compiled,
                init: &init,
                schedule: &schedule,
                // NaN horizon: rejected before the core runs, no flush
                options: SsaOptions::default()
                    .with_t_end(f64::NAN)
                    .with_metrics(&sink),
            },
        ];
        let mut ws = BatchedStochWorkspace::new();
        let got = run_ssa_batch(&crn, &lanes, &mut ws);
        assert!(got[0].is_ok());
        assert!(matches!(got[1], Err(SimError::BadTimeSpan { .. })));
        assert_eq!(sink.get(), SimMetrics::default());
    }

    #[test]
    fn fractional_init_retires_with_a_flush_like_the_scalar_core() {
        let crn = counter_crn();
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let mut bad = State::new(&crn);
        bad.set(crn.find_species("X").unwrap(), 1.5);
        let mut good = State::new(&crn);
        good.set(crn.find_species("X").unwrap(), 10.0);
        let schedule = Schedule::new();
        let sink = Cell::new(SimMetrics::default());
        let lanes = [
            SsaBatchLane {
                compiled: &compiled,
                init: &bad,
                schedule: &schedule,
                options: SsaOptions::default()
                    .with_t_end(0.5)
                    .with_seed(9)
                    .with_metrics(&sink),
            },
            SsaBatchLane {
                compiled: &compiled,
                init: &good,
                schedule: &schedule,
                options: SsaOptions::default().with_t_end(0.5).with_seed(1),
            },
        ];
        let mut ws = BatchedStochWorkspace::new();
        let got = run_ssa_batch(&crn, &lanes, &mut ws);
        assert!(matches!(got[0], Err(SimError::NonIntegerAmount { .. })));
        assert!(got[1].is_ok());
        // the scalar core flushes seed/final_time even on this failure
        let m = sink.get();
        assert_eq!(m.seed, 9);
        assert_eq!(m.final_time, 0.0);
        assert_eq!(m.batch_width, 2);
    }

    #[test]
    fn empty_batches_return_nothing() {
        let crn = counter_crn();
        let mut ws = BatchedStochWorkspace::new();
        assert!(run_ssa_batch(&crn, &[], &mut ws).is_empty());
        assert!(run_tau_batch(&crn, &[], &mut ws).is_empty());
    }

    #[test]
    #[should_panic(expected = "share one network structure")]
    fn mismatched_structures_panic() {
        let crn = counter_crn();
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let init = State::new(&crn);
        let schedule = Schedule::new();
        // same species count (passes per-lane validation), different
        // reaction structure: the batch-level assert must catch it
        let variant: Crn = "X -> Y @slow\nY -> X @slow\n2X -> Z @fast\nX -> Z @slow"
            .parse()
            .unwrap();
        let variant_compiled = CompiledCrn::new(&variant, &SimSpec::default());
        let lanes = [
            SsaBatchLane {
                compiled: &compiled,
                init: &init,
                schedule: &schedule,
                options: SsaOptions::default(),
            },
            SsaBatchLane {
                compiled: &variant_compiled,
                init: &init,
                schedule: &schedule,
                options: SsaOptions::default(),
            },
        ];
        let mut ws = BatchedStochWorkspace::new();
        let _ = run_ssa_batch(&crn, &lanes, &mut ws);
    }

    #[test]
    #[should_panic(expected = "tau-leaping does not support triggers")]
    fn tau_batch_rejects_triggers() {
        let crn = counter_crn();
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let x = crn.find_species("X").unwrap();
        let init = State::new(&crn);
        let schedule = Schedule::new().trigger(Trigger::mark(Condition::Above {
            species: x,
            threshold: 5.0,
        }));
        let lanes = [TauBatchLane {
            compiled: &compiled,
            init: &init,
            schedule: &schedule,
            options: TauLeapOptions::default(),
        }];
        let mut ws = BatchedStochWorkspace::new();
        let _ = run_tau_batch(&crn, &lanes, &mut ws);
    }

    #[test]
    fn ssa_mid_batch_budget_cuts_keep_survivors_bitwise_at_all_widths() {
        let crn = counter_crn();
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let mut init = State::new(&crn);
        init.set(crn.find_species("X").unwrap(), 200.0);
        let schedule = Schedule::new();
        let hook = |events: u64, _t: f64| {
            if events >= 25 {
                ControlFlow::Break("mid-batch cut".to_owned())
            } else {
                ControlFlow::Continue(())
            }
        };
        for width in [1usize, 2, 4, 8] {
            let lanes: Vec<SsaBatchLane> = (0..width)
                .map(|l| {
                    let opts = SsaOptions::default().with_t_end(1.5).with_seed(l as u64);
                    let opts = if l % 2 == 1 {
                        opts.with_step_hook(&hook)
                    } else {
                        opts
                    };
                    SsaBatchLane {
                        compiled: &compiled,
                        init: &init,
                        schedule: &schedule,
                        options: opts,
                    }
                })
                .collect();
            let mut ws = BatchedStochWorkspace::new();
            let got = run_ssa_batch(&crn, &lanes, &mut ws);
            for (l, lane) in lanes.iter().enumerate() {
                let scalar =
                    scalar_ssa(&crn, lane.compiled, lane.init, lane.schedule, lane.options);
                match (&got[l], &scalar) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b, "width {width} lane {l}"),
                    (
                        Err(SimError::Interrupted { time: ta, .. }),
                        Err(SimError::Interrupted { time: tb, .. }),
                    ) => {
                        assert_eq!(ta.to_bits(), tb.to_bits(), "width {width} lane {l}");
                    }
                    other => panic!("width {width} lane {l}: mismatched outcomes {other:?}"),
                }
            }
        }
    }

    #[test]
    fn tau_mid_batch_budget_cuts_keep_survivors_bitwise_at_all_widths() {
        let crn = counter_crn();
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let mut init = State::new(&crn);
        init.set(crn.find_species("X").unwrap(), 20_000.0);
        let schedule = Schedule::new();
        let hook = |steps: u64, _t: f64| {
            if steps >= 6 {
                ControlFlow::Break("mid-batch cut".to_owned())
            } else {
                ControlFlow::Continue(())
            }
        };
        for width in [1usize, 2, 4, 8] {
            let lanes: Vec<TauBatchLane> = (0..width)
                .map(|l| {
                    let mut opts = TauLeapOptions {
                        base: SsaOptions::default().with_t_end(0.4).with_seed(l as u64),
                        ..TauLeapOptions::default()
                    };
                    if l % 2 == 1 {
                        opts.base = opts.base.with_step_hook(&hook);
                    }
                    TauBatchLane {
                        compiled: &compiled,
                        init: &init,
                        schedule: &schedule,
                        options: opts,
                    }
                })
                .collect();
            let mut ws = BatchedStochWorkspace::new();
            let got = run_tau_batch(&crn, &lanes, &mut ws);
            for (l, lane) in lanes.iter().enumerate() {
                let scalar =
                    scalar_tau(&crn, lane.compiled, lane.init, lane.schedule, lane.options);
                match (&got[l], &scalar) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b, "width {width} lane {l}"),
                    (
                        Err(SimError::Interrupted { time: ta, .. }),
                        Err(SimError::Interrupted { time: tb, .. }),
                    ) => {
                        assert_eq!(ta.to_bits(), tb.to_bits(), "width {width} lane {l}");
                    }
                    other => panic!("width {width} lane {l}: mismatched outcomes {other:?}"),
                }
            }
        }
    }

    #[test]
    fn ssa_lanes_with_triggers_match_scalar_bitwise() {
        let crn = counter_crn();
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let x = crn.find_species("X").unwrap();
        let y = crn.find_species("Y").unwrap();
        let mut init = State::new(&crn);
        init.set(x, 30.0);
        let schedule = Schedule::new()
            .inject(0.5, x, 20.0)
            .trigger(Trigger::inject_queue(
                Condition::Above {
                    species: y,
                    threshold: 10.0,
                },
                x,
                vec![5.0, 5.0],
            ));
        for width in [2usize, 4] {
            let lanes: Vec<SsaBatchLane> = (0..width)
                .map(|l| SsaBatchLane {
                    compiled: &compiled,
                    init: &init,
                    schedule: &schedule,
                    options: SsaOptions::default()
                        .with_t_end(2.0)
                        .with_seed(31 + l as u64),
                })
                .collect();
            let mut ws = BatchedStochWorkspace::new();
            let got = run_ssa_batch(&crn, &lanes, &mut ws);
            for (l, lane) in lanes.iter().enumerate() {
                let scalar =
                    scalar_ssa(&crn, lane.compiled, lane.init, lane.schedule, lane.options)
                        .unwrap();
                assert_eq!(*got[l].as_ref().unwrap(), scalar, "width {width} lane {l}");
            }
        }
    }
}
