//! Approximate accelerated stochastic simulation (explicit tau-leaping).
//!
//! The exact methods ([`simulate_ssa`](crate::simulate_ssa),
//! [`simulate_nrm`](crate::simulate_nrm)) fire one reaction per step; when
//! propensities are large that is millions of events per time unit.
//! Tau-leaping advances by a step `τ` chosen so that no propensity changes
//! by more than a fraction `epsilon` (the standard Cao–Gillespie step
//! selection), firing a Poisson-distributed batch of each reaction at
//! once, and falls back to exact SSA steps whenever the selected leap
//! would be smaller than a few exact steps.
//!
//! The trade is bias for speed: leaping is asymptotically exact as
//! `epsilon → 0` and is intended for *large-count* regimes — exactly where
//! the exact methods are slowest.

use crate::compiled::CompiledCrn;
use crate::{Schedule, SimError, SimSpec, SsaOptions, State, Trace};
use molseq_crn::Crn;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Options for [`simulate_tau_leap`], wrapping the shared stochastic
/// options with the leap-control parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TauLeapOptions<'h> {
    /// The shared stochastic options (span, recording, seed, budget,
    /// step hook — polled once per leap or exact step).
    pub base: SsaOptions<'h>,
    /// Largest relative propensity change allowed per leap (the
    /// Cao–Gillespie `ε`; default `0.03`).
    pub epsilon: f64,
}

impl Default for TauLeapOptions<'_> {
    fn default() -> Self {
        TauLeapOptions {
            base: SsaOptions::default(),
            epsilon: 0.03,
        }
    }
}

/// Samples a Poisson(λ) variate (Knuth for small λ, normal approximation
/// for large).
fn poisson(rng: &mut StdRng, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let limit = (-lambda).exp();
        let mut product: f64 = rng.random();
        let mut count = 0u64;
        while product > limit {
            product *= rng.random::<f64>();
            count += 1;
        }
        count
    } else {
        // Box–Muller normal approximation, clamped at zero
        let u1: f64 = 1.0 - rng.random::<f64>();
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (lambda + z * lambda.sqrt()).round().max(0.0) as u64
    }
}

/// Runs explicit tau-leaping on `crn` from the integer copy numbers in
/// `init`. Timed injections are honoured; triggers are not supported
/// (leaps would blur their edge semantics) and cause a panic.
///
/// # Panics
///
/// Panics if the schedule contains triggers.
///
/// # Errors
///
/// Same conditions as [`simulate_ssa`](crate::simulate_ssa), plus
/// [`SimError::BadTimeSpan`] for a non-positive `epsilon`.
pub fn simulate_tau_leap(
    crn: &Crn,
    init: &State,
    schedule: &Schedule,
    opts: &TauLeapOptions,
    spec: &SimSpec,
) -> Result<Trace, SimError> {
    assert!(
        schedule.triggers().is_empty(),
        "simulate_tau_leap does not support triggers"
    );
    let base = &opts.base;
    if init.len() != crn.species_count() {
        return Err(SimError::DimensionMismatch {
            supplied: init.len(),
            expected: crn.species_count(),
        });
    }
    if !base.t_start().is_finite()
        || !base.t_end().is_finite()
        || base.t_end() <= base.t_start()
        || opts.epsilon.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
    {
        return Err(SimError::BadTimeSpan {
            t_start: base.t_start(),
            t_end: base.t_end(),
        });
    }

    let mut n: Vec<i64> = Vec::with_capacity(init.len());
    for &v in init.as_slice() {
        n.push(crate::ssa::to_count(v)?);
    }
    let compiled = CompiledCrn::new(crn, spec);
    let m = compiled.reaction_count();
    let mut rng = StdRng::seed_from_u64(base.seed());
    let mut t = base.t_start();
    let mut trace = Trace::new(crn);
    let mut f64_state: Vec<f64> = n.iter().map(|&v| v as f64).collect();
    trace.push(t, &f64_state);

    let injections = schedule.sorted_injections();
    let mut next_injection = 0usize;
    let mut next_record = base.t_start() + base.record_interval();
    let mut steps = 0usize;
    let mut propensities = vec![0.0; m];

    while t < base.t_end() {
        if steps >= base.max_events() {
            return Err(SimError::StepLimitExceeded {
                reached: t,
                t_end: base.t_end(),
                max_steps: base.max_events(),
            });
        }
        steps += 1;
        if let Some(hook) = base.step_hook() {
            if let std::ops::ControlFlow::Break(reason) = hook(steps as u64, t) {
                return Err(SimError::Interrupted { time: t, reason });
            }
        }

        let injection_time = injections
            .get(next_injection)
            .map_or(f64::INFINITY, |inj| inj.time);

        let mut a0 = 0.0;
        for (j, p) in propensities.iter_mut().enumerate() {
            *p = compiled.propensity(j, &n);
            a0 += *p;
        }
        if a0 <= 0.0 {
            let stop = base.t_end().min(injection_time);
            while next_record <= stop && next_record <= base.t_end() {
                trace.push(next_record, &f64_state);
                next_record += base.record_interval();
            }
            t = stop;
            if injection_time <= base.t_end() {
                apply_injection(
                    &injections[next_injection],
                    &mut n,
                    &mut f64_state,
                    &mut trace,
                    t,
                )?;
                next_injection += 1;
                continue;
            }
            break;
        }

        // Cao–Gillespie step selection: bound the relative change of each
        // species that any reaction consumes.
        let mut tau = f64::INFINITY;
        for j in 0..m {
            if propensities[j] == 0.0 {
                continue;
            }
            for &(i, _) in compiled.changed_species(j) {
                // net drift and noise of species i
                let mut mu = 0.0;
                let mut sigma2 = 0.0;
                for (jj, &p) in propensities.iter().enumerate() {
                    let v = compiled
                        .changed_species(jj)
                        .iter()
                        .find(|&&(ii, _)| ii == i)
                        .map_or(0, |&(_, d)| d) as f64;
                    mu += v * p;
                    sigma2 += v * v * p;
                }
                let bound = (opts.epsilon * n[i].max(1) as f64).max(1.0);
                if mu != 0.0 {
                    tau = tau.min(bound / mu.abs());
                }
                if sigma2 > 0.0 {
                    tau = tau.min(bound * bound / sigma2);
                }
            }
        }

        // If the leap is not worth it, take a handful of exact steps.
        if tau < 10.0 / a0 {
            let u: f64 = 1.0 - rng.random::<f64>();
            let dt = -u.ln() / a0;
            let t_next = t + dt;
            let stop = base.t_end().min(injection_time);
            if t_next >= stop {
                while next_record <= stop && next_record <= base.t_end() {
                    trace.push(next_record, &f64_state);
                    next_record += base.record_interval();
                }
                t = stop;
                if injection_time <= base.t_end() {
                    apply_injection(
                        &injections[next_injection],
                        &mut n,
                        &mut f64_state,
                        &mut trace,
                        t,
                    )?;
                    next_injection += 1;
                    continue;
                }
                break;
            }
            while next_record <= t_next && next_record <= base.t_end() {
                trace.push(next_record, &f64_state);
                next_record += base.record_interval();
            }
            t = t_next;
            let pick: f64 = rng.random::<f64>() * a0;
            let mut acc = 0.0;
            let mut chosen = m - 1;
            for (j, &p) in propensities.iter().enumerate() {
                acc += p;
                if pick < acc {
                    chosen = j;
                    break;
                }
            }
            compiled.fire(chosen, &mut n);
            for &(i, _) in compiled.changed_species(chosen) {
                f64_state[i] = n[i] as f64;
            }
            continue;
        }

        // Leap (clipped at the next hard stop).
        let stop = base.t_end().min(injection_time);
        let tau = tau.min(stop - t);
        for (j, &p) in propensities.iter().enumerate() {
            let k = poisson(&mut rng, p * tau);
            if k == 0 {
                continue;
            }
            for &(i, d) in compiled.changed_species(j) {
                n[i] = (n[i] + d * k as i64).max(0);
            }
        }
        for (f, &c) in f64_state.iter_mut().zip(&n) {
            *f = c as f64;
        }
        let t_next = t + tau;
        while next_record <= t_next && next_record <= base.t_end() {
            trace.push(next_record, &f64_state);
            next_record += base.record_interval();
        }
        t = t_next;
        if (t - injection_time).abs() < 1e-12 && injection_time <= base.t_end() {
            apply_injection(
                &injections[next_injection],
                &mut n,
                &mut f64_state,
                &mut trace,
                t,
            )?;
            next_injection += 1;
        }
    }

    trace.push(t, &f64_state);
    Ok(trace)
}

fn apply_injection(
    inj: &crate::Injection,
    n: &mut [i64],
    f64_state: &mut [f64],
    trace: &mut Trace,
    t: f64,
) -> Result<(), SimError> {
    n[inj.species.index()] += crate::ssa::to_count(inj.amount)?;
    f64_state[inj.species.index()] = n[inj.species.index()] as f64;
    trace.push(t, f64_state);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use molseq_crn::Crn;

    #[test]
    fn poisson_matches_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        for &lambda in &[0.5, 5.0, 80.0] {
            let n = 4000;
            let sum: u64 = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
            let mean = sum as f64 / f64::from(n);
            assert!(
                (mean - lambda).abs() < 5.0 * (lambda / f64::from(n)).sqrt().max(0.05),
                "lambda {lambda}: mean {mean}"
            );
        }
    }

    #[test]
    fn decay_matches_expectation_at_large_counts() {
        let crn: Crn = "X -> 0 @slow".parse().unwrap();
        let x = crn.find_species("X").unwrap();
        let n0 = 100_000.0;
        let mut init = State::new(&crn);
        init.set(x, n0);
        let opts = TauLeapOptions {
            base: SsaOptions::default().with_t_end(1.0).with_seed(2),
            ..TauLeapOptions::default()
        };
        let trace =
            simulate_tau_leap(&crn, &init, &Schedule::new(), &opts, &SimSpec::default()).unwrap();
        let expected = n0 / std::f64::consts::E;
        let got = trace.final_state()[x.index()];
        assert!((got - expected).abs() < 0.02 * n0, "{got} vs {expected}");
    }

    #[test]
    fn conserves_totals_in_closed_systems() {
        let crn: Crn = "X -> Y @slow\nY -> X @fast".parse().unwrap();
        let x = crn.find_species("X").unwrap();
        let mut init = State::new(&crn);
        init.set(x, 50_000.0);
        let opts = TauLeapOptions {
            base: SsaOptions::default().with_t_end(2.0).with_seed(7),
            ..TauLeapOptions::default()
        };
        let trace =
            simulate_tau_leap(&crn, &init, &Schedule::new(), &opts, &SimSpec::default()).unwrap();
        // tau-leaping with the zero-clamp can lose strict conservation only
        // through the clamp; at these counts it must hold exactly
        for i in 0..trace.len() {
            let total = trace.state(i)[0] + trace.state(i)[1];
            assert!(
                (total - 50_000.0).abs() < 500.0,
                "total {total} at sample {i}"
            );
        }
    }

    #[test]
    fn injections_apply_between_leaps() {
        let crn: Crn = "X -> 0 @slow".parse().unwrap();
        let x = crn.find_species("X").unwrap();
        let schedule = Schedule::new().inject(2.0, x, 10_000.0);
        let opts = TauLeapOptions {
            base: SsaOptions::default().with_t_end(2.5).with_seed(4),
            ..TauLeapOptions::default()
        };
        let trace = simulate_tau_leap(
            &crn,
            &State::new(&crn),
            &schedule,
            &opts,
            &SimSpec::default(),
        )
        .unwrap();
        assert!(trace.value_at(x, 1.9) < 1e-9);
        assert!(trace.value_at(x, 2.01) > 9_000.0);
    }

    #[test]
    fn rejects_bad_epsilon() {
        let crn: Crn = "X -> 0 @slow".parse().unwrap();
        let opts = TauLeapOptions {
            epsilon: 0.0,
            ..TauLeapOptions::default()
        };
        assert!(simulate_tau_leap(
            &crn,
            &State::new(&crn),
            &Schedule::new(),
            &opts,
            &SimSpec::default()
        )
        .is_err());
    }
}
