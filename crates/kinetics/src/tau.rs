//! Approximate accelerated stochastic simulation (explicit tau-leaping).
//!
//! The exact methods ([`simulate_ssa`](crate::simulate_ssa),
//! [`simulate_nrm`](crate::simulate_nrm)) fire one reaction per step; when
//! propensities are large that is millions of events per time unit.
//! Tau-leaping advances by a step `τ` chosen so that no propensity changes
//! by more than a fraction `epsilon` (the standard Cao–Gillespie step
//! selection), firing a Poisson-distributed batch of each reaction at
//! once, and falls back to exact SSA steps whenever the selected leap
//! would be smaller than a few exact steps.
//!
//! The trade is bias for speed: leaping is asymptotically exact as
//! `epsilon → 0` and is intended for *large-count* regimes — exactly where
//! the exact methods are slowest.

use crate::compiled::CompiledCrn;
use crate::metrics::SimMetrics;
use crate::{Schedule, SimError, SsaOptions, State, Trace};
use molseq_crn::Crn;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Options for [`simulate_tau_leap`], wrapping the shared stochastic
/// options with the leap-control parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TauLeapOptions<'h> {
    /// The shared stochastic options (span, recording, seed, budget,
    /// step hook — polled once per leap or exact step).
    pub base: SsaOptions<'h>,
    /// Largest relative propensity change allowed per leap (the
    /// Cao–Gillespie `ε`; default `0.03`).
    pub epsilon: f64,
}

impl Default for TauLeapOptions<'_> {
    fn default() -> Self {
        TauLeapOptions {
            base: SsaOptions::default(),
            epsilon: 0.03,
        }
    }
}

/// Samples a Poisson(λ) variate exactly: Knuth's product-of-uniforms
/// method for small λ, Hörmann's PTRS transformed rejection for `λ ≥ 10`.
///
/// An earlier version substituted a Box–Muller normal approximation for
/// large λ, clamping negative draws to zero — the clamp biases the mean
/// upward and the symmetric normal erases the distribution's skew
/// (`1/√λ`); the `poisson_large_lambda_keeps_skewness` regression test
/// catches both.
pub(crate) fn poisson(rng: &mut StdRng, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 10.0 {
        let limit = (-lambda).exp();
        let mut product: f64 = rng.random();
        let mut count = 0u64;
        while product > limit {
            product *= rng.random::<f64>();
            count += 1;
        }
        count
    } else {
        poisson_ptrs(rng, lambda)
    }
}

/// Hörmann's PTRS sampler (transformed rejection with squeeze): an exact
/// Poisson sampler for `λ ≥ 10` costing ~2 uniforms per draw.
fn poisson_ptrs(rng: &mut StdRng, lambda: f64) -> u64 {
    let b = 0.931 + 2.53 * lambda.sqrt();
    let a = -0.059 + 0.02483 * b;
    let inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
    let v_r = 0.9277 - 3.6224 / (b - 2.0);
    let log_lambda = lambda.ln();
    loop {
        let u: f64 = rng.random::<f64>() - 0.5;
        let v: f64 = rng.random();
        let us = 0.5 - u.abs();
        let k = ((2.0 * a / us + b) * u + lambda + 0.43).floor();
        if us >= 0.07 && v <= v_r {
            return k as u64;
        }
        if k < 0.0 || (us < 0.013 && v > us) {
            continue;
        }
        if v.ln() + inv_alpha.ln() - (a / (us * us) + b).ln()
            <= k * log_lambda - lambda - ln_gamma(k + 1.0)
        {
            return k as u64;
        }
    }
}

/// Natural log of the gamma function for positive arguments (Lanczos
/// approximation, `g = 7`, 9 coefficients; absolute error below `1e-10`
/// over the range PTRS evaluates).
#[allow(clippy::excessive_precision)] // canonical published Lanczos digits
fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 8] = [
        676.5203681218851,
        -1259.1392167224028,
        771.3234287776531,
        -176.6150291621406,
        12.507343278686905,
        -0.13857109526572012,
        9.984369578019572e-6,
        1.5056327351493116e-7,
    ];
    debug_assert!(x > 0.0);
    let x = x - 1.0;
    let mut acc = 0.99999999999980993;
    for (i, &c) in COEFFS.iter().enumerate() {
        acc += c / (x + (i as f64 + 1.0));
    }
    let t = x + 7.5;
    0.5 * std::f64::consts::TAU.ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Validated entry point over a precompiled network: what the
/// [`Simulation`](crate::Simulation) builder dispatches to for
/// [`SimMethod::TauLeap`](crate::SimMethod::TauLeap).
pub(crate) fn run_tau(
    crn: &Crn,
    compiled: &CompiledCrn,
    init: &State,
    schedule: &Schedule,
    opts: &TauLeapOptions,
) -> Result<Trace, SimError> {
    assert!(
        schedule.triggers().is_empty(),
        "tau-leaping does not support triggers"
    );
    let base = &opts.base;
    if compiled.species_count() != crn.species_count() {
        return Err(SimError::DimensionMismatch {
            supplied: compiled.species_count(),
            expected: crn.species_count(),
        });
    }
    if init.len() != crn.species_count() {
        return Err(SimError::DimensionMismatch {
            supplied: init.len(),
            expected: crn.species_count(),
        });
    }
    if !base.t_start().is_finite()
        || !base.t_end().is_finite()
        || base.t_end() <= base.t_start()
        || opts.epsilon.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
    {
        return Err(SimError::BadTimeSpan {
            t_start: base.t_start(),
            t_end: base.t_end(),
        });
    }

    let mut stats = SimMetrics {
        seed: base.seed(),
        final_time: base.t_start(),
        ..SimMetrics::default()
    };
    let result = tau_core(crn, compiled, init, schedule, opts, &mut stats);
    // flush even on failure: an interrupted or step-limited run still
    // reports the work it did
    SimMetrics::flush(base.metrics(), stats);
    result
}

fn tau_core(
    crn: &Crn,
    compiled: &CompiledCrn,
    init: &State,
    schedule: &Schedule,
    opts: &TauLeapOptions,
    stats: &mut SimMetrics,
) -> Result<Trace, SimError> {
    let base = &opts.base;
    let mut n: Vec<i64> = Vec::with_capacity(init.len());
    for &v in init.as_slice() {
        n.push(crate::ssa::to_count(v)?);
    }
    let m = compiled.reaction_count();
    let mut rng = StdRng::seed_from_u64(base.seed());
    let mut t = base.t_start();
    let mut trace = Trace::new(crn);
    let mut f64_state: Vec<f64> = n.iter().map(|&v| v as f64).collect();
    trace.push(t, &f64_state);

    let injections = schedule.sorted_injections();
    let mut next_injection = 0usize;
    let mut next_record = base.t_start() + base.record_interval();
    let mut steps = 0usize;
    let mut propensities = vec![0.0; m];

    while t < base.t_end() {
        if steps >= base.max_events() {
            return Err(SimError::StepLimitExceeded {
                reached: t,
                t_end: base.t_end(),
                max_steps: base.max_events(),
            });
        }
        steps += 1;
        if let Some(hook) = base.step_hook() {
            if let std::ops::ControlFlow::Break(reason) = hook(steps as u64, t) {
                return Err(SimError::Interrupted { time: t, reason });
            }
        }

        let injection_time = injections
            .get(next_injection)
            .map_or(f64::INFINITY, |inj| inj.time);

        let mut a0 = 0.0;
        for (j, p) in propensities.iter_mut().enumerate() {
            *p = compiled.propensity(j, &n);
            a0 += *p;
        }
        if a0 <= 0.0 {
            let stop = base.t_end().min(injection_time);
            while next_record <= stop && next_record <= base.t_end() {
                trace.push(next_record, &f64_state);
                next_record += base.record_interval();
            }
            t = stop;
            stats.final_time = t;
            if injection_time <= base.t_end() {
                apply_injection(
                    &injections[next_injection],
                    &mut n,
                    &mut f64_state,
                    &mut trace,
                    t,
                )?;
                next_injection += 1;
                continue;
            }
            break;
        }

        // Cao–Gillespie step selection: bound the relative change of each
        // species that any reaction consumes.
        let mut tau = f64::INFINITY;
        for j in 0..m {
            if propensities[j] == 0.0 {
                continue;
            }
            for &(i, _) in compiled.changed_species(j) {
                // net drift and noise of species i
                let mut mu = 0.0;
                let mut sigma2 = 0.0;
                for (jj, &p) in propensities.iter().enumerate() {
                    let v = compiled
                        .changed_species(jj)
                        .iter()
                        .find(|&&(ii, _)| ii == i)
                        .map_or(0, |&(_, d)| d) as f64;
                    mu += v * p;
                    sigma2 += v * v * p;
                }
                let bound = (opts.epsilon * n[i].max(1) as f64).max(1.0);
                if mu != 0.0 {
                    tau = tau.min(bound / mu.abs());
                }
                if sigma2 > 0.0 {
                    tau = tau.min(bound * bound / sigma2);
                }
            }
        }

        // If the leap is not worth it, take a handful of exact steps.
        if tau < 10.0 / a0 {
            let u: f64 = 1.0 - rng.random::<f64>();
            let dt = -u.ln() / a0;
            let t_next = t + dt;
            let stop = base.t_end().min(injection_time);
            if t_next >= stop {
                while next_record <= stop && next_record <= base.t_end() {
                    trace.push(next_record, &f64_state);
                    next_record += base.record_interval();
                }
                t = stop;
                stats.final_time = t;
                if injection_time <= base.t_end() {
                    apply_injection(
                        &injections[next_injection],
                        &mut n,
                        &mut f64_state,
                        &mut trace,
                        t,
                    )?;
                    next_injection += 1;
                    continue;
                }
                break;
            }
            while next_record <= t_next && next_record <= base.t_end() {
                trace.push(next_record, &f64_state);
                next_record += base.record_interval();
            }
            t = t_next;
            stats.final_time = t;
            stats.ssa_events += 1;
            let pick: f64 = rng.random::<f64>() * a0;
            // shared fallback-to-positive-propensity selection: the cached
            // prefix scan here had the same zero-propensity fallback bug as
            // the direct method's
            let chosen = crate::ssa::select_reaction(m, |j| propensities[j], pick);
            compiled.fire(chosen, &mut n);
            for &(i, _) in compiled.changed_species(chosen) {
                f64_state[i] = n[i] as f64;
            }
            continue;
        }

        // Leap (clipped at the next hard stop).
        let stop = base.t_end().min(injection_time);
        let tau = tau.min(stop - t);
        stats.tau_leaps += 1;
        for (j, &p) in propensities.iter().enumerate() {
            let k = poisson(&mut rng, p * tau);
            if k == 0 {
                continue;
            }
            for &(i, d) in compiled.changed_species(j) {
                n[i] = (n[i] + d * k as i64).max(0);
            }
        }
        for (f, &c) in f64_state.iter_mut().zip(&n) {
            *f = c as f64;
        }
        let t_next = t + tau;
        while next_record <= t_next && next_record <= base.t_end() {
            trace.push(next_record, &f64_state);
            next_record += base.record_interval();
        }
        t = t_next;
        stats.final_time = t;
        if (t - injection_time).abs() < 1e-12 && injection_time <= base.t_end() {
            apply_injection(
                &injections[next_injection],
                &mut n,
                &mut f64_state,
                &mut trace,
                t,
            )?;
            next_injection += 1;
        }
    }

    trace.push(t, &f64_state);
    Ok(trace)
}

pub(crate) fn apply_injection(
    inj: &crate::Injection,
    n: &mut [i64],
    f64_state: &mut [f64],
    trace: &mut Trace,
    t: f64,
) -> Result<(), SimError> {
    n[inj.species.index()] += crate::ssa::to_count(inj.amount)?;
    f64_state[inj.species.index()] = n[inj.species.index()] as f64;
    trace.push(t, f64_state);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimSpec;
    use molseq_crn::Crn;

    /// Builder-backed stand-in for the deprecated free function (shadows
    /// the glob import), keeping every test on the new entry point.
    fn simulate_tau_leap(
        crn: &Crn,
        init: &State,
        schedule: &Schedule,
        opts: &TauLeapOptions,
        spec: &SimSpec,
    ) -> Result<Trace, SimError> {
        let compiled = CompiledCrn::new(crn, spec);
        crate::sim::Simulation::new(crn, &compiled)
            .init(init)
            .schedule(schedule)
            .options(*opts)
            .run()
    }

    #[test]
    fn poisson_matches_mean() {
        // Covers both samplers (Knuth below 10, PTRS above) including
        // λ = 40, squarely in the range where the old clamped normal
        // approximation ran. Tolerance is 4 standard errors of the sample
        // mean — tight enough that a clamp-induced mean shift at small
        // PTRS λ would also register.
        let mut rng = StdRng::seed_from_u64(1);
        for &lambda in &[0.5, 5.0, 12.0, 40.0, 80.0] {
            let n = 4000;
            let sum: u64 = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
            let mean = sum as f64 / f64::from(n);
            assert!(
                (mean - lambda).abs() < 4.0 * (lambda / f64::from(n)).sqrt(),
                "lambda {lambda}: mean {mean}"
            );
        }
    }

    #[test]
    fn poisson_matches_variance() {
        // The clamped normal approximation also shrinks the variance
        // (truncation); the exact sampler's sample variance must track λ.
        let mut rng = StdRng::seed_from_u64(5);
        for &lambda in &[12.0, 40.0] {
            let n = 8000usize;
            let draws: Vec<f64> = (0..n).map(|_| poisson(&mut rng, lambda) as f64).collect();
            let mean = draws.iter().sum::<f64>() / n as f64;
            let var = draws.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / n as f64;
            // Var[sample var] ≈ (μ4 − σ⁴)/n; for Poisson μ4 = λ(1+3λ),
            // so the SE at λ=40 with n=8000 is ≈ 0.8 — allow 5 SEs.
            let se = ((lambda * (1.0 + 3.0 * lambda) - lambda * lambda) / n as f64).sqrt();
            assert!(
                (var - lambda).abs() < 5.0 * se,
                "lambda {lambda}: variance {var}"
            );
        }
    }

    #[test]
    fn poisson_large_lambda_keeps_skewness() {
        // Regression for the clamped Box–Muller branch: a Poisson(λ) has
        // skewness 1/√λ, while the old symmetric normal approximation had
        // skewness ≈ 0. At λ = 40 and n = 20 000 the exact sampler's
        // sample skewness concentrates near 0.158 with standard error
        // ≈ 0.017, so asserting > 0.08 separates the two by several
        // standard errors — this test fails on the old sampler.
        let mut rng = StdRng::seed_from_u64(3);
        let lambda = 40.0;
        let n = 20_000usize;
        let draws: Vec<f64> = (0..n).map(|_| poisson(&mut rng, lambda) as f64).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let m2 = draws.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / n as f64;
        let m3 = draws.iter().map(|d| (d - mean).powi(3)).sum::<f64>() / n as f64;
        let skew = m3 / m2.powf(1.5);
        assert!((mean - lambda).abs() < 0.2, "mean {mean}");
        assert!(
            skew > 0.08,
            "sample skewness {skew}: symmetric draws indicate a normal approximation"
        );
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        let mut fact = 1.0f64;
        for k in 1..=20u32 {
            fact *= f64::from(k);
            let got = ln_gamma(f64::from(k) + 1.0);
            assert!(
                (got - fact.ln()).abs() < 1e-10,
                "k = {k}: {got} vs {}",
                fact.ln()
            );
        }
    }

    #[test]
    fn decay_matches_expectation_at_large_counts() {
        let crn: Crn = "X -> 0 @slow".parse().unwrap();
        let x = crn.find_species("X").unwrap();
        let n0 = 100_000.0;
        let mut init = State::new(&crn);
        init.set(x, n0);
        let opts = TauLeapOptions {
            base: SsaOptions::default().with_t_end(1.0).with_seed(2),
            ..TauLeapOptions::default()
        };
        let trace =
            simulate_tau_leap(&crn, &init, &Schedule::new(), &opts, &SimSpec::default()).unwrap();
        let expected = n0 / std::f64::consts::E;
        let got = trace.final_state()[x.index()];
        assert!((got - expected).abs() < 0.02 * n0, "{got} vs {expected}");
    }

    #[test]
    fn conserves_totals_in_closed_systems() {
        let crn: Crn = "X -> Y @slow\nY -> X @fast".parse().unwrap();
        let x = crn.find_species("X").unwrap();
        let mut init = State::new(&crn);
        init.set(x, 50_000.0);
        let opts = TauLeapOptions {
            base: SsaOptions::default().with_t_end(2.0).with_seed(7),
            ..TauLeapOptions::default()
        };
        let trace =
            simulate_tau_leap(&crn, &init, &Schedule::new(), &opts, &SimSpec::default()).unwrap();
        // tau-leaping with the zero-clamp can lose strict conservation only
        // through the clamp; at these counts it must hold exactly
        for i in 0..trace.len() {
            let total = trace.state(i)[0] + trace.state(i)[1];
            assert!(
                (total - 50_000.0).abs() < 500.0,
                "total {total} at sample {i}"
            );
        }
    }

    #[test]
    fn injections_apply_between_leaps() {
        let crn: Crn = "X -> 0 @slow".parse().unwrap();
        let x = crn.find_species("X").unwrap();
        let schedule = Schedule::new().inject(2.0, x, 10_000.0);
        let opts = TauLeapOptions {
            base: SsaOptions::default().with_t_end(2.5).with_seed(4),
            ..TauLeapOptions::default()
        };
        let trace = simulate_tau_leap(
            &crn,
            &State::new(&crn),
            &schedule,
            &opts,
            &SimSpec::default(),
        )
        .unwrap();
        assert!(trace.value_at(x, 1.9) < 1e-9);
        assert!(trace.value_at(x, 2.01) > 9_000.0);
    }

    #[test]
    fn metrics_report_leaps_and_exact_steps() {
        use crate::SimMetrics;
        use std::cell::Cell;

        let crn: Crn = "X -> 0 @slow".parse().unwrap();
        let x = crn.find_species("X").unwrap();
        let mut init = State::new(&crn);
        init.set(x, 100_000.0);
        let sink = Cell::new(SimMetrics::default());
        let opts = TauLeapOptions {
            base: SsaOptions::default()
                .with_t_end(1.0)
                .with_seed(2)
                .with_metrics(&sink),
            ..TauLeapOptions::default()
        };
        simulate_tau_leap(&crn, &init, &Schedule::new(), &opts, &SimSpec::default()).unwrap();
        let m = sink.get();
        assert!(m.tau_leaps > 0, "{m:?}");
        assert_eq!(m.final_time, 1.0);
        assert_eq!(m.seed, 2);
    }

    #[test]
    fn rejects_bad_epsilon() {
        let crn: Crn = "X -> 0 @slow".parse().unwrap();
        let opts = TauLeapOptions {
            epsilon: 0.0,
            ..TauLeapOptions::default()
        };
        assert!(simulate_tau_leap(
            &crn,
            &State::new(&crn),
            &Schedule::new(),
            &opts,
            &SimSpec::default()
        )
        .is_err());
    }
}
