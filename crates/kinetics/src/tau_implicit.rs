//! Stiffness-aware implicit tau-leaping.
//!
//! Explicit tau-leaping ([`crate::TauLeapOptions`]) is noise-limited on
//! stiff networks: a fast reversible reaction pair at partial equilibrium
//! contributes a huge variance `σ²` to the Cao–Gillespie step selection
//! even though its *net* drift is tiny, pinning `τ` to the fast timescale.
//! The implicit update of Cao, Gillespie & Petzold steps over that noise:
//!
//! ```text
//! x' = x + Σ_j ν_j · ( τ·a_j(x')  +  K_j − τ·a_j(x) ),   K_j ~ Poisson(a_j(x)·τ)
//! ```
//!
//! i.e. the *mean* extent is evaluated implicitly at the end state while
//! the zero-mean fluctuation `K_j − τ·a_j(x)` is kept explicit. Each leap
//! solves the nonlinear system with a damped Newton iteration whose matrix
//! `I − τ·ν·(∂a/∂x)` shares its sparsity pattern with the mass-action ODE
//! Jacobian, so the solver reuses the Rosenbrock integrator's machinery
//! wholesale: the minimum-degree symbolic factorization, the no-pivot
//! sparse LU and its pivoted-dense fallback guard (see `stiff.rs`), all
//! allocation-free across leaps through [`crate::OdeWorkspace`].
//!
//! The leaper is *adaptive*: per leap it computes both the explicit step
//! `τ_ex` (full Cao–Gillespie selection) and the implicit step `τ_im`
//! (same selection, but reactions belonging to a structurally reversible
//! pair that is currently near propensity balance — i.e. at partial
//! equilibrium — are excluded entirely, since the implicit update steps
//! over their fast manifold). A pair that is momentarily *out* of balance
//! keeps its constraints, which shrinks `τ_im` and routes that step to
//! the exact-SSA fallback — one cheap event is what restores balance at
//! low copy numbers, so the flicker is self-correcting. Only when `τ_im`
//! buys at least [`TauLeapImplicitOptions::stiff_ratio`] over `τ_ex`
//! does the Newton machinery engage; otherwise the leap is the cheap
//! explicit one.
//! Extents are rounded to integers as `round(K_j + τ·(a_j(x') − a_j(x)))`
//! and applied through the integer stoichiometry, so conservation laws
//! (left null vectors of `ν`) hold *exactly*, leap by leap.

use crate::compiled::CompiledCrn;
use crate::metrics::SimMetrics;
use crate::ode::OdeWorkspace;
use crate::stiff::{assemble_w, Lu, Symbolic};
use crate::tau::{apply_injection, poisson, TauLeapOptions};
use crate::{Schedule, SimError, State, Trace};
use molseq_crn::Crn;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Options for the stiffness-aware implicit tau-leaper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TauLeapImplicitOptions<'h> {
    /// The explicit leaper's options (span, recording, seed, budget, step
    /// hook, and the Cao–Gillespie `epsilon` shared by both selections).
    pub base: TauLeapOptions<'h>,
    /// Engage the implicit update only when `τ_im > stiff_ratio · τ_ex`
    /// (default `10.0`). `0` forces every leap implicit — useful for
    /// testing and for networks known to be permanently stiff.
    pub stiff_ratio: f64,
    /// Hard cap on the implicit step (default unbounded). The implicit
    /// update damps stationary fluctuations by `~1/(1 + c·τ)`, so callers
    /// who care about stationary *distributions* (not just means) should
    /// cap `τ` below the relaxation time of the observables they measure.
    pub tau_max: f64,
    /// Newton convergence threshold on `max_i |F_i| / (1 + |x'_i|)`
    /// (default `1e-9`).
    pub newton_tol: f64,
    /// Maximum Newton iterations per solve before the leap falls back to
    /// a halved step (default `25`).
    pub max_newton: usize,
}

impl Default for TauLeapImplicitOptions<'_> {
    fn default() -> Self {
        TauLeapImplicitOptions {
            base: TauLeapOptions::default(),
            stiff_ratio: 10.0,
            tau_max: f64::INFINITY,
            newton_tol: 1e-9,
            max_newton: 25,
        }
    }
}

/// Newton-solver buffers for implicit leaps, cached inside
/// [`OdeWorkspace`] so repeated runs over the same network (sweep cells,
/// replicate fans) allocate nothing per call — the same contract the
/// Rosenbrock scratch honours.
pub(crate) struct NewtonWork {
    /// Elimination structure of the (fixed) Newton-matrix pattern.
    sym: Symbolic,
    /// Propensity-Jacobian nonzeros over the compiled CSR pattern.
    jac_vals: Vec<f64>,
    /// `n×n` dense scratch for the assembled, permuted Newton matrix.
    w: Vec<f64>,
    /// Spare matrix + pivots for the pivoted-dense fallback.
    w_dense: Vec<f64>,
    pivots: Vec<usize>,
    /// Permuted right-hand side scratch for the sparse triangular solves.
    bperm: Vec<f64>,
    x_new: Vec<f64>,
    x_try: Vec<f64>,
    f: Vec<f64>,
    delta: Vec<f64>,
    /// Per-reaction buffers: start propensities, iterate propensities,
    /// Poisson draws, explicit-part constants, integer extents.
    a0: Vec<f64>,
    a1: Vec<f64>,
    k_draw: Vec<f64>,
    c: Vec<f64>,
    extents: Vec<i64>,
    /// For each reaction, its structural reverse partner (`ν_j == −ν_j'`)
    /// if one exists — the partial-equilibrium candidates the implicit
    /// selection drops while their propensities are near balance.
    paired: Vec<Option<usize>>,
    /// Trial integer state for the negativity check.
    n_try: Vec<i64>,
}

impl NewtonWork {
    fn new(compiled: &CompiledCrn) -> Self {
        let n = compiled.species_count();
        let m = compiled.reaction_count();
        NewtonWork {
            sym: Symbolic::new(compiled),
            jac_vals: vec![0.0; compiled.jacobian_nnz()],
            w: vec![0.0; n * n],
            w_dense: vec![0.0; n * n],
            pivots: vec![0; n],
            bperm: vec![0.0; n],
            x_new: vec![0.0; n],
            x_try: vec![0.0; n],
            f: vec![0.0; n],
            delta: vec![0.0; n],
            a0: vec![0.0; m],
            a1: vec![0.0; m],
            k_draw: vec![0.0; m],
            c: vec![0.0; m],
            extents: vec![0; m],
            paired: find_reverse_pairs(compiled),
            n_try: vec![0; n],
        }
    }

    fn matches(&self, compiled: &CompiledCrn) -> bool {
        self.sym.matches(compiled)
            && self.jac_vals.len() == compiled.jacobian_nnz()
            && self.a0.len() == compiled.reaction_count()
    }
}

/// Finds each reaction's structural reverse partner: another reaction
/// whose net stoichiometric change is the exact negation. Such pairs are
/// the candidates for partial equilibrium — when both run fast near
/// balance, their variance dominates the explicit step selection while
/// their net drift cancels, which is precisely the regime the implicit
/// update exploits. Structure decides *candidacy* (it cannot flicker);
/// the cheap propensity-balance test at the current state decides, per
/// leap, whether the pair is actually equilibrated.
pub(crate) fn find_reverse_pairs(compiled: &CompiledCrn) -> Vec<Option<usize>> {
    let m = compiled.reaction_count();
    let deltas: Vec<Vec<(usize, i64)>> = (0..m)
        .map(|j| {
            let mut d = compiled.changed_species(j).to_vec();
            d.sort_unstable_by_key(|&(i, _)| i);
            d
        })
        .collect();
    let mut paired = vec![None; m];
    for j1 in 0..m {
        for j2 in (j1 + 1)..m {
            if deltas[j1].len() == deltas[j2].len()
                && deltas[j1]
                    .iter()
                    .zip(&deltas[j2])
                    .all(|(&(i1, d1), &(i2, d2))| i1 == i2 && d1 == -d2)
            {
                paired[j1].get_or_insert(j2);
                paired[j2].get_or_insert(j1);
            }
        }
    }
    paired
}

/// How far out of balance a structural reverse pair may be — relative to
/// the smaller of the two propensities — and still count as equilibrated
/// for the implicit step selection.
const PAIR_BALANCE_DELTA: f64 = 0.2;

/// Whether reaction `j`'s structural reverse pair is currently near
/// propensity balance (partial equilibrium): `|a₊ − a₋| ≤ δ·min(a₊, a₋)`
/// with both sides firing.
fn pair_balanced(propensities: &[f64], paired: &[Option<usize>], j: usize) -> bool {
    match paired[j] {
        None => false,
        Some(q) => {
            let (pj, pq) = (propensities[j], propensities[q]);
            let floor = pj.min(pq);
            floor > 0.0 && (pj - pq).abs() <= PAIR_BALANCE_DELTA * floor
        }
    }
}

/// Cao–Gillespie step selection bounding each consumed species' relative
/// change by `epsilon`. With `drop_balanced_pairs` — the implicit
/// selection — reactions whose structural reverse pair is currently at
/// partial equilibrium are excluded from both the drift (`μ`) and the
/// variance (`σ²`) sums: the implicit update resolves their fast manifold
/// itself, so only the genuinely slow reactions should limit the step.
fn select_tau(
    compiled: &CompiledCrn,
    propensities: &[f64],
    n: &[i64],
    epsilon: f64,
    paired: &[Option<usize>],
    drop_balanced_pairs: bool,
) -> f64 {
    let m = compiled.reaction_count();
    let mut tau = f64::INFINITY;
    for j in 0..m {
        if propensities[j] == 0.0 {
            continue;
        }
        for &(i, _) in compiled.changed_species(j) {
            let mut mu = 0.0;
            let mut sigma2 = 0.0;
            for (jj, &p) in propensities.iter().enumerate() {
                if drop_balanced_pairs && pair_balanced(propensities, paired, jj) {
                    continue;
                }
                let v = compiled
                    .changed_species(jj)
                    .iter()
                    .find(|&&(ii, _)| ii == i)
                    .map_or(0, |&(_, d)| d) as f64;
                mu += v * p;
                sigma2 += v * v * p;
            }
            let bound = (epsilon * n[i].max(1) as f64).max(1.0);
            if mu != 0.0 {
                tau = tau.min(bound / mu.abs());
            }
            if sigma2 > 0.0 {
                tau = tau.min(bound * bound / sigma2);
            }
        }
    }
    tau
}

/// Residual of the implicit update at `x_eval`, written into `f`:
/// `F_i = x_eval_i − x_i − Σ_j ν_ij (τ·a_j(x_eval) + c_j)` with
/// `c_j = K_j − τ·a_j(x)`. Returns `max_i |F_i| / (1 + |x_eval_i|)`;
/// `a_buf` receives the propensities at `x_eval`.
fn residual(
    compiled: &CompiledCrn,
    tau: f64,
    c: &[f64],
    x: &[f64],
    x_eval: &[f64],
    a_buf: &mut [f64],
    f: &mut [f64],
) -> f64 {
    for (j, a) in a_buf.iter_mut().enumerate() {
        *a = compiled.propensity_f(j, x_eval);
    }
    for (fi, (&xe, &xi)) in f.iter_mut().zip(x_eval.iter().zip(x)) {
        *fi = xe - xi;
    }
    for (j, &a) in a_buf.iter().enumerate() {
        let extent = tau * a + c[j];
        if extent != 0.0 {
            for &(i, d) in compiled.changed_species(j) {
                f[i] -= d as f64 * extent;
            }
        }
    }
    let mut norm = 0.0f64;
    for (fi, xe) in f.iter().zip(x_eval) {
        norm = norm.max(fi.abs() / (1.0 + xe.abs()));
    }
    norm
}

/// Damped Newton solve of the implicit update for step `tau` from state
/// `x` (continuous copy of the integer state), with Poisson draws already
/// in `work.k_draw` and start propensities in `work.a0`. On success
/// `work.x_new` holds the end state and `work.a1` its propensities.
fn newton_solve(
    work: &mut NewtonWork,
    compiled: &CompiledCrn,
    x: &[f64],
    tau: f64,
    newton_tol: f64,
    max_newton: usize,
    stats: &mut SimMetrics,
) -> bool {
    let n = compiled.species_count();
    for (cj, (&k, &a)) in work.c.iter_mut().zip(work.k_draw.iter().zip(&work.a0)) {
        *cj = k - tau * a;
    }
    work.x_new.copy_from_slice(x);
    let mut norm = residual(
        compiled,
        tau,
        &work.c,
        x,
        &work.x_new,
        &mut work.a1,
        &mut work.f,
    );
    for _ in 0..max_newton {
        if norm <= newton_tol {
            return true;
        }
        stats.newton_iterations += 1;
        // Assemble `I − τ·ν·(∂a/∂x)` at the current iterate over the
        // shared CSR pattern and factor it sparsely; a tripped stability
        // guard falls back to the pivoted dense factorization, exactly
        // like the Rosenbrock stepper.
        compiled.propensity_jacobian_sparse(&work.x_new, &mut work.jac_vals);
        work.sym
            .assemble(compiled, &work.jac_vals, tau, &mut work.w);
        work.delta.copy_from_slice(&work.f);
        if work.sym.factor(&mut work.w) {
            work.sym.solve(&work.w, &mut work.delta, &mut work.bperm);
        } else {
            let mut wd = std::mem::take(&mut work.w_dense);
            let pivots = std::mem::take(&mut work.pivots);
            assemble_w(compiled, &work.jac_vals, tau, &mut wd);
            match Lu::factor(wd, pivots, n) {
                Ok(lu) => {
                    lu.solve(&mut work.delta);
                    (work.w_dense, work.pivots) = lu.into_buffers();
                }
                Err((wd, pivots)) => {
                    work.w_dense = wd;
                    work.pivots = pivots;
                    return false;
                }
            }
        }
        // Line search: accept the first damping factor that reduces the
        // scaled residual norm; a full stall means the leap is too
        // ambitious and the caller halves τ.
        let mut advanced = false;
        for &lambda in &[1.0, 0.5, 0.25, 0.125] {
            for (xt, (&xn, &d)) in work
                .x_try
                .iter_mut()
                .zip(work.x_new.iter().zip(&work.delta))
            {
                *xt = (xn - lambda * d).max(0.0);
            }
            let try_norm = residual(
                compiled,
                tau,
                &work.c,
                x,
                &work.x_try,
                &mut work.a1,
                &mut work.f,
            );
            if try_norm < norm {
                std::mem::swap(&mut work.x_new, &mut work.x_try);
                norm = try_norm;
                advanced = true;
                break;
            }
        }
        if !advanced {
            return false;
        }
    }
    // `a1`/`f` were last evaluated at a rejected line-search candidate;
    // re-evaluate at the accepted iterate before the convergence check.
    norm = residual(
        compiled,
        tau,
        &work.c,
        x,
        &work.x_new,
        &mut work.a1,
        &mut work.f,
    );
    norm <= newton_tol
}

/// How many τ-halvings an implicit leap attempts (Newton failure or a
/// negative-population overshoot) before conceding the leap to one exact
/// SSA step.
const MAX_LEAP_RETRIES: usize = 6;

/// Validated entry point over a precompiled network: what the
/// [`Simulation`](crate::Simulation) builder dispatches to for
/// [`SimMethod::TauLeapImplicit`](crate::SimMethod::TauLeapImplicit).
pub(crate) fn run_tau_implicit(
    crn: &Crn,
    compiled: &CompiledCrn,
    init: &State,
    schedule: &Schedule,
    opts: &TauLeapImplicitOptions,
    workspace: &mut OdeWorkspace,
) -> Result<Trace, SimError> {
    assert!(
        schedule.triggers().is_empty(),
        "tau-leaping does not support triggers"
    );
    let base = &opts.base.base;
    if compiled.species_count() != crn.species_count() {
        return Err(SimError::DimensionMismatch {
            supplied: compiled.species_count(),
            expected: crn.species_count(),
        });
    }
    if init.len() != crn.species_count() {
        return Err(SimError::DimensionMismatch {
            supplied: init.len(),
            expected: crn.species_count(),
        });
    }
    if !base.t_start().is_finite()
        || !base.t_end().is_finite()
        || base.t_end() <= base.t_start()
        || opts.base.epsilon.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
        || opts.stiff_ratio.partial_cmp(&0.0) == Some(std::cmp::Ordering::Less)
        || opts.stiff_ratio.is_nan()
        || opts.tau_max.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
        || opts.newton_tol.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
    {
        return Err(SimError::BadTimeSpan {
            t_start: base.t_start(),
            t_end: base.t_end(),
        });
    }

    match &mut workspace.newton {
        Some(work) if work.matches(compiled) => {}
        slot => *slot = Some(NewtonWork::new(compiled)),
    }

    let mut stats = SimMetrics {
        seed: base.seed(),
        final_time: base.t_start(),
        ..SimMetrics::default()
    };
    let result = implicit_core(crn, compiled, init, schedule, opts, workspace, &mut stats);
    // flush even on failure: an interrupted or step-limited run still
    // reports the work it did
    SimMetrics::flush(base.metrics(), stats);
    result
}

#[allow(clippy::too_many_lines)]
fn implicit_core(
    crn: &Crn,
    compiled: &CompiledCrn,
    init: &State,
    schedule: &Schedule,
    opts: &TauLeapImplicitOptions,
    workspace: &mut OdeWorkspace,
    stats: &mut SimMetrics,
) -> Result<Trace, SimError> {
    let base = &opts.base.base;
    let epsilon = opts.base.epsilon;
    let work = workspace
        .newton
        .as_mut()
        .expect("prepared by run_tau_implicit");
    let mut n: Vec<i64> = Vec::with_capacity(init.len());
    for &v in init.as_slice() {
        n.push(crate::ssa::to_count(v)?);
    }
    let m = compiled.reaction_count();
    let mut rng = StdRng::seed_from_u64(base.seed());
    let mut t = base.t_start();
    let mut trace = Trace::new(crn);
    let mut f64_state: Vec<f64> = n.iter().map(|&v| v as f64).collect();
    trace.push(t, &f64_state);

    let injections = schedule.sorted_injections();
    let mut next_injection = 0usize;
    let mut next_record = base.t_start() + base.record_interval();
    let mut steps = 0usize;
    let mut propensities = vec![0.0; m];
    // Some(true) = the previous leap was implicit; exact fallback steps
    // do not flip the regime.
    let mut prev_implicit: Option<bool> = None;

    while t < base.t_end() {
        if steps >= base.max_events() {
            return Err(SimError::StepLimitExceeded {
                reached: t,
                t_end: base.t_end(),
                max_steps: base.max_events(),
            });
        }
        steps += 1;
        if let Some(hook) = base.step_hook() {
            if let std::ops::ControlFlow::Break(reason) = hook(steps as u64, t) {
                return Err(SimError::Interrupted { time: t, reason });
            }
        }

        let injection_time = injections
            .get(next_injection)
            .map_or(f64::INFINITY, |inj| inj.time);

        let mut a0 = 0.0;
        for (j, p) in propensities.iter_mut().enumerate() {
            *p = compiled.propensity(j, &n);
            a0 += *p;
        }
        if a0 <= 0.0 {
            let stop = base.t_end().min(injection_time);
            while next_record <= stop && next_record <= base.t_end() {
                trace.push(next_record, &f64_state);
                next_record += base.record_interval();
            }
            t = stop;
            stats.final_time = t;
            if injection_time <= base.t_end() {
                apply_injection(
                    &injections[next_injection],
                    &mut n,
                    &mut f64_state,
                    &mut trace,
                    t,
                )?;
                next_injection += 1;
                continue;
            }
            break;
        }

        let tau_ex = select_tau(compiled, &propensities, &n, epsilon, &work.paired, false);
        let tau_im =
            select_tau(compiled, &propensities, &n, epsilon, &work.paired, true).min(opts.tau_max);
        let stiff = opts.stiff_ratio == 0.0 || tau_im > opts.stiff_ratio * tau_ex;
        let tau = if stiff { tau_im } else { tau_ex };
        let stop = base.t_end().min(injection_time);

        let mut leaped = false;
        if tau >= 10.0 / a0 {
            let mut tau = tau.min(stop - t);
            if stiff {
                // Implicit leap: draw K at the start state, solve the
                // damped-Newton system, round extents, and retry at τ/2
                // (fresh draws — still deterministic per seed) if Newton
                // stalls or a population would go negative.
                work.a0.copy_from_slice(&propensities);
                for _ in 0..=MAX_LEAP_RETRIES {
                    for (k, &a) in work.k_draw.iter_mut().zip(&work.a0) {
                        *k = poisson(&mut rng, a * tau) as f64;
                    }
                    if !newton_solve(
                        work,
                        compiled,
                        &f64_state,
                        tau,
                        opts.newton_tol,
                        opts.max_newton,
                        stats,
                    ) {
                        tau *= 0.5;
                        continue;
                    }
                    // Conservation-exact integer extents: the rounded
                    // reaction counts are applied through ν, so any left
                    // null vector of ν is preserved to the last molecule.
                    for (ext, (&k, (&a1, &a0j))) in work
                        .extents
                        .iter_mut()
                        .zip(work.k_draw.iter().zip(work.a1.iter().zip(&work.a0)))
                    {
                        *ext = (k + tau * (a1 - a0j)).round().max(0.0) as i64;
                    }
                    work.n_try.copy_from_slice(&n);
                    for (j, &ext) in work.extents.iter().enumerate() {
                        if ext != 0 {
                            for &(i, d) in compiled.changed_species(j) {
                                work.n_try[i] += d * ext;
                            }
                        }
                    }
                    if work.n_try.iter().any(|&v| v < 0) {
                        tau *= 0.5;
                        continue;
                    }
                    n.copy_from_slice(&work.n_try);
                    stats.tau_leaps_implicit += 1;
                    if prev_implicit == Some(false) {
                        stats.leap_switchovers += 1;
                    }
                    prev_implicit = Some(true);
                    leaped = true;
                    break;
                }
            } else {
                stats.tau_leaps += 1;
                for (j, &p) in propensities.iter().enumerate() {
                    let k = poisson(&mut rng, p * tau);
                    if k == 0 {
                        continue;
                    }
                    for &(i, d) in compiled.changed_species(j) {
                        n[i] = (n[i] + d * k as i64).max(0);
                    }
                }
                if prev_implicit == Some(true) {
                    stats.leap_switchovers += 1;
                }
                prev_implicit = Some(false);
                leaped = true;
            }
            if leaped {
                for (f, &c) in f64_state.iter_mut().zip(&n) {
                    *f = c as f64;
                }
                let t_next = t + tau;
                while next_record <= t_next && next_record <= base.t_end() {
                    trace.push(next_record, &f64_state);
                    next_record += base.record_interval();
                }
                t = t_next;
                stats.final_time = t;
                if (t - injection_time).abs() < 1e-12 && injection_time <= base.t_end() {
                    apply_injection(
                        &injections[next_injection],
                        &mut n,
                        &mut f64_state,
                        &mut trace,
                        t,
                    )?;
                    next_injection += 1;
                }
                continue;
            }
        }

        // Exact SSA step: the selected leap was not worth it, or every
        // implicit retry failed.
        let u: f64 = 1.0 - rng.random::<f64>();
        let dt = -u.ln() / a0;
        let t_next = t + dt;
        if t_next >= stop {
            while next_record <= stop && next_record <= base.t_end() {
                trace.push(next_record, &f64_state);
                next_record += base.record_interval();
            }
            t = stop;
            stats.final_time = t;
            if injection_time <= base.t_end() {
                apply_injection(
                    &injections[next_injection],
                    &mut n,
                    &mut f64_state,
                    &mut trace,
                    t,
                )?;
                next_injection += 1;
                continue;
            }
            break;
        }
        while next_record <= t_next && next_record <= base.t_end() {
            trace.push(next_record, &f64_state);
            next_record += base.record_interval();
        }
        t = t_next;
        stats.final_time = t;
        stats.ssa_events += 1;
        let pick: f64 = rng.random::<f64>() * a0;
        let chosen = crate::ssa::select_reaction(m, |j| propensities[j], pick);
        compiled.fire(chosen, &mut n);
        for &(i, _) in compiled.changed_species(chosen) {
            f64_state[i] = n[i] as f64;
        }
    }

    trace.push(t, &f64_state);
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulation;
    use crate::{SimSpec, SsaOptions};
    use std::cell::Cell;

    fn run_implicit(
        crn: &Crn,
        compiled: &CompiledCrn,
        init: &State,
        opts: &TauLeapImplicitOptions,
    ) -> Result<Trace, SimError> {
        Simulation::new(crn, compiled)
            .init(init)
            .options(*opts)
            .run()
    }

    /// A birth–death chain at its Poisson stationary state: the reverse
    /// pair detector must flag nothing (the two reactions are not exact
    /// structural inverses of a *pair* here — they are: `0 → X` has
    /// `ν = +1`, `X → 0` has `ν = −1`), and the chain serves as the
    /// distribution-agreement workload.
    fn birth_death() -> (Crn, CompiledCrn, State) {
        let crn: Crn = "0 -> X @1000\nX -> 0 @1".parse().unwrap();
        let x = crn.find_species("X").unwrap();
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let mut init = State::new(&crn);
        init.set(x, 1000.0);
        (crn, compiled, init)
    }

    /// The stiff-clock motif from the paper's absence-indicator clocks:
    /// an indicator `R` is generated from nothing and consumed fast by a
    /// large catalyst population `X`, forming a structurally reversible
    /// pair at quasi-steady state, while `X` drains on a slow timescale.
    fn stiff_clock() -> (Crn, CompiledCrn, State) {
        let crn: Crn = "0 -> R @10000\nR + X -> X @100\nX -> Y @0.01"
            .parse()
            .unwrap();
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let x = crn.find_species("X").unwrap();
        let mut init = State::new(&crn);
        init.set(x, 100.0);
        (crn, compiled, init)
    }

    #[test]
    fn reverse_pairs_are_structural() {
        let (_, compiled, _) = stiff_clock();
        // 0 -> R and R + X -> X both touch only R, with +1/−1: a pair.
        // X -> Y has no negation partner.
        assert_eq!(find_reverse_pairs(&compiled), vec![Some(1), Some(0), None]);
    }

    #[test]
    fn same_seed_is_bit_identical_and_workspace_neutral() {
        let (crn, compiled, init) = birth_death();
        let opts = TauLeapImplicitOptions {
            base: TauLeapOptions {
                base: SsaOptions::default().with_t_end(2.0).with_seed(11),
                ..TauLeapOptions::default()
            },
            stiff_ratio: 0.0,
            tau_max: 0.25,
            ..TauLeapImplicitOptions::default()
        };
        let a = run_implicit(&crn, &compiled, &init, &opts).unwrap();
        let b = run_implicit(&crn, &compiled, &init, &opts).unwrap();
        assert_eq!(a, b);
        // a recycled workspace must not perturb the stream
        let mut ws = OdeWorkspace::new();
        let c = Simulation::new(&crn, &compiled)
            .init(&init)
            .options(opts)
            .workspace(&mut ws)
            .run()
            .unwrap();
        let d = Simulation::new(&crn, &compiled)
            .init(&init)
            .options(opts)
            .workspace(&mut ws)
            .run()
            .unwrap();
        assert_eq!(a, c);
        assert_eq!(c, d);
    }

    #[test]
    fn forced_implicit_leaps_are_implicit() {
        let (crn, compiled, init) = birth_death();
        let sink = Cell::new(SimMetrics::default());
        let opts = TauLeapImplicitOptions {
            base: TauLeapOptions {
                base: SsaOptions::default()
                    .with_t_end(5.0)
                    .with_seed(3)
                    .with_metrics(&sink),
                ..TauLeapOptions::default()
            },
            stiff_ratio: 0.0,
            tau_max: 0.25,
            ..TauLeapImplicitOptions::default()
        };
        run_implicit(&crn, &compiled, &init, &opts).unwrap();
        let m = sink.get();
        assert!(m.tau_leaps_implicit > 0, "{m:?}");
        assert_eq!(m.tau_leaps, 0, "{m:?}");
        assert!(m.newton_iterations >= m.tau_leaps_implicit, "{m:?}");
        assert_eq!(m.leap_switchovers, 0, "{m:?}");
        assert_eq!(m.final_time, 5.0);
    }

    #[test]
    fn infinite_stiff_ratio_reduces_to_explicit_leaping() {
        let (crn, compiled, init) = birth_death();
        let sink = Cell::new(SimMetrics::default());
        let opts = TauLeapImplicitOptions {
            base: TauLeapOptions {
                base: SsaOptions::default()
                    .with_t_end(5.0)
                    .with_seed(3)
                    .with_metrics(&sink),
                ..TauLeapOptions::default()
            },
            stiff_ratio: f64::INFINITY,
            ..TauLeapImplicitOptions::default()
        };
        run_implicit(&crn, &compiled, &init, &opts).unwrap();
        let m = sink.get();
        assert!(m.tau_leaps > 0, "{m:?}");
        assert_eq!(m.tau_leaps_implicit, 0, "{m:?}");
        assert_eq!(m.newton_iterations, 0, "{m:?}");
    }

    /// Distribution agreement on a non-stiff chain: forced-implicit and
    /// explicit leaping must reproduce the same stationary mean and
    /// variance (Poisson with mean 1000) within CLT-scale bounds. The
    /// implicit τ is capped well below the relaxation time (1/d = 1) so
    /// its known variance damping (~τ·d/2 ≈ 6%) stays inside the bounds.
    #[test]
    fn implicit_and_explicit_agree_in_distribution() {
        let (crn, compiled, init) = birth_death();
        let x = crn.find_species("X").unwrap();
        let replicates = 48u64;
        let t_end = 8.0;
        let mut finals_ex = Vec::new();
        let mut finals_im = Vec::new();
        for seed in 1..=replicates {
            let ssa = SsaOptions::default().with_t_end(t_end).with_seed(seed);
            let tau_opts = TauLeapOptions {
                base: ssa,
                ..TauLeapOptions::default()
            };
            let ex = Simulation::new(&crn, &compiled)
                .init(&init)
                .options(tau_opts)
                .run()
                .unwrap();
            finals_ex.push(ex.final_state()[x.index()]);
            let im_opts = TauLeapImplicitOptions {
                base: tau_opts,
                stiff_ratio: 0.0,
                tau_max: 0.125,
                ..TauLeapImplicitOptions::default()
            };
            let im = run_implicit(&crn, &compiled, &init, &im_opts).unwrap();
            finals_im.push(im.final_state()[x.index()]);
        }
        let stats = |v: &[f64]| {
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            let var = v.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (v.len() - 1) as f64;
            (mean, var)
        };
        let (mean_ex, var_ex) = stats(&finals_ex);
        let (mean_im, var_im) = stats(&finals_im);
        // Stationary law is Poisson(1000): mean 1000, variance 1000.
        // std of the sample mean is √(1000/48) ≈ 4.6 → 5σ ≈ 23.
        assert!((mean_ex - 1000.0).abs() < 25.0, "explicit mean {mean_ex}");
        assert!((mean_im - 1000.0).abs() < 25.0, "implicit mean {mean_im}");
        assert!((mean_ex - mean_im).abs() < 35.0, "{mean_ex} vs {mean_im}");
        // Sample variance of 48 replicates is noisy (std ≈ 200); bound a
        // factor-of-two band around the Poisson value for both leapers.
        assert!(var_ex > 400.0 && var_ex < 2000.0, "explicit var {var_ex}");
        assert!(var_im > 400.0 && var_im < 2000.0, "implicit var {var_im}");
    }

    /// The headline regression: on the stiff clock motif, the implicit
    /// leaper finishes under a step budget that exhausts the explicit
    /// leaper — the fast indicator pair pins the explicit τ to ~1/σ²
    /// while the implicit selection steps on the slow drain timescale.
    #[test]
    fn stiff_clock_finishes_under_budget_that_kills_explicit() {
        let (crn, compiled, init) = stiff_clock();
        let budget = 5_000usize;
        let t_end = 10.0;

        let ex_opts = TauLeapOptions {
            base: SsaOptions::default()
                .with_t_end(t_end)
                .with_seed(5)
                .with_max_events(budget),
            ..TauLeapOptions::default()
        };
        let explicit = Simulation::new(&crn, &compiled)
            .init(&init)
            .options(ex_opts)
            .run();
        assert!(
            matches!(explicit, Err(SimError::StepLimitExceeded { .. })),
            "explicit leaper must exhaust the budget: {explicit:?}"
        );

        let sink = Cell::new(SimMetrics::default());
        let im_opts = TauLeapImplicitOptions {
            base: TauLeapOptions {
                base: SsaOptions::default()
                    .with_t_end(t_end)
                    .with_seed(5)
                    .with_max_events(budget)
                    .with_metrics(&sink),
                ..TauLeapOptions::default()
            },
            ..TauLeapImplicitOptions::default()
        };
        let trace = run_implicit(&crn, &compiled, &init, &im_opts).unwrap();
        let m = sink.get();
        assert_eq!(m.final_time, t_end, "{m:?}");
        assert!(m.tau_leaps_implicit > 0, "{m:?}");
        // the slow drain actually progressed
        let y = crn.find_species("Y").unwrap();
        assert!(trace.final_state()[y.index()] > 0.0);
    }

    /// Mass conservation through rounded extents: on a closed
    /// interconversion loop the total copy number is a left null vector
    /// of ν and must be preserved exactly by every implicit leap.
    #[test]
    fn conservation_is_exact_under_implicit_leaps() {
        let crn: Crn = "A -> B @1000\nB -> A @1000".parse().unwrap();
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let a = crn.find_species("A").unwrap();
        let mut init = State::new(&crn);
        init.set(a, 500.0);
        let opts = TauLeapImplicitOptions {
            base: TauLeapOptions {
                base: SsaOptions::default().with_t_end(2.0).with_seed(9),
                ..TauLeapOptions::default()
            },
            stiff_ratio: 0.0,
            tau_max: 0.5,
            ..TauLeapImplicitOptions::default()
        };
        let trace = run_implicit(&crn, &compiled, &init, &opts).unwrap();
        for i in 0..trace.len() {
            let total: f64 = trace.state(i).iter().sum();
            assert_eq!(total, 500.0, "leaked at sample {i}");
        }
    }

    #[test]
    fn injections_are_honoured() {
        let (crn, compiled, _) = birth_death();
        let x = crn.find_species("X").unwrap();
        let mut init = State::new(&crn);
        init.set(x, 1000.0);
        let schedule = Schedule::new().inject(1.0, x, 5000.0);
        let opts = TauLeapImplicitOptions {
            base: TauLeapOptions {
                base: SsaOptions::default().with_t_end(1.25).with_seed(2),
                ..TauLeapOptions::default()
            },
            stiff_ratio: 0.0,
            tau_max: 0.125,
            ..TauLeapImplicitOptions::default()
        };
        let trace = Simulation::new(&crn, &compiled)
            .init(&init)
            .schedule(&schedule)
            .options(opts)
            .run()
            .unwrap();
        assert!(trace.value_at(x, 0.99) < 2000.0);
        assert!(trace.value_at(x, 1.01) > 4000.0);
    }

    #[test]
    fn bad_epsilon_and_spans_are_rejected() {
        let (crn, compiled, init) = birth_death();
        let mut opts = TauLeapImplicitOptions::default();
        opts.base.epsilon = 0.0;
        assert!(matches!(
            run_implicit(&crn, &compiled, &init, &opts),
            Err(SimError::BadTimeSpan { .. })
        ));
        let opts = TauLeapImplicitOptions {
            tau_max: 0.0,
            ..TauLeapImplicitOptions::default()
        };
        assert!(matches!(
            run_implicit(&crn, &compiled, &init, &opts),
            Err(SimError::BadTimeSpan { .. })
        ));
        let opts = TauLeapImplicitOptions {
            stiff_ratio: -1.0,
            ..TauLeapImplicitOptions::default()
        };
        assert!(matches!(
            run_implicit(&crn, &compiled, &init, &opts),
            Err(SimError::BadTimeSpan { .. })
        ));
    }
}
