//! A cross-request cache of compiled networks.
//!
//! The compile-once/rebind-many pattern ([`CompiledCrn::new`] once,
//! [`CompiledCrn::rebind`] per sweep cell) amortizes compilation *within*
//! one sweep. A long-running process — the batch-simulation server — sees
//! the same networks arrive across many independent requests, so the same
//! pattern deserves to span requests: [`CompiledCache`] stores one
//! default-spec compile per [`Crn::structural_hash`] and serves every
//! structurally identical network from it, rebound to whatever [`SimSpec`]
//! the request wants. Because `rebind` is property-tested equal to a fresh
//! `CompiledCrn::new`, a cache hit is bit-identical to compiling from
//! scratch — caching can never change simulation results.
//!
//! The cache can be bounded: [`CompiledCache::with_capacity`] caps the
//! number of stored structures and evicts the least-recently-used entry
//! to admit a new one. Eviction only discards a memoized compile — the
//! next request for the evicted structure recompiles from the `Crn`,
//! bit-identically — so a bound trades recompilation time for memory and
//! nothing else.

use crate::{CompiledCrn, SimSpec};
use molseq_crn::Crn;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One cached compile plus the logical timestamp of its last use.
#[derive(Debug)]
struct CacheSlot {
    compiled: Arc<CompiledCrn>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct CacheMap {
    entries: HashMap<u64, CacheSlot>,
    /// Monotonic use counter backing the LRU order; bumped on every hit
    /// and insert while the map lock is held, so stamps are unique.
    clock: u64,
}

/// A thread-safe, structurally keyed cache of [`CompiledCrn`]s.
///
/// Entries are keyed by [`Crn::structural_hash`] and hold the network
/// compiled under [`SimSpec::default`]; [`get_or_compile`] rebinds the
/// cached entry to the caller's spec. Hit/miss/eviction counters are
/// atomic so a server can report them from its stats path without taking
/// the map lock.
///
/// An unbounded cache ([`new`](Self::new)) never evicts; a bounded one
/// ([`with_capacity`](Self::with_capacity)) holds at most `capacity`
/// structures and evicts the least-recently-used entry on insert.
///
/// [`get_or_compile`]: Self::get_or_compile
///
/// # Examples
///
/// ```
/// use molseq_crn::Crn;
/// use molseq_kinetics::{CompiledCache, CompiledCrn, SimSpec};
///
/// let cache = CompiledCache::new();
/// let crn: Crn = "X + Y -> Z @fast".parse().unwrap();
/// let spec = SimSpec::default();
/// let first = cache.get_or_compile(&crn, &spec);
/// let again = cache.get_or_compile(&crn, &spec);
/// assert_eq!(*first, *again);
/// assert_eq!(again, CompiledCrn::new(&crn, &spec).into());
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// ```
#[derive(Debug, Default)]
pub struct CompiledCache {
    map: Mutex<CacheMap>,
    capacity: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CompiledCache {
    /// An empty, unbounded cache with zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        CompiledCache::default()
    }

    /// An empty cache bounded to `capacity` stored structures; inserting
    /// past the bound evicts the least-recently-used entry.
    ///
    /// # Panics
    ///
    /// When `capacity` is zero — a cache that can hold nothing would turn
    /// every request into a silent recompile; ask for an unbounded cache
    /// ([`new`](Self::new)) or a real bound instead.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "CompiledCache capacity must be at least 1");
        CompiledCache {
            capacity: Some(capacity),
            ..CompiledCache::default()
        }
    }

    /// The configured bound, or `None` for an unbounded cache.
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Returns `crn` compiled under `spec`, compiling only on a structural
    /// miss.
    ///
    /// On a miss the network is compiled under [`SimSpec::default`] and
    /// stored (evicting the least-recently-used entry first when the
    /// cache is at capacity); hit or miss, the stored entry is then
    /// [rebound](CompiledCrn::rebind) to `spec` — except for the exact
    /// default spec, which is served as the stored `Arc` without a copy
    /// (the common case for SSA workloads, whose per-cell variation is the
    /// seed, not the rates).
    #[must_use]
    pub fn get_or_compile(&self, crn: &Crn, spec: &SimSpec) -> Arc<CompiledCrn> {
        let key = crn.structural_hash();
        let entry = {
            let mut map = self.map.lock().expect("compiled cache poisoned");
            map.clock += 1;
            let stamp = map.clock;
            match map.entries.get_mut(&key) {
                Some(slot) => {
                    slot.last_used = stamp;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Arc::clone(&slot.compiled)
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    if let Some(capacity) = self.capacity {
                        while map.entries.len() >= capacity {
                            let coldest = map
                                .entries
                                .iter()
                                .min_by_key(|(_, slot)| slot.last_used)
                                .map(|(&key, _)| key)
                                .expect("a full cache has a coldest entry");
                            map.entries.remove(&coldest);
                            self.evictions.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    let compiled = Arc::new(CompiledCrn::new(crn, &SimSpec::default()));
                    map.entries.insert(
                        key,
                        CacheSlot {
                            compiled: Arc::clone(&compiled),
                            last_used: stamp,
                        },
                    );
                    compiled
                }
            }
        };
        if *spec == SimSpec::default() {
            entry
        } else {
            Arc::new(entry.rebind(spec))
        }
    }

    /// Requests served from an existing entry.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that had to compile and insert.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries discarded to make room under the capacity bound.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Distinct network structures currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map
            .lock()
            .expect("compiled cache poisoned")
            .entries
            .len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use molseq_crn::RateAssignment;
    use proptest::prelude::*;

    fn chain(n: usize) -> Crn {
        let mut crn = Crn::new();
        let ids: Vec<_> = (0..=n).map(|i| crn.species(format!("S{i}"))).collect();
        for w in ids.windows(2) {
            crn.reaction(&[(w[0], 1)], &[(w[1], 1)], molseq_crn::Rate::Fast)
                .unwrap();
        }
        crn
    }

    #[test]
    fn distinct_structures_get_distinct_entries() {
        let cache = CompiledCache::new();
        let spec = SimSpec::default();
        let _ = cache.get_or_compile(&chain(2), &spec);
        let _ = cache.get_or_compile(&chain(3), &spec);
        assert_eq!(cache.len(), 2);
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        let _ = cache.get_or_compile(&chain(2), &spec);
        assert_eq!(cache.len(), 2);
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }

    #[test]
    fn default_spec_hits_share_the_stored_allocation() {
        let cache = CompiledCache::new();
        let crn = chain(2);
        let a = cache.get_or_compile(&crn, &SimSpec::default());
        let b = cache.get_or_compile(&crn, &SimSpec::default());
        assert!(Arc::ptr_eq(&a, &b), "no per-hit copy for the default spec");
    }

    #[test]
    fn non_default_spec_is_rebound_not_shared() {
        let cache = CompiledCache::new();
        let crn = chain(2);
        let spec = SimSpec::new(RateAssignment::from_ratio(50.0));
        let hit = cache.get_or_compile(&crn, &spec);
        assert_eq!(*hit, CompiledCrn::new(&crn, &spec));
        // the stored default-spec entry is untouched
        let stored = cache.get_or_compile(&crn, &SimSpec::default());
        assert_eq!(*stored, CompiledCrn::new(&crn, &SimSpec::default()));
    }

    #[test]
    fn concurrent_access_counts_every_request() {
        let cache = CompiledCache::new();
        let crn = chain(4);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..16 {
                        let _ = cache.get_or_compile(&crn, &SimSpec::default());
                    }
                });
            }
        });
        assert_eq!(cache.hits() + cache.misses(), 128);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_is_rejected() {
        let _ = CompiledCache::with_capacity(0);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache = CompiledCache::new();
        for n in 1..=16 {
            let _ = cache.get_or_compile(&chain(n), &SimSpec::default());
        }
        assert_eq!(cache.capacity(), None);
        assert_eq!(cache.len(), 16);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn lru_evicts_the_coldest_structure() {
        let cache = CompiledCache::with_capacity(2);
        let spec = SimSpec::default();
        let _ = cache.get_or_compile(&chain(1), &spec); // {1}
        let _ = cache.get_or_compile(&chain(2), &spec); // {1, 2}
        let _ = cache.get_or_compile(&chain(1), &spec); // touch 1 → 2 is coldest
        let _ = cache.get_or_compile(&chain(3), &spec); // evicts 2 → {1, 3}
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
        let hits = cache.hits();
        let _ = cache.get_or_compile(&chain(1), &spec);
        let _ = cache.get_or_compile(&chain(3), &spec);
        assert_eq!(cache.hits(), hits + 2, "survivors still hit");
        let _ = cache.get_or_compile(&chain(2), &spec); // recompile miss
        assert_eq!(cache.evictions(), 2);
    }

    proptest! {
        /// Any access sequence respects the bound, balances the counters,
        /// and recompiles evicted structures bit-identically to the first
        /// compile.
        #[test]
        fn bounded_cache_respects_capacity_and_recompiles_identically(
            capacity in 1usize..5,
            accesses in proptest::collection::vec(1usize..9, 1..40),
        ) {
            let cache = CompiledCache::with_capacity(capacity);
            let spec = SimSpec::default();
            let mut first_seen: HashMap<usize, Arc<CompiledCrn>> = HashMap::new();
            for &n in &accesses {
                let got = cache.get_or_compile(&chain(n), &spec);
                prop_assert!(cache.len() <= capacity, "bound violated");
                match first_seen.get(&n) {
                    None => {
                        first_seen.insert(n, got);
                    }
                    // an evicted-and-recompiled entry must be
                    // indistinguishable from the original compile
                    Some(first) => prop_assert_eq!(&*got, &**first),
                }
            }
            prop_assert_eq!(
                cache.hits() + cache.misses(),
                accesses.len() as u64,
                "every access is a hit or a miss"
            );
            prop_assert!(cache.evictions() <= cache.misses());
            prop_assert_eq!(
                cache.len() as u64,
                cache.misses() - cache.evictions(),
                "stored = inserted - evicted"
            );
        }
    }
}
