//! A cross-request cache of compiled networks.
//!
//! The compile-once/rebind-many pattern ([`CompiledCrn::new`] once,
//! [`CompiledCrn::rebind`] per sweep cell) amortizes compilation *within*
//! one sweep. A long-running process — the batch-simulation server — sees
//! the same networks arrive across many independent requests, so the same
//! pattern deserves to span requests: [`CompiledCache`] stores one
//! default-spec compile per [`Crn::structural_hash`] and serves every
//! structurally identical network from it, rebound to whatever [`SimSpec`]
//! the request wants. Because `rebind` is property-tested equal to a fresh
//! `CompiledCrn::new`, a cache hit is bit-identical to compiling from
//! scratch — caching can never change simulation results.

use crate::{CompiledCrn, SimSpec};
use molseq_crn::Crn;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A thread-safe, structurally keyed cache of [`CompiledCrn`]s.
///
/// Entries are keyed by [`Crn::structural_hash`] and hold the network
/// compiled under [`SimSpec::default`]; [`get_or_compile`] rebinds the
/// cached entry to the caller's spec. Hit/miss counters are atomic so a
/// server can report them from its stats path without taking the map lock.
///
/// [`get_or_compile`]: Self::get_or_compile
///
/// # Examples
///
/// ```
/// use molseq_crn::Crn;
/// use molseq_kinetics::{CompiledCache, CompiledCrn, SimSpec};
///
/// let cache = CompiledCache::new();
/// let crn: Crn = "X + Y -> Z @fast".parse().unwrap();
/// let spec = SimSpec::default();
/// let first = cache.get_or_compile(&crn, &spec);
/// let again = cache.get_or_compile(&crn, &spec);
/// assert_eq!(*first, *again);
/// assert_eq!(again, CompiledCrn::new(&crn, &spec).into());
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// ```
#[derive(Debug, Default)]
pub struct CompiledCache {
    entries: Mutex<HashMap<u64, Arc<CompiledCrn>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CompiledCache {
    /// An empty cache with zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        CompiledCache::default()
    }

    /// Returns `crn` compiled under `spec`, compiling only on a structural
    /// miss.
    ///
    /// On a miss the network is compiled under [`SimSpec::default`] and
    /// stored; hit or miss, the stored entry is then
    /// [rebound](CompiledCrn::rebind) to `spec` — except for the exact
    /// default spec, which is served as the stored `Arc` without a copy
    /// (the common case for SSA workloads, whose per-cell variation is the
    /// seed, not the rates).
    #[must_use]
    pub fn get_or_compile(&self, crn: &Crn, spec: &SimSpec) -> Arc<CompiledCrn> {
        let key = crn.structural_hash();
        let entry = {
            let mut entries = self.entries.lock().expect("compiled cache poisoned");
            match entries.get(&key) {
                Some(entry) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Arc::clone(entry)
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    let compiled = Arc::new(CompiledCrn::new(crn, &SimSpec::default()));
                    entries.insert(key, Arc::clone(&compiled));
                    compiled
                }
            }
        };
        if *spec == SimSpec::default() {
            entry
        } else {
            Arc::new(entry.rebind(spec))
        }
    }

    /// Requests served from an existing entry.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that had to compile and insert.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct network structures currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().expect("compiled cache poisoned").len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use molseq_crn::RateAssignment;

    fn chain(n: usize) -> Crn {
        let mut crn = Crn::new();
        let ids: Vec<_> = (0..=n).map(|i| crn.species(format!("S{i}"))).collect();
        for w in ids.windows(2) {
            crn.reaction(&[(w[0], 1)], &[(w[1], 1)], molseq_crn::Rate::Fast)
                .unwrap();
        }
        crn
    }

    #[test]
    fn distinct_structures_get_distinct_entries() {
        let cache = CompiledCache::new();
        let spec = SimSpec::default();
        let _ = cache.get_or_compile(&chain(2), &spec);
        let _ = cache.get_or_compile(&chain(3), &spec);
        assert_eq!(cache.len(), 2);
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        let _ = cache.get_or_compile(&chain(2), &spec);
        assert_eq!(cache.len(), 2);
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }

    #[test]
    fn default_spec_hits_share_the_stored_allocation() {
        let cache = CompiledCache::new();
        let crn = chain(2);
        let a = cache.get_or_compile(&crn, &SimSpec::default());
        let b = cache.get_or_compile(&crn, &SimSpec::default());
        assert!(Arc::ptr_eq(&a, &b), "no per-hit copy for the default spec");
    }

    #[test]
    fn non_default_spec_is_rebound_not_shared() {
        let cache = CompiledCache::new();
        let crn = chain(2);
        let spec = SimSpec::new(RateAssignment::from_ratio(50.0));
        let hit = cache.get_or_compile(&crn, &spec);
        assert_eq!(*hit, CompiledCrn::new(&crn, &spec));
        // the stored default-spec entry is untouched
        let stored = cache.get_or_compile(&crn, &SimSpec::default());
        assert_eq!(*stored, CompiledCrn::new(&crn, &SimSpec::default()));
    }

    #[test]
    fn concurrent_access_counts_every_request() {
        let cache = CompiledCache::new();
        let crn = chain(4);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..16 {
                        let _ = cache.get_or_compile(&crn, &SimSpec::default());
                    }
                });
            }
        });
        assert_eq!(cache.hits() + cache.misses(), 128);
        assert_eq!(cache.len(), 1);
    }
}
