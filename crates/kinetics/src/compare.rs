//! Behavioural comparison of trajectories — the verification step behind
//! the strand-displacement experiments.
//!
//! Checking that a compiled (e.g. DNA-level) network implements its formal
//! specification reduces to comparing trajectories under a species
//! mapping: each formal species corresponds to a *weighted sum* of
//! implementation species (the free strand plus whatever intermediates
//! transiently hold it). [`compare_trajectories`] evaluates the worst
//! divergence over a shared time grid.

use crate::Trace;
use molseq_crn::SpeciesId;

/// One entry of a species mapping: the reference species on trace A
/// corresponds to the weighted sum of species on trace B.
#[derive(Debug, Clone, PartialEq)]
pub struct MappedSpecies {
    /// Label used in the report (typically the formal species name).
    pub label: String,
    /// The species on the reference trace.
    pub reference: SpeciesId,
    /// Weighted implementation species: the comparison value is
    /// `Σ weight · [species]`.
    pub implementation: Vec<(SpeciesId, f64)>,
}

/// The worst divergence found by a comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Largest absolute difference observed.
    pub max_abs: f64,
    /// When it occurred.
    pub at_time: f64,
    /// Which mapped species it occurred on.
    pub species: String,
    /// Root-mean-square difference over all mapped species and samples.
    pub rms: f64,
}

/// Compares two trajectories under a species mapping, sampling both on the
/// reference trace's time grid restricted to the overlap of the two
/// recorded spans (the implementation trace is linearly interpolated).
///
/// # Panics
///
/// Panics if either trace is empty, the mapping is empty, or the traces'
/// recorded spans do not overlap.
///
/// # Examples
///
/// ```
/// use molseq_crn::Crn;
/// use molseq_kinetics::{
///     compare_trajectories, CompiledCrn, MappedSpecies, OdeOptions, SimSpec, Simulation, State,
/// };
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // the same decay, simulated twice: trajectories must agree
/// let crn: Crn = "X -> Y @slow".parse()?;
/// let x = crn.find_species("X").expect("parsed");
/// let mut init = State::new(&crn);
/// init.set(x, 10.0);
/// let compiled = CompiledCrn::new(&crn, &SimSpec::default());
/// let opts = OdeOptions::default().with_t_end(3.0);
/// let a = Simulation::new(&crn, &compiled).init(&init).options(opts).run()?;
/// let b = Simulation::new(&crn, &compiled).init(&init).options(opts).run()?;
/// let report = compare_trajectories(
///     &a,
///     &b,
///     &[MappedSpecies {
///         label: "X".into(),
///         reference: x,
///         implementation: vec![(x, 1.0)],
///     }],
/// );
/// assert!(report.max_abs < 1e-9);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn compare_trajectories(
    reference: &Trace,
    implementation: &Trace,
    mapping: &[MappedSpecies],
) -> Divergence {
    assert!(!reference.is_empty(), "reference trace is empty");
    assert!(!implementation.is_empty(), "implementation trace is empty");
    assert!(!mapping.is_empty(), "mapping is empty");

    let t_lo = reference.times()[0].max(implementation.times()[0]);
    let t_hi = reference.times()[reference.len() - 1]
        .min(implementation.times()[implementation.len() - 1]);
    assert!(t_hi > t_lo, "traces do not overlap in time");

    let mut worst = Divergence {
        max_abs: 0.0,
        at_time: t_lo,
        species: mapping[0].label.clone(),
        rms: 0.0,
    };
    let mut sum_sq = 0.0;
    let mut count = 0usize;
    for (i, &t) in reference.times().iter().enumerate() {
        if t < t_lo || t > t_hi {
            continue;
        }
        let ref_state = reference.state(i);
        for m in mapping {
            let a = ref_state[m.reference.index()];
            let b: f64 = m
                .implementation
                .iter()
                .map(|&(s, w)| w * implementation.value_at(s, t))
                .sum();
            let diff = (a - b).abs();
            sum_sq += diff * diff;
            count += 1;
            if diff > worst.max_abs {
                worst.max_abs = diff;
                worst.at_time = t;
                worst.species = m.label.clone();
            }
        }
    }
    worst.rms = (sum_sq / count.max(1) as f64).sqrt();
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompiledCrn, OdeOptions, SimSpec, Simulation, State};
    use molseq_crn::{Crn, RateAssignment};

    fn decay_trace(k_slow: f64, t_end: f64) -> (Crn, Trace) {
        let crn: Crn = "X -> Y @slow".parse().unwrap();
        let x = crn.find_species("X").unwrap();
        let mut init = State::new(&crn);
        init.set(x, 10.0);
        let spec = SimSpec::new(RateAssignment::new(1000.0, k_slow).unwrap());
        let compiled = CompiledCrn::new(&crn, &spec);
        let trace = Simulation::new(&crn, &compiled)
            .init(&init)
            .options(OdeOptions::default().with_t_end(t_end))
            .run()
            .unwrap();
        (crn, trace)
    }

    #[test]
    fn identical_runs_diverge_by_nothing() {
        let (crn, a) = decay_trace(1.0, 3.0);
        let (_, b) = decay_trace(1.0, 3.0);
        let x = crn.find_species("X").unwrap();
        let report = compare_trajectories(
            &a,
            &b,
            &[MappedSpecies {
                label: "X".into(),
                reference: x,
                implementation: vec![(x, 1.0)],
            }],
        );
        assert!(report.max_abs < 1e-9, "{report:?}");
        assert!(report.rms <= report.max_abs);
    }

    #[test]
    fn different_rates_diverge_measurably() {
        let (crn, a) = decay_trace(1.0, 3.0);
        let (_, b) = decay_trace(2.0, 3.0);
        let x = crn.find_species("X").unwrap();
        let report = compare_trajectories(
            &a,
            &b,
            &[MappedSpecies {
                label: "X".into(),
                reference: x,
                implementation: vec![(x, 1.0)],
            }],
        );
        assert!(report.max_abs > 1.0, "{report:?}");
        assert_eq!(report.species, "X");
        assert!(report.at_time > 0.0);
    }

    #[test]
    fn weighted_sums_apply() {
        // compare X against (X/2)·2 — identical by construction
        let (crn, a) = decay_trace(1.0, 2.0);
        let x = crn.find_species("X").unwrap();
        let report = compare_trajectories(
            &a,
            &a,
            &[MappedSpecies {
                label: "X".into(),
                reference: x,
                implementation: vec![(x, 0.5), (x, 0.5)],
            }],
        );
        assert!(report.max_abs < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mapping is empty")]
    fn empty_mapping_panics() {
        let (_, a) = decay_trace(1.0, 1.0);
        let _ = compare_trajectories(&a, &a, &[]);
    }
}
