//! # molseq-kinetics — simulators for chemical reaction networks
//!
//! Six integrators over the [`molseq_crn::Crn`] model, all driven through
//! the [`Simulation`] builder and selected by [`SimMethod`]:
//!
//! * **Deterministic mass-action ODE** integration ([`SimMethod::Ode`])
//!   with an adaptive Rosenbrock default plus RK4/Cash–Karp, non-negativity
//!   projection, timed injections and condition triggers. This is the
//!   workhorse behind every figure of the paper reproduction: the paper
//!   validates its designs "through ODE simulations of the mass-action
//!   chemical kinetics".
//! * **Exact stochastic simulation** ([`SimMethod::Ssa`],
//!   [`SimMethod::Nrm`]) over integer copy numbers, used to check that the
//!   constructs survive molecular noise at finite counts (experiment E10).
//! * **Tau-leaping**, explicit ([`SimMethod::TauLeap`]) and
//!   stiffness-aware implicit ([`SimMethod::TauLeapImplicit`]), for the
//!   large-count and stiff regimes where exact methods crawl.
//! * **Hybrid ODE/SSA** ([`SimMethod::Hybrid`]): fast reversible reaction
//!   pairs integrate as a continuous subsystem while slow reactions fire
//!   as exact discrete events against the evolving continuous state — the
//!   natural fit for the paper's clocked schemes, whose clock churns
//!   through orders of magnitude more events than the computation.
//!
//! All share the [`Trace`] recording type and the [`Schedule`] event model,
//! so an experiment can be run under any interpretation without changes.
//!
//! ## Example
//!
//! ```
//! use molseq_crn::Crn;
//! use molseq_kinetics::{CompiledCrn, OdeOptions, Schedule, SimSpec, Simulation, State};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Exponential decay: X -> 0 at the slow rate (k = 1).
//! let crn: Crn = "X -> 0 @slow".parse()?;
//! let x = crn.find_species("X").expect("registered by the parser");
//!
//! let mut init = State::new(&crn);
//! init.set(x, 1.0);
//!
//! let compiled = CompiledCrn::new(&crn, &SimSpec::default());
//! let trace = Simulation::new(&crn, &compiled)
//!     .init(&init)
//!     .options(OdeOptions::default().with_t_end(1.0))
//!     .run()?;
//! let final_x = trace.final_state()[x.index()];
//! assert!((final_x - (-1.0f64).exp()).abs() < 1e-4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod cache;
mod compare;
mod compiled;
mod error;
mod events;
mod hybrid;
mod metrics;
mod nrm;
mod ode;
mod plot;
mod replicate;
mod sim;
mod ssa;
mod state;
mod stiff;
mod stoch_batch;
mod tau;
mod tau_implicit;
mod trace;

pub use batch::{run_ode_batch, BatchLane, BatchedOdeWorkspace};
pub use cache::CompiledCache;
pub use compare::{compare_trajectories, Divergence, MappedSpecies};
pub use compiled::CompiledCrn;
pub use error::SimError;
pub use events::{Condition, Injection, Schedule, Trigger, TriggerAction};
pub use hybrid::{HybridOptions, DEFAULT_DISCRETENESS_THRESHOLD};
pub use metrics::{MetricsSink, SimMetrics};
pub use ode::{
    simulate_until_quiescent, OdeMethod, OdeOptions, OdeWorkspace, StepHook, DEFAULT_JACOBIAN_REUSE,
};
pub use plot::{downsample, render_species, sparkline};
pub use replicate::Replicator;
pub use sim::{SimMethod, SimOptions, Simulation};
pub use ssa::SsaOptions;
pub use state::State;
pub use stoch_batch::{
    run_ssa_batch, run_tau_batch, BatchedStochWorkspace, SsaBatchLane, TauBatchLane,
};
pub use tau::TauLeapOptions;
pub use tau_implicit::TauLeapImplicitOptions;
pub use trace::{crossings, estimate_period, Crossing, Direction, Trace};

use molseq_crn::{RateAssignment, RateJitter};

/// The kinetic interpretation of a network's coarse rate categories for one
/// simulation run: a numeric [`RateAssignment`] plus an optional
/// per-reaction [`RateJitter`].
///
/// # Examples
///
/// ```
/// use molseq_crn::RateAssignment;
/// use molseq_kinetics::SimSpec;
///
/// let spec = SimSpec::new(RateAssignment::from_ratio(100.0));
/// assert_eq!(spec.assignment().ratio(), 100.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimSpec {
    assignment: RateAssignment,
    jitter: Option<RateJitter>,
}

impl SimSpec {
    /// A specification with the given assignment and no jitter.
    #[must_use]
    pub fn new(assignment: RateAssignment) -> Self {
        SimSpec {
            assignment,
            jitter: None,
        }
    }

    /// Adds a per-reaction jitter (builder style).
    #[must_use]
    pub fn with_jitter(mut self, jitter: RateJitter) -> Self {
        self.jitter = Some(jitter);
        self
    }

    /// The numeric rate assignment.
    #[must_use]
    pub fn assignment(&self) -> RateAssignment {
        self.assignment
    }

    /// The jitter, if any.
    #[must_use]
    pub fn jitter(&self) -> Option<&RateJitter> {
        self.jitter.as_ref()
    }
}

impl Default for SimSpec {
    /// The paper's default: `k_fast = 1000`, `k_slow = 1`, no jitter.
    fn default() -> Self {
        SimSpec::new(RateAssignment::default())
    }
}
