//! Simulation events: timed injections and condition triggers.
//!
//! Sequential computation needs inputs delivered *per clock cycle* and
//! outputs read *at the right phase*. Two mechanisms cover this:
//!
//! * [`Injection`] — add a quantity of a species at a fixed time (models
//!   pipetting an input into the solution).
//! * [`Trigger`] — watch a condition on the state (for example "the green
//!   clock phase rose above threshold") and, on each upward crossing,
//!   either inject from a queue or record a mark in the trace. Marks are
//!   how the experiment harnesses find cycle boundaries without assuming a
//!   numeric clock period.

use molseq_crn::SpeciesId;

/// Add `amount` of `species` at simulated time `time`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Injection {
    /// When to inject.
    pub time: f64,
    /// What to inject.
    pub species: SpeciesId,
    /// How much to add (must be non-negative and finite).
    pub amount: f64,
}

/// A predicate over the instantaneous state.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// True while `species` is strictly above `threshold`.
    Above {
        /// Watched species.
        species: SpeciesId,
        /// Threshold concentration / copy number.
        threshold: f64,
    },
    /// True while `species` is strictly below `threshold`.
    Below {
        /// Watched species.
        species: SpeciesId,
        /// Threshold concentration / copy number.
        threshold: f64,
    },
    /// True while the sum of the listed species is strictly above
    /// `threshold`.
    SumAbove {
        /// Watched species set.
        species: Vec<SpeciesId>,
        /// Threshold for the sum.
        threshold: f64,
    },
    /// True while the sum of the listed species is strictly below
    /// `threshold` — e.g. "the whole color system has drained".
    SumBelow {
        /// Watched species set.
        species: Vec<SpeciesId>,
        /// Threshold for the sum.
        threshold: f64,
    },
}

impl Condition {
    /// Evaluates the condition against a state vector.
    #[must_use]
    pub fn eval(&self, state: &[f64]) -> bool {
        match self {
            Condition::Above { species, threshold } => state[species.index()] > *threshold,
            Condition::Below { species, threshold } => state[species.index()] < *threshold,
            Condition::SumAbove { species, threshold } => {
                species.iter().map(|s| state[s.index()]).sum::<f64>() > *threshold
            }
            Condition::SumBelow { species, threshold } => {
                species.iter().map(|s| state[s.index()]).sum::<f64>() < *threshold
            }
        }
    }
}

/// What a [`Trigger`] does when its condition becomes true.
#[derive(Debug, Clone, PartialEq)]
pub enum TriggerAction {
    /// Record a mark `(time, trigger index)` in the trace. The workhorse
    /// for cycle detection.
    Mark,
    /// Inject the next queued amount of `species`; once the queue is
    /// exhausted the trigger keeps marking but injects nothing. This is how
    /// an input stream is fed one sample per clock cycle.
    InjectQueue {
        /// Destination species.
        species: SpeciesId,
        /// Amounts, consumed front to back on successive firings.
        amounts: Vec<f64>,
    },
}

/// A condition watcher with edge semantics: it fires when its condition
/// transitions from false to true (an upward edge), then re-arms only after
/// the condition has been false again. The simulators check triggers after
/// every accepted step.
#[derive(Debug, Clone, PartialEq)]
pub struct Trigger {
    /// The watched condition.
    pub condition: Condition,
    /// What to do on each firing.
    pub action: TriggerAction,
    /// Ignore firings before this time (defaults to `0`).
    pub not_before: f64,
    /// Hysteresis: once fired, the trigger re-arms only when this
    /// condition holds (defaults to the negation of `condition`). Use a
    /// band — e.g. fire above 50, re-arm below 25 — so that a noisy
    /// signal flickering around the firing threshold cannot double-fire,
    /// which matters under stochastic (integer-count) dynamics.
    pub rearm: Option<Condition>,
}

impl Trigger {
    /// A trigger that records a mark on each upward edge of `condition`.
    #[must_use]
    pub fn mark(condition: Condition) -> Self {
        Trigger {
            condition,
            action: TriggerAction::Mark,
            not_before: 0.0,
            rearm: None,
        }
    }

    /// A trigger that injects successive `amounts` of `species` on upward
    /// edges of `condition`.
    #[must_use]
    pub fn inject_queue(condition: Condition, species: SpeciesId, amounts: Vec<f64>) -> Self {
        Trigger {
            condition,
            action: TriggerAction::InjectQueue { species, amounts },
            not_before: 0.0,
            rearm: None,
        }
    }

    /// Sets the earliest time this trigger may fire (builder style).
    #[must_use]
    pub fn with_not_before(mut self, t: f64) -> Self {
        self.not_before = t;
        self
    }

    /// Sets an explicit re-arm condition (builder style) — hysteresis.
    #[must_use]
    pub fn with_rearm(mut self, rearm: Condition) -> Self {
        self.rearm = Some(rearm);
        self
    }
}

/// The complete event plan for one simulation run.
///
/// # Examples
///
/// ```
/// use molseq_crn::Crn;
/// use molseq_kinetics::{Condition, Schedule, Trigger};
///
/// let mut crn: Crn = "X -> Y @slow".parse().unwrap();
/// let x = crn.species("X");
/// let y = crn.species("Y");
///
/// let schedule = Schedule::new()
///     .inject(1.0, x, 50.0)
///     .trigger(Trigger::mark(Condition::Above { species: y, threshold: 25.0 }));
/// assert_eq!(schedule.injections().len(), 1);
/// assert_eq!(schedule.triggers().len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Schedule {
    injections: Vec<Injection>,
    triggers: Vec<Trigger>,
}

impl Schedule {
    /// An empty schedule.
    #[must_use]
    pub fn new() -> Self {
        Schedule::default()
    }

    /// Adds a timed injection (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `amount` is negative or not finite, or `time` is negative.
    #[must_use]
    pub fn inject(mut self, time: f64, species: SpeciesId, amount: f64) -> Self {
        assert!(
            amount.is_finite() && amount >= 0.0,
            "injection amounts must be finite and non-negative"
        );
        assert!(time >= 0.0, "injection times must be non-negative");
        self.injections.push(Injection {
            time,
            species,
            amount,
        });
        self
    }

    /// Adds a trigger (builder style).
    #[must_use]
    pub fn trigger(mut self, trigger: Trigger) -> Self {
        self.triggers.push(trigger);
        self
    }

    /// The timed injections, in insertion order.
    #[must_use]
    pub fn injections(&self) -> &[Injection] {
        &self.injections
    }

    /// The triggers, in insertion order. The index of a trigger in this
    /// slice is the id recorded with its marks.
    #[must_use]
    pub fn triggers(&self) -> &[Trigger] {
        &self.triggers
    }

    /// Injections sorted by time (what the simulators iterate over).
    #[must_use]
    pub(crate) fn sorted_injections(&self) -> Vec<Injection> {
        let mut v = self.injections.clone();
        v.sort_by(|a, b| a.time.total_cmp(&b.time));
        v
    }
}

/// Runtime state of the triggers during one simulation.
#[derive(Debug, Clone)]
pub(crate) struct TriggerRuntime {
    armed: Vec<bool>,
    queue_pos: Vec<usize>,
}

impl TriggerRuntime {
    pub(crate) fn new(schedule: &Schedule, initial_state: &[f64]) -> Self {
        // A condition already true at t = 0 does not fire: triggers react to
        // edges, and arming requires having seen the condition false.
        let armed = schedule
            .triggers()
            .iter()
            .map(|t| !t.condition.eval(initial_state))
            .collect();
        TriggerRuntime {
            armed,
            queue_pos: vec![0; schedule.triggers().len()],
        }
    }

    /// Checks all triggers against `state` at `time`; returns fired trigger
    /// indices and applies queue injections directly to `state`.
    pub(crate) fn poll(&mut self, schedule: &Schedule, time: f64, state: &mut [f64]) -> Vec<usize> {
        let mut fired = Vec::new();
        for (i, t) in schedule.triggers().iter().enumerate() {
            let now = t.condition.eval(state);
            if now && self.armed[i] && time >= t.not_before {
                self.armed[i] = false;
                fired.push(i);
                if let TriggerAction::InjectQueue { species, amounts } = &t.action {
                    if let Some(&amount) = amounts.get(self.queue_pos[i]) {
                        state[species.index()] += amount;
                        self.queue_pos[i] += 1;
                    }
                }
            } else if !self.armed[i] {
                let rearmed = match &t.rearm {
                    Some(cond) => cond.eval(state),
                    None => !now,
                };
                if rearmed {
                    self.armed[i] = true;
                }
            }
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use molseq_crn::Crn;

    fn ids() -> (SpeciesId, SpeciesId) {
        let mut crn = Crn::new();
        (crn.species("A"), crn.species("B"))
    }

    #[test]
    fn conditions_evaluate() {
        let (a, b) = ids();
        let state = [3.0, 7.0];
        assert!(Condition::Above {
            species: a,
            threshold: 2.0
        }
        .eval(&state));
        assert!(Condition::Below {
            species: a,
            threshold: 4.0
        }
        .eval(&state));
        assert!(Condition::SumAbove {
            species: vec![a, b],
            threshold: 9.0
        }
        .eval(&state));
        assert!(!Condition::SumAbove {
            species: vec![a, b],
            threshold: 11.0
        }
        .eval(&state));
        assert!(Condition::SumBelow {
            species: vec![a, b],
            threshold: 11.0
        }
        .eval(&state));
        assert!(!Condition::SumBelow {
            species: vec![a, b],
            threshold: 10.0
        }
        .eval(&state));
    }

    #[test]
    fn trigger_fires_on_edge_and_rearms() {
        let (a, _) = ids();
        let schedule = Schedule::new().trigger(Trigger::mark(Condition::Above {
            species: a,
            threshold: 1.0,
        }));
        let mut state = [0.0, 0.0];
        let mut rt = TriggerRuntime::new(&schedule, &state);
        assert!(rt.poll(&schedule, 0.1, &mut state).is_empty());
        state[0] = 2.0;
        assert_eq!(rt.poll(&schedule, 0.2, &mut state), vec![0]);
        // still above: no refire
        assert!(rt.poll(&schedule, 0.3, &mut state).is_empty());
        // falls below: re-arms
        state[0] = 0.5;
        assert!(rt.poll(&schedule, 0.4, &mut state).is_empty());
        state[0] = 2.0;
        assert_eq!(rt.poll(&schedule, 0.5, &mut state), vec![0]);
    }

    #[test]
    fn condition_true_at_start_does_not_fire() {
        let (a, _) = ids();
        let schedule = Schedule::new().trigger(Trigger::mark(Condition::Above {
            species: a,
            threshold: 1.0,
        }));
        let mut state = [5.0, 0.0];
        let mut rt = TriggerRuntime::new(&schedule, &state);
        assert!(rt.poll(&schedule, 0.0, &mut state).is_empty());
    }

    #[test]
    fn inject_queue_consumes_in_order() {
        let (a, b) = ids();
        let schedule = Schedule::new().trigger(Trigger::inject_queue(
            Condition::Above {
                species: a,
                threshold: 1.0,
            },
            b,
            vec![10.0, 20.0],
        ));
        let mut state = [0.0, 0.0];
        let mut rt = TriggerRuntime::new(&schedule, &state);
        for (expected_b, _) in [(10.0, 0), (30.0, 1), (30.0, 2)] {
            state[0] = 2.0;
            rt.poll(&schedule, 1.0, &mut state);
            assert_eq!(state[1], expected_b);
            state[0] = 0.0;
            rt.poll(&schedule, 1.1, &mut state);
        }
    }

    #[test]
    fn not_before_suppresses_early_firings() {
        let (a, _) = ids();
        let schedule = Schedule::new().trigger(
            Trigger::mark(Condition::Above {
                species: a,
                threshold: 1.0,
            })
            .with_not_before(5.0),
        );
        let mut state = [2.0, 0.0];
        let mut rt = TriggerRuntime::new(&schedule, &[0.0, 0.0]);
        assert!(rt.poll(&schedule, 1.0, &mut state).is_empty());
        // falls and rises again after the gate
        state[0] = 0.0;
        rt.poll(&schedule, 2.0, &mut state);
        state[0] = 2.0;
        assert_eq!(rt.poll(&schedule, 6.0, &mut state), vec![0]);
    }

    #[test]
    fn schedule_sorts_injections() {
        let (a, _) = ids();
        let schedule = Schedule::new().inject(5.0, a, 1.0).inject(1.0, a, 2.0);
        let sorted = schedule.sorted_injections();
        assert_eq!(sorted[0].time, 1.0);
        assert_eq!(sorted[1].time, 5.0);
    }

    #[test]
    #[should_panic(expected = "injection amounts")]
    fn schedule_rejects_bad_amounts() {
        let (a, _) = ids();
        let _ = Schedule::new().inject(1.0, a, f64::NAN);
    }
}
