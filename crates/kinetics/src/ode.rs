//! Deterministic mass-action ODE integration.
//!
//! Three methods are provided:
//!
//! * [`OdeMethod::Rosenbrock`] — adaptive linearly implicit ode23s with
//!   the analytic mass-action Jacobian. This is the **default**: the
//!   networks in this workspace mix rate constants spanning several orders
//!   of magnitude (`k_fast/k_slow` up to 10⁵ in the robustness sweeps),
//!   which makes them stiff — explicit steps would be stability-limited to
//!   `~1/(k_fast·X)`.
//! * [`OdeMethod::CashKarp`] — adaptive embedded Runge–Kutta 4(5),
//!   explicit; used for cross-checking on mildly stiff problems.
//! * [`OdeMethod::Rk4`] — classical fixed-step fourth-order Runge–Kutta;
//!   simple, predictable cost.
//!
//! All methods project the state onto the non-negative orthant after each
//! accepted step; mass-action fluxes already treat negative concentrations
//! as zero, so the projection is a stabilizer, not a model change.

// Index loops mirror the textbook Runge–Kutta formulas; iterator chains
// would obscure them.
#![allow(clippy::needless_range_loop)]

use crate::compiled::CompiledCrn;
use crate::events::TriggerRuntime;
use crate::metrics::{sinks_eq, MetricsSink, SimMetrics};
use crate::{Schedule, SimError, SimSpec, State, Trace};
use molseq_crn::Crn;
use std::ops::ControlFlow;

/// A cooperative interruption hook polled once per integrator step (or
/// stochastic event) with the cumulative step count and the current
/// simulated time. Returning `ControlFlow::Break(reason)` aborts the run
/// with [`SimError::Interrupted`].
///
/// This is how the sweep engine's wall/step budgets reach *inside* a
/// simulation: `molseq-sweep`'s `JobCtx::step_hook` adapts
/// `record_steps`/`check` to this signature, so a runaway cell is stopped
/// mid-integration instead of only between cells.
pub type StepHook<'h> = &'h dyn Fn(u64, f64) -> ControlFlow<String>;

/// Number of accepted steps the default configuration reuses a Jacobian
/// for before re-evaluating it (see [`OdeOptions::with_jacobian_reuse`]).
///
/// The default is `0` — evaluate every step. ode23s is not a W-method:
/// its order conditions assume a current Jacobian, so a lagged one
/// inflates the embedded error estimate and the controller responds by
/// rejecting and retrying (measured on the paper's workloads: any
/// nonzero reuse roughly *doubles* trial-step counts, eating the saved
/// factorizations and more). The Jacobian evaluation itself is cheap
/// here anyway (`jacobian_sparse` fills only the precomputed nonzeros);
/// reuse remains available as an opt-in for systems whose Jacobian is
/// genuinely slowly varying.
pub const DEFAULT_JACOBIAN_REUSE: usize = 0;

/// Integration method selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OdeMethod {
    /// Classical fixed-step RK4 with step `h`.
    Rk4 {
        /// Step size (must be positive and finite).
        h: f64,
    },
    /// Adaptive Cash–Karp RKF45 (explicit; step-size limited by the
    /// fastest reaction on stiff problems).
    CashKarp {
        /// Relative tolerance per component.
        rtol: f64,
        /// Absolute tolerance per component.
        atol: f64,
    },
    /// Adaptive Rosenbrock (ode23s) with the analytic mass-action
    /// Jacobian — the default: the fast/slow rate separation makes these
    /// systems stiff, and a linearly implicit method steps over the fast
    /// transients at accuracy-limited (not stability-limited) step sizes.
    Rosenbrock {
        /// Relative tolerance per component.
        rtol: f64,
        /// Absolute tolerance per component.
        atol: f64,
    },
}

impl Default for OdeMethod {
    fn default() -> Self {
        OdeMethod::Rosenbrock {
            rtol: 1e-6,
            atol: 1e-9,
        }
    }
}

/// Options controlling one deterministic run.
///
/// # Examples
///
/// ```
/// use molseq_kinetics::{OdeMethod, OdeOptions};
///
/// let opts = OdeOptions::default()
///     .with_t_end(50.0)
///     .with_record_interval(0.05)
///     .with_method(OdeMethod::Rk4 { h: 1e-3 });
/// assert_eq!(opts.t_end(), 50.0);
/// ```
#[derive(Clone, Copy)]
pub struct OdeOptions<'h> {
    method: OdeMethod,
    t_start: f64,
    t_end: f64,
    record_interval: f64,
    h_max: f64,
    max_steps: usize,
    jacobian_reuse: usize,
    step_hook: Option<StepHook<'h>>,
    metrics: Option<MetricsSink<'h>>,
}

impl std::fmt::Debug for OdeOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OdeOptions")
            .field("method", &self.method)
            .field("t_start", &self.t_start)
            .field("t_end", &self.t_end)
            .field("record_interval", &self.record_interval)
            .field("h_max", &self.h_max)
            .field("max_steps", &self.max_steps)
            .field("jacobian_reuse", &self.jacobian_reuse)
            .field("step_hook", &self.step_hook.map(|_| "<hook>"))
            .field("metrics", &self.metrics.map(|_| "<sink>"))
            .finish()
    }
}

impl PartialEq for OdeOptions<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.method == other.method
            && self.t_start == other.t_start
            && self.t_end == other.t_end
            && self.record_interval == other.record_interval
            && self.h_max == other.h_max
            && self.max_steps == other.max_steps
            && self.jacobian_reuse == other.jacobian_reuse
            && hooks_eq(self.step_hook, other.step_hook)
            && sinks_eq(self.metrics, other.metrics)
    }
}

/// Hooks compare by identity (same closure object), not behavior.
pub(crate) fn hooks_eq(a: Option<StepHook<'_>>, b: Option<StepHook<'_>>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(a), Some(b)) => std::ptr::eq(a as *const _ as *const (), b as *const _ as *const ()),
        _ => false,
    }
}

impl Default for OdeOptions<'_> {
    /// Rosenbrock with `rtol = 1e-6`, `atol = 1e-9`, span `[0, 10]`,
    /// recording every `0.1` time units, budget of 20 million steps,
    /// Jacobian reuse of [`DEFAULT_JACOBIAN_REUSE`] accepted steps, no
    /// step hook.
    fn default() -> Self {
        OdeOptions {
            method: OdeMethod::default(),
            t_start: 0.0,
            t_end: 10.0,
            record_interval: 0.1,
            h_max: 0.25,
            max_steps: 20_000_000,
            jacobian_reuse: DEFAULT_JACOBIAN_REUSE,
            step_hook: None,
            metrics: None,
        }
    }
}

impl<'h> OdeOptions<'h> {
    /// Sets the integration method (builder style).
    #[must_use]
    pub fn with_method(mut self, method: OdeMethod) -> Self {
        self.method = method;
        self
    }

    /// Sets the start time (builder style).
    #[must_use]
    pub fn with_t_start(mut self, t: f64) -> Self {
        self.t_start = t;
        self
    }

    /// Sets the end time (builder style).
    #[must_use]
    pub fn with_t_end(mut self, t: f64) -> Self {
        self.t_end = t;
        self
    }

    /// Sets the sampling interval for the recorded trace (builder style).
    #[must_use]
    pub fn with_record_interval(mut self, dt: f64) -> Self {
        self.record_interval = dt;
        self
    }

    /// Sets the step budget (builder style).
    #[must_use]
    pub fn with_max_steps(mut self, n: usize) -> Self {
        self.max_steps = n;
        self
    }

    /// Sets the maximum step size (builder style). Recording does not
    /// limit the step (samples are interpolated), but triggers are only
    /// polled at step ends, so `h_max` bounds event-detection latency.
    #[must_use]
    pub fn with_h_max(mut self, h: f64) -> Self {
        self.h_max = h;
        self
    }

    /// Sets how many accepted steps the Rosenbrock integrator may reuse a
    /// Jacobian for before re-evaluating it (builder style). `0` (the
    /// default, see [`DEFAULT_JACOBIAN_REUSE`]) evaluates every step. The
    /// Jacobian is always refreshed after a rejected step and at
    /// discontinuities (injections, trigger firings), so reuse trades a
    /// bounded amount of step-size efficiency — never stability — for
    /// skipping `jacobian` + LU-factorization work. On this workspace's
    /// stiff autocatalytic networks the trade is a net loss (staleness
    /// triggers rejections), hence the conservative default; the knob is
    /// for slowly varying systems.
    #[must_use]
    pub fn with_jacobian_reuse(mut self, accepted_steps: usize) -> Self {
        self.jacobian_reuse = accepted_steps;
        self
    }

    /// Installs a cooperative interruption hook (builder style), polled
    /// once per attempted step with `(cumulative steps, current time)`.
    /// See [`StepHook`].
    #[must_use]
    pub fn with_step_hook(mut self, hook: StepHook<'h>) -> Self {
        self.step_hook = Some(hook);
        self
    }

    /// Installs a metrics sink (builder style). On every exit path —
    /// success or error — the integrator absorbs its work counters
    /// (accepted/rejected steps, LU factorizations, final time) into the
    /// sink. See [`SimMetrics`].
    #[must_use]
    pub fn with_metrics(mut self, sink: MetricsSink<'h>) -> Self {
        self.metrics = Some(sink);
        self
    }

    /// The configured end time.
    #[must_use]
    pub fn t_end(&self) -> f64 {
        self.t_end
    }

    /// The configured start time.
    #[must_use]
    pub fn t_start(&self) -> f64 {
        self.t_start
    }

    /// The configured Jacobian reuse horizon, in accepted steps.
    #[must_use]
    pub fn jacobian_reuse(&self) -> usize {
        self.jacobian_reuse
    }

    // Crate-level accessors for the batched driver (`crate::batch`), which
    // replays the exact scalar control flow from another module.
    pub(crate) fn method(&self) -> OdeMethod {
        self.method
    }

    pub(crate) fn record_interval(&self) -> f64 {
        self.record_interval
    }

    pub(crate) fn h_max(&self) -> f64 {
        self.h_max
    }

    pub(crate) fn max_steps(&self) -> usize {
        self.max_steps
    }

    pub(crate) fn step_hook(&self) -> Option<StepHook<'h>> {
        self.step_hook
    }

    pub(crate) fn metrics_sink(&self) -> Option<MetricsSink<'h>> {
        self.metrics
    }
}

/// Reusable integrator buffers: the step scratch (`Scratch` /
/// `RosenbrockWork`, including the cached Jacobian + LU), the previous
/// state, and the interpolation buffer for recorded samples.
///
/// One workspace serves any number of [`crate::Simulation`] runs (attach
/// it with `Simulation::workspace`); buffers are lazily (re)sized to the
/// network and method of each call, and all cached numerical state is
/// invalidated on entry, so a reused workspace produces bit-identical
/// results to a fresh one. This
/// removes every per-segment and per-record allocation from the hot path:
/// multi-cycle harness runs and sweep cells allocate integrator storage
/// once instead of once per injection segment.
#[derive(Default)]
pub struct OdeWorkspace {
    scratch: Option<Scratch>,
    rosenbrock: Option<crate::stiff::RosenbrockWork>,
    x: Vec<f64>,
    x_prev: Vec<f64>,
    sample: Vec<f64>,
    /// Newton solver buffers for the implicit tau-leaper; sized lazily by
    /// `run_tau_implicit` so purely deterministic callers pay nothing.
    pub(crate) newton: Option<crate::tau_implicit::NewtonWork>,
    /// Fast-subsystem stepper buffers for the hybrid ODE/SSA engine; sized
    /// lazily by `run_hybrid`.
    pub(crate) hybrid: Option<crate::hybrid::HybridWork>,
}

impl OdeWorkspace {
    /// An empty workspace; buffers are allocated on first use.
    #[must_use]
    pub fn new() -> Self {
        OdeWorkspace::default()
    }

    /// Sizes the buffers for `compiled` + `method`, loads `init` into the
    /// state vector, and invalidates any cached Jacobian/LU state.
    fn prepare(&mut self, compiled: &CompiledCrn, method: OdeMethod, init: &[f64]) {
        let n = compiled.species_count();
        self.x.clear();
        self.x.extend_from_slice(init);
        self.x_prev.clear();
        self.x_prev.resize(n, 0.0);
        self.sample.clear();
        self.sample.resize(n, 0.0);
        match method {
            OdeMethod::Rosenbrock { .. } => {
                // `matches` compares the Jacobian pattern, not just sizes:
                // the workspace carries a symbolic factorization specific
                // to that pattern.
                match &mut self.rosenbrock {
                    Some(work) if work.matches(compiled) => work.invalidate(),
                    slot => *slot = Some(crate::stiff::RosenbrockWork::new(compiled)),
                }
            }
            OdeMethod::Rk4 { .. } | OdeMethod::CashKarp { .. } => {
                if self.scratch.as_ref().map(Scratch::len) != Some(n) {
                    self.scratch = Some(Scratch::new(n));
                }
            }
        }
    }
}

/// Deterministic core behind the [`crate::Simulation`] builder:
/// validates dimensions and span,
/// integrates segment by segment between timed injections, and flushes
/// work counters on every exit path.
pub(crate) fn run_ode(
    crn: &Crn,
    compiled: &CompiledCrn,
    init: &State,
    schedule: &Schedule,
    opts: &OdeOptions,
    workspace: &mut OdeWorkspace,
) -> Result<Trace, SimError> {
    if compiled.species_count() != crn.species_count() {
        return Err(SimError::DimensionMismatch {
            supplied: compiled.species_count(),
            expected: crn.species_count(),
        });
    }
    if init.len() != crn.species_count() {
        return Err(SimError::DimensionMismatch {
            supplied: init.len(),
            expected: crn.species_count(),
        });
    }
    if !opts.t_start.is_finite() || !opts.t_end.is_finite() || opts.t_end <= opts.t_start {
        return Err(SimError::BadTimeSpan {
            t_start: opts.t_start,
            t_end: opts.t_end,
        });
    }

    workspace.prepare(compiled, opts.method, init.as_slice());
    let lu_before = workspace
        .rosenbrock
        .as_ref()
        .map_or(0, crate::stiff::RosenbrockWork::factorizations);
    let mut t = opts.t_start;
    let mut trace = Trace::with_capacity(crn, expected_records(opts, schedule));
    trace.push(t, &workspace.x);

    let mut triggers = TriggerRuntime::new(schedule, &workspace.x);
    let injections = schedule.sorted_injections();
    let mut next_injection = 0usize;
    let mut next_record = opts.t_start + opts.record_interval;
    let mut steps_used = 0usize;
    let mut metrics = SimMetrics::default();
    let mut failure = None;

    // Adaptive state persists across segments.
    let mut h_adaptive = initial_step(opts);

    while t < opts.t_end {
        // The next hard stop: injection time or end of span.
        let segment_end = injections
            .get(next_injection)
            .map_or(opts.t_end, |inj| inj.time.clamp(opts.t_start, opts.t_end));

        if segment_end > t {
            if let Err(e) = integrate_segment(
                compiled,
                workspace,
                &mut t,
                segment_end,
                opts,
                &mut h_adaptive,
                &mut steps_used,
                &mut next_record,
                &mut trace,
                schedule,
                &mut triggers,
                &mut metrics,
            ) {
                failure = Some(e);
                break;
            }
        }

        // Apply any injections scheduled at (or before) the reached time.
        let mut injected = false;
        while let Some(inj) = injections.get(next_injection) {
            if inj.time <= t + 1e-12 {
                workspace.x[inj.species.index()] += inj.amount;
                next_injection += 1;
                injected = true;
            } else {
                break;
            }
        }
        if injected {
            trace.push(t, &workspace.x);
            for fired in triggers.poll(schedule, t, &mut workspace.x) {
                trace.push_mark(t, fired);
            }
            // the state jumped: any cached Jacobian is for the old state
            if let Some(work) = workspace.rosenbrock.as_mut() {
                work.invalidate();
            }
        }
    }

    // Flush the work counters even on failure: an interrupted or
    // step-limited cell still reports what it cost.
    metrics.final_time = t;
    metrics.lu_factorizations = workspace
        .rosenbrock
        .as_ref()
        .map_or(0, crate::stiff::RosenbrockWork::factorizations)
        - lu_before;
    SimMetrics::flush(opts.metrics, metrics);

    if let Some(e) = failure {
        return Err(e);
    }
    trace.push(t, &workspace.x);
    Ok(trace)
}

/// Expected number of recorded samples, used to preallocate the trace:
/// one per recording interval plus one per injection plus the endpoints.
/// Trigger firings add a few more; the estimate is a capacity hint, not a
/// bound, and is capped so absurd intervals cannot over-reserve.
pub(crate) fn expected_records(opts: &OdeOptions, schedule: &Schedule) -> usize {
    let span = opts.t_end - opts.t_start;
    let regular = if opts.record_interval.is_finite() && opts.record_interval > 0.0 {
        (span / opts.record_interval).ceil() as usize
    } else {
        0
    };
    (regular + schedule.injections().len() + 2).min(1 << 20)
}

/// Integrates until the system is *quiescent* — every component of the
/// derivative is below `eps` (absolute, per time unit) — or until
/// `opts.t_end()`, whichever comes first. Returns the trace and the time
/// at which quiescence was detected (`None` if the horizon was reached
/// first).
///
/// This is the natural way to evaluate combinational (run-to-completion)
/// constructs whose settling time is data-dependent. Timed injections are
/// honoured (quiescence is only tested after the last injection).
///
/// # Panics
///
/// Panics if the schedule contains triggers — trigger state cannot be
/// carried across the internal integration chunks; use the
/// [`crate::Simulation`] builder for event-driven runs.
///
/// # Errors
///
/// Same conditions as an ODE run of the [`crate::Simulation`] builder.
///
/// # Examples
///
/// ```
/// use molseq_crn::Crn;
/// use molseq_kinetics::{simulate_until_quiescent, OdeOptions, Schedule, SimSpec, State};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let crn: Crn = "X -> Y @slow".parse()?;
/// let x = crn.find_species("X").expect("parsed");
/// let mut init = State::new(&crn);
/// init.set(x, 10.0);
/// let (trace, settled) = simulate_until_quiescent(
///     &crn,
///     &init,
///     &Schedule::new(),
///     &OdeOptions::default().with_t_end(1000.0),
///     &SimSpec::default(),
///     1e-6,
/// )?;
/// assert!(settled.is_some(), "decay settles long before t = 1000");
/// assert!(trace.final_state()[x.index()] < 1e-4);
/// # Ok(())
/// # }
/// ```
pub fn simulate_until_quiescent(
    crn: &Crn,
    init: &State,
    schedule: &Schedule,
    opts: &OdeOptions,
    spec: &SimSpec,
    eps: f64,
) -> Result<(Trace, Option<f64>), SimError> {
    assert!(
        schedule.triggers().is_empty(),
        "simulate_until_quiescent does not support triggers"
    );
    // Integrate in chunks; after each chunk, test the derivative.
    let compiled = CompiledCrn::new(crn, spec);
    let last_injection = schedule
        .injections()
        .iter()
        .map(|i| i.time)
        .fold(opts.t_start(), f64::max);
    let chunk = (opts.t_end() - opts.t_start()) / 64.0;
    let mut t = opts.t_start();
    let mut state = init.clone();
    let mut full_trace: Option<Trace> = None;
    let mut settled = None;
    let mut workspace = OdeWorkspace::new();
    let mut dx = vec![0.0; state.len()];

    while t < opts.t_end() - 1e-12 {
        let t_next = (t + chunk).min(opts.t_end());
        // only this chunk's injections: earlier ones were already applied
        // (an injection exactly at the global start belongs to chunk 0)
        let mut chunk_schedule = Schedule::new();
        for inj in schedule.injections() {
            let in_chunk = inj.time > t && inj.time <= t_next;
            let at_start = t == opts.t_start() && inj.time <= t;
            if in_chunk || at_start {
                chunk_schedule = chunk_schedule.inject(inj.time.max(t), inj.species, inj.amount);
            }
        }
        let chunk_opts = (*opts).with_t_start(t).with_t_end(t_next);
        let trace = run_ode(
            crn,
            &compiled,
            &state,
            &chunk_schedule,
            &chunk_opts,
            &mut workspace,
        )?;
        state = State::from_vec(trace.final_state().to_vec());
        match &mut full_trace {
            None => full_trace = Some(trace),
            Some(full) => full.append(&trace),
        }
        t = t_next;

        if t > last_injection {
            compiled.derivative(state.as_slice(), &mut dx);
            if dx.iter().all(|d| d.abs() < eps) {
                settled = Some(t);
                break;
            }
        }
    }
    Ok((
        full_trace.expect("at least one chunk was integrated"),
        settled,
    ))
}

pub(crate) fn initial_step(opts: &OdeOptions) -> f64 {
    let span = opts.t_end - opts.t_start;
    (opts.record_interval.min(span / 100.0)).max(span * 1e-9)
}

#[allow(clippy::too_many_arguments)]
fn integrate_segment(
    compiled: &CompiledCrn,
    workspace: &mut OdeWorkspace,
    t: &mut f64,
    segment_end: f64,
    opts: &OdeOptions,
    h_adaptive: &mut f64,
    steps_used: &mut usize,
    next_record: &mut f64,
    trace: &mut Trace,
    schedule: &Schedule,
    triggers: &mut TriggerRuntime,
    metrics: &mut SimMetrics,
) -> Result<(), SimError> {
    // Disjoint borrows of the workspace buffers; all were sized by
    // `prepare`, nothing is allocated in the step loop below.
    let OdeWorkspace {
        scratch,
        rosenbrock,
        x,
        x_prev,
        sample,
        ..
    } = workspace;
    let x = x.as_mut_slice();

    while *t < segment_end - 1e-15 {
        if *steps_used >= opts.max_steps {
            return Err(SimError::StepLimitExceeded {
                reached: *t,
                t_end: opts.t_end,
                max_steps: opts.max_steps,
            });
        }

        let h_cap = (segment_end - *t).min(opts.h_max);
        x_prev.copy_from_slice(x);
        let (h_taken, accepted) = match opts.method {
            OdeMethod::Rk4 { h } => {
                let scratch = scratch.as_mut().expect("prepared for this method");
                let h_step = h.min(h_cap);
                rk4_step(compiled, x, *t, h_step, scratch);
                (h_step, true)
            }
            OdeMethod::CashKarp { rtol, atol } => {
                let scratch = scratch.as_mut().expect("prepared for this method");
                let h_try = h_adaptive.min(h_cap).max(1e-14);
                cash_karp_step(compiled, x, *t, h_try, scratch);
                let err_ratio = scratch.error_ratio(x, rtol, atol);
                if err_ratio <= 1.0 {
                    x.copy_from_slice(&scratch.y5);
                    // grow: classical 0.9·err^(−1/5) controller
                    let grow = if err_ratio > 0.0 {
                        0.9 * err_ratio.powf(-0.2)
                    } else {
                        5.0
                    };
                    *h_adaptive = (h_try * grow.clamp(0.2, 5.0)).min(opts.h_max);
                    (h_try, true)
                } else {
                    let shrink = (0.9 * err_ratio.powf(-0.25)).clamp(0.1, 0.9);
                    *h_adaptive = (h_try * shrink).max(1e-14);
                    (0.0, false)
                }
            }
            OdeMethod::Rosenbrock { rtol, atol } => {
                let work = rosenbrock.as_mut().expect("prepared for this method");
                let h_try = h_adaptive.min(h_cap).max(1e-14);
                if !work.step(compiled, x, h_try, opts.jacobian_reuse) {
                    // singular W: retry with a smaller step
                    *h_adaptive = (h_try * 0.5).max(1e-14);
                    (0.0, false)
                } else {
                    let err_ratio = work.error_ratio(x, rtol, atol);
                    if err_ratio <= 1.0 {
                        x.copy_from_slice(&work.y_new);
                        work.on_accept();
                        // 2nd-order method: 0.9·err^(−1/3) controller
                        let grow = if err_ratio > 0.0 {
                            0.9 * err_ratio.powf(-1.0 / 3.0)
                        } else {
                            5.0
                        };
                        *h_adaptive = (h_try * grow.clamp(0.2, 5.0)).min(opts.h_max);
                        (h_try, true)
                    } else {
                        work.on_reject();
                        let shrink = (0.9 * err_ratio.powf(-1.0 / 3.0)).clamp(0.1, 0.9);
                        *h_adaptive = (h_try * shrink).max(1e-14);
                        (0.0, false)
                    }
                }
            }
        };
        *steps_used += 1;
        if accepted {
            metrics.ode_steps_accepted += 1;
        } else {
            metrics.ode_steps_rejected += 1;
        }
        if let Some(hook) = opts.step_hook {
            if let ControlFlow::Break(reason) = hook(*steps_used as u64, *t) {
                return Err(SimError::Interrupted { time: *t, reason });
            }
        }
        if !accepted {
            continue;
        }
        let t_prev = *t;
        *t += h_taken;

        // Projection + finiteness check.
        for (i, xi) in x.iter_mut().enumerate() {
            if !xi.is_finite() {
                return Err(SimError::NonFiniteState {
                    time: *t,
                    species: i,
                });
            }
            if *xi < 0.0 {
                *xi = 0.0;
            }
        }

        // Recording first (interpolated samples strictly before `t`),
        // then triggers (they may inject at `t`).
        while *next_record <= *t + 1e-12 {
            let alpha = if h_taken > 0.0 {
                ((*next_record - t_prev) / h_taken).clamp(0.0, 1.0)
            } else {
                1.0
            };
            for ((s, &a), &b) in sample.iter_mut().zip(x_prev.iter()).zip(x.iter()) {
                *s = a + alpha * (b - a);
            }
            trace.push(*next_record, sample);
            *next_record += opts.record_interval;
        }
        let fired_any = {
            let fired = triggers.poll(schedule, *t, x);
            for &f in &fired {
                trace.push_mark(*t, f);
                trace.push(*t, x);
            }
            !fired.is_empty()
        };
        if fired_any {
            // queue injections may have jumped the state
            if let Some(work) = rosenbrock.as_mut() {
                work.invalidate();
            }
        }
    }
    Ok(())
}

/// Scratch buffers reused across steps.
struct Scratch {
    k: [Vec<f64>; 6],
    ytmp: Vec<f64>,
    y5: Vec<f64>,
    y4: Vec<f64>,
}

impl Scratch {
    fn new(n: usize) -> Self {
        Scratch {
            k: std::array::from_fn(|_| vec![0.0; n]),
            ytmp: vec![0.0; n],
            y5: vec![0.0; n],
            y4: vec![0.0; n],
        }
    }

    fn len(&self) -> usize {
        self.ytmp.len()
    }

    /// Max over components of `|y5 − y4| / (atol + rtol·max(|y|, |y5|))`.
    fn error_ratio(&self, y: &[f64], rtol: f64, atol: f64) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..y.len() {
            let scale = atol + rtol * y[i].abs().max(self.y5[i].abs());
            let e = (self.y5[i] - self.y4[i]).abs() / scale;
            worst = worst.max(e);
        }
        worst
    }
}

/// One classical RK4 step, written back into `x`.
fn rk4_step(compiled: &CompiledCrn, x: &mut [f64], _t: f64, h: f64, s: &mut Scratch) {
    let n = x.len();
    compiled.derivative(x, &mut s.k[0]);
    for i in 0..n {
        s.ytmp[i] = x[i] + 0.5 * h * s.k[0][i];
    }
    let (k01, rest) = s.k.split_at_mut(1);
    compiled.derivative(&s.ytmp, &mut rest[0]);
    for i in 0..n {
        s.ytmp[i] = x[i] + 0.5 * h * rest[0][i];
    }
    compiled.derivative(&s.ytmp, &mut rest[1]);
    for i in 0..n {
        s.ytmp[i] = x[i] + h * rest[1][i];
    }
    compiled.derivative(&s.ytmp, &mut rest[2]);
    for i in 0..n {
        x[i] += h / 6.0 * (k01[0][i] + 2.0 * rest[0][i] + 2.0 * rest[1][i] + rest[2][i]);
    }
}

// Cash–Karp tableau.
const A2: f64 = 1.0 / 5.0;
const A3: [f64; 2] = [3.0 / 40.0, 9.0 / 40.0];
const A4: [f64; 3] = [3.0 / 10.0, -9.0 / 10.0, 6.0 / 5.0];
const A5: [f64; 4] = [-11.0 / 54.0, 5.0 / 2.0, -70.0 / 27.0, 35.0 / 27.0];
const A6: [f64; 5] = [
    1631.0 / 55296.0,
    175.0 / 512.0,
    575.0 / 13824.0,
    44275.0 / 110592.0,
    253.0 / 4096.0,
];
const B5: [f64; 6] = [
    37.0 / 378.0,
    0.0,
    250.0 / 621.0,
    125.0 / 594.0,
    0.0,
    512.0 / 1771.0,
];
const B4: [f64; 6] = [
    2825.0 / 27648.0,
    0.0,
    18575.0 / 48384.0,
    13525.0 / 55296.0,
    277.0 / 14336.0,
    1.0 / 4.0,
];

/// One Cash–Karp trial step from `x`; fills `s.y5` (5th order) and `s.y4`
/// (4th order). Does not modify `x`. Returns the raw max component error.
fn cash_karp_step(compiled: &CompiledCrn, x: &[f64], _t: f64, h: f64, s: &mut Scratch) -> f64 {
    let n = x.len();
    compiled.derivative(x, &mut s.k[0]);

    for i in 0..n {
        s.ytmp[i] = x[i] + h * A2 * s.k[0][i];
    }
    stage(compiled, s, 1);

    for i in 0..n {
        s.ytmp[i] = x[i] + h * (A3[0] * s.k[0][i] + A3[1] * s.k[1][i]);
    }
    stage(compiled, s, 2);

    for i in 0..n {
        s.ytmp[i] = x[i] + h * (A4[0] * s.k[0][i] + A4[1] * s.k[1][i] + A4[2] * s.k[2][i]);
    }
    stage(compiled, s, 3);

    for i in 0..n {
        s.ytmp[i] = x[i]
            + h * (A5[0] * s.k[0][i] + A5[1] * s.k[1][i] + A5[2] * s.k[2][i] + A5[3] * s.k[3][i]);
    }
    stage(compiled, s, 4);

    for i in 0..n {
        s.ytmp[i] = x[i]
            + h * (A6[0] * s.k[0][i]
                + A6[1] * s.k[1][i]
                + A6[2] * s.k[2][i]
                + A6[3] * s.k[3][i]
                + A6[4] * s.k[4][i]);
    }
    stage(compiled, s, 5);

    let mut max_err = 0.0f64;
    for i in 0..n {
        let mut y5 = x[i];
        let mut y4 = x[i];
        for stage_idx in 0..6 {
            y5 += h * B5[stage_idx] * s.k[stage_idx][i];
            y4 += h * B4[stage_idx] * s.k[stage_idx][i];
        }
        s.y5[i] = y5;
        s.y4[i] = y4;
        max_err = max_err.max((y5 - y4).abs());
    }
    max_err
}

fn stage(compiled: &CompiledCrn, s: &mut Scratch, idx: usize) {
    let (before, after) = s.k.split_at_mut(idx);
    let _ = before;
    compiled.derivative(&s.ytmp, &mut after[0]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use molseq_crn::{Crn, RateAssignment};

    fn decay() -> (Crn, molseq_crn::SpeciesId) {
        let crn: Crn = "X -> 0 @slow".parse().unwrap();
        let x = crn.find_species("X").unwrap();
        (crn, x)
    }

    // Local builder-backed stand-ins shadow the deprecated free functions
    // pulled in by `use super::*`, so the test bodies below exercise the
    // `Simulation` API without churn.
    fn simulate_ode(
        crn: &Crn,
        init: &State,
        schedule: &Schedule,
        opts: &OdeOptions,
        spec: &SimSpec,
    ) -> Result<Trace, SimError> {
        let compiled = CompiledCrn::new(crn, spec);
        crate::sim::Simulation::new(crn, &compiled)
            .init(init)
            .schedule(schedule)
            .options(*opts)
            .run()
    }

    fn simulate_ode_compiled(
        crn: &Crn,
        compiled: &CompiledCrn,
        init: &State,
        schedule: &Schedule,
        opts: &OdeOptions,
    ) -> Result<Trace, SimError> {
        crate::sim::Simulation::new(crn, compiled)
            .init(init)
            .schedule(schedule)
            .options(*opts)
            .run()
    }

    fn simulate_ode_with_workspace(
        crn: &Crn,
        compiled: &CompiledCrn,
        init: &State,
        schedule: &Schedule,
        opts: &OdeOptions,
        workspace: &mut OdeWorkspace,
    ) -> Result<Trace, SimError> {
        crate::sim::Simulation::new(crn, compiled)
            .init(init)
            .schedule(schedule)
            .options(*opts)
            .workspace(workspace)
            .run()
    }

    fn run(crn: &Crn, init: &State, opts: &OdeOptions) -> Trace {
        simulate_ode(crn, init, &Schedule::new(), opts, &SimSpec::default()).unwrap()
    }

    #[test]
    fn exponential_decay_matches_closed_form() {
        let (crn, x) = decay();
        let mut init = State::new(&crn);
        init.set(x, 1.0);
        let opts = OdeOptions::default().with_t_end(2.0);
        let trace = run(&crn, &init, &opts);
        for (i, &t) in trace.times().iter().enumerate() {
            let expected = (-t).exp();
            assert!(
                (trace.state(i)[x.index()] - expected).abs() < 1e-4,
                "t={t}: {} vs {expected}",
                trace.state(i)[x.index()]
            );
        }
    }

    #[test]
    fn rk4_and_cash_karp_agree() {
        let crn: Crn = "A + B -> C @slow\nC -> A @slow".parse().unwrap();
        let a = crn.find_species("A").unwrap();
        let b = crn.find_species("B").unwrap();
        let mut init = State::new(&crn);
        init.set(a, 2.0).set(b, 1.5);
        let adaptive = run(&crn, &init, &OdeOptions::default().with_t_end(5.0));
        let fixed = run(
            &crn,
            &init,
            &OdeOptions::default()
                .with_t_end(5.0)
                .with_method(OdeMethod::Rk4 { h: 1e-4 }),
        );
        for (fa, fb) in adaptive.final_state().iter().zip(fixed.final_state()) {
            assert!((fa - fb).abs() < 1e-5, "{fa} vs {fb}");
        }
    }

    #[test]
    fn bimolecular_annihilation_leaves_difference() {
        // X + Y -> 0 fast: min quantity is destroyed, |X−Y| remains.
        let crn: Crn = "X + Y -> 0 @fast".parse().unwrap();
        let x = crn.find_species("X").unwrap();
        let y = crn.find_species("Y").unwrap();
        let mut init = State::new(&crn);
        init.set(x, 30.0).set(y, 12.0);
        let trace = run(&crn, &init, &OdeOptions::default().with_t_end(5.0));
        assert!((trace.final_state()[x.index()] - 18.0).abs() < 1e-3);
        assert!(trace.final_state()[y.index()] < 1e-3);
    }

    #[test]
    fn conservation_holds_along_trajectory() {
        let crn: Crn = "A -> B @slow\nB -> A @fast".parse().unwrap();
        let a = crn.find_species("A").unwrap();
        let mut init = State::new(&crn);
        init.set(a, 10.0);
        let trace = run(&crn, &init, &OdeOptions::default().with_t_end(3.0));
        for i in 0..trace.len() {
            let total: f64 = trace.state(i).iter().sum();
            assert!((total - 10.0).abs() < 1e-6);
        }
    }

    #[test]
    fn injection_adds_mass_at_the_right_time() {
        let (crn, x) = decay();
        let init = State::new(&crn); // starts empty
        let schedule = Schedule::new().inject(1.0, x, 5.0);
        let opts = OdeOptions::default().with_t_end(2.0);
        let trace = simulate_ode(&crn, &init, &schedule, &opts, &SimSpec::default()).unwrap();
        assert!(trace.value_at(x, 0.9) < 1e-9);
        let just_after = trace.value_at(x, 1.0 + 1e-9);
        assert!(just_after > 4.9, "{just_after}");
        // decays afterwards
        let expected = 5.0 * (-1.0f64).exp();
        assert!((trace.value_at(x, 2.0) - expected).abs() < 1e-4);
    }

    #[test]
    fn trigger_marks_record_crossings() {
        // X grows from source; trigger marks when X exceeds 1.
        let crn: Crn = "0 -> X @slow".parse().unwrap();
        let x = crn.find_species("X").unwrap();
        let schedule = Schedule::new().trigger(crate::Trigger::mark(crate::Condition::Above {
            species: x,
            threshold: 1.0,
        }));
        let opts = OdeOptions::default().with_t_end(3.0);
        let trace = simulate_ode(
            &crn,
            &State::new(&crn),
            &schedule,
            &opts,
            &SimSpec::default(),
        )
        .unwrap();
        let marks = trace.mark_times(0);
        assert_eq!(marks.len(), 1);
        // detection granularity is one accepted step (≤ record interval)
        assert!(marks[0] >= 0.9 && marks[0] <= 1.2, "{}", marks[0]);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let (crn, _) = decay();
        let bad = State::from_vec(vec![1.0, 2.0, 3.0]);
        let err = simulate_ode(
            &crn,
            &bad,
            &Schedule::new(),
            &OdeOptions::default(),
            &SimSpec::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::DimensionMismatch { .. }));
    }

    #[test]
    fn bad_time_span_is_reported() {
        let (crn, x) = decay();
        let mut init = State::new(&crn);
        init.set(x, 1.0);
        let opts = OdeOptions::default().with_t_start(5.0).with_t_end(1.0);
        let err =
            simulate_ode(&crn, &init, &Schedule::new(), &opts, &SimSpec::default()).unwrap_err();
        assert!(matches!(err, SimError::BadTimeSpan { .. }));
    }

    #[test]
    fn step_limit_is_enforced() {
        let (crn, x) = decay();
        let mut init = State::new(&crn);
        init.set(x, 1.0);
        let opts = OdeOptions::default().with_t_end(100.0).with_max_steps(5);
        let err =
            simulate_ode(&crn, &init, &Schedule::new(), &opts, &SimSpec::default()).unwrap_err();
        assert!(matches!(err, SimError::StepLimitExceeded { .. }));
    }

    #[test]
    fn stiff_ratio_is_integrated() {
        // fast + slow in one system with ratio 1e4
        let crn: Crn = "A -> B @fast\n0 -> A @slow".parse().unwrap();
        let a = crn.find_species("A").unwrap();
        let b = crn.find_species("B").unwrap();
        let spec = SimSpec::new(RateAssignment::from_ratio(1e4));
        let opts = OdeOptions::default().with_t_end(2.0);
        let trace = simulate_ode(&crn, &State::new(&crn), &Schedule::new(), &opts, &spec).unwrap();
        // quasi-steady state: A ≈ k_slow/k_fast, B accumulates ≈ t
        assert!(trace.final_state()[a.index()] < 1e-3);
        assert!((trace.final_state()[b.index()] - 2.0).abs() < 0.01);
    }

    #[test]
    fn runaway_autocatalysis_reports_nonfinite_state() {
        // X -> 2X at a huge fixed rate overflows f64 within the horizon;
        // the integrator must fail loudly, not return garbage
        let crn: Crn = "X -> 2X @1e30".parse().unwrap();
        let x = crn.find_species("X").unwrap();
        let mut init = State::new(&crn);
        init.set(x, 1.0);
        let result = simulate_ode(
            &crn,
            &init,
            &Schedule::new(),
            &OdeOptions::default()
                .with_t_end(1000.0)
                .with_method(OdeMethod::Rk4 { h: 1.0 }),
            &SimSpec::default(),
        );
        assert!(
            matches!(
                result,
                Err(SimError::NonFiniteState { .. }) | Err(SimError::StepLimitExceeded { .. })
            ),
            "{result:?}"
        );
    }

    #[test]
    fn quiescence_detects_settling() {
        let crn: Crn = "X -> Y @fast".parse().unwrap();
        let x = crn.find_species("X").unwrap();
        let mut init = State::new(&crn);
        init.set(x, 5.0);
        let (trace, settled) = simulate_until_quiescent(
            &crn,
            &init,
            &Schedule::new(),
            &OdeOptions::default().with_t_end(640.0),
            &SimSpec::default(),
            1e-9,
        )
        .unwrap();
        let settled = settled.expect("fast decay settles");
        assert!(settled < 120.0, "settled at {settled}");
        assert!(trace.final_state()[x.index()] < 1e-9);
    }

    #[test]
    fn quiescence_waits_for_injections() {
        let crn: Crn = "X -> Y @fast".parse().unwrap();
        let x = crn.find_species("X").unwrap();
        let y = crn.find_species("Y").unwrap();
        // empty start; X injected midway — quiescence must not trigger
        // before the injection
        let schedule = Schedule::new().inject(100.0, x, 4.0);
        let (trace, settled) = simulate_until_quiescent(
            &crn,
            &State::new(&crn),
            &schedule,
            &OdeOptions::default().with_t_end(640.0),
            &SimSpec::default(),
            1e-9,
        )
        .unwrap();
        let settled = settled.expect("settles after the injection");
        assert!(settled > 100.0, "settled at {settled}");
        assert!((trace.final_state()[y.index()] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn quiescence_injection_applies_once() {
        // a t=0 injection must not be re-applied at every chunk boundary
        let crn: Crn = "A -> B @slow".parse().unwrap();
        let a = crn.find_species("A").unwrap();
        let b = crn.find_species("B").unwrap();
        let schedule = Schedule::new().inject(0.0, a, 7.0);
        let (trace, _) = simulate_until_quiescent(
            &crn,
            &State::new(&crn),
            &schedule,
            &OdeOptions::default().with_t_end(320.0),
            &SimSpec::default(),
            1e-9,
        )
        .unwrap();
        let total = trace.final_state()[a.index()] + trace.final_state()[b.index()];
        assert!((total - 7.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    #[should_panic(expected = "does not support triggers")]
    fn quiescence_rejects_triggers() {
        let crn: Crn = "X -> Y @slow".parse().unwrap();
        let x = crn.find_species("X").unwrap();
        let schedule = Schedule::new().trigger(crate::Trigger::mark(crate::Condition::Above {
            species: x,
            threshold: 1.0,
        }));
        let _ = simulate_until_quiescent(
            &crn,
            &State::new(&crn),
            &schedule,
            &OdeOptions::default(),
            &SimSpec::default(),
            1e-9,
        );
    }

    #[test]
    fn step_hook_interrupts_integration() {
        let (crn, x) = decay();
        let mut init = State::new(&crn);
        init.set(x, 1.0);
        let hook = |steps: u64, _t: f64| {
            if steps >= 3 {
                ControlFlow::Break("test budget".to_owned())
            } else {
                ControlFlow::Continue(())
            }
        };
        let opts = OdeOptions::default().with_t_end(10.0).with_step_hook(&hook);
        let err =
            simulate_ode(&crn, &init, &Schedule::new(), &opts, &SimSpec::default()).unwrap_err();
        assert!(
            matches!(err, SimError::Interrupted { ref reason, .. } if reason == "test budget"),
            "{err:?}"
        );
    }

    #[test]
    fn workspace_reuse_is_bit_identical_to_fresh() {
        // The same workspace driven across different networks and methods
        // must give exactly the trace a fresh workspace gives.
        let crn: Crn = "A + B -> C @fast\nC -> A @slow".parse().unwrap();
        let a = crn.find_species("A").unwrap();
        let mut init = State::new(&crn);
        init.set(a, 2.0);
        let other: Crn = "X -> 2X @slow\n2X -> X @fast".parse().unwrap();
        let xo = other.find_species("X").unwrap();
        let mut other_init = State::new(&other);
        other_init.set(xo, 1.0);

        let spec = SimSpec::default();
        let compiled = CompiledCrn::new(&crn, &spec);
        let other_compiled = CompiledCrn::new(&other, &spec);
        let schedule = Schedule::new();
        let mut ws = OdeWorkspace::new();
        for method in [
            OdeMethod::default(),
            OdeMethod::CashKarp {
                rtol: 1e-6,
                atol: 1e-9,
            },
        ] {
            let opts = OdeOptions::default().with_t_end(4.0).with_method(method);
            // dirty the workspace with a different-sized problem first
            let _ = simulate_ode_with_workspace(
                &other,
                &other_compiled,
                &other_init,
                &schedule,
                &opts,
                &mut ws,
            )
            .unwrap();
            let reused =
                simulate_ode_with_workspace(&crn, &compiled, &init, &schedule, &opts, &mut ws)
                    .unwrap();
            let fresh = simulate_ode_compiled(&crn, &compiled, &init, &schedule, &opts).unwrap();
            assert_eq!(reused, fresh, "method {method:?}");
        }
    }

    #[test]
    fn jacobian_reuse_stays_within_tolerance() {
        // Opt-in reuse changes which Jacobian W is built from, not the
        // accepted error bound: trajectories must stay within integration
        // tolerance of the evaluate-every-step default.
        let crn: Crn = "A + B -> C @fast\nC -> A + B @slow\nA -> 0 @slow"
            .parse()
            .unwrap();
        let a = crn.find_species("A").unwrap();
        let b = crn.find_species("B").unwrap();
        let mut init = State::new(&crn);
        init.set(a, 3.0).set(b, 2.0);
        let base = OdeOptions::default().with_t_end(20.0);
        let every_step = run(&crn, &init, &base);
        let reused = run(&crn, &init, &base.with_jacobian_reuse(8));
        for (p, q) in every_step.final_state().iter().zip(reused.final_state()) {
            assert!((p - q).abs() < 1e-4, "{p} vs {q}");
        }
    }

    #[test]
    fn record_interval_controls_density() {
        let (crn, x) = decay();
        let mut init = State::new(&crn);
        init.set(x, 1.0);
        let coarse = run(
            &crn,
            &init,
            &OdeOptions::default()
                .with_t_end(1.0)
                .with_record_interval(0.5),
        );
        let fine = run(
            &crn,
            &init,
            &OdeOptions::default()
                .with_t_end(1.0)
                .with_record_interval(0.01),
        );
        assert!(fine.len() > coarse.len() * 5);
    }
}
