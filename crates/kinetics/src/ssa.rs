//! Stochastic simulation (Gillespie direct method).
//!
//! The deterministic ODE picture assumes concentrations are continuous; in a
//! real (or DNA-implemented) system the constructs must also work at finite
//! molecule counts, where every reaction is a discrete random event.
//! Experiment E10 uses this simulator to measure how small the counts can
//! get before the synchronous scheme starts mis-transferring.

use crate::compiled::CompiledCrn;
use crate::events::TriggerRuntime;
use crate::metrics::{sinks_eq, MetricsSink, SimMetrics};
use crate::ode::StepHook;
use crate::{Schedule, SimError, State, Trace};
use molseq_crn::Crn;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::ops::ControlFlow;

/// Options controlling one stochastic run.
///
/// # Examples
///
/// ```
/// use molseq_kinetics::SsaOptions;
///
/// let opts = SsaOptions::default().with_t_end(20.0).with_seed(7);
/// assert_eq!(opts.t_end(), 20.0);
/// ```
#[derive(Clone, Copy)]
pub struct SsaOptions<'h> {
    t_start: f64,
    t_end: f64,
    record_interval: f64,
    max_events: usize,
    seed: u64,
    step_hook: Option<StepHook<'h>>,
    metrics: Option<MetricsSink<'h>>,
}

impl std::fmt::Debug for SsaOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SsaOptions")
            .field("t_start", &self.t_start)
            .field("t_end", &self.t_end)
            .field("record_interval", &self.record_interval)
            .field("max_events", &self.max_events)
            .field("seed", &self.seed)
            .field("step_hook", &self.step_hook.map(|_| "<hook>"))
            .field("metrics", &self.metrics.map(|_| "<sink>"))
            .finish()
    }
}

impl PartialEq for SsaOptions<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.t_start == other.t_start
            && self.t_end == other.t_end
            && self.record_interval == other.record_interval
            && self.max_events == other.max_events
            && self.seed == other.seed
            && crate::ode::hooks_eq(self.step_hook, other.step_hook)
            && sinks_eq(self.metrics, other.metrics)
    }
}

impl Default for SsaOptions<'_> {
    /// Span `[0, 10]`, recording every `0.1`, 50 million event budget,
    /// seed `0`, no step hook.
    fn default() -> Self {
        SsaOptions {
            t_start: 0.0,
            t_end: 10.0,
            record_interval: 0.1,
            max_events: 50_000_000,
            seed: 0,
            step_hook: None,
            metrics: None,
        }
    }
}

impl<'h> SsaOptions<'h> {
    /// Sets the start time (builder style).
    #[must_use]
    pub fn with_t_start(mut self, t: f64) -> Self {
        self.t_start = t;
        self
    }

    /// Sets the end time (builder style).
    #[must_use]
    pub fn with_t_end(mut self, t: f64) -> Self {
        self.t_end = t;
        self
    }

    /// Sets the sampling interval (builder style).
    #[must_use]
    pub fn with_record_interval(mut self, dt: f64) -> Self {
        self.record_interval = dt;
        self
    }

    /// Sets the event budget (builder style).
    #[must_use]
    pub fn with_max_events(mut self, n: usize) -> Self {
        self.max_events = n;
        self
    }

    /// Sets the random seed (builder style). Runs are deterministic in the
    /// seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Installs a cooperative interruption hook (builder style), polled
    /// once per fired reaction event with `(cumulative events, current
    /// time)`. See [`StepHook`].
    #[must_use]
    pub fn with_step_hook(mut self, hook: StepHook<'h>) -> Self {
        self.step_hook = Some(hook);
        self
    }

    /// Installs a metrics sink (builder style). On every exit path —
    /// success or error — the simulator absorbs its work counters (events
    /// fired, final time, seed) into the sink. See
    /// [`SimMetrics`].
    #[must_use]
    pub fn with_metrics(mut self, sink: MetricsSink<'h>) -> Self {
        self.metrics = Some(sink);
        self
    }

    /// The configured end time.
    #[must_use]
    pub fn t_end(&self) -> f64 {
        self.t_end
    }

    /// The configured start time.
    #[must_use]
    pub fn t_start(&self) -> f64 {
        self.t_start
    }

    /// The configured recording interval.
    #[must_use]
    pub fn record_interval(&self) -> f64 {
        self.record_interval
    }

    /// The configured event budget.
    #[must_use]
    pub fn max_events(&self) -> usize {
        self.max_events
    }

    /// The configured random seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured step hook, if any.
    #[must_use]
    pub fn step_hook(&self) -> Option<StepHook<'h>> {
        self.step_hook
    }

    /// The configured metrics sink, if any.
    #[must_use]
    pub fn metrics(&self) -> Option<MetricsSink<'h>> {
        self.metrics
    }
}

/// Validated entry point over a precompiled network: what the
/// [`Simulation`](crate::Simulation) builder dispatches to for
/// [`SimMethod::Ssa`](crate::SimMethod::Ssa).
pub(crate) fn run_ssa(
    crn: &Crn,
    compiled: &CompiledCrn,
    init: &State,
    schedule: &Schedule,
    opts: &SsaOptions,
) -> Result<Trace, SimError> {
    if compiled.species_count() != crn.species_count() {
        return Err(SimError::DimensionMismatch {
            supplied: compiled.species_count(),
            expected: crn.species_count(),
        });
    }
    if init.len() != crn.species_count() {
        return Err(SimError::DimensionMismatch {
            supplied: init.len(),
            expected: crn.species_count(),
        });
    }
    if !opts.t_start.is_finite() || !opts.t_end.is_finite() || opts.t_end <= opts.t_start {
        return Err(SimError::BadTimeSpan {
            t_start: opts.t_start,
            t_end: opts.t_end,
        });
    }

    let mut stats = SimMetrics {
        seed: opts.seed,
        final_time: opts.t_start,
        ..SimMetrics::default()
    };
    let result = ssa_core(crn, compiled, init, schedule, opts, &mut stats);
    // flush even on failure: an interrupted or step-limited run still
    // reports the work it did
    SimMetrics::flush(opts.metrics, stats);
    result
}

fn ssa_core(
    crn: &Crn,
    compiled: &CompiledCrn,
    init: &State,
    schedule: &Schedule,
    opts: &SsaOptions,
    stats: &mut SimMetrics,
) -> Result<Trace, SimError> {
    let mut n: Vec<i64> = Vec::with_capacity(init.len());
    for &v in init.as_slice() {
        n.push(to_count(v)?);
    }
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut t = opts.t_start;
    let mut trace = Trace::new(crn);
    let mut f64_state: Vec<f64> = n.iter().map(|&v| v as f64).collect();
    trace.push(t, &f64_state);
    let mut triggers = TriggerRuntime::new(schedule, &f64_state);

    let injections = schedule.sorted_injections();
    let mut next_injection = 0usize;
    let mut next_record = opts.t_start + opts.record_interval;
    let mut events = 0usize;

    loop {
        let injection_time = injections
            .get(next_injection)
            .map_or(f64::INFINITY, |inj| inj.time);

        // Total propensity and waiting time.
        let mut a0 = 0.0;
        for j in 0..compiled.reaction_count() {
            a0 += compiled.propensity(j, &n);
        }
        let t_next = if a0 > 0.0 {
            let u: f64 = 1.0 - rng.random::<f64>();
            t - u.ln() / a0
        } else {
            f64::INFINITY
        };

        // Which comes first: reaction, injection, or end of span?
        let stop = opts.t_end.min(injection_time);
        if t_next >= stop {
            // Record the plateau up to `stop`.
            record_until(&mut trace, &f64_state, &mut next_record, stop, opts);
            t = stop;
            stats.final_time = t;
            if injection_time <= opts.t_end {
                let inj = &injections[next_injection];
                n[inj.species.index()] += to_count(inj.amount)?;
                f64_state[inj.species.index()] = n[inj.species.index()] as f64;
                trace.push(t, &f64_state);
                next_injection += 1;
                for fired in triggers.poll(schedule, t, &mut f64_state) {
                    trace.push_mark(t, fired);
                    sync_back(&mut n, &f64_state)?;
                }
                continue;
            }
            break;
        }

        // Fire one reaction.
        if events >= opts.max_events {
            return Err(SimError::StepLimitExceeded {
                reached: t,
                t_end: opts.t_end,
                max_steps: opts.max_events,
            });
        }
        events += 1;
        stats.ssa_events = events as u64;
        if let Some(hook) = opts.step_hook {
            if let ControlFlow::Break(reason) = hook(events as u64, t) {
                return Err(SimError::Interrupted { time: t, reason });
            }
        }
        record_until(&mut trace, &f64_state, &mut next_record, t_next, opts);
        t = t_next;
        stats.final_time = t;
        let pick: f64 = rng.random::<f64>() * a0;
        let chosen = select_reaction(
            compiled.reaction_count(),
            |j| compiled.propensity(j, &n),
            pick,
        );
        compiled.fire(chosen, &mut n);
        for (f, &c) in f64_state.iter_mut().zip(&n) {
            *f = c as f64;
        }
        if !schedule.triggers().is_empty() {
            for fired in triggers.poll(schedule, t, &mut f64_state) {
                trace.push_mark(t, fired);
                trace.push(t, &f64_state);
                sync_back(&mut n, &f64_state)?;
            }
        }
    }

    trace.push(t, &f64_state);
    Ok(trace)
}

/// Selects the reaction to fire from a prefix-sum scan of the propensities.
///
/// `pick` is uniform in `[0, a0)` where `a0` is the (positive) propensity
/// total, so the scan normally terminates at the first `j` with
/// `pick < Σ_{k≤j} a_k` — necessarily a reaction with positive propensity.
/// Floating-point round-off can, however, leave `pick >= acc` even after
/// the last reaction (the re-summed `acc` may land just below `a0`). The
/// fallback for that case must be the last reaction with *positive*
/// propensity: defaulting to the last reaction unconditionally (the old
/// behavior) could fire a zero-propensity reaction whose reactants are
/// exhausted and drive copy numbers negative.
pub(crate) fn select_reaction(
    count: usize,
    mut propensity: impl FnMut(usize) -> f64,
    pick: f64,
) -> usize {
    let mut acc = 0.0;
    let mut last_positive = 0;
    for j in 0..count {
        let p = propensity(j);
        if p > 0.0 {
            last_positive = j;
        }
        acc += p;
        if pick < acc {
            return j;
        }
    }
    last_positive
}

pub(crate) fn to_count(v: f64) -> Result<i64, SimError> {
    let rounded = v.round();
    if v < 0.0 || (v - rounded).abs() > 1e-9 || !v.is_finite() {
        return Err(SimError::NonIntegerAmount { amount: v });
    }
    Ok(rounded as i64)
}

/// After a trigger's queue injection modified the f64 mirror, fold the
/// change back into the integer state.
pub(crate) fn sync_back(n: &mut [i64], f64_state: &[f64]) -> Result<(), SimError> {
    for (c, &f) in n.iter_mut().zip(f64_state) {
        *c = to_count(f)?;
    }
    Ok(())
}

pub(crate) fn record_until(
    trace: &mut Trace,
    state: &[f64],
    next_record: &mut f64,
    until: f64,
    opts: &SsaOptions,
) {
    while *next_record <= until && *next_record <= opts.t_end {
        trace.push(*next_record, state);
        *next_record += opts.record_interval;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimSpec;
    use molseq_crn::{Crn, RateAssignment};

    /// Builder-backed stand-in for the deprecated free function (shadows
    /// the glob import), keeping every test on the new entry point.
    fn simulate_ssa(
        crn: &Crn,
        init: &State,
        schedule: &Schedule,
        opts: &SsaOptions,
        spec: &SimSpec,
    ) -> Result<Trace, SimError> {
        let compiled = CompiledCrn::new(crn, spec);
        crate::sim::Simulation::new(crn, &compiled)
            .init(init)
            .schedule(schedule)
            .options(*opts)
            .run()
    }

    #[test]
    fn decay_reaches_zero_and_conserves_integers() {
        let crn: Crn = "X -> Y @slow".parse().unwrap();
        let x = crn.find_species("X").unwrap();
        let y = crn.find_species("Y").unwrap();
        let mut init = State::new(&crn);
        init.set(x, 100.0);
        let opts = SsaOptions::default().with_t_end(50.0).with_seed(1);
        let trace =
            simulate_ssa(&crn, &init, &Schedule::new(), &opts, &SimSpec::default()).unwrap();
        let fin = trace.final_state();
        assert_eq!(fin[x.index()], 0.0);
        assert_eq!(fin[y.index()], 100.0);
        // every snapshot conserves X+Y
        for i in 0..trace.len() {
            assert_eq!(trace.state(i)[x.index()] + trace.state(i)[y.index()], 100.0);
        }
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let crn: Crn = "X -> Y @slow\nY -> X @slow".parse().unwrap();
        let x = crn.find_species("X").unwrap();
        let mut init = State::new(&crn);
        init.set(x, 50.0);
        let opts = SsaOptions::default().with_t_end(5.0).with_seed(42);
        let a = simulate_ssa(&crn, &init, &Schedule::new(), &opts, &SimSpec::default()).unwrap();
        let b = simulate_ssa(&crn, &init, &Schedule::new(), &opts, &SimSpec::default()).unwrap();
        assert_eq!(a, b);
        let c = simulate_ssa(
            &crn,
            &init,
            &Schedule::new(),
            &opts.with_seed(43),
            &SimSpec::default(),
        )
        .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn large_counts_approach_ode_mean() {
        // X -> 0 at k=1: after t=1, mean is N/e.
        let crn: Crn = "X -> 0 @slow".parse().unwrap();
        let x = crn.find_species("X").unwrap();
        let n0 = 10_000.0;
        let mut init = State::new(&crn);
        init.set(x, n0);
        let opts = SsaOptions::default().with_t_end(1.0).with_seed(3);
        let trace =
            simulate_ssa(&crn, &init, &Schedule::new(), &opts, &SimSpec::default()).unwrap();
        let expected = n0 / std::f64::consts::E;
        let got = trace.final_state()[x.index()];
        // 5 sigma ≈ 5·sqrt(N·p·(1−p)) ≈ 240
        assert!((got - expected).abs() < 250.0, "{got} vs {expected}");
    }

    #[test]
    fn injections_apply() {
        let crn: Crn = "X -> 0 @slow".parse().unwrap();
        let x = crn.find_species("X").unwrap();
        let schedule = Schedule::new().inject(2.0, x, 10.0);
        let opts = SsaOptions::default().with_t_end(2.1).with_seed(5);
        let trace = simulate_ssa(
            &crn,
            &State::new(&crn),
            &schedule,
            &opts,
            &SimSpec::default(),
        )
        .unwrap();
        assert!(trace.value_at(x, 1.9) < 1e-9);
        assert!(trace.value_at(x, 2.0 + 1e-9) >= 9.0);
    }

    #[test]
    fn rejects_fractional_amounts() {
        let crn: Crn = "X -> 0 @slow".parse().unwrap();
        let x = crn.find_species("X").unwrap();
        let mut init = State::new(&crn);
        init.set(x, 1.5);
        let err = simulate_ssa(
            &crn,
            &init,
            &Schedule::new(),
            &SsaOptions::default(),
            &SimSpec::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::NonIntegerAmount { .. }));
    }

    #[test]
    fn empty_system_idles_to_end() {
        let crn: Crn = "X + Y -> 0 @fast".parse().unwrap();
        let opts = SsaOptions::default().with_t_end(3.0);
        let trace = simulate_ssa(
            &crn,
            &State::new(&crn),
            &Schedule::new(),
            &opts,
            &SimSpec::default(),
        )
        .unwrap();
        assert_eq!(*trace.times().last().unwrap(), 3.0);
    }

    #[test]
    fn bimolecular_uses_combination_counts() {
        // 2X -> Y with exactly 2 molecules: must fire exactly once.
        let crn: Crn = "2X -> Y @fast".parse().unwrap();
        let x = crn.find_species("X").unwrap();
        let y = crn.find_species("Y").unwrap();
        let mut init = State::new(&crn);
        init.set(x, 2.0);
        let opts = SsaOptions::default().with_t_end(10.0).with_seed(11);
        let trace =
            simulate_ssa(&crn, &init, &Schedule::new(), &opts, &SimSpec::default()).unwrap();
        assert_eq!(trace.final_state()[x.index()], 0.0);
        assert_eq!(trace.final_state()[y.index()], 1.0);
    }

    #[test]
    fn step_hook_interrupts_event_loop() {
        let crn: Crn = "X -> Y @slow\nY -> X @slow".parse().unwrap();
        let x = crn.find_species("X").unwrap();
        let mut init = State::new(&crn);
        init.set(x, 1000.0);
        let hook = |events: u64, _t: f64| {
            if events > 50 {
                ControlFlow::Break("test budget".to_owned())
            } else {
                ControlFlow::Continue(())
            }
        };
        let opts = SsaOptions::default()
            .with_t_end(1000.0)
            .with_seed(9)
            .with_step_hook(&hook);
        let err =
            simulate_ssa(&crn, &init, &Schedule::new(), &opts, &SimSpec::default()).unwrap_err();
        match err {
            SimError::Interrupted { reason, .. } => assert_eq!(reason, "test budget"),
            other => panic!("expected Interrupted, got {other:?}"),
        }
    }

    #[test]
    fn selection_never_falls_back_to_a_zero_propensity_reaction() {
        // Regression: with propensities [2, 0] and a round-off pick at (or
        // beyond) the total, the old fallback (`chosen = last reaction`)
        // fired reaction 1 despite its zero propensity — firing it would
        // drive its exhausted reactant negative. The fallback must be the
        // last reaction with positive propensity.
        let props = [2.0, 0.0];
        assert_eq!(select_reaction(2, |j| props[j], 2.0), 0);
        assert_eq!(select_reaction(2, |j| props[j], f64::INFINITY), 0);
        // zero-propensity reactions in the middle are skipped too
        let props = [0.0, 1.5, 0.0];
        assert_eq!(select_reaction(3, |j| props[j], 1.5), 1);
        // normal in-range picks are untouched by the fix
        let props = [1.0, 2.0, 3.0];
        assert_eq!(select_reaction(3, |j| props[j], 0.5), 0);
        assert_eq!(select_reaction(3, |j| props[j], 1.5), 1);
        assert_eq!(select_reaction(3, |j| props[j], 5.9), 2);
    }

    #[test]
    fn metrics_report_events_seed_and_final_time() {
        use crate::SimMetrics;
        use std::cell::Cell;

        let crn: Crn = "X -> Y @slow".parse().unwrap();
        let x = crn.find_species("X").unwrap();
        let mut init = State::new(&crn);
        init.set(x, 100.0);
        let sink = Cell::new(SimMetrics::default());
        let opts = SsaOptions::default()
            .with_t_end(50.0)
            .with_seed(6)
            .with_metrics(&sink);
        simulate_ssa(&crn, &init, &Schedule::new(), &opts, &SimSpec::default()).unwrap();
        let m = sink.get();
        // every X was converted exactly once
        assert_eq!(m.ssa_events, 100);
        assert_eq!(m.seed, 6);
        assert_eq!(m.final_time, 50.0);
        assert_eq!(m.ode_steps_accepted, 0);
    }

    #[test]
    fn metrics_flush_on_interruption() {
        use crate::SimMetrics;
        use std::cell::Cell;

        let crn: Crn = "X -> Y @slow\nY -> X @slow".parse().unwrap();
        let x = crn.find_species("X").unwrap();
        let mut init = State::new(&crn);
        init.set(x, 1000.0);
        let hook = |events: u64, _t: f64| {
            if events > 50 {
                ControlFlow::Break("budget".to_owned())
            } else {
                ControlFlow::Continue(())
            }
        };
        let sink = Cell::new(SimMetrics::default());
        let opts = SsaOptions::default()
            .with_t_end(1000.0)
            .with_seed(9)
            .with_step_hook(&hook)
            .with_metrics(&sink);
        simulate_ssa(&crn, &init, &Schedule::new(), &opts, &SimSpec::default()).unwrap_err();
        assert_eq!(sink.get().ssa_events, 51);
    }

    #[test]
    fn rate_assignment_scales_speed() {
        let crn: Crn = "X -> 0 @fast".parse().unwrap();
        let x = crn.find_species("X").unwrap();
        let mut init = State::new(&crn);
        init.set(x, 1000.0);
        let fast_spec = SimSpec::new(RateAssignment::new(100.0, 1.0).unwrap());
        let opts = SsaOptions::default().with_t_end(0.1).with_seed(2);
        let trace = simulate_ssa(&crn, &init, &Schedule::new(), &opts, &fast_spec).unwrap();
        // k=100, t=0.1 → survival e^-10 ≈ 0: all gone
        assert!(trace.final_state()[x.index()] < 5.0);
    }
}
