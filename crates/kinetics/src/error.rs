//! Simulation errors.

use std::error::Error;
use std::fmt;

/// Errors produced by the simulators.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The integrator exhausted its step budget before reaching `t_end`.
    /// Usually means the problem is stiffer than the options allow; raise
    /// `max_steps` or loosen tolerances.
    StepLimitExceeded {
        /// Simulated time reached before giving up.
        reached: f64,
        /// Requested end time.
        t_end: f64,
        /// The step budget that was exhausted.
        max_steps: usize,
    },
    /// A state component became non-finite (NaN or infinity).
    NonFiniteState {
        /// Simulated time of the failure.
        time: f64,
        /// Index of the offending species.
        species: usize,
    },
    /// The initial state or schedule refers to more species than the
    /// network has.
    DimensionMismatch {
        /// What the caller supplied.
        supplied: usize,
        /// What the network expects.
        expected: usize,
    },
    /// The requested time span is empty or inverted.
    BadTimeSpan {
        /// Start of the span.
        t_start: f64,
        /// End of the span.
        t_end: f64,
    },
    /// An SSA amount was not representable as an integer copy number.
    NonIntegerAmount {
        /// The offending amount.
        amount: f64,
    },
    /// A step hook (see `OdeOptions::with_step_hook` /
    /// `SsaOptions::with_step_hook`) asked the simulator to stop — e.g. a
    /// sweep cell exceeded its cooperative wall/step budget mid-run.
    Interrupted {
        /// Simulated time at which the hook interrupted the run.
        time: f64,
        /// The hook's stated reason.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::StepLimitExceeded {
                reached,
                t_end,
                max_steps,
            } => write!(
                f,
                "step limit {max_steps} exhausted at t = {reached} before reaching t_end = {t_end}"
            ),
            SimError::NonFiniteState { time, species } => write!(
                f,
                "state of species index {species} became non-finite at t = {time}"
            ),
            SimError::DimensionMismatch { supplied, expected } => write!(
                f,
                "state has {supplied} entries but the network has {expected} species"
            ),
            SimError::BadTimeSpan { t_start, t_end } => {
                write!(f, "time span [{t_start}, {t_end}] is empty or inverted")
            }
            SimError::NonIntegerAmount { amount } => write!(
                f,
                "amount {amount} is not a non-negative integer copy number"
            ),
            SimError::Interrupted { time, reason } => {
                write!(f, "interrupted by step hook at t = {time}: {reason}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let errors: [SimError; 6] = [
            SimError::StepLimitExceeded {
                reached: 1.0,
                t_end: 2.0,
                max_steps: 10,
            },
            SimError::NonFiniteState {
                time: 0.5,
                species: 3,
            },
            SimError::DimensionMismatch {
                supplied: 2,
                expected: 5,
            },
            SimError::BadTimeSpan {
                t_start: 1.0,
                t_end: 0.0,
            },
            SimError::NonIntegerAmount { amount: 0.5 },
            SimError::Interrupted {
                time: 3.0,
                reason: "budget".into(),
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + std::error::Error>() {}
        assert_bounds::<SimError>();
    }
}
