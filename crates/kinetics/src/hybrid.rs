//! Hybrid ODE/SSA multiscale simulation.
//!
//! The paper's clocked schemes are intrinsically multiscale: the clock and
//! indicator species churn through millions of fast, effectively
//! continuous reaction events while the computation species fire rarely —
//! pure SSA burns its event budget on the clock, pure ODE loses the
//! discreteness of the computation. This engine partitions the network:
//! *fast* reactions (structurally reversible pairs whose propensities
//! exceed a discreteness threshold) are integrated as a continuous
//! subsystem with the shared Rosenbrock ode23s stepper and sparse LU,
//! while *slow* reactions fire as exact discrete events whose propensities
//! are evaluated against the evolving continuous state.
//!
//! Slow events are drawn by time rescaling (the "next reaction density"
//! method): one Exp(1) variate `E` is drawn per event, the integral
//! `∫ a_slow(x(t)) dt` is accumulated with the trapezoid rule over
//! accepted ODE steps, and the event fires when the integral reaches `E`
//! (the in-step firing time solves the trapezoid quadratic; the state is
//! interpolated linearly, the same order as recorded samples). The RNG is
//! consumed strictly in event order — two draws per slow event — so runs
//! are deterministic per seed regardless of step-size history.
//!
//! When the partition is forced all-slow (or auto-partitioning finds no
//! structurally reversible candidates at all), the run delegates wholesale
//! to the exact SSA core and is *bit-identical* to
//! [`SimMethod::Ssa`](crate::SimMethod::Ssa) with the same options — the
//! contract the property tests pin down.

// Index loops mirror the textbook Rosenbrock formulas and the reaction
// numbering; iterator chains would obscure them (same policy as `ode`).
#![allow(clippy::needless_range_loop)]

use crate::compiled::CompiledCrn;
use crate::metrics::{sinks_eq, MetricsSink, SimMetrics};
use crate::ode::{OdeWorkspace, StepHook};
use crate::ssa::{run_ssa, select_reaction, SsaOptions};
use crate::stiff::{assemble_w, Factored, Lu, Symbolic, C32, D};
use crate::tau_implicit::find_reverse_pairs;
use crate::{Schedule, SimError, State, Trace};
use molseq_crn::Crn;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::ops::ControlFlow;

/// Default propensity scale above which a reversible pair is routed to the
/// continuous side: at ≥ 100 expected firings per time unit the pair's
/// discreteness is invisible next to its churn.
pub const DEFAULT_DISCRETENESS_THRESHOLD: f64 = 100.0;

/// Options controlling one hybrid ODE/SSA run.
///
/// # Examples
///
/// ```
/// use molseq_kinetics::HybridOptions;
///
/// let opts = HybridOptions::default().with_t_end(20.0).with_seed(7);
/// assert_eq!(opts.t_end(), 20.0);
/// ```
#[derive(Clone, Copy)]
pub struct HybridOptions<'h> {
    t_start: f64,
    t_end: f64,
    record_interval: f64,
    h_max: f64,
    rtol: f64,
    atol: f64,
    max_steps: usize,
    max_events: usize,
    seed: u64,
    /// `Some(mask)`: reaction `j` is integrated continuously iff
    /// `mask[j]`; no automatic repartitioning. `None`: partition
    /// automatically from the reverse-pair structure and the current
    /// propensities.
    partition: Option<&'h [bool]>,
    repartition_interval: f64,
    discreteness_threshold: f64,
    step_hook: Option<StepHook<'h>>,
    metrics: Option<MetricsSink<'h>>,
}

impl std::fmt::Debug for HybridOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HybridOptions")
            .field("t_start", &self.t_start)
            .field("t_end", &self.t_end)
            .field("record_interval", &self.record_interval)
            .field("h_max", &self.h_max)
            .field("rtol", &self.rtol)
            .field("atol", &self.atol)
            .field("max_steps", &self.max_steps)
            .field("max_events", &self.max_events)
            .field("seed", &self.seed)
            .field("partition", &self.partition)
            .field("repartition_interval", &self.repartition_interval)
            .field("discreteness_threshold", &self.discreteness_threshold)
            .field("step_hook", &self.step_hook.map(|_| "<hook>"))
            .field("metrics", &self.metrics.map(|_| "<sink>"))
            .finish()
    }
}

impl PartialEq for HybridOptions<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.t_start == other.t_start
            && self.t_end == other.t_end
            && self.record_interval == other.record_interval
            && self.h_max == other.h_max
            && self.rtol == other.rtol
            && self.atol == other.atol
            && self.max_steps == other.max_steps
            && self.max_events == other.max_events
            && self.seed == other.seed
            && self.partition == other.partition
            && self.repartition_interval == other.repartition_interval
            && self.discreteness_threshold == other.discreteness_threshold
            && crate::ode::hooks_eq(self.step_hook, other.step_hook)
            && sinks_eq(self.metrics, other.metrics)
    }
}

impl Default for HybridOptions<'_> {
    /// Span `[0, 10]`, recording every `0.1`, `h_max = 0.25`,
    /// `rtol = 1e-6` / `atol = 1e-9`, 20 million ODE-step and 50 million
    /// slow-event budgets, seed `0`, automatic partitioning with threshold
    /// [`DEFAULT_DISCRETENESS_THRESHOLD`] re-evaluated every 1/64 of the
    /// span.
    fn default() -> Self {
        HybridOptions {
            t_start: 0.0,
            t_end: 10.0,
            record_interval: 0.1,
            h_max: 0.25,
            rtol: 1e-6,
            atol: 1e-9,
            max_steps: 20_000_000,
            max_events: 50_000_000,
            seed: 0,
            partition: None,
            repartition_interval: 0.0,
            discreteness_threshold: DEFAULT_DISCRETENESS_THRESHOLD,
            step_hook: None,
            metrics: None,
        }
    }
}

impl<'h> HybridOptions<'h> {
    /// Sets the start time (builder style).
    #[must_use]
    pub fn with_t_start(mut self, t: f64) -> Self {
        self.t_start = t;
        self
    }

    /// Sets the end time (builder style).
    #[must_use]
    pub fn with_t_end(mut self, t: f64) -> Self {
        self.t_end = t;
        self
    }

    /// Sets the sampling interval (builder style).
    #[must_use]
    pub fn with_record_interval(mut self, dt: f64) -> Self {
        self.record_interval = dt;
        self
    }

    /// Sets the maximum continuous step size (builder style). Besides
    /// bounding the fast subsystem's truncation error it bounds how far
    /// the trapezoid accumulation of the slow propensity integral can
    /// stretch over one step.
    #[must_use]
    pub fn with_h_max(mut self, h: f64) -> Self {
        self.h_max = h;
        self
    }

    /// Sets the relative error tolerance of the fast subsystem (builder
    /// style).
    #[must_use]
    pub fn with_rtol(mut self, rtol: f64) -> Self {
        self.rtol = rtol;
        self
    }

    /// Sets the absolute error tolerance of the fast subsystem (builder
    /// style).
    #[must_use]
    pub fn with_atol(mut self, atol: f64) -> Self {
        self.atol = atol;
        self
    }

    /// Sets the continuous trial-step budget (builder style).
    #[must_use]
    pub fn with_max_steps(mut self, n: usize) -> Self {
        self.max_steps = n;
        self
    }

    /// Sets the slow-event budget (builder style).
    #[must_use]
    pub fn with_max_events(mut self, n: usize) -> Self {
        self.max_events = n;
        self
    }

    /// Sets the random seed (builder style). Runs are deterministic in the
    /// seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Forces the reaction partition (builder style): reaction `j` is
    /// integrated continuously iff `mask[j]`, and automatic repartitioning
    /// is disabled. `mask.len()` must equal the network's reaction count.
    /// An all-`false` mask reproduces pure SSA bit-identically.
    #[must_use]
    pub fn with_partition(mut self, mask: &'h [bool]) -> Self {
        self.partition = Some(mask);
        self
    }

    /// Sets how often (in simulated time) the automatic partition is
    /// re-evaluated (builder style). `0.0` picks 1/64 of the span;
    /// `f64::INFINITY` partitions once at the start and never again.
    /// Ignored when a partition override is installed.
    #[must_use]
    pub fn with_repartition_interval(mut self, dt: f64) -> Self {
        self.repartition_interval = dt;
        self
    }

    /// Sets the propensity scale above which a structurally reversible
    /// pair is routed to the continuous side (builder style). The pair
    /// `(j, q)` goes fast when `max(a_j, a_q)` meets the threshold — max,
    /// not min, so a pair relaxing *towards* equilibrium (one direction
    /// still starved) is already absorbed by the ODE.
    #[must_use]
    pub fn with_discreteness_threshold(mut self, a: f64) -> Self {
        self.discreteness_threshold = a;
        self
    }

    /// Installs a cooperative interruption hook (builder style), polled
    /// once per continuous trial step and once per slow event with
    /// `(cumulative steps + events, current time)`. See [`StepHook`].
    #[must_use]
    pub fn with_step_hook(mut self, hook: StepHook<'h>) -> Self {
        self.step_hook = Some(hook);
        self
    }

    /// Installs a metrics sink (builder style). On every exit path —
    /// success or error — the simulator absorbs its work counters into the
    /// sink. See [`SimMetrics`].
    #[must_use]
    pub fn with_metrics(mut self, sink: MetricsSink<'h>) -> Self {
        self.metrics = Some(sink);
        self
    }

    /// The configured start time.
    #[must_use]
    pub fn t_start(&self) -> f64 {
        self.t_start
    }

    /// The configured end time.
    #[must_use]
    pub fn t_end(&self) -> f64 {
        self.t_end
    }

    /// The configured recording interval.
    #[must_use]
    pub fn record_interval(&self) -> f64 {
        self.record_interval
    }

    /// The configured maximum continuous step size.
    #[must_use]
    pub fn h_max(&self) -> f64 {
        self.h_max
    }

    /// The configured continuous trial-step budget.
    #[must_use]
    pub fn max_steps(&self) -> usize {
        self.max_steps
    }

    /// The configured slow-event budget.
    #[must_use]
    pub fn max_events(&self) -> usize {
        self.max_events
    }

    /// The configured random seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The forced partition mask, if any.
    #[must_use]
    pub fn partition(&self) -> Option<&'h [bool]> {
        self.partition
    }

    /// The configured repartition interval (`0.0` = automatic).
    #[must_use]
    pub fn repartition_interval(&self) -> f64 {
        self.repartition_interval
    }

    /// The configured discreteness threshold.
    #[must_use]
    pub fn discreteness_threshold(&self) -> f64 {
        self.discreteness_threshold
    }

    /// The configured step hook, if any.
    #[must_use]
    pub fn step_hook(&self) -> Option<StepHook<'h>> {
        self.step_hook
    }

    /// The configured metrics sink, if any.
    #[must_use]
    pub fn metrics(&self) -> Option<MetricsSink<'h>> {
        self.metrics
    }
}

/// Reusable buffers for the hybrid engine's fast-subsystem stepper: the
/// shared minimum-degree symbolic factorization plus the ode23s stage
/// vectors, sized once per network and recycled across runs via
/// [`OdeWorkspace`]. Unlike the pure-ODE stepper there is no Jacobian or
/// LU cache across steps — the masked drift changes with every
/// repartition and every slow firing, so each trial step assembles and
/// factors fresh.
pub(crate) struct HybridWork {
    n: usize,
    reaction_count: usize,
    sym: Symbolic,
    /// Masked propensity-drift Jacobian nonzeros over the full shared CSR
    /// pattern (slots of excluded reactions stay zero).
    jac_vals: Vec<f64>,
    w: Vec<f64>,
    pivots: Vec<usize>,
    f0: Vec<f64>,
    f1: Vec<f64>,
    f2: Vec<f64>,
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    ytmp: Vec<f64>,
    bperm: Vec<f64>,
    factorizations: u64,
    /// Structural reverse pairs — the automatic partition's candidate set,
    /// computed once per network.
    pub(crate) paired: Vec<Option<usize>>,
    /// The advanced solution of the trial step.
    pub(crate) y_new: Vec<f64>,
    err: Vec<f64>,
}

impl HybridWork {
    pub(crate) fn new(compiled: &CompiledCrn) -> Self {
        let n = compiled.species_count();
        HybridWork {
            n,
            reaction_count: compiled.reaction_count(),
            sym: Symbolic::new(compiled),
            jac_vals: vec![0.0; compiled.jacobian_nnz()],
            w: vec![0.0; n * n],
            pivots: vec![0usize; n],
            f0: vec![0.0; n],
            f1: vec![0.0; n],
            f2: vec![0.0; n],
            k1: vec![0.0; n],
            k2: vec![0.0; n],
            k3: vec![0.0; n],
            ytmp: vec![0.0; n],
            bperm: vec![0.0; n],
            factorizations: 0,
            paired: find_reverse_pairs(compiled),
            y_new: vec![0.0; n],
            err: vec![0.0; n],
        }
    }

    /// Whether this workspace (buffer sizes *and* symbolic elimination
    /// structure) was built for `compiled`.
    pub(crate) fn matches(&self, compiled: &CompiledCrn) -> bool {
        self.jac_vals.len() == compiled.jacobian_nnz()
            && self.reaction_count == compiled.reaction_count()
            && self.sym.matches(compiled)
    }

    pub(crate) fn factorizations(&self) -> u64 {
        self.factorizations
    }

    /// One ode23s trial step of size `h` from `y` over the fast
    /// subsystem's drift `Σ_{fast} ν_j·a_j(x)`. Fills `y_new` and `err`;
    /// returns `false` when `W = I − h·d·J` is singular even for the
    /// pivoted dense fallback (caller shrinks the step).
    fn step(&mut self, compiled: &CompiledCrn, fast: &[bool], y: &[f64], h: f64) -> bool {
        let n = self.n;
        compiled.propensity_jacobian_sparse_masked(y, &mut self.jac_vals, fast);
        let hd = h * D;
        self.sym.assemble(compiled, &self.jac_vals, hd, &mut self.w);
        let lin = if self.sym.factor(&mut self.w) {
            Factored::Sparse(std::mem::take(&mut self.w))
        } else {
            // the no-pivot guard tripped mid-elimination and clobbered
            // `w`: rebuild unpermuted and fall back to the pivoted dense
            // factorization
            assemble_w(compiled, &self.jac_vals, hd, &mut self.w);
            match Lu::factor(
                std::mem::take(&mut self.w),
                std::mem::take(&mut self.pivots),
                n,
            ) {
                Ok(lu) => Factored::Dense(lu),
                Err((w, pivots)) => {
                    self.w = w;
                    self.pivots = pivots;
                    return false;
                }
            }
        };
        self.factorizations += 1;

        compiled.propensity_drift_masked(y, &mut self.f0, fast);
        self.k1.copy_from_slice(&self.f0);
        lin.solve(&self.sym, &mut self.k1, &mut self.bperm);

        for i in 0..n {
            self.ytmp[i] = y[i] + 0.5 * h * self.k1[i];
        }
        compiled.propensity_drift_masked(&self.ytmp, &mut self.f1, fast);
        for i in 0..n {
            self.k2[i] = self.f1[i] - self.k1[i];
        }
        lin.solve(&self.sym, &mut self.k2, &mut self.bperm);
        for i in 0..n {
            self.k2[i] += self.k1[i];
        }

        for i in 0..n {
            self.y_new[i] = y[i] + h * self.k2[i];
        }
        compiled.propensity_drift_masked(&self.y_new, &mut self.f2, fast);
        for i in 0..n {
            self.k3[i] =
                self.f2[i] - C32 * (self.k2[i] - self.f1[i]) - 2.0 * (self.k1[i] - self.f0[i]);
        }
        lin.solve(&self.sym, &mut self.k3, &mut self.bperm);

        for i in 0..n {
            self.err[i] = h / 6.0 * (self.k1[i] - 2.0 * self.k2[i] + self.k3[i]);
        }
        match lin {
            Factored::Sparse(w) => self.w = w,
            Factored::Dense(lu) => (self.w, self.pivots) = lu.into_buffers(),
        }
        true
    }

    /// Max over components of `|err| / (atol + rtol·max(|y|, |y_new|))`.
    fn error_ratio(&self, y: &[f64], rtol: f64, atol: f64) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..self.n {
            let scale = atol + rtol * y[i].abs().max(self.y_new[i].abs());
            worst = worst.max(self.err[i].abs() / scale);
        }
        worst
    }
}

/// One Exp(1) variate, consuming exactly one `f64` draw — the waiting-time
/// "budget" that the slow propensity integral must fill before the next
/// event fires. `1 − u ∈ (0, 1]` keeps the logarithm finite, the same
/// guard the SSA core uses.
fn exp_draw(rng: &mut StdRng) -> f64 {
    let u: f64 = 1.0 - rng.random::<f64>();
    -u.ln()
}

/// Total propensity of the slow (discrete) reactions at `x`.
fn slow_total(compiled: &CompiledCrn, fast: &[bool], x: &[f64]) -> f64 {
    let mut a0 = 0.0;
    for j in 0..compiled.reaction_count() {
        if !fast[j] {
            a0 += compiled.propensity_f(j, x);
        }
    }
    a0
}

/// Recomputes the automatic partition at state `x` into `fresh`: a
/// structurally reversible pair goes to the continuous side when the
/// larger of its two propensities meets the threshold. Returns `true` if
/// `fresh` differs from `current`.
fn auto_partition(
    compiled: &CompiledCrn,
    paired: &[Option<usize>],
    x: &[f64],
    threshold: f64,
    current: &[bool],
    fresh: &mut Vec<bool>,
) -> bool {
    fresh.clear();
    fresh.resize(paired.len(), false);
    for (j, partner) in paired.iter().enumerate() {
        if let Some(q) = partner {
            let scale = compiled
                .propensity_f(j, x)
                .max(compiled.propensity_f(*q, x));
            if scale >= threshold {
                fresh[j] = true;
            }
        }
    }
    fresh.as_slice() != current
}

/// Solves the trapezoid quadratic `a_start·s + (a_end − a_start)·s²/(2h) =
/// target` for the in-step firing offset `s ∈ (0, h]`. The caller
/// guarantees the full-step integral reaches `target`, so a real root in
/// range exists; the expanded form `2·target / (a_start + √disc)` is the
/// numerically stable first crossing for either sign of the slope.
fn event_offset(a_start: f64, a_end: f64, h: f64, target: f64) -> f64 {
    let slope = (a_end - a_start) / h;
    let disc = (a_start * a_start + 2.0 * slope * target).max(0.0);
    let denom = a_start + disc.sqrt();
    let s = if denom > 0.0 { 2.0 * target / denom } else { h };
    if s.is_finite() {
        s.clamp(0.0, h)
    } else {
        h
    }
}

/// Validated entry point over a precompiled network: what the
/// [`Simulation`](crate::Simulation) builder dispatches to for
/// [`SimMethod::Hybrid`](crate::SimMethod::Hybrid).
///
/// # Panics
///
/// Panics if the schedule contains triggers (like the tau-leapers, the
/// hybrid engine does not support event triggers).
#[allow(clippy::too_many_lines)]
pub(crate) fn run_hybrid(
    crn: &Crn,
    compiled: &CompiledCrn,
    init: &State,
    schedule: &Schedule,
    opts: &HybridOptions,
    workspace: &mut OdeWorkspace,
) -> Result<Trace, SimError> {
    assert!(
        schedule.triggers().is_empty(),
        "hybrid simulation does not support triggers"
    );
    if compiled.species_count() != crn.species_count() {
        return Err(SimError::DimensionMismatch {
            supplied: compiled.species_count(),
            expected: crn.species_count(),
        });
    }
    if init.len() != crn.species_count() {
        return Err(SimError::DimensionMismatch {
            supplied: init.len(),
            expected: crn.species_count(),
        });
    }
    if !opts.t_start.is_finite() || !opts.t_end.is_finite() || opts.t_end <= opts.t_start {
        return Err(SimError::BadTimeSpan {
            t_start: opts.t_start,
            t_end: opts.t_end,
        });
    }
    // The NaN-rejecting form: `!(x > 0)` also catches NaN. Numeric knobs
    // out of range surface as BadTimeSpan like the tau-leapers' do.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    let bad_knob = !(opts.record_interval > 0.0)
        || !(opts.h_max > 0.0)
        || !(opts.rtol > 0.0)
        || !(opts.atol > 0.0)
        || !(opts.repartition_interval >= 0.0)
        || !(opts.discreteness_threshold >= 0.0);
    if bad_knob {
        return Err(SimError::BadTimeSpan {
            t_start: opts.t_start,
            t_end: opts.t_end,
        });
    }
    let m = compiled.reaction_count();
    if let Some(mask) = opts.partition {
        if mask.len() != m {
            return Err(SimError::DimensionMismatch {
                supplied: mask.len(),
                expected: m,
            });
        }
    }

    // A fixed all-slow partition — forced, or automatic with no
    // structurally reversible candidates at all — is exactly pure SSA;
    // route it through the exact core so it is bit-identical by
    // construction (same RNG stream, same recording).
    let delegate_to_ssa = match opts.partition {
        Some(mask) => mask.iter().all(|&f| !f),
        None => find_reverse_pairs(compiled).iter().all(Option::is_none),
    };
    if delegate_to_ssa {
        let mut ssa_opts = SsaOptions::default()
            .with_t_start(opts.t_start)
            .with_t_end(opts.t_end)
            .with_record_interval(opts.record_interval)
            .with_max_events(opts.max_events)
            .with_seed(opts.seed);
        if let Some(hook) = opts.step_hook {
            ssa_opts = ssa_opts.with_step_hook(hook);
        }
        if let Some(sink) = opts.metrics {
            ssa_opts = ssa_opts.with_metrics(sink);
        }
        return run_ssa(crn, compiled, init, schedule, &ssa_opts);
    }

    match &mut workspace.hybrid {
        Some(work) if work.matches(compiled) => {}
        slot => *slot = Some(HybridWork::new(compiled)),
    }
    let work = workspace.hybrid.as_mut().expect("prepared above");
    let lu_before = work.factorizations();
    let n = compiled.species_count();
    let span = opts.t_end - opts.t_start;

    let auto = opts.partition.is_none();
    let repart_dt = if !auto || opts.repartition_interval.is_infinite() {
        f64::INFINITY
    } else if opts.repartition_interval > 0.0 {
        opts.repartition_interval
    } else {
        span / 64.0
    };

    let mut x: Vec<f64> = init.as_slice().to_vec();
    let mut x_prev = vec![0.0; n];
    let mut sample = vec![0.0; n];
    let mut fast: Vec<bool> = match opts.partition {
        Some(mask) => mask.to_vec(),
        None => {
            let mut fresh = Vec::new();
            auto_partition(
                compiled,
                &work.paired,
                &x,
                opts.discreteness_threshold,
                &[],
                &mut fresh,
            );
            fresh
        }
    };
    let mut fresh_mask: Vec<bool> = Vec::new();
    let mut fast_count = fast.iter().filter(|&&f| f).count();

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut t = opts.t_start;
    let mut trace = Trace::new(crn);
    trace.push(t, &x);
    let injections = schedule.sorted_injections();
    let mut next_injection = 0usize;
    let mut next_record = opts.t_start + opts.record_interval;
    let mut next_repart = opts.t_start + repart_dt;
    let mut steps_used = 0usize;
    let mut events = 0usize;
    let mut metrics = SimMetrics {
        seed: opts.seed,
        final_time: opts.t_start,
        ..SimMetrics::default()
    };
    let mut failure = None;
    // The pending event's Exp(1) budget; the slow propensity integral is
    // accumulated against it across steps, segments and partition changes
    // (time rescaling keeps the residual memoryless).
    let mut exp_budget = exp_draw(&mut rng);
    let mut h_adaptive = (opts.record_interval.min(span / 100.0)).max(span * 1e-9);

    // Records a plateau (state constant since the last change) up to
    // `until`.
    macro_rules! record_plateau {
        ($until:expr) => {
            while next_record <= $until && next_record <= opts.t_end {
                trace.push(next_record, &x);
                next_record += opts.record_interval;
            }
        };
    }
    // Records samples interpolated between `x_prev` (at `$t_prev`) and `x`
    // (at `t`) for every record point reached by the accepted advance.
    macro_rules! record_interpolated {
        ($t_prev:expr, $h_taken:expr) => {
            while next_record <= t + 1e-12 {
                let alpha = if $h_taken > 0.0 {
                    ((next_record - $t_prev) / $h_taken).clamp(0.0, 1.0)
                } else {
                    1.0
                };
                for ((s, &a), &b) in sample.iter_mut().zip(x_prev.iter()).zip(x.iter()) {
                    *s = a + alpha * (b - a);
                }
                trace.push(next_record, &sample);
                next_record += opts.record_interval;
            }
        };
    }

    'outer: while t < opts.t_end {
        let injection_time = injections.get(next_injection).map_or(f64::INFINITY, |inj| {
            inj.time.clamp(opts.t_start, opts.t_end)
        });
        let segment_end = opts.t_end.min(injection_time).min(next_repart);

        if fast_count == 0 {
            // Slow-only epoch: propensities are constant between firings,
            // so step analytically (exact exponential waiting times
            // against the residual budget — statistically identical to
            // SSA, though on the hybrid's RNG draw order).
            while t < segment_end {
                let a0 = slow_total(compiled, &fast, &x);
                let t_next = if a0 > 0.0 {
                    t + exp_budget / a0
                } else {
                    f64::INFINITY
                };
                if t_next >= segment_end {
                    if a0 > 0.0 {
                        exp_budget -= (segment_end - t) * a0;
                    }
                    record_plateau!(segment_end);
                    t = segment_end;
                    break;
                }
                if events >= opts.max_events {
                    failure = Some(SimError::StepLimitExceeded {
                        reached: t,
                        t_end: opts.t_end,
                        max_steps: opts.max_events,
                    });
                    break 'outer;
                }
                events += 1;
                metrics.hybrid_slow_events += 1;
                metrics.ssa_events += 1;
                if let Some(hook) = opts.step_hook {
                    if let ControlFlow::Break(reason) = hook((steps_used + events) as u64, t) {
                        failure = Some(SimError::Interrupted { time: t, reason });
                        break 'outer;
                    }
                }
                record_plateau!(t_next);
                t = t_next;
                metrics.final_time = t;
                let pick: f64 = rng.random::<f64>() * a0;
                let chosen = select_reaction(
                    m,
                    |j| {
                        if fast[j] {
                            0.0
                        } else {
                            compiled.propensity_f(j, &x)
                        }
                    },
                    pick,
                );
                for &(i, d) in compiled.changed_species(chosen) {
                    x[i] = (x[i] + d as f64).max(0.0);
                }
                exp_budget = exp_draw(&mut rng);
            }
        } else {
            // Mixed epoch: advance the fast subsystem by ode23s while
            // accumulating the slow propensity integral; fire inside the
            // step that fills the budget.
            while t < segment_end - 1e-15 {
                if steps_used >= opts.max_steps {
                    failure = Some(SimError::StepLimitExceeded {
                        reached: t,
                        t_end: opts.t_end,
                        max_steps: opts.max_steps,
                    });
                    break 'outer;
                }
                let h_cap = (segment_end - t).min(opts.h_max);
                let h_try = h_adaptive.min(h_cap).max(1e-14);
                let solvable = work.step(compiled, &fast, &x, h_try);
                steps_used += 1;
                if let Some(hook) = opts.step_hook {
                    if let ControlFlow::Break(reason) = hook((steps_used + events) as u64, t) {
                        failure = Some(SimError::Interrupted { time: t, reason });
                        break 'outer;
                    }
                }
                if !solvable {
                    metrics.ode_steps_rejected += 1;
                    h_adaptive = (h_try * 0.5).max(1e-14);
                    continue;
                }
                let err_ratio = work.error_ratio(&x, opts.rtol, opts.atol);
                if err_ratio > 1.0 {
                    metrics.ode_steps_rejected += 1;
                    let shrink = (0.9 * err_ratio.powf(-1.0 / 3.0)).clamp(0.1, 0.9);
                    h_adaptive = (h_try * shrink).max(1e-14);
                    continue;
                }
                // Accepted: project and check the trial endpoint before
                // committing to it.
                for (i, v) in work.y_new.iter_mut().enumerate() {
                    if !v.is_finite() {
                        failure = Some(SimError::NonFiniteState {
                            time: t + h_try,
                            species: i,
                        });
                        break 'outer;
                    }
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
                metrics.ode_steps_accepted += 1;
                metrics.hybrid_fast_steps += 1;
                let a_start = slow_total(compiled, &fast, &x);
                let a_end = slow_total(compiled, &fast, &work.y_new);
                let integral = 0.5 * h_try * (a_start + a_end);
                let grow = if err_ratio > 0.0 {
                    0.9 * err_ratio.powf(-1.0 / 3.0)
                } else {
                    5.0
                };
                if integral < exp_budget {
                    // No slow event inside this step.
                    exp_budget -= integral;
                    x_prev.copy_from_slice(&x);
                    x.copy_from_slice(&work.y_new);
                    let t_prev = t;
                    t += h_try;
                    metrics.final_time = t;
                    record_interpolated!(t_prev, h_try);
                    h_adaptive = (h_try * grow.clamp(0.2, 5.0)).min(opts.h_max);
                } else {
                    // The budget fills inside the step: find the firing
                    // offset, interpolate the state there, fire.
                    if events >= opts.max_events {
                        failure = Some(SimError::StepLimitExceeded {
                            reached: t,
                            t_end: opts.t_end,
                            max_steps: opts.max_events,
                        });
                        break 'outer;
                    }
                    let s = event_offset(a_start, a_end, h_try, exp_budget);
                    x_prev.copy_from_slice(&x);
                    let frac = if h_try > 0.0 { s / h_try } else { 1.0 };
                    for i in 0..n {
                        x[i] = (x_prev[i] + frac * (work.y_new[i] - x_prev[i])).max(0.0);
                    }
                    let t_prev = t;
                    t += s;
                    metrics.final_time = t;
                    record_interpolated!(t_prev, s);
                    events += 1;
                    metrics.hybrid_slow_events += 1;
                    metrics.ssa_events += 1;
                    let a_event = slow_total(compiled, &fast, &x);
                    if a_event > 0.0 {
                        let pick: f64 = rng.random::<f64>() * a_event;
                        let chosen = select_reaction(
                            m,
                            |j| {
                                if fast[j] {
                                    0.0
                                } else {
                                    compiled.propensity_f(j, &x)
                                }
                            },
                            pick,
                        );
                        for &(i, d) in compiled.changed_species(chosen) {
                            x[i] = (x[i] + d as f64).max(0.0);
                        }
                    }
                    exp_budget = exp_draw(&mut rng);
                    if let Some(hook) = opts.step_hook {
                        if let ControlFlow::Break(reason) = hook((steps_used + events) as u64, t) {
                            failure = Some(SimError::Interrupted { time: t, reason });
                            break 'outer;
                        }
                    }
                }
            }
            // The loop stops within 1e-15 of the boundary: snap to it so
            // injections and repartitions land at their scheduled times.
            if t < segment_end {
                record_plateau!(segment_end);
                t = segment_end;
            }
        }
        metrics.final_time = t;

        // Apply any injections scheduled at (or before) the reached time.
        let mut injected = false;
        while let Some(inj) = injections.get(next_injection) {
            if inj.time.clamp(opts.t_start, opts.t_end) <= t + 1e-12 {
                x[inj.species.index()] += inj.amount;
                next_injection += 1;
                injected = true;
            } else {
                break;
            }
        }
        if injected {
            trace.push(t, &x);
        }

        // Re-evaluate the automatic partition on schedule (and after
        // injections, whose jumps can shift the regime).
        if auto && (t + 1e-12 >= next_repart || injected) {
            while next_repart <= t + 1e-12 {
                next_repart += repart_dt;
            }
            if auto_partition(
                compiled,
                &work.paired,
                &x,
                opts.discreteness_threshold,
                &fast,
                &mut fresh_mask,
            ) {
                std::mem::swap(&mut fast, &mut fresh_mask);
                fast_count = fast.iter().filter(|&&f| f).count();
                metrics.hybrid_repartitions += 1;
            }
        }
    }

    // Flush the work counters even on failure: an interrupted or
    // step-limited run still reports what it cost.
    metrics.final_time = t;
    metrics.lu_factorizations = work.factorizations() - lu_before;
    SimMetrics::flush(opts.metrics, metrics);

    if let Some(e) = failure {
        return Err(e);
    }
    trace.push(t, &x);
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimMethod, SimSpec, Simulation};
    use std::cell::Cell;

    fn state_of(crn: &Crn, pairs: &[(&str, f64)]) -> State {
        let mut init = State::new(crn);
        for (name, v) in pairs {
            init.set(crn.find_species(name).expect("species"), *v);
        }
        init
    }

    /// The stiff clocked motif of experiments E13/E14: a reversible fast
    /// clock pair feeding a rare computation step.
    fn stiff_clock() -> (Crn, State) {
        let crn: Crn = "0 -> R @10000\nR + X -> X @100\nX -> Y @0.01"
            .parse()
            .expect("parses");
        let init = state_of(&crn, &[("X", 100.0)]);
        (crn, init)
    }

    #[test]
    fn reverse_pair_candidates_found_on_the_clock_motif() {
        let (crn, _) = stiff_clock();
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let paired = find_reverse_pairs(&compiled);
        assert_eq!(paired[0], Some(1));
        assert_eq!(paired[1], Some(0));
        assert_eq!(paired[2], None);
    }

    #[test]
    fn empty_fast_partition_is_bit_identical_to_pure_ssa() {
        let crn: Crn = "X -> Y @slow\nY -> 0 @slow".parse().expect("parses");
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let init = state_of(&crn, &[("X", 40.0)]);
        for seed in [0u64, 7, 1234] {
            let mask = vec![false; compiled.reaction_count()];
            let hybrid = Simulation::new(&crn, &compiled)
                .init(&init)
                .options(
                    HybridOptions::default()
                        .with_t_end(5.0)
                        .with_seed(seed)
                        .with_partition(&mask),
                )
                .run()
                .expect("hybrid run");
            let ssa = Simulation::new(&crn, &compiled)
                .init(&init)
                .options(crate::SsaOptions::default().with_t_end(5.0).with_seed(seed))
                .run()
                .expect("ssa run");
            assert_eq!(hybrid, ssa, "seed {seed}");
        }
    }

    #[test]
    fn no_reversible_candidates_auto_delegates_to_ssa() {
        // an irreversible cascade has no reverse pairs: auto mode must be
        // bit-identical to SSA without any override
        let crn: Crn = "X -> Y @slow\nY -> Z @slow".parse().expect("parses");
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let init = state_of(&crn, &[("X", 30.0)]);
        let hybrid = Simulation::new(&crn, &compiled)
            .init(&init)
            .options(HybridOptions::default().with_t_end(4.0).with_seed(11))
            .run()
            .expect("hybrid run");
        let ssa = Simulation::new(&crn, &compiled)
            .init(&init)
            .options(crate::SsaOptions::default().with_t_end(4.0).with_seed(11))
            .run()
            .expect("ssa run");
        assert_eq!(hybrid, ssa);
    }

    #[test]
    fn all_fast_partition_matches_ode_within_tolerance() {
        // a reversible unimolecular pair: the combinatorial propensity
        // equals the mass-action flux exactly, so all-fast hybrid solves
        // the same ODE as the deterministic integrator
        let crn: Crn = "X -> Y @fast\nY -> X @slow".parse().expect("parses");
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let init = state_of(&crn, &[("X", 200.0)]);
        let mask = vec![true; compiled.reaction_count()];
        let hybrid = Simulation::new(&crn, &compiled)
            .init(&init)
            .options(
                HybridOptions::default()
                    .with_t_end(2.0)
                    .with_partition(&mask),
            )
            .run()
            .expect("hybrid run");
        let ode = Simulation::new(&crn, &compiled)
            .init(&init)
            .options(crate::OdeOptions::default().with_t_end(2.0))
            .run()
            .expect("ode run");
        let y = crn.find_species("Y").expect("species");
        for &tq in &[0.5, 1.0, 1.5, 2.0] {
            let a = hybrid.value_at(y, tq);
            let b = ode.value_at(y, tq);
            assert!(
                (a - b).abs() <= 1e-3 * b.abs().max(1.0),
                "t={tq}: hybrid {a} vs ode {b}"
            );
        }
    }

    #[test]
    fn same_seed_same_trace() {
        let (crn, init) = stiff_clock();
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let opts = HybridOptions::default().with_t_end(2.0).with_seed(42);
        let run = || {
            Simulation::new(&crn, &compiled)
                .init(&init)
                .options(opts)
                .run()
                .expect("hybrid run")
        };
        assert_eq!(run(), run());
        // and through a recycled workspace
        let mut ws = OdeWorkspace::new();
        let a = Simulation::new(&crn, &compiled)
            .init(&init)
            .options(opts)
            .workspace(&mut ws)
            .run()
            .expect("hybrid run");
        let b = Simulation::new(&crn, &compiled)
            .init(&init)
            .options(opts)
            .workspace(&mut ws)
            .run()
            .expect("hybrid run");
        assert_eq!(a, b);
        assert_eq!(a, run());
    }

    #[test]
    fn auto_partition_routes_the_clock_to_the_ode_side() {
        let (crn, init) = stiff_clock();
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let hybrid_sink = Cell::new(SimMetrics::default());
        let ssa_sink = Cell::new(SimMetrics::default());
        Simulation::new(&crn, &compiled)
            .init(&init)
            .options(
                HybridOptions::default()
                    .with_t_end(0.5)
                    .with_record_interval(0.05)
                    .with_seed(3)
                    .with_metrics(&hybrid_sink),
            )
            .run()
            .expect("hybrid run");
        Simulation::new(&crn, &compiled)
            .init(&init)
            .options(
                crate::SsaOptions::default()
                    .with_t_end(0.5)
                    .with_record_interval(0.05)
                    .with_seed(3)
                    .with_metrics(&ssa_sink),
            )
            .run()
            .expect("ssa run");
        let h = hybrid_sink.get();
        let s = ssa_sink.get();
        assert!(h.hybrid_fast_steps > 0, "clock must integrate as ODE");
        assert!(
            h.ssa_events * 5 <= s.ssa_events,
            "hybrid fired {} discrete events vs {} pure-SSA",
            h.ssa_events,
            s.ssa_events
        );
        assert_eq!(h.ssa_events, h.hybrid_slow_events);
    }

    #[test]
    fn hybrid_tracks_the_clock_mean_and_fires_the_slow_reaction() {
        // R equilibrates at k_in/k_out·X = 10000/(100·100) = 1; over t=10
        // the slow X->Y (rate 0.01·X ≈ 1/time) fires a handful of times.
        let (crn, init) = stiff_clock();
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let trace = Simulation::new(&crn, &compiled)
            .init(&init)
            .options(HybridOptions::default().with_t_end(10.0).with_seed(5))
            .run()
            .expect("hybrid run");
        let r = crn.find_species("R").expect("species");
        let y = crn.find_species("Y").expect("species");
        let r_final = trace.final_state()[r.index()];
        assert!(
            (r_final - 1.0).abs() < 0.3,
            "clock species should sit near its equilibrium 1.0, got {r_final}"
        );
        let y_final = trace.final_state()[y.index()];
        assert!(
            y_final > 0.0 && y_final < 40.0,
            "slow computation should fire a few discrete events, got {y_final}"
        );
        assert_eq!(y_final.fract(), 0.0, "slow firings change Y by integers");
    }

    #[test]
    fn partition_mask_length_is_validated() {
        let (crn, init) = stiff_clock();
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let mask = vec![false; 2]; // network has 3 reactions
        let err = Simulation::new(&crn, &compiled)
            .init(&init)
            .options(HybridOptions::default().with_partition(&mask))
            .run()
            .expect_err("must reject");
        assert!(matches!(
            err,
            SimError::DimensionMismatch {
                supplied: 2,
                expected: 3
            }
        ));
    }

    #[test]
    fn bad_knobs_are_rejected() {
        let (crn, init) = stiff_clock();
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        for opts in [
            HybridOptions::default().with_t_end(f64::NAN),
            HybridOptions::default().with_t_end(0.0),
            HybridOptions::default().with_record_interval(0.0),
            HybridOptions::default().with_rtol(-1.0),
            HybridOptions::default().with_h_max(f64::NAN),
            HybridOptions::default().with_repartition_interval(f64::NAN),
            HybridOptions::default().with_discreteness_threshold(-2.0),
        ] {
            let err = Simulation::new(&crn, &compiled)
                .init(&init)
                .options(opts)
                .run()
                .expect_err("must reject");
            assert!(matches!(err, SimError::BadTimeSpan { .. }), "{opts:?}");
        }
    }

    #[test]
    fn injections_are_applied_and_recorded() {
        let (crn, init) = stiff_clock();
        let x = crn.find_species("X").expect("species");
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let schedule = Schedule::new().inject(1.0, x, 50.0);
        let trace = Simulation::new(&crn, &compiled)
            .init(&init)
            .schedule(&schedule)
            .options(HybridOptions::default().with_t_end(2.0).with_seed(9))
            .run()
            .expect("hybrid run");
        // X only decreases via the slow X->Y; the +50 jump must be visible
        assert!(trace.value_at(x, 1.5) > trace.value_at(x, 0.9) + 40.0);
    }

    #[test]
    fn event_offset_solves_the_trapezoid_quadratic() {
        // constant propensity: plain exponential waiting time
        let s = event_offset(2.0, 2.0, 1.0, 1.0);
        assert!((s - 0.5).abs() < 1e-12);
        // rising propensity from zero: s = sqrt(2·target/slope)
        let s = event_offset(0.0, 4.0, 2.0, 1.0);
        assert!((s - 1.0).abs() < 1e-12);
        // falling propensity: first crossing is before the midpoint slowdown
        let s = event_offset(4.0, 0.0, 2.0, 3.0);
        let integral = 4.0 * s - s * s; // a·s + slope·s²/2 with slope = −2
        assert!((integral - 3.0).abs() < 1e-12);
        assert!(s <= 2.0);
    }

    #[test]
    fn options_accessors_round_trip() {
        let mask = [true, false];
        let opts = HybridOptions::default()
            .with_t_start(1.0)
            .with_t_end(3.0)
            .with_record_interval(0.25)
            .with_h_max(0.5)
            .with_rtol(1e-4)
            .with_atol(1e-7)
            .with_max_steps(100)
            .with_max_events(200)
            .with_seed(17)
            .with_partition(&mask)
            .with_repartition_interval(2.0)
            .with_discreteness_threshold(50.0);
        assert_eq!(opts.t_start(), 1.0);
        assert_eq!(opts.t_end(), 3.0);
        assert_eq!(opts.record_interval(), 0.25);
        assert_eq!(opts.h_max(), 0.5);
        assert_eq!(opts.max_steps(), 100);
        assert_eq!(opts.max_events(), 200);
        assert_eq!(opts.seed(), 17);
        assert_eq!(opts.partition(), Some(&mask[..]));
        assert_eq!(opts.repartition_interval(), 2.0);
        assert_eq!(opts.discreteness_threshold(), 50.0);
        assert!(opts.step_hook().is_none());
        assert!(opts.metrics().is_none());
        assert_eq!(opts, opts);
        assert_ne!(opts, HybridOptions::default());
    }

    #[test]
    fn step_hook_interrupts_deterministically() {
        let (crn, init) = stiff_clock();
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let hook: crate::StepHook = &|count, _t| {
            if count >= 10 {
                ControlFlow::Break("budget".to_string())
            } else {
                ControlFlow::Continue(())
            }
        };
        let err = Simulation::new(&crn, &compiled)
            .init(&init)
            .options(
                HybridOptions::default()
                    .with_t_end(5.0)
                    .with_step_hook(hook),
            )
            .run()
            .expect_err("must interrupt");
        assert!(matches!(err, SimError::Interrupted { .. }));
    }

    #[test]
    fn explicit_hybrid_method_with_default_options_runs() {
        // A pair-free network: the builder's defaults-for-method path must
        // still produce a working run (which delegates wholesale to SSA).
        let crn: Crn = "X -> Y @slow".parse().expect("parses");
        let x = crn.find_species("X").expect("X");
        let mut init = State::new(&crn);
        init.set(x, 20.0);
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());

        let metrics = Cell::new(SimMetrics::default());
        let trace = Simulation::new(&crn, &compiled)
            .init(&init)
            .method(SimMethod::Hybrid)
            .metrics(&metrics)
            .run()
            .expect("runs");
        assert!(trace.len() > 1);
        assert!(metrics.get().ssa_events > 0, "decay events must have fired");
    }
}
