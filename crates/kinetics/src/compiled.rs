//! Compilation of a [`Crn`] into flat arrays for fast simulation.
//!
//! Besides the per-reaction records, compilation precomputes the sparsity
//! structure of the mass-action Jacobian: mass-action CRNs from the
//! synchronous-logic construction are extremely sparse (each reaction
//! touches at most a handful of the tens-to-hundreds of species), so the
//! Jacobian has `O(reactions)` nonzeros rather than `n²`. The pattern is
//! stored CSR-style (`row_ptr`/`col_idx`) together with a flat
//! scatter-slot table that maps every `(reaction, reactant, delta)`
//! contribution to its nonzero slot, letting
//! [`jacobian_sparse`](CompiledCrn::jacobian_sparse) fill only the
//! nonzeros in one pass with no searching.

use crate::SimSpec;
use molseq_crn::{Crn, Rate};

/// `x^s` for the small stoichiometries used in this workspace (1..=3),
/// unrolled into straight multiplies; falls back to `powi` beyond.
#[inline]
pub(crate) fn pow_stoich(x: f64, s: u32) -> f64 {
    match s {
        0 => 1.0,
        1 => x,
        2 => x * x,
        3 => x * x * x,
        _ => x.powi(s as i32),
    }
}

/// `x^(s−1)` for `s ≥ 1`, unrolled like [`pow_stoich`]. Matches
/// `x.powi(s-1)` including the `0^0 = 1` convention at `s = 1`.
#[inline]
fn pow_stoich_minus_one(x: f64, s: u32) -> f64 {
    match s {
        1 => 1.0,
        2 => x,
        3 => x * x,
        _ => x.powi(s as i32 - 1),
    }
}

/// One reaction, flattened: resolved numeric rate, reactant exponents and a
/// sparse net-change (delta) list.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CompiledReaction {
    /// Resolved rate constant (assignment × jitter).
    pub k: f64,
    /// The symbolic rate category `k` was resolved from, kept so a
    /// compiled network can be [re-bound](CompiledCrn::rebind) to a new
    /// [`SimSpec`] without re-walking the reaction structure.
    pub rate: Rate,
    /// `(species index, stoichiometric exponent)` for each distinct reactant.
    pub reactants: Vec<(usize, u32)>,
    /// `(species index, net change)` for each species with nonzero net change.
    pub delta: Vec<(usize, f64)>,
    /// Same deltas as integers, for the stochastic simulator.
    pub delta_int: Vec<(usize, i64)>,
}

/// A [`Crn`] resolved against a [`SimSpec`]: every coarse rate category is a
/// number, every reaction is a flat record. Both simulators consume this.
///
/// Compilation is cheap; it exists so that sweeps which re-simulate the same
/// network under many rate assignments do not re-walk the reaction structure.
///
/// # Examples
///
/// ```
/// use molseq_crn::Crn;
/// use molseq_kinetics::{CompiledCrn, SimSpec};
///
/// let crn: Crn = "X + Y -> Z @fast".parse().unwrap();
/// let compiled = CompiledCrn::new(&crn, &SimSpec::default());
/// assert_eq!(compiled.species_count(), 3);
/// assert_eq!(compiled.reaction_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledCrn {
    species_count: usize,
    /// The source network's [`Crn::structural_hash`], captured at compile
    /// time and preserved by [`rebind`](Self::rebind).
    structural_hash: u64,
    pub(crate) reactions: Vec<CompiledReaction>,
    /// CSR row pointers of the Jacobian sparsity pattern (`n + 1` long).
    jac_row_ptr: Vec<usize>,
    /// CSR column indices, sorted within each row (`nnz` long).
    jac_col_idx: Vec<usize>,
    /// For every `(reaction, reactant jj, delta ii)` contribution — in the
    /// exact iteration order of [`jacobian`](Self::jacobian) — the index of
    /// the nonzero slot it accumulates into.
    jac_slots: Vec<usize>,
}

impl CompiledCrn {
    /// Compiles `crn` under `spec`.
    #[must_use]
    pub fn new(crn: &Crn, spec: &SimSpec) -> Self {
        let reactions: Vec<CompiledReaction> = crn
            .reactions()
            .iter()
            .enumerate()
            .map(|(j, r)| {
                let jitter = spec.jitter().map_or(1.0, |jit| jit.factor(j));
                let k = spec.assignment().value_of(r.rate()) * jitter;
                let reactants: Vec<(usize, u32)> = r
                    .reactants()
                    .iter()
                    .map(|t| (t.species.index(), t.stoich))
                    .collect();
                let mut delta = Vec::new();
                let mut delta_int = Vec::new();
                for s in r.species() {
                    let change = r.net_change(s);
                    if change != 0 {
                        delta.push((s.index(), change as f64));
                        delta_int.push((s.index(), change));
                    }
                }
                CompiledReaction {
                    k,
                    rate: r.rate(),
                    reactants,
                    delta,
                    delta_int,
                }
            })
            .collect();
        let (jac_row_ptr, jac_col_idx, jac_slots) =
            build_jacobian_pattern(crn.species_count(), &reactions);
        CompiledCrn {
            species_count: crn.species_count(),
            structural_hash: crn.structural_hash(),
            reactions,
            jac_row_ptr,
            jac_col_idx,
            jac_slots,
        }
    }

    /// Re-resolves the rate constants against a new `spec`, leaving the
    /// flattened reaction structure untouched.
    ///
    /// This is the cheap path for parameter sweeps: compile the network
    /// once, then `rebind` per sweep cell (new rate assignment and/or new
    /// jitter draw). The result is identical to `CompiledCrn::new` on the
    /// original network with the same `spec`.
    ///
    /// # Examples
    ///
    /// ```
    /// use molseq_crn::{Crn, RateAssignment};
    /// use molseq_kinetics::{CompiledCrn, SimSpec};
    ///
    /// let crn: Crn = "X + Y -> Z @fast".parse().unwrap();
    /// let base = CompiledCrn::new(&crn, &SimSpec::default());
    /// let spec = SimSpec::new(RateAssignment::from_ratio(100.0));
    /// assert_eq!(base.rebind(&spec), CompiledCrn::new(&crn, &spec));
    /// ```
    #[must_use]
    pub fn rebind(&self, spec: &SimSpec) -> Self {
        let mut rebound = self.clone();
        for (j, r) in rebound.reactions.iter_mut().enumerate() {
            let jitter = spec.jitter().map_or(1.0, |jit| jit.factor(j));
            r.k = spec.assignment().value_of(r.rate) * jitter;
        }
        rebound
    }

    /// Number of species (the state-vector length).
    #[must_use]
    pub fn species_count(&self) -> usize {
        self.species_count
    }

    /// The source network's [`Crn::structural_hash`], captured when this
    /// compiled form was built and invariant under
    /// [`rebind`](Self::rebind).
    ///
    /// Two compiled networks with equal hashes came from structurally
    /// identical `Crn`s, so either can serve as the other's compile — this
    /// is the key the cross-request [`CompiledCache`](crate::CompiledCache)
    /// is keyed by.
    #[must_use]
    pub fn structural_hash(&self) -> u64 {
        self.structural_hash
    }

    /// Number of reactions.
    #[must_use]
    pub fn reaction_count(&self) -> usize {
        self.reactions.len()
    }

    /// Deterministic mass-action flux of reaction `j` at state `x`:
    /// `k · Π x_i^stoich_i` (unit volume; no combinatorial factors).
    #[must_use]
    pub fn flux(&self, j: usize, x: &[f64]) -> f64 {
        let r = &self.reactions[j];
        let mut f = r.k;
        for &(i, stoich) in &r.reactants {
            // stoichiometries in this workspace are 1..=3; the unrolled
            // multiply is exact (and matches powi bit-for-bit)
            f *= pow_stoich(x[i], stoich);
        }
        f
    }

    /// Writes the mass-action derivative `dx/dt` into `dx`.
    ///
    /// Concentrations are clamped at zero from below: a species that has
    /// reached zero contributes no flux (the projection the integrators rely
    /// on for stability near the axes).
    ///
    /// # Panics
    ///
    /// Panics if `x` and `dx` are not both `species_count()` long.
    pub fn derivative(&self, x: &[f64], dx: &mut [f64]) {
        assert_eq!(x.len(), self.species_count);
        assert_eq!(dx.len(), self.species_count);
        dx.fill(0.0);
        for r in &self.reactions {
            let mut f = r.k;
            for &(i, stoich) in &r.reactants {
                let xi = x[i].max(0.0);
                f *= pow_stoich(xi, stoich);
            }
            if f == 0.0 {
                continue;
            }
            for &(i, d) in &r.delta {
                dx[i] += d * f;
            }
        }
    }

    /// Writes the analytic Jacobian `J[i][j] = ∂(dx_i/dt)/∂x_j` of the
    /// mass-action derivative into `jac` (row-major, `n × n`).
    ///
    /// Negative concentrations are clamped to zero, consistent with
    /// [`derivative`](Self::derivative).
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `species_count()` long or `jac` is not
    /// `species_count()²` long.
    pub fn jacobian(&self, x: &[f64], jac: &mut [f64]) {
        let n = self.species_count;
        assert_eq!(x.len(), n);
        assert_eq!(jac.len(), n * n);
        jac.fill(0.0);
        for r in &self.reactions {
            // ∂flux/∂x_j = k · s_j · x_j^(s_j−1) · Π_{i≠j} x_i^(s_i)
            for (jj, &(j, s_j)) in r.reactants.iter().enumerate() {
                let mut partial = r.k * f64::from(s_j);
                let xj = x[j].max(0.0);
                partial *= pow_stoich_minus_one(xj, s_j);
                for (ii, &(i, s_i)) in r.reactants.iter().enumerate() {
                    if ii != jj {
                        partial *= pow_stoich(x[i].max(0.0), s_i);
                    }
                }
                if partial == 0.0 {
                    continue;
                }
                for &(i, d) in &r.delta {
                    jac[i * n + j] += d * partial;
                }
            }
        }
    }

    /// Writes the nonzero values of the analytic Jacobian into `vals`,
    /// aligned with the precomputed CSR pattern (`jacobian_nnz()` long,
    /// rows delimited by the pattern's row pointers).
    ///
    /// The accumulation order per nonzero is identical to
    /// [`jacobian`](Self::jacobian), so the two paths agree bit-for-bit:
    /// scattering `vals` through the pattern reproduces the dense matrix
    /// exactly (see [`jacobian_sparse_to_dense`](Self::jacobian_sparse_to_dense)).
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `species_count()` long or `vals` is not
    /// `jacobian_nnz()` long.
    pub fn jacobian_sparse(&self, x: &[f64], vals: &mut [f64]) {
        assert_eq!(x.len(), self.species_count);
        assert_eq!(vals.len(), self.jac_col_idx.len());
        vals.fill(0.0);
        let mut cursor = 0usize;
        for r in &self.reactions {
            for (jj, &(j, s_j)) in r.reactants.iter().enumerate() {
                let mut partial = r.k * f64::from(s_j);
                let xj = x[j].max(0.0);
                partial *= pow_stoich_minus_one(xj, s_j);
                for (ii, &(i, s_i)) in r.reactants.iter().enumerate() {
                    if ii != jj {
                        partial *= pow_stoich(x[i].max(0.0), s_i);
                    }
                }
                if partial == 0.0 {
                    cursor += r.delta.len();
                    continue;
                }
                for &(_, d) in &r.delta {
                    vals[self.jac_slots[cursor]] += d * partial;
                    cursor += 1;
                }
            }
        }
    }

    /// Number of structural nonzeros in the Jacobian sparsity pattern.
    #[must_use]
    pub fn jacobian_nnz(&self) -> usize {
        self.jac_col_idx.len()
    }

    /// Gathers the resolved rate constants of `lanes` into reaction-major,
    /// lane-contiguous layout (`ks[j * width + l]` = reaction `j`'s rate in
    /// lane `l`) — the per-lane parameterization the batched kernels
    /// consume. Every lane must be structurally identical to `self`
    /// (same source network, typically produced by [`rebind`](Self::rebind)).
    pub(crate) fn gather_rates(&self, lanes: &[&CompiledCrn], ks: &mut Vec<f64>) {
        let width = lanes.len();
        ks.clear();
        ks.resize(self.reactions.len() * width, 0.0);
        for (l, lane) in lanes.iter().enumerate() {
            assert_eq!(
                lane.structural_hash, self.structural_hash,
                "batched lanes must share one network structure"
            );
            assert_eq!(lane.reactions.len(), self.reactions.len());
            for (j, r) in lane.reactions.iter().enumerate() {
                ks[j * width + l] = r.k;
            }
        }
    }

    /// Multi-lane [`derivative`](Self::derivative): `x` and `dx` hold
    /// `width` cell states in species-major, lane-contiguous layout
    /// (`x[i * width + l]` = species `i` in lane `l`), `ks` holds the
    /// per-lane rate constants from [`gather_rates`](Self::gather_rates),
    /// and `flux` is a `width`-long scratch buffer.
    ///
    /// Per lane, the arithmetic (including the zero-flux scatter skip) is
    /// performed in exactly the scalar order, so every lane's result is
    /// bit-identical to a scalar `derivative` call on that lane's state.
    pub(crate) fn derivative_batch(&self, ks: &[f64], x: &[f64], dx: &mut [f64], flux: &mut [f64]) {
        // monomorphize the hot widths so the lane loops unroll and
        // vectorize with a compile-time trip count (WDC = 0 keeps one
        // dynamic-width body for everything else)
        match flux.len() {
            2 => self.derivative_batch_impl::<2>(ks, x, dx, flux),
            4 => self.derivative_batch_impl::<4>(ks, x, dx, flux),
            8 => self.derivative_batch_impl::<8>(ks, x, dx, flux),
            16 => self.derivative_batch_impl::<16>(ks, x, dx, flux),
            32 => self.derivative_batch_impl::<32>(ks, x, dx, flux),
            _ => self.derivative_batch_impl::<0>(ks, x, dx, flux),
        }
    }

    #[inline(always)]
    fn derivative_batch_impl<const WDC: usize>(
        &self,
        ks: &[f64],
        x: &[f64],
        dx: &mut [f64],
        flux: &mut [f64],
    ) {
        let width = if WDC == 0 { flux.len() } else { WDC };
        assert_eq!(flux.len(), width);
        assert_eq!(x.len(), self.species_count * width);
        assert_eq!(dx.len(), self.species_count * width);
        assert_eq!(ks.len(), self.reactions.len() * width);
        dx.fill(0.0);
        for (j, r) in self.reactions.iter().enumerate() {
            flux.copy_from_slice(&ks[j * width..(j + 1) * width]);
            for &(i, stoich) in &r.reactants {
                let xi = &x[i * width..(i + 1) * width];
                // hoist the stoichiometry match out of the lane loop so the
                // per-lane multiplies stay straight-line (and bit-identical
                // to the scalar `pow_stoich` forms)
                match stoich {
                    1 => {
                        for (f, &v) in flux.iter_mut().zip(xi) {
                            *f *= v.max(0.0);
                        }
                    }
                    2 => {
                        for (f, &v) in flux.iter_mut().zip(xi) {
                            let c = v.max(0.0);
                            *f *= c * c;
                        }
                    }
                    _ => {
                        for (f, &v) in flux.iter_mut().zip(xi) {
                            *f *= pow_stoich(v.max(0.0), stoich);
                        }
                    }
                }
            }
            // the scalar path skips zero fluxes entirely; when every lane's
            // flux is zero the selects below would all keep old bits, so the
            // scatter is a no-op and can be skipped wholesale
            if flux.iter().all(|&f| f == 0.0) {
                continue;
            }
            for &(i, d) in &r.delta {
                let row = &mut dx[i * width..(i + 1) * width];
                for (acc, &f) in row.iter_mut().zip(flux.iter()) {
                    // the select keeps skipped lanes' bits (±0.0 included)
                    let updated = *acc + d * f;
                    *acc = if f != 0.0 { updated } else { *acc };
                }
            }
        }
    }

    /// Multi-lane [`jacobian_sparse`](Self::jacobian_sparse): writes the
    /// nonzero Jacobian values of `width` lanes into `vals`
    /// (slot-major, lane-contiguous: `vals[s * width + l]`). `partial` is a
    /// `width`-long scratch buffer. Per lane the accumulation order and the
    /// zero-partial skip match the scalar path bit-for-bit.
    pub(crate) fn jacobian_sparse_batch(
        &self,
        ks: &[f64],
        x: &[f64],
        vals: &mut [f64],
        partial: &mut [f64],
    ) {
        match partial.len() {
            2 => self.jacobian_sparse_batch_impl::<2>(ks, x, vals, partial),
            4 => self.jacobian_sparse_batch_impl::<4>(ks, x, vals, partial),
            8 => self.jacobian_sparse_batch_impl::<8>(ks, x, vals, partial),
            16 => self.jacobian_sparse_batch_impl::<16>(ks, x, vals, partial),
            32 => self.jacobian_sparse_batch_impl::<32>(ks, x, vals, partial),
            _ => self.jacobian_sparse_batch_impl::<0>(ks, x, vals, partial),
        }
    }

    #[inline(always)]
    fn jacobian_sparse_batch_impl<const WDC: usize>(
        &self,
        ks: &[f64],
        x: &[f64],
        vals: &mut [f64],
        partial: &mut [f64],
    ) {
        let width = if WDC == 0 { partial.len() } else { WDC };
        assert_eq!(partial.len(), width);
        assert_eq!(x.len(), self.species_count * width);
        assert_eq!(vals.len(), self.jac_col_idx.len() * width);
        vals.fill(0.0);
        let mut cursor = 0usize;
        for (jr, r) in self.reactions.iter().enumerate() {
            for (jj, &(j, s_j)) in r.reactants.iter().enumerate() {
                let xj = &x[j * width..(j + 1) * width];
                let sj = f64::from(s_j);
                for ((p, &k), &v) in partial
                    .iter_mut()
                    .zip(&ks[jr * width..(jr + 1) * width])
                    .zip(xj)
                {
                    *p = k * sj * pow_stoich_minus_one(v.max(0.0), s_j);
                }
                for (ii, &(i, s_i)) in r.reactants.iter().enumerate() {
                    if ii != jj {
                        let xi = &x[i * width..(i + 1) * width];
                        for (p, &v) in partial.iter_mut().zip(xi) {
                            *p *= pow_stoich(v.max(0.0), s_i);
                        }
                    }
                }
                // the scalar path bulk-skips a zero partial; when every
                // lane's partial is zero the scatter is a no-op, so only
                // the cursor needs to advance
                if partial.iter().all(|&p| p == 0.0) {
                    cursor += r.delta.len();
                    continue;
                }
                for &(_, d) in &r.delta {
                    let slot = self.jac_slots[cursor];
                    cursor += 1;
                    let row = &mut vals[slot * width..(slot + 1) * width];
                    for (acc, &p) in row.iter_mut().zip(partial.iter()) {
                        // the select leaves skipped lanes' bits untouched
                        let updated = *acc + d * p;
                        *acc = if p != 0.0 { updated } else { *acc };
                    }
                }
            }
        }
    }

    /// The CSR Jacobian pattern as `(row_ptr, col_idx)`: row `i`'s nonzero
    /// columns are `col_idx[row_ptr[i]..row_ptr[i + 1]]`, sorted ascending.
    #[must_use]
    pub fn jacobian_pattern(&self) -> (&[usize], &[usize]) {
        (&self.jac_row_ptr, &self.jac_col_idx)
    }

    /// Scatters sparse Jacobian values (as written by
    /// [`jacobian_sparse`](Self::jacobian_sparse)) into a dense row-major
    /// `n × n` matrix. Entries outside the pattern are set to zero.
    ///
    /// # Panics
    ///
    /// Panics if `vals` is not `jacobian_nnz()` long or `jac` is not
    /// `species_count()²` long.
    pub fn jacobian_sparse_to_dense(&self, vals: &[f64], jac: &mut [f64]) {
        let n = self.species_count;
        assert_eq!(vals.len(), self.jac_col_idx.len());
        assert_eq!(jac.len(), n * n);
        jac.fill(0.0);
        for i in 0..n {
            for s in self.jac_row_ptr[i]..self.jac_row_ptr[i + 1] {
                jac[i * n + self.jac_col_idx[s]] = vals[s];
            }
        }
    }

    /// Stochastic propensity of reaction `j` at integer copy numbers `n`
    /// (unit volume): `k · Π n_i·(n_i−1)···(n_i−stoich+1) / stoich!`.
    #[must_use]
    pub fn propensity(&self, j: usize, n: &[i64]) -> f64 {
        let r = &self.reactions[j];
        let mut a = r.k;
        for &(i, stoich) in &r.reactants {
            let ni = n[i];
            let mut comb = 1.0;
            for s in 0..i64::from(stoich) {
                comb *= (ni - s) as f64;
            }
            let fact: f64 = (1..=i64::from(stoich)).map(|v| v as f64).product();
            a *= (comb / fact).max(0.0);
        }
        a
    }

    /// Multi-lane [`propensity`](Self::propensity): writes every
    /// reaction's propensity for `width` lanes into `props`
    /// (reaction-major, lane-contiguous: `props[j * width + l]`), reading
    /// integer copy numbers from `n` (species-major, `n[i * width + l]`)
    /// and per-lane rate constants from `ks` (as packed by
    /// [`gather_rates`](Self::gather_rates)). Per lane the factor order —
    /// falling product in ascending `s`, then one multiply by
    /// `(comb / fact).max(0.0)` per reactant — matches the scalar path
    /// bit-for-bit.
    pub(crate) fn propensity_batch(&self, ks: &[f64], n: &[i64], props: &mut [f64], width: usize) {
        match width {
            2 => self.propensity_batch_impl::<2>(ks, n, props, width),
            4 => self.propensity_batch_impl::<4>(ks, n, props, width),
            8 => self.propensity_batch_impl::<8>(ks, n, props, width),
            16 => self.propensity_batch_impl::<16>(ks, n, props, width),
            32 => self.propensity_batch_impl::<32>(ks, n, props, width),
            _ => self.propensity_batch_impl::<0>(ks, n, props, width),
        }
    }

    #[inline(always)]
    fn propensity_batch_impl<const WDC: usize>(
        &self,
        ks: &[f64],
        n: &[i64],
        props: &mut [f64],
        w: usize,
    ) {
        let width = if WDC == 0 { w } else { WDC };
        assert_eq!(n.len(), self.species_count * width);
        assert_eq!(ks.len(), self.reactions.len() * width);
        assert_eq!(props.len(), self.reactions.len() * width);
        for (j, r) in self.reactions.iter().enumerate() {
            let row = &mut props[j * width..(j + 1) * width];
            row.copy_from_slice(&ks[j * width..(j + 1) * width]);
            for &(i, stoich) in &r.reactants {
                let fact: f64 = (1..=i64::from(stoich)).map(|v| v as f64).product();
                let col = &n[i * width..(i + 1) * width];
                for (a, &ni) in row.iter_mut().zip(col) {
                    let mut comb = 1.0;
                    for s in 0..i64::from(stoich) {
                        comb *= (ni - s) as f64;
                    }
                    *a *= (comb / fact).max(0.0);
                }
            }
        }
    }

    /// Continuous extension of [`propensity`](Self::propensity) to real
    /// states: `k · Π_i Π_{s<stoich_i} max(x_i − s, 0) / stoich_i!`.
    ///
    /// At integer states it equals the discrete propensity; between
    /// integers it interpolates the falling factorial with every factor
    /// clamped at zero, which is what the implicit tau-leap Newton solve
    /// iterates on.
    #[must_use]
    pub fn propensity_f(&self, j: usize, x: &[f64]) -> f64 {
        let r = &self.reactions[j];
        let mut a = r.k;
        for &(i, stoich) in &r.reactants {
            a *= falling_factorial(x[i], stoich);
        }
        a
    }

    /// Writes the nonzero values of the propensity Jacobian
    /// `∂(ν·a)_i/∂x_j` (the derivative of the net stochastic drift
    /// `Σ_j ν_j · a_j(x)` in its continuous extension) into `vals`,
    /// aligned with the same CSR pattern as
    /// [`jacobian_sparse`](Self::jacobian_sparse): the pattern is the union
    /// of `(delta species, reactant species)` pairs, which the mass-action
    /// and combinatorial forms share.
    ///
    /// Clamped falling-factorial factors contribute a zero derivative, so
    /// the values are consistent with [`propensity_f`](Self::propensity_f)
    /// everywhere the latter is differentiable.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `species_count()` long or `vals` is not
    /// `jacobian_nnz()` long.
    pub fn propensity_jacobian_sparse(&self, x: &[f64], vals: &mut [f64]) {
        assert_eq!(x.len(), self.species_count);
        assert_eq!(vals.len(), self.jac_col_idx.len());
        vals.fill(0.0);
        let mut cursor = 0usize;
        for r in &self.reactions {
            for (jj, &(j, s_j)) in r.reactants.iter().enumerate() {
                let mut partial = r.k * falling_factorial_derivative(x[j], s_j);
                for (ii, &(i, s_i)) in r.reactants.iter().enumerate() {
                    if ii != jj {
                        partial *= falling_factorial(x[i], s_i);
                    }
                }
                if partial == 0.0 {
                    cursor += r.delta.len();
                    continue;
                }
                for &(_, d) in &r.delta {
                    vals[self.jac_slots[cursor]] += d * partial;
                    cursor += 1;
                }
            }
        }
    }

    /// Writes the combinatorial drift `Σ_j ν_j · a_j(x)` restricted to the
    /// reactions with `include[j]` set into `dx`, using the continuous
    /// propensity extension [`propensity_f`](Self::propensity_f). This is
    /// the right-hand side of the hybrid engine's fast (ODE) subsystem:
    /// only the reactions routed to the continuous side contribute.
    pub(crate) fn propensity_drift_masked(&self, x: &[f64], dx: &mut [f64], include: &[bool]) {
        assert_eq!(x.len(), self.species_count);
        assert_eq!(dx.len(), self.species_count);
        assert_eq!(include.len(), self.reactions.len());
        dx.fill(0.0);
        for (j, r) in self.reactions.iter().enumerate() {
            if !include[j] {
                continue;
            }
            let mut a = r.k;
            for &(i, stoich) in &r.reactants {
                a *= falling_factorial(x[i], stoich);
            }
            if a == 0.0 {
                continue;
            }
            for &(i, d) in &r.delta {
                dx[i] += d * a;
            }
        }
    }

    /// Masked [`propensity_jacobian_sparse`](Self::propensity_jacobian_sparse):
    /// only reactions with `include[j]` set contribute, so the values are
    /// the Jacobian of [`propensity_drift_masked`](Self::propensity_drift_masked)
    /// over the *full* shared CSR pattern (excluded reactions' slots stay
    /// zero — the symbolic factorization built for the full pattern still
    /// applies).
    pub(crate) fn propensity_jacobian_sparse_masked(
        &self,
        x: &[f64],
        vals: &mut [f64],
        include: &[bool],
    ) {
        assert_eq!(x.len(), self.species_count);
        assert_eq!(vals.len(), self.jac_col_idx.len());
        assert_eq!(include.len(), self.reactions.len());
        vals.fill(0.0);
        let mut cursor = 0usize;
        for (jr, r) in self.reactions.iter().enumerate() {
            if !include[jr] {
                cursor += r.reactants.len() * r.delta.len();
                continue;
            }
            for (jj, &(j, s_j)) in r.reactants.iter().enumerate() {
                let mut partial = r.k * falling_factorial_derivative(x[j], s_j);
                for (ii, &(i, s_i)) in r.reactants.iter().enumerate() {
                    if ii != jj {
                        partial *= falling_factorial(x[i], s_i);
                    }
                }
                if partial == 0.0 {
                    cursor += r.delta.len();
                    continue;
                }
                for &(_, d) in &r.delta {
                    vals[self.jac_slots[cursor]] += d * partial;
                    cursor += 1;
                }
            }
        }
    }

    /// The `(species index, stoichiometric exponent)` pairs of reaction
    /// `j`'s reactants — what its propensity depends on.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn reactant_indices(&self, j: usize) -> &[(usize, u32)] {
        &self.reactions[j].reactants
    }

    /// The `(species index, net change)` pairs of reaction `j` — which
    /// species firing it modifies.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn changed_species(&self, j: usize) -> &[(usize, i64)] {
        &self.reactions[j].delta_int
    }

    /// Applies reaction `j` once to integer state `n`, clamping at zero.
    pub(crate) fn fire(&self, j: usize, n: &mut [i64]) {
        for &(i, d) in &self.reactions[j].delta_int {
            n[i] = (n[i] + d).max(0);
        }
    }
}

/// `Π_{s<stoich} max(x − s, 0) / stoich!` — the clamped continuous
/// falling factorial of the combinatorial propensity.
#[inline]
fn falling_factorial(x: f64, stoich: u32) -> f64 {
    let mut comb = 1.0;
    for s in 0..i64::from(stoich) {
        comb *= (x - s as f64).max(0.0);
    }
    let fact: f64 = (1..=i64::from(stoich)).map(|v| v as f64).product();
    comb / fact
}

/// `d/dx` of [`falling_factorial`]: the product rule over the unclamped
/// factors (a factor clamped at zero has derivative zero and kills every
/// other term it appears in).
#[inline]
fn falling_factorial_derivative(x: f64, stoich: u32) -> f64 {
    let mut sum = 0.0;
    for q in 0..i64::from(stoich) {
        if x <= q as f64 {
            continue; // the max(x − q, 0) factor is flat here
        }
        let mut term = 1.0;
        for s in 0..i64::from(stoich) {
            if s != q {
                term *= (x - s as f64).max(0.0);
            }
        }
        sum += term;
    }
    let fact: f64 = (1..=i64::from(stoich)).map(|v| v as f64).product();
    sum / fact
}

/// Builds the CSR Jacobian pattern and the flat scatter-slot table.
///
/// A reaction with reactant `j` and net change on species `i` contributes
/// to `J[i][j]`; the pattern is the union of those `(i, j)` pairs. Slots
/// are emitted in the exact loop order of `CompiledCrn::jacobian`
/// (reaction → reactant `jj` → delta `ii`) so `jacobian_sparse` can walk
/// them with a single cursor.
fn build_jacobian_pattern(
    species_count: usize,
    reactions: &[CompiledReaction],
) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let mut entries: Vec<(usize, usize)> = Vec::new();
    for r in reactions {
        for &(j, _) in &r.reactants {
            for &(i, _) in &r.delta {
                entries.push((i, j));
            }
        }
    }
    entries.sort_unstable();
    entries.dedup();

    let mut row_ptr = vec![0usize; species_count + 1];
    for &(i, _) in &entries {
        row_ptr[i + 1] += 1;
    }
    for i in 0..species_count {
        row_ptr[i + 1] += row_ptr[i];
    }
    let col_idx: Vec<usize> = entries.iter().map(|&(_, j)| j).collect();

    let mut slots = Vec::new();
    for r in reactions {
        for &(j, _) in &r.reactants {
            for &(i, _) in &r.delta {
                let row = &col_idx[row_ptr[i]..row_ptr[i + 1]];
                slots.push(row_ptr[i] + row.partition_point(|&c| c < j));
            }
        }
    }
    (row_ptr, col_idx, slots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use molseq_crn::{JitterSpec, RateAssignment, RateJitter};

    fn network() -> Crn {
        "0 -> r @slow\nX -> Y @slow\n2X -> Z @fast\nC + X -> C + Y @fast"
            .parse()
            .unwrap()
    }

    #[test]
    fn fluxes_follow_mass_action() {
        let crn = network();
        let c = CompiledCrn::new(&crn, &SimSpec::new(RateAssignment::new(10.0, 2.0).unwrap()));
        // species order: r, X, Y, Z, C
        let x = [0.0, 3.0, 0.0, 0.0, 5.0];
        assert_eq!(c.flux(0, &x), 2.0); // zero order, slow
        assert_eq!(c.flux(1, &x), 2.0 * 3.0);
        assert_eq!(c.flux(2, &x), 10.0 * 9.0);
        assert_eq!(c.flux(3, &x), 10.0 * 5.0 * 3.0);
    }

    #[test]
    fn derivative_sums_deltas() {
        let crn: Crn = "X -> Y @slow".parse().unwrap();
        let c = CompiledCrn::new(&crn, &SimSpec::default());
        let x = [2.0, 0.0];
        let mut dx = [0.0, 0.0];
        c.derivative(&x, &mut dx);
        assert_eq!(dx, [-2.0, 2.0]);
    }

    #[test]
    fn catalyst_has_zero_delta() {
        let crn: Crn = "C + X -> C + Y @fast".parse().unwrap();
        let c = CompiledCrn::new(&crn, &SimSpec::default());
        let x = [1.0, 1.0, 0.0]; // C, X, Y
        let mut dx = [0.0; 3];
        c.derivative(&x, &mut dx);
        assert_eq!(dx[0], 0.0);
        assert!(dx[1] < 0.0 && dx[2] > 0.0);
    }

    #[test]
    fn negative_concentrations_contribute_no_flux() {
        let crn: Crn = "X -> Y @slow".parse().unwrap();
        let c = CompiledCrn::new(&crn, &SimSpec::default());
        let x = [-0.5, 0.0];
        let mut dx = [0.0, 0.0];
        c.derivative(&x, &mut dx);
        assert_eq!(dx, [0.0, 0.0]);
    }

    #[test]
    fn propensity_uses_combinations() {
        let crn: Crn = "2X -> Z @fast".parse().unwrap();
        let c = CompiledCrn::new(&crn, &SimSpec::new(RateAssignment::new(2.0, 1.0).unwrap()));
        assert_eq!(c.propensity(0, &[4, 0]), 2.0 * (4.0 * 3.0) / 2.0);
        assert_eq!(c.propensity(0, &[1, 0]), 0.0);
        assert_eq!(c.propensity(0, &[0, 0]), 0.0);
    }

    #[test]
    fn fire_applies_integer_deltas_with_clamp() {
        let crn: Crn = "2X -> Z @fast".parse().unwrap();
        let c = CompiledCrn::new(&crn, &SimSpec::default());
        let mut n = [5i64, 0];
        c.fire(0, &mut n);
        assert_eq!(n, [3, 1]);
    }

    #[test]
    fn rebind_matches_fresh_compile() {
        let crn = network();
        let base = CompiledCrn::new(&crn, &SimSpec::default());
        for ratio in [1.0, 10.0, 1e3, 1e5] {
            let spec = SimSpec::new(RateAssignment::from_ratio(ratio));
            assert_eq!(base.rebind(&spec), CompiledCrn::new(&crn, &spec));
        }
        // jitter draws rebind too
        let jit = RateJitter::sample(&crn, JitterSpec::new(0.3, 4));
        let spec = SimSpec::default().with_jitter(jit);
        assert_eq!(base.rebind(&spec), CompiledCrn::new(&crn, &spec));
        // and rebinding back recovers the original
        assert_eq!(base.rebind(&SimSpec::default()), base);
    }

    #[test]
    fn sparse_jacobian_matches_dense_bitwise() {
        let crn = network();
        let c = CompiledCrn::new(&crn, &SimSpec::new(RateAssignment::new(10.0, 2.0).unwrap()));
        let n = c.species_count();
        for x in [
            vec![0.0, 3.0, 0.0, 0.0, 5.0],
            vec![1.5, 0.25, 7.0, 2.0, 0.0],
            vec![-1.0, 2.0, 3.0, -0.5, 4.0], // clamping must agree too
        ] {
            let mut dense = vec![0.0; n * n];
            c.jacobian(&x, &mut dense);
            let mut vals = vec![0.0; c.jacobian_nnz()];
            c.jacobian_sparse(&x, &mut vals);
            let mut scattered = vec![0.0; n * n];
            c.jacobian_sparse_to_dense(&vals, &mut scattered);
            assert_eq!(dense, scattered, "at x = {x:?}");
        }
    }

    #[test]
    fn pattern_covers_exactly_the_structural_nonzeros() {
        let crn = network();
        let c = CompiledCrn::new(&crn, &SimSpec::default());
        let n = c.species_count();
        let (row_ptr, col_idx) = c.jacobian_pattern();
        assert_eq!(row_ptr.len(), n + 1);
        assert_eq!(*row_ptr.last().unwrap(), col_idx.len());
        // rows sorted, no duplicates
        for i in 0..n {
            let row = &col_idx[row_ptr[i]..row_ptr[i + 1]];
            assert!(row.windows(2).all(|w| w[0] < w[1]), "row {i}: {row:?}");
        }
        // a dense Jacobian at a generic positive state is nonzero only
        // inside the pattern
        let x = vec![1.1, 2.3, 0.7, 1.9, 3.1];
        let mut dense = vec![0.0; n * n];
        c.jacobian(&x, &mut dense);
        for i in 0..n {
            for j in 0..n {
                if dense[i * n + j] != 0.0 {
                    let row = &col_idx[row_ptr[i]..row_ptr[i + 1]];
                    assert!(row.contains(&j), "({i},{j}) outside pattern");
                }
            }
        }
        // sparsity actually pays off on this network
        assert!(c.jacobian_nnz() < n * n);
    }

    #[test]
    fn continuous_propensity_matches_discrete_at_integers() {
        let crn = network();
        let c = CompiledCrn::new(&crn, &SimSpec::new(RateAssignment::new(10.0, 2.0).unwrap()));
        for n in [
            vec![0i64, 3, 0, 0, 5],
            vec![1, 1, 7, 2, 0],
            vec![4, 0, 0, 1, 9],
        ] {
            let x: Vec<f64> = n.iter().map(|&v| v as f64).collect();
            for j in 0..c.reaction_count() {
                assert_eq!(c.propensity_f(j, &x), c.propensity(j, &n), "reaction {j}");
            }
        }
    }

    #[test]
    fn propensity_jacobian_matches_finite_differences() {
        let crn = network();
        let c = CompiledCrn::new(&crn, &SimSpec::new(RateAssignment::new(10.0, 2.0).unwrap()));
        let n = c.species_count();
        let x = vec![1.3, 2.7, 0.4, 1.9, 3.6];
        let mut vals = vec![0.0; c.jacobian_nnz()];
        c.propensity_jacobian_sparse(&x, &mut vals);
        let mut dense = vec![0.0; n * n];
        c.jacobian_sparse_to_dense(&vals, &mut dense);
        // J[i][j] = ∂ drift_i / ∂ x_j, with drift_i = Σ_r ν_ri · a_r(x)
        let drift = |x: &[f64]| {
            let mut d = vec![0.0; n];
            for j in 0..c.reaction_count() {
                let a = c.propensity_f(j, x);
                for &(i, v) in c.changed_species(j) {
                    d[i] += v as f64 * a;
                }
            }
            d
        };
        let h = 1e-6;
        for col in 0..n {
            let mut xp = x.clone();
            xp[col] += h;
            let mut xm = x.clone();
            xm[col] -= h;
            let (dp, dm) = (drift(&xp), drift(&xm));
            for row in 0..n {
                let fd = (dp[row] - dm[row]) / (2.0 * h);
                assert!(
                    (dense[row * n + col] - fd).abs() < 1e-4 * (1.0 + fd.abs()),
                    "({row},{col}): analytic {} vs fd {fd}",
                    dense[row * n + col]
                );
            }
        }
    }

    #[test]
    fn pattern_survives_rebind() {
        let crn = network();
        let base = CompiledCrn::new(&crn, &SimSpec::default());
        let spec = SimSpec::new(RateAssignment::from_ratio(1e4));
        let rebound = base.rebind(&spec);
        assert_eq!(base.jacobian_pattern(), rebound.jacobian_pattern());
        assert_eq!(base.jacobian_nnz(), rebound.jacobian_nnz());
    }

    #[test]
    fn jitter_scales_rates() {
        let crn: Crn = "X -> Y @slow".parse().unwrap();
        let jit = RateJitter::from_multipliers(vec![3.0]);
        let spec = SimSpec::new(RateAssignment::new(10.0, 2.0).unwrap()).with_jitter(jit);
        let c = CompiledCrn::new(&crn, &spec);
        assert_eq!(c.flux(0, &[1.0, 0.0]), 6.0);
        // determinism of sampled jitter is covered in molseq-crn; here just
        // check that a sampled jitter threads through.
        let sampled = RateJitter::sample(&crn, JitterSpec::new(0.5, 9));
        let spec2 = SimSpec::default().with_jitter(sampled.clone());
        let c2 = CompiledCrn::new(&crn, &spec2);
        assert!((c2.reactions[0].k - sampled.factor(0)).abs() < 1e-12);
    }
}
