//! The next-reaction method (Gibson–Bruck) — an exact stochastic
//! simulator that scales to large networks.
//!
//! Gillespie's direct method recomputes every propensity after every
//! event: `O(M)` work per event. The next-reaction method keeps a tentative
//! firing time for every reaction in an indexed priority queue and, after
//! an event, updates only the reactions whose propensities actually changed
//! (those sharing a species with the fired reaction, via a precomputed
//! dependency graph): `O(D log M)` per event, where `D` is the dependency
//! degree. The two methods sample the same distribution; the engine
//! benchmarks compare their throughput.

use crate::compiled::CompiledCrn;
use crate::events::TriggerRuntime;
use crate::metrics::SimMetrics;
use crate::{Schedule, SimError, SsaOptions, State, Trace};
use molseq_crn::Crn;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::ops::ControlFlow;

/// An indexed binary min-heap over `(time, reaction)`, supporting
/// decrease/increase-key by reaction index.
struct IndexedHeap {
    /// heap[i] = reaction index
    heap: Vec<usize>,
    /// position[reaction] = index into `heap`
    position: Vec<usize>,
    /// tentative firing time per reaction
    time: Vec<f64>,
}

impl IndexedHeap {
    fn new(times: Vec<f64>) -> Self {
        let m = times.len();
        let mut h = IndexedHeap {
            heap: (0..m).collect(),
            position: (0..m).collect(),
            time: times,
        };
        for i in (0..m / 2).rev() {
            h.sift_down(i);
        }
        h
    }

    fn min(&self) -> Option<(f64, usize)> {
        self.heap.first().map(|&r| (self.time[r], r))
    }

    fn update(&mut self, reaction: usize, new_time: f64) {
        let old = self.time[reaction];
        self.time[reaction] = new_time;
        let pos = self.position[reaction];
        if new_time < old {
            self.sift_up(pos);
        } else {
            self.sift_down(pos);
        }
    }

    fn sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.time[self.heap[pos]] < self.time[self.heap[parent]] {
                self.swap(pos, parent);
                pos = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut pos: usize) {
        let len = self.heap.len();
        loop {
            let left = 2 * pos + 1;
            let right = 2 * pos + 2;
            let mut smallest = pos;
            if left < len && self.time[self.heap[left]] < self.time[self.heap[smallest]] {
                smallest = left;
            }
            if right < len && self.time[self.heap[right]] < self.time[self.heap[smallest]] {
                smallest = right;
            }
            if smallest == pos {
                break;
            }
            self.swap(pos, smallest);
            pos = smallest;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.position[self.heap[a]] = a;
        self.position[self.heap[b]] = b;
    }
}

/// Builds the reaction dependency graph: `deps[j]` lists the reactions
/// whose propensity can change when reaction `j` fires (including `j`
/// itself).
fn dependency_graph(compiled: &CompiledCrn) -> Vec<Vec<usize>> {
    let m = compiled.reaction_count();
    let n = compiled.species_count();
    // species → reactions that read it
    let mut readers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for j in 0..m {
        for &(i, _) in compiled.reactant_indices(j) {
            readers[i].push(j);
        }
    }
    (0..m)
        .map(|j| {
            let mut deps: Vec<usize> = compiled
                .changed_species(j)
                .iter()
                .flat_map(|&(i, _)| readers[i].iter().copied())
                .collect();
            deps.push(j);
            deps.sort_unstable();
            deps.dedup();
            deps
        })
        .collect()
}

/// Validated entry point over a precompiled network: what the
/// [`Simulation`](crate::Simulation) builder dispatches to for
/// [`SimMethod::Nrm`](crate::SimMethod::Nrm).
pub(crate) fn run_nrm(
    crn: &Crn,
    compiled: &CompiledCrn,
    init: &State,
    schedule: &Schedule,
    opts: &SsaOptions,
) -> Result<Trace, SimError> {
    if compiled.species_count() != crn.species_count() {
        return Err(SimError::DimensionMismatch {
            supplied: compiled.species_count(),
            expected: crn.species_count(),
        });
    }
    if init.len() != crn.species_count() {
        return Err(SimError::DimensionMismatch {
            supplied: init.len(),
            expected: crn.species_count(),
        });
    }
    if !opts.t_start().is_finite() || !opts.t_end().is_finite() || opts.t_end() <= opts.t_start() {
        return Err(SimError::BadTimeSpan {
            t_start: opts.t_start(),
            t_end: opts.t_end(),
        });
    }

    let mut stats = SimMetrics {
        seed: opts.seed(),
        final_time: opts.t_start(),
        ..SimMetrics::default()
    };
    let result = nrm_core(crn, compiled, init, schedule, opts, &mut stats);
    // flush even on failure: an interrupted or step-limited run still
    // reports the work it did
    SimMetrics::flush(opts.metrics(), stats);
    result
}

// Zero-propensity audit note: unlike the direct method's prefix-sum scan
// (see `crate::ssa::select_reaction`), the next-reaction method cannot
// select a zero-propensity reaction by round-off — a reaction with zero
// propensity is assigned an *infinite* tentative time, and the heap
// minimum is compared against the finite stop time before firing.
fn nrm_core(
    crn: &Crn,
    compiled: &CompiledCrn,
    init: &State,
    schedule: &Schedule,
    opts: &SsaOptions,
    stats: &mut SimMetrics,
) -> Result<Trace, SimError> {
    let mut n: Vec<i64> = Vec::with_capacity(init.len());
    for &v in init.as_slice() {
        n.push(crate::ssa::to_count(v)?);
    }
    let m = compiled.reaction_count();
    let deps = dependency_graph(compiled);
    let mut rng = StdRng::seed_from_u64(opts.seed());
    let mut t = opts.t_start();
    let mut trace = Trace::new(crn);
    let mut f64_state: Vec<f64> = n.iter().map(|&v| v as f64).collect();
    trace.push(t, &f64_state);
    let mut triggers = TriggerRuntime::new(schedule, &f64_state);

    let draw = |rng: &mut StdRng, a: f64, now: f64| -> f64 {
        if a > 0.0 {
            let u: f64 = 1.0 - rng.random::<f64>();
            now - u.ln() / a
        } else {
            f64::INFINITY
        }
    };

    let times: Vec<f64> = (0..m)
        .map(|j| draw(&mut rng, compiled.propensity(j, &n), t))
        .collect();
    let mut heap = IndexedHeap::new(times);

    let injections = schedule.sorted_injections();
    let mut next_injection = 0usize;
    let mut next_record = opts.t_start() + opts.record_interval();
    let mut events = 0usize;

    loop {
        let injection_time = injections
            .get(next_injection)
            .map_or(f64::INFINITY, |inj| inj.time);
        let (t_next, reaction) = heap.min().unwrap_or((f64::INFINITY, 0));

        let stop = opts.t_end().min(injection_time);
        if t_next >= stop {
            while next_record <= stop && next_record <= opts.t_end() {
                trace.push(next_record, &f64_state);
                next_record += opts.record_interval();
            }
            t = stop;
            stats.final_time = t;
            if injection_time <= opts.t_end() {
                let inj = &injections[next_injection];
                n[inj.species.index()] += crate::ssa::to_count(inj.amount)?;
                f64_state[inj.species.index()] = n[inj.species.index()] as f64;
                trace.push(t, &f64_state);
                next_injection += 1;
                for fired in triggers.poll(schedule, t, &mut f64_state) {
                    trace.push_mark(t, fired);
                    crate::ssa::sync_back(&mut n, &f64_state)?;
                }
                // all propensities may have changed
                for j in 0..m {
                    let a = compiled.propensity(j, &n);
                    heap.update(j, draw(&mut rng, a, t));
                }
                continue;
            }
            break;
        }

        if events >= opts.max_events() {
            return Err(SimError::StepLimitExceeded {
                reached: t,
                t_end: opts.t_end(),
                max_steps: opts.max_events(),
            });
        }
        events += 1;
        stats.ssa_events = events as u64;
        if let Some(hook) = opts.step_hook() {
            if let ControlFlow::Break(reason) = hook(events as u64, t) {
                return Err(SimError::Interrupted { time: t, reason });
            }
        }
        while next_record <= t_next && next_record <= opts.t_end() {
            trace.push(next_record, &f64_state);
            next_record += opts.record_interval();
        }
        t = t_next;
        stats.final_time = t;
        compiled.fire(reaction, &mut n);
        for &(i, _) in compiled.changed_species(reaction) {
            f64_state[i] = n[i] as f64;
        }
        for &dep in &deps[reaction] {
            let a = compiled.propensity(dep, &n);
            heap.update(dep, draw(&mut rng, a, t));
        }
        if !schedule.triggers().is_empty() {
            for fired in triggers.poll(schedule, t, &mut f64_state) {
                trace.push_mark(t, fired);
                trace.push(t, &f64_state);
                crate::ssa::sync_back(&mut n, &f64_state)?;
                for j in 0..m {
                    let a = compiled.propensity(j, &n);
                    heap.update(j, draw(&mut rng, a, t));
                }
            }
        }
    }

    trace.push(t, &f64_state);
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimSpec;
    use molseq_crn::RateAssignment;

    /// Builder-backed stand-in for the deprecated free function (shadows
    /// any glob import), keeping every test on the new entry point.
    fn simulate_nrm(
        crn: &Crn,
        init: &State,
        schedule: &Schedule,
        opts: &SsaOptions,
        spec: &SimSpec,
    ) -> Result<Trace, SimError> {
        let compiled = CompiledCrn::new(crn, spec);
        crate::sim::Simulation::new(crn, &compiled)
            .init(init)
            .schedule(schedule)
            .method(crate::sim::SimMethod::Nrm)
            .options(*opts)
            .run()
    }

    /// Builder-backed direct-method run, for the cross-method statistics
    /// comparison below.
    fn simulate_ssa(
        crn: &Crn,
        init: &State,
        schedule: &Schedule,
        opts: &SsaOptions,
        spec: &SimSpec,
    ) -> Result<Trace, SimError> {
        let compiled = CompiledCrn::new(crn, spec);
        crate::sim::Simulation::new(crn, &compiled)
            .init(init)
            .schedule(schedule)
            .options(*opts)
            .run()
    }

    #[test]
    fn heap_orders_and_updates() {
        let mut h = IndexedHeap::new(vec![5.0, 1.0, 3.0]);
        assert_eq!(h.min(), Some((1.0, 1)));
        h.update(1, 10.0);
        assert_eq!(h.min(), Some((3.0, 2)));
        h.update(0, 0.5);
        assert_eq!(h.min(), Some((0.5, 0)));
    }

    #[test]
    fn dependency_graph_links_shared_species() {
        let crn: Crn = "A -> B @slow\nB -> C @slow\nC + A -> 0 @fast"
            .parse()
            .unwrap();
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let deps = dependency_graph(&compiled);
        // firing r0 (A->B) changes A and B: affects r0, r1 (reads B), r2 (reads A)
        assert_eq!(deps[0], vec![0, 1, 2]);
        // firing r1 (B->C) changes B and C: affects r0? no (r0 reads A only)
        assert_eq!(deps[1], vec![1, 2]);
    }

    #[test]
    fn conserves_mass_like_the_direct_method() {
        let crn: Crn = "X -> Y @slow\nY -> X @slow".parse().unwrap();
        let x = crn.find_species("X").unwrap();
        let mut init = State::new(&crn);
        init.set(x, 100.0);
        let opts = SsaOptions::default().with_t_end(20.0).with_seed(4);
        let trace =
            simulate_nrm(&crn, &init, &Schedule::new(), &opts, &SimSpec::default()).unwrap();
        for i in 0..trace.len() {
            assert_eq!(trace.state(i)[0] + trace.state(i)[1], 100.0);
        }
    }

    #[test]
    fn matches_direct_method_statistics() {
        // X -> 0 at k=1: mean survivors after t=1 is N/e for both methods
        let crn: Crn = "X -> 0 @slow".parse().unwrap();
        let x = crn.find_species("X").unwrap();
        let n0 = 2_000.0;
        let mut init = State::new(&crn);
        init.set(x, n0);
        let expected = n0 / std::f64::consts::E;

        let mut nrm_sum = 0.0;
        let mut ssa_sum = 0.0;
        let runs = 8;
        for seed in 0..runs {
            let opts = SsaOptions::default().with_t_end(1.0).with_seed(seed);
            nrm_sum += simulate_nrm(&crn, &init, &Schedule::new(), &opts, &SimSpec::default())
                .unwrap()
                .final_state()[x.index()];
            ssa_sum += simulate_ssa(&crn, &init, &Schedule::new(), &opts, &SimSpec::default())
                .unwrap()
                .final_state()[x.index()];
        }
        let nrm_mean = nrm_sum / f64::from(runs as u32);
        let ssa_mean = ssa_sum / f64::from(runs as u32);
        assert!(
            (nrm_mean - expected).abs() < 60.0,
            "nrm {nrm_mean} vs {expected}"
        );
        assert!(
            (ssa_mean - expected).abs() < 60.0,
            "ssa {ssa_mean} vs {expected}"
        );
    }

    #[test]
    fn injections_trigger_redraws() {
        let crn: Crn = "X -> Y @fast".parse().unwrap();
        let x = crn.find_species("X").unwrap();
        let y = crn.find_species("Y").unwrap();
        let schedule = Schedule::new().inject(5.0, x, 50.0);
        let opts = SsaOptions::default().with_t_end(20.0).with_seed(9);
        let trace = simulate_nrm(
            &crn,
            &State::new(&crn),
            &schedule,
            &opts,
            &SimSpec::new(RateAssignment::default()),
        )
        .unwrap();
        assert!(trace.value_at(y, 4.9) < 1e-9);
        assert_eq!(trace.final_state()[y.index()], 50.0);
    }

    #[test]
    fn step_hook_interrupts_event_loop() {
        let crn: Crn = "X -> Y @slow\nY -> X @slow".parse().unwrap();
        let x = crn.find_species("X").unwrap();
        let mut init = State::new(&crn);
        init.set(x, 1000.0);
        let hook = |events: u64, _t: f64| {
            if events > 40 {
                ControlFlow::Break("budget".to_owned())
            } else {
                ControlFlow::Continue(())
            }
        };
        let opts = SsaOptions::default()
            .with_t_end(1000.0)
            .with_seed(8)
            .with_step_hook(&hook);
        let err =
            simulate_nrm(&crn, &init, &Schedule::new(), &opts, &SimSpec::default()).unwrap_err();
        assert!(
            matches!(err, SimError::Interrupted { ref reason, .. } if reason == "budget"),
            "{err:?}"
        );
    }

    #[test]
    fn metrics_report_events() {
        use std::cell::Cell;

        let crn: Crn = "X -> Y @slow".parse().unwrap();
        let x = crn.find_species("X").unwrap();
        let mut init = State::new(&crn);
        init.set(x, 50.0);
        let sink = Cell::new(SimMetrics::default());
        let opts = SsaOptions::default()
            .with_t_end(50.0)
            .with_seed(3)
            .with_metrics(&sink);
        simulate_nrm(&crn, &init, &Schedule::new(), &opts, &SimSpec::default()).unwrap();
        let m = sink.get();
        assert_eq!(m.ssa_events, 50);
        assert_eq!(m.seed, 3);
        assert_eq!(m.final_time, 50.0);
    }

    #[test]
    fn rejects_fractional_counts() {
        let crn: Crn = "X -> 0 @slow".parse().unwrap();
        let x = crn.find_species("X").unwrap();
        let mut init = State::new(&crn);
        init.set(x, 0.5);
        assert!(matches!(
            simulate_nrm(
                &crn,
                &init,
                &Schedule::new(),
                &SsaOptions::default(),
                &SimSpec::default()
            ),
            Err(SimError::NonIntegerAmount { .. })
        ));
    }
}
