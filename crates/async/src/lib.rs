//! # molseq-async — self-timed sequential computation with molecular
//! reactions
//!
//! The companion scheme to `molseq-sync` (IWBDA 2011): the same three-color
//! phase machinery, but **no clock ring**. Transfers are synchronized only
//! by the shared absence indicators — "a multi-phase handshaking protocol
//! that transfers quantities between molecular types based on the absence
//! of other types". The rotation advances exactly as fast as the data
//! allows: a phase completes the moment its last molecule has moved, and
//! the system idles (cheaply) once all quantity has drained to the output.
//!
//! The contrast with the clocked framework is the subject of experiment
//! E9: a clocked pipeline pays the full token-transfer time every phase of
//! every cycle, whether or not the datapath holds data, while a self-timed
//! chain's latency scales only with its own occupancy.
//!
//! The main type is [`AsyncPipeline`]: a chain of delay elements with an
//! optional scaling operation on each hop, fed one *wavefront* at a time.
//! Because the output sink is outside the color system, the chain returns
//! to the all-empty state after each wavefront and can accept the next —
//! self-timed streaming.
//!
//! ## Example
//!
//! ```
//! use molseq_async::{AsyncPipeline, HopOp};
//! use molseq_sync::SchemeConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A two-stage pipeline that halves on its final hop: y = x / 2.
//! let pipe = AsyncPipeline::build(
//!     SchemeConfig::default(),
//!     &[HopOp::Identity, HopOp::Scale { p: 1, q: 2 }],
//! )?;
//! let latency = pipe.measure_latency(40.0, &Default::default())?;
//! assert!(latency.output_value > 19.0 && latency.output_value < 21.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use molseq_crn::{Crn, SpeciesId};
use molseq_kinetics::{
    CompiledCrn, MetricsSink, OdeOptions, Schedule, SimSpec, Simulation, State, StepHook, Trace,
};
use molseq_sync::{Color, SchemeBuilder, SchemeConfig, SyncError};

/// The arithmetic applied to a quantity on one hop of the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopOp {
    /// Pass the quantity through unchanged.
    Identity,
    /// Multiply the quantity by `p/q` (with `q ∈ 1..=3`), implemented as a
    /// fast pairing reaction in the blue stage of the element.
    Scale {
        /// Numerator.
        p: u32,
        /// Denominator.
        q: u32,
    },
}

impl HopOp {
    /// The rational this op multiplies by.
    #[must_use]
    pub fn factor(self) -> f64 {
        match self {
            HopOp::Identity => 1.0,
            HopOp::Scale { p, q } => f64::from(p) / f64::from(q),
        }
    }
}

/// Result of a latency measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Latency {
    /// Time at which the output first reached 95% of its final value.
    pub t95: f64,
    /// The output value at the end of the run.
    pub output_value: f64,
}

/// Result of a streaming throughput measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Throughput {
    /// Sustained time per wavefront.
    pub period: f64,
    /// Total quantity delivered to the output across all wavefronts.
    pub delivered: f64,
}

/// Options for latency measurement.
#[derive(Clone)]
pub struct MeasureConfig<'h> {
    /// Kinetic interpretation.
    pub spec: SimSpec,
    /// Time horizon.
    pub t_end: f64,
    /// Optional cooperative interruption hook, forwarded to the
    /// integrator (see [`molseq_kinetics::StepHook`]). Lets a sweep meter
    /// a measurement's steps against its budget.
    pub step_hook: Option<StepHook<'h>>,
    /// Optional metrics sink, forwarded to the integrator (see
    /// [`molseq_kinetics::SimMetrics`]).
    pub metrics: Option<MetricsSink<'h>>,
}

impl std::fmt::Debug for MeasureConfig<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MeasureConfig")
            .field("spec", &self.spec)
            .field("t_end", &self.t_end)
            .field("step_hook", &self.step_hook.map(|_| "<hook>"))
            .field("metrics", &self.metrics.map(|_| "<sink>"))
            .finish()
    }
}

impl PartialEq for MeasureConfig<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.spec == other.spec
            && self.t_end == other.t_end
            && match (self.step_hook, other.step_hook) {
                (None, None) => true,
                (Some(a), Some(b)) => {
                    std::ptr::eq(a as *const _ as *const (), b as *const _ as *const ())
                }
                _ => false,
            }
            && match (self.metrics, other.metrics) {
                (None, None) => true,
                (Some(a), Some(b)) => std::ptr::eq(a, b),
                _ => false,
            }
    }
}

impl Default for MeasureConfig<'_> {
    fn default() -> Self {
        MeasureConfig {
            spec: SimSpec::default(),
            t_end: 400.0,
            step_hook: None,
            metrics: None,
        }
    }
}

impl<'h> MeasureConfig<'h> {
    /// The integrator options this measurement corresponds to: horizon,
    /// recording interval, and the optional hook/sink forwarded through.
    fn ode_options(&self) -> OdeOptions<'h> {
        let mut opts = OdeOptions::default()
            .with_t_end(self.t_end)
            .with_record_interval(0.1);
        if let Some(hook) = self.step_hook {
            opts = opts.with_step_hook(hook);
        }
        if let Some(sink) = self.metrics {
            opts = opts.with_metrics(sink);
        }
        opts
    }
}

/// A self-timed pipeline of delay elements, one [`HopOp`] per element.
///
/// Structure (for `n` elements): input `X` enters as a blue species; each
/// element `i` owns `R(i)/G(i)/B(i)`; hop `i`'s op is applied within the
/// blue stage of element `i`; the final hop commits into the uncolored
/// accumulator `Y`.
#[derive(Debug, Clone)]
pub struct AsyncPipeline {
    crn: Crn,
    input: SpeciesId,
    elements: Vec<[SpeciesId; 3]>,
    output: SpeciesId,
    ops: Vec<HopOp>,
}

impl AsyncPipeline {
    /// Builds a pipeline with one element per entry of `ops`.
    ///
    /// # Errors
    ///
    /// * [`SyncError::InvalidAmount`] if `ops` is empty.
    /// * [`SyncError::UnsupportedScale`] for a scale with `p = 0`, `q = 0`
    ///   or `q > 3`.
    pub fn build(config: SchemeConfig, ops: &[HopOp]) -> Result<Self, SyncError> {
        if ops.is_empty() {
            return Err(SyncError::InvalidAmount { value: 0.0 });
        }
        for op in ops {
            if let HopOp::Scale { p, q } = *op {
                if p == 0 || q == 0 || q > 3 {
                    return Err(SyncError::UnsupportedScale { p, q });
                }
            }
        }
        let n = ops.len();
        let mut b = SchemeBuilder::new(config);
        let input = b.signal("X", Color::Blue)?;
        let output = b.uncolored("Y");
        // registered lazily: an identity-only pipeline produces no parity
        // leftovers and must not carry an unused species
        let mut waste: Option<SpeciesId> = None;
        let mut elements = Vec::with_capacity(n);
        for i in 1..=n {
            elements.push([
                b.signal(&format!("R{i}"), Color::Red)?,
                b.signal(&format!("G{i}"), Color::Green)?,
                b.signal(&format!("B{i}"), Color::Blue)?,
            ]);
        }

        b.transfer(input, &[(elements[0][0], 1)], "X -> R1")?;
        for (i, op) in ops.iter().enumerate() {
            let [r, g, blue] = elements[i];
            b.transfer(r, &[(g, 1)], &format!("D{} R->G", i + 1))?;
            // the op is applied as the value arrives in blue
            let committed: SpeciesId = match *op {
                HopOp::Identity => {
                    b.transfer(g, &[(blue, 1)], &format!("D{} G->B", i + 1))?;
                    blue
                }
                HopOp::Scale { p, q } => {
                    // the staging species is consumed immediately by the
                    // scaling reaction, so the transfer's feedback keys on
                    // the accumulating post-scale species instead
                    let staging = b.signal(&format!("B{}s", i + 1), Color::Blue)?;
                    b.transfer_sharpened_by(
                        g,
                        &[(staging, 1)],
                        blue,
                        &format!("D{} G->Bs", i + 1),
                    )?;
                    b.fast(
                        &[(staging, q)],
                        &[(blue, p)],
                        &format!("D{} scale {p}/{q}", i + 1),
                    )?;
                    if q > 1 {
                        // parity leak: a lone unpaired molecule would
                        // block the blue indicator forever
                        let w = *waste.get_or_insert_with(|| b.uncolored("waste"));
                        b.gated_drain(staging, w, &format!("D{} parity", i + 1))?;
                    }
                    blue
                }
            };
            if i + 1 < n {
                b.transfer(
                    committed,
                    &[(elements[i + 1][0], 1)],
                    &format!("D{} B->next", i + 1),
                )?;
            } else {
                // the terminal hop leaves the color system
                b.gated_drain(committed, output, &format!("D{} B->Y", i + 1))?;
            }
        }
        debug_assert!(b.stall_risks().is_empty(), "{:?}", b.stall_risks());
        let (crn, _) = b.finish()?;
        Ok(AsyncPipeline {
            crn,
            input,
            elements,
            output,
            ops: ops.to_vec(),
        })
    }

    /// The generated network.
    #[must_use]
    pub fn crn(&self) -> &Crn {
        &self.crn
    }

    /// The blue input species `X`.
    #[must_use]
    pub fn input(&self) -> SpeciesId {
        self.input
    }

    /// The uncolored output accumulator `Y`.
    #[must_use]
    pub fn output(&self) -> SpeciesId {
        self.output
    }

    /// The `[R, G, B]` species of element `i` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn element(&self, i: usize) -> [SpeciesId; 3] {
        self.elements[i]
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Always false for a built pipeline.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// The exact value `Y` should reach for an input `x` (the product of
    /// all hop factors times `x`).
    #[must_use]
    pub fn expected_output(&self, x: f64) -> f64 {
        self.ops.iter().fold(x, |acc, op| acc * op.factor())
    }

    /// Runs one wavefront of size `x` through the pipeline and returns the
    /// full trace.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn run_wavefront(&self, x: f64, config: &MeasureConfig<'_>) -> Result<Trace, SyncError> {
        let mut init = State::new(&self.crn);
        init.set(self.input, x);
        let compiled = CompiledCrn::new(&self.crn, &config.spec);
        let trace = Simulation::new(&self.crn, &compiled)
            .init(&init)
            .options(config.ode_options())
            .run()?;
        Ok(trace)
    }

    /// The dimer-adjusted output series of a trace: `Y + 2·I[Y]`, the
    /// exact accumulated quantity (part of it rides the sharpener dimer in
    /// fast equilibrium).
    #[must_use]
    pub fn output_series(&self, trace: &Trace) -> Vec<f64> {
        let terms = molseq_sync::stored_value_terms(&self.crn, self.output);
        (0..trace.len())
            .map(|i| {
                terms
                    .iter()
                    .map(|&(s, w)| w * trace.state(i)[s.index()])
                    .sum()
            })
            .collect()
    }

    /// Every colored species of the pipeline (elements, staging, input) —
    /// their sum is the in-flight quantity.
    fn in_flight_species(&self) -> Vec<SpeciesId> {
        let mut v = vec![self.input];
        for (i, e) in self.elements.iter().enumerate() {
            v.extend_from_slice(e);
            let staging = format!("B{}s", i + 1);
            if let Some(s) = self.crn.find_species(&staging) {
                v.push(s);
            }
        }
        v
    }

    /// Streams `count` wavefronts of size `x` through the pipeline,
    /// self-timed: each new wavefront is injected the moment the previous
    /// one has drained (in-flight quantity below 2% of `x`). Returns the
    /// sustained period (time per wavefront) and the total delivered
    /// quantity.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors; [`SyncError::InsufficientCycles`] if
    /// fewer than `count` wavefronts completed within the horizon.
    pub fn measure_throughput(
        &self,
        x: f64,
        count: usize,
        config: &MeasureConfig<'_>,
    ) -> Result<Throughput, SyncError> {
        if count == 0 {
            return Err(SyncError::InvalidAmount { value: 0.0 });
        }
        let mut init = State::new(&self.crn);
        init.set(self.input, x);
        let schedule = Schedule::new().trigger(molseq_kinetics::Trigger::inject_queue(
            molseq_kinetics::Condition::SumBelow {
                species: self.in_flight_species(),
                threshold: 0.02 * x,
            },
            self.input,
            vec![x; count - 1],
        ));
        let compiled = CompiledCrn::new(&self.crn, &config.spec);
        let trace = Simulation::new(&self.crn, &compiled)
            .init(&init)
            .schedule(&schedule)
            .options(config.ode_options())
            .run()?;
        let marks = trace.mark_times(0);
        if marks.len() < count - 1 {
            return Err(SyncError::InsufficientCycles {
                requested: count,
                found: marks.len() + 1,
            });
        }
        let series = self.output_series(&trace);
        let delivered = *series.last().unwrap_or(&0.0);
        let period = if count > 1 {
            marks[count - 2] / (count - 1) as f64
        } else {
            f64::NAN
        };
        Ok(Throughput { period, delivered })
    }

    /// Measures the end-to-end latency of one wavefront: the time at which
    /// the output reaches 95% of its final value.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn measure_latency(
        &self,
        x: f64,
        config: &MeasureConfig<'_>,
    ) -> Result<Latency, SyncError> {
        let trace = self.run_wavefront(x, config)?;
        let series = self.output_series(&trace);
        let final_value = *series.last().unwrap_or(&0.0);
        let t95 = molseq_kinetics::crossings(trace.times(), &series, 0.95 * final_value)
            .first()
            .map_or(config.t_end, |c| c.time);
        Ok(Latency {
            t95,
            output_value: final_value,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_pipeline_delivers_everything() {
        let pipe =
            AsyncPipeline::build(SchemeConfig::default(), &[HopOp::Identity, HopOp::Identity])
                .unwrap();
        let latency = pipe
            .measure_latency(80.0, &MeasureConfig::default())
            .unwrap();
        assert!((latency.output_value - 80.0).abs() < 1.0, "{latency:?}");
        assert!(latency.t95 < 100.0, "{latency:?}");
    }

    #[test]
    fn scaling_hops_compose() {
        let pipe = AsyncPipeline::build(
            SchemeConfig::default(),
            &[HopOp::Scale { p: 1, q: 2 }, HopOp::Scale { p: 3, q: 1 }],
        )
        .unwrap();
        assert_eq!(pipe.expected_output(40.0), 60.0);
        let latency = pipe
            .measure_latency(40.0, &MeasureConfig::default())
            .unwrap();
        assert!((latency.output_value - 60.0).abs() < 1.0, "{latency:?}");
    }

    #[test]
    fn latency_grows_with_length() {
        let lat = |n: usize| {
            let ops = vec![HopOp::Identity; n];
            let pipe = AsyncPipeline::build(SchemeConfig::default(), &ops).unwrap();
            pipe.measure_latency(60.0, &MeasureConfig::default())
                .unwrap()
                .t95
        };
        let l1 = lat(1);
        let l4 = lat(4);
        assert!(l4 > l1 * 2.0, "latency must grow: {l1} vs {l4}");
    }

    #[test]
    fn metrics_sink_reports_integrator_work() {
        use molseq_kinetics::SimMetrics;
        let pipe = AsyncPipeline::build(SchemeConfig::default(), &[HopOp::Identity]).unwrap();
        let sink = std::cell::Cell::new(SimMetrics::default());
        let config = MeasureConfig {
            t_end: 50.0,
            metrics: Some(&sink),
            ..MeasureConfig::default()
        };
        pipe.measure_latency(40.0, &config).unwrap();
        let m = sink.get();
        assert!(m.ode_steps_accepted > 0, "{m:?}");
        assert_eq!(m.final_time, 50.0, "{m:?}");
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(AsyncPipeline::build(SchemeConfig::default(), &[]).is_err());
        assert!(
            AsyncPipeline::build(SchemeConfig::default(), &[HopOp::Scale { p: 1, q: 4 }]).is_err()
        );
        assert!(
            AsyncPipeline::build(SchemeConfig::default(), &[HopOp::Scale { p: 0, q: 1 }]).is_err()
        );
    }

    #[test]
    fn accessors_are_consistent() {
        let pipe = AsyncPipeline::build(SchemeConfig::default(), &[HopOp::Identity; 3]).unwrap();
        assert_eq!(pipe.len(), 3);
        assert!(!pipe.is_empty());
        assert_eq!(pipe.element(0).len(), 3);
        assert_eq!(pipe.expected_output(10.0), 10.0);
        assert!(
            pipe.crn().validate().is_empty(),
            "{:?}",
            pipe.crn().validate()
        );
    }

    #[test]
    fn hop_op_factor() {
        assert_eq!(HopOp::Identity.factor(), 1.0);
        assert_eq!(HopOp::Scale { p: 3, q: 2 }.factor(), 1.5);
    }

    #[test]
    fn throughput_streams_wavefronts() {
        let pipe = AsyncPipeline::build(SchemeConfig::default(), &[HopOp::Identity; 2]).unwrap();
        let config = MeasureConfig {
            t_end: 600.0,
            ..MeasureConfig::default()
        };
        let result = pipe.measure_throughput(50.0, 3, &config).unwrap();
        assert!(
            (result.delivered - 150.0).abs() < 2.0,
            "all three wavefronts arrive: {result:?}"
        );
        assert!(
            result.period.is_finite() && result.period > 1.0,
            "{result:?}"
        );
    }

    #[test]
    fn throughput_rejects_zero_count() {
        let pipe = AsyncPipeline::build(SchemeConfig::default(), &[HopOp::Identity]).unwrap();
        assert!(pipe
            .measure_throughput(50.0, 0, &MeasureConfig::default())
            .is_err());
    }

    /// Streaming: after a wavefront drains, a second one can pass.
    #[test]
    fn consecutive_wavefronts_accumulate() {
        let pipe = AsyncPipeline::build(SchemeConfig::default(), &[HopOp::Identity]).unwrap();
        let mut init = State::new(pipe.crn());
        init.set(pipe.input(), 50.0);
        let schedule = Schedule::new().inject(120.0, pipe.input(), 30.0);
        let compiled = CompiledCrn::new(pipe.crn(), &SimSpec::default());
        let trace = Simulation::new(pipe.crn(), &compiled)
            .init(&init)
            .schedule(&schedule)
            .options(
                OdeOptions::default()
                    .with_t_end(300.0)
                    .with_record_interval(0.2),
            )
            .run()
            .unwrap();
        let y = *pipe.output_series(&trace).last().unwrap();
        assert!((y - 80.0).abs() < 1.0, "both wavefronts arrive: {y}");
    }
}
