//! # molseq-dsd — DNA strand-displacement compilation
//!
//! The paper proposes DNA strand displacement (DSD) as the experimental
//! chassis for its reaction schemes, following Soloveichik, Seelig &
//! Winfree (2010): every formal species becomes a free signal strand, and
//! every formal reaction becomes a small cascade of toehold-mediated
//! displacement steps against *fuel* complexes.
//!
//! Since no wet lab is attached to this repository, the compiler plus the
//! shared ODE engine stand in for the chassis (see DESIGN.md): the same
//! simulator runs the abstract network and its compiled DSD image, which
//! is exactly the validation methodology the paper itself uses.
//!
//! ## Translation scheme
//!
//! With fuel concentration `C` (all fuels initialized to `C`) and a
//! maximum displacement rate `q`:
//!
//! * **zero-order** `∅ →ᵏ X`:
//!   `Gᵣ →(k/C) X + Wᵣ` — a fuel that slowly falls apart into the signal.
//! * **unimolecular** `A →ᵏ P…`:
//!   `A + Gᵣ →(k/C) Iᵣ`, then `Iᵣ + Tᵣ →(q) P… + Wᵣ` — effective rate
//!   `k·[A]` while the gate remains near `C`.
//! * **bimolecular** `A + B →ᵏ P…`:
//!   `A + Gᵣ ⇌(β·q/C, q) Hᵣ` (reversible binding holding a fraction
//!   `≈ β` of `A` on the gate), `Hᵣ + B →(k/β) Oᵣ`,
//!   `Oᵣ + Tᵣ →(q) P… + Wᵣ` — effective rate `k·[A]·[B]`.
//!
//! Exact rate calibration à la Soloveichik is unnecessary here: the source
//! constructs are **rate-independent by design**, so the compilation only
//! needs to keep fast reactions fast and slow ones slow, which the scheme
//! above does while preserving the reaction *orders*. The known physical
//! distortions remain visible and measurable: fuels deplete, a `β`
//! fraction of each bimolecular reactant is sequestered on gates, and
//! every reaction gains latency through its cascade — experiment E8
//! quantifies all three.
//!
//! Formal reactions of molecularity ≥ 3 are rejected (no three-body
//! collisions in DNA); build such arithmetic as cascades of molecularity
//! ≤ 2 before compiling.
//!
//! ## Example
//!
//! ```
//! use molseq_crn::{Crn, RateAssignment};
//! use molseq_dsd::{DsdParams, DsdSystem};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let formal: Crn = "A -> B @slow\nA + B -> 0 @fast".parse()?;
//! let dsd = DsdSystem::compile(&formal, RateAssignment::default(), &DsdParams::default())?;
//! // each formal reaction becomes a cascade
//! assert!(dsd.crn().reactions().len() > formal.reactions().len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod domains;

pub use domains::{Complex, Domain, DomainKind, SequenceAssignment, Strand, StrandLibrary};

use molseq_crn::{Crn, CrnError, CrnStats, Rate, RateAssignment, SpeciesId};
use molseq_kinetics::State;
use std::error::Error;
use std::fmt;

/// Errors produced by the compiler.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DsdError {
    /// A formal reaction has molecularity three or higher.
    UnsupportedOrder {
        /// Index of the offending formal reaction.
        reaction: usize,
        /// Its molecularity.
        order: u32,
    },
    /// A parameter was out of range.
    InvalidParameter {
        /// Which parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An error from the network layer.
    Network(CrnError),
}

impl fmt::Display for DsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DsdError::UnsupportedOrder { reaction, order } => write!(
                f,
                "formal reaction {reaction} has molecularity {order}; strand displacement supports at most 2"
            ),
            DsdError::InvalidParameter { name, value } => {
                write!(f, "parameter `{name}` = {value} is out of range")
            }
            DsdError::Network(e) => write!(f, "network error: {e}"),
        }
    }
}

impl Error for DsdError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DsdError::Network(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CrnError> for DsdError {
    fn from(e: CrnError) -> Self {
        DsdError::Network(e)
    }
}

/// Physical parameters of the compilation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DsdParams {
    /// Fuel concentration `C` (gates and translators start here). Must be
    /// large relative to the signal quantities or the gates saturate.
    pub fuel: f64,
    /// Maximum displacement rate constant `q` for the fast cascade steps.
    pub q_max: f64,
    /// Fraction `β` of a bimolecular first reactant held on its gate at
    /// quasi-equilibrium (`0 < β < 1`). Larger `β` speeds the effective
    /// reaction but sequesters more signal.
    pub bind_fraction: f64,
    /// Spurious *leak* rate constant: every gate/translator fuel pair can
    /// fire without a trigger at this (small) rate, producing output from
    /// nothing — the dominant failure mode of real strand-displacement
    /// circuits. `0` (the default) models ideal strands; experiment E11
    /// sweeps it.
    pub leak: f64,
}

impl Default for DsdParams {
    /// `fuel = 10_000`, `q_max = 100`, `β = 0.1`, no leak.
    fn default() -> Self {
        DsdParams {
            fuel: 10_000.0,
            q_max: 100.0,
            bind_fraction: 0.1,
            leak: 0.0,
        }
    }
}

impl DsdParams {
    fn validate(&self) -> Result<(), DsdError> {
        let check = |name: &'static str, v: f64, ok: bool| {
            if ok {
                Ok(())
            } else {
                Err(DsdError::InvalidParameter { name, value: v })
            }
        };
        check("fuel", self.fuel, self.fuel.is_finite() && self.fuel > 0.0)?;
        check(
            "q_max",
            self.q_max,
            self.q_max.is_finite() && self.q_max > 0.0,
        )?;
        check(
            "bind_fraction",
            self.bind_fraction,
            self.bind_fraction > 0.0 && self.bind_fraction < 1.0,
        )?;
        check("leak", self.leak, self.leak.is_finite() && self.leak >= 0.0)?;
        Ok(())
    }
}

/// Size comparison between a formal network and its DSD image
/// (experiment E8's table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DsdCost {
    /// Formal network statistics.
    pub formal: (usize, usize),
    /// Compiled network statistics `(species, reactions)`.
    pub compiled: (usize, usize),
    /// Number of fuel complexes that must be supplied.
    pub fuels: usize,
}

/// A compiled strand-displacement system.
#[derive(Debug, Clone)]
pub struct DsdSystem {
    crn: Crn,
    /// formal species index → compiled signal strand
    signals: Vec<SpeciesId>,
    /// formal species index → intermediates that transiently hold it
    apparent_extra: Vec<Vec<SpeciesId>>,
    fuels: Vec<SpeciesId>,
    params: DsdParams,
    formal_stats: CrnStats,
}

impl DsdSystem {
    /// Compiles a formal network under a numeric rate assignment.
    ///
    /// The compiled network uses only explicit (`Fixed`) rate constants —
    /// the physical displacement rates — so the simulator's rate
    /// assignment no longer applies to it.
    ///
    /// # Errors
    ///
    /// [`DsdError::UnsupportedOrder`] for molecularity ≥ 3;
    /// [`DsdError::InvalidParameter`] for bad parameters.
    pub fn compile(
        formal: &Crn,
        assignment: RateAssignment,
        params: &DsdParams,
    ) -> Result<Self, DsdError> {
        params.validate()?;
        let mut crn = Crn::new();
        // signal strands mirror the formal species names
        let signals: Vec<SpeciesId> = formal
            .species_iter()
            .map(|(_, sp)| crn.species(sp.name()))
            .collect();
        let mut apparent_extra: Vec<Vec<SpeciesId>> = vec![Vec::new(); signals.len()];
        let mut fuels = Vec::new();

        for (j, reaction) in formal.reactions().iter().enumerate() {
            let k = assignment.value_of(reaction.rate());
            let products: Vec<(SpeciesId, u32)> = reaction
                .products()
                .iter()
                .map(|t| (signals[t.species.index()], t.stoich))
                .collect();
            let mut reactants: Vec<(usize, u32)> = reaction
                .reactants()
                .iter()
                .map(|t| (t.species.index(), t.stoich))
                .collect();
            let order = reaction.order();
            match order {
                0 => {
                    // G_j -> products + W_j at rate k / C
                    let g = crn.species(format!("dsd.G{j}"));
                    let w = crn.species(format!("dsd.W{j}"));
                    fuels.push(g);
                    let mut out = products.clone();
                    out.push((w, 1));
                    crn.reaction_labeled(
                        &[(g, 1)],
                        &out,
                        Rate::Fixed(k / params.fuel),
                        format!("dsd r{j} source"),
                    )?;
                }
                1 => {
                    let a = signals[reactants[0].0];
                    let g = crn.species(format!("dsd.G{j}"));
                    let i = crn.species(format!("dsd.I{j}"));
                    let t = crn.species(format!("dsd.T{j}"));
                    let w = crn.species(format!("dsd.W{j}"));
                    fuels.push(g);
                    fuels.push(t);
                    apparent_extra[reactants[0].0].push(i);
                    crn.reaction_labeled(
                        &[(a, 1), (g, 1)],
                        &[(i, 1)],
                        Rate::Fixed(k / params.fuel),
                        format!("dsd r{j} bind"),
                    )?;
                    let mut out = products.clone();
                    out.push((w, 1));
                    crn.reaction_labeled(
                        &[(i, 1), (t, 1)],
                        &out,
                        Rate::Fixed(params.q_max),
                        format!("dsd r{j} translate"),
                    )?;
                    if params.leak > 0.0 {
                        let mut leak_out = products.clone();
                        leak_out.push((w, 1));
                        crn.reaction_labeled(
                            &[(g, 1), (t, 1)],
                            &leak_out,
                            Rate::Fixed(params.leak),
                            format!("dsd r{j} leak"),
                        )?;
                    }
                }
                2 => {
                    // normalize `2A -> …` to reactants [A, A]
                    if reactants.len() == 1 {
                        let (s, _) = reactants[0];
                        reactants = vec![(s, 1), (s, 1)];
                    }
                    let (ai, bi) = (reactants[0].0, reactants[1].0);
                    let a = signals[ai];
                    let b = signals[bi];
                    let g = crn.species(format!("dsd.G{j}"));
                    let h = crn.species(format!("dsd.H{j}"));
                    let o = crn.species(format!("dsd.O{j}"));
                    let t = crn.species(format!("dsd.T{j}"));
                    let w = crn.species(format!("dsd.W{j}"));
                    fuels.push(g);
                    fuels.push(t);
                    apparent_extra[ai].push(h);
                    // A + G ⇌ H with bound fraction β: forward β·q/C,
                    // backward q
                    crn.reaction_labeled(
                        &[(a, 1), (g, 1)],
                        &[(h, 1)],
                        Rate::Fixed(params.bind_fraction * params.q_max / params.fuel),
                        format!("dsd r{j} bind"),
                    )?;
                    crn.reaction_labeled(
                        &[(h, 1)],
                        &[(a, 1), (g, 1)],
                        Rate::Fixed(params.q_max),
                        format!("dsd r{j} unbind"),
                    )?;
                    // H + B -> O at k/β gives the formal k·[A]·[B]
                    crn.reaction_labeled(
                        &[(h, 1), (b, 1)],
                        &[(o, 1)],
                        Rate::Fixed(k / params.bind_fraction),
                        format!("dsd r{j} displace"),
                    )?;
                    let mut out = products.clone();
                    out.push((w, 1));
                    crn.reaction_labeled(
                        &[(o, 1), (t, 1)],
                        &out,
                        Rate::Fixed(params.q_max),
                        format!("dsd r{j} translate"),
                    )?;
                    if params.leak > 0.0 {
                        let mut leak_out = products.clone();
                        leak_out.push((w, 1));
                        crn.reaction_labeled(
                            &[(g, 1), (t, 1)],
                            &leak_out,
                            Rate::Fixed(params.leak),
                            format!("dsd r{j} leak"),
                        )?;
                    }
                }
                other => {
                    return Err(DsdError::UnsupportedOrder {
                        reaction: j,
                        order: other,
                    })
                }
            }
        }

        Ok(DsdSystem {
            crn,
            signals,
            apparent_extra,
            fuels,
            params: *params,
            formal_stats: CrnStats::of(formal),
        })
    }

    /// The compiled network.
    #[must_use]
    pub fn crn(&self) -> &Crn {
        &self.crn
    }

    /// The compiled signal strand for a formal species.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to the formal network this system
    /// was compiled from.
    #[must_use]
    pub fn signal(&self, formal: SpeciesId) -> SpeciesId {
        self.signals[formal.index()]
    }

    /// The species whose sum best approximates the formal species'
    /// quantity: the free strand plus the gate intermediates that
    /// transiently hold it.
    #[must_use]
    pub fn apparent(&self, formal: SpeciesId) -> Vec<SpeciesId> {
        let mut v = vec![self.signals[formal.index()]];
        v.extend(self.apparent_extra[formal.index()].iter().copied());
        v
    }

    /// The fuel complexes (gates and translators).
    #[must_use]
    pub fn fuels(&self) -> &[SpeciesId] {
        &self.fuels
    }

    /// Builds the compiled initial state: every fuel at the configured
    /// concentration and each formal amount on its free signal strand.
    ///
    /// # Panics
    ///
    /// Panics if `formal_state` does not match the formal network's size.
    #[must_use]
    pub fn initial_state(&self, formal_state: &[f64]) -> State {
        assert_eq!(
            formal_state.len(),
            self.signals.len(),
            "formal state must match the formal network"
        );
        let mut s = State::new(&self.crn);
        for &fuel in &self.fuels {
            s.set(fuel, self.params.fuel);
        }
        for (i, &amount) in formal_state.iter().enumerate() {
            s.set(self.signals[i], amount);
        }
        s
    }

    /// The species mapping for
    /// [`compare_trajectories`](molseq_kinetics::compare_trajectories):
    /// each formal species (reference) corresponds to its free signal
    /// strand plus the gate intermediates that transiently hold it, all
    /// with weight 1.
    #[must_use]
    pub fn mapping(&self) -> Vec<molseq_kinetics::MappedSpecies> {
        (0..self.signals.len())
            .map(|i| {
                let formal = SpeciesId::from_index(i);
                molseq_kinetics::MappedSpecies {
                    label: self.crn.species_name(self.signals[i]).to_owned(),
                    reference: formal,
                    implementation: self
                        .apparent(formal)
                        .into_iter()
                        .map(|s| (s, 1.0))
                        .collect(),
                }
            })
            .collect()
    }

    /// Size comparison with the formal network.
    #[must_use]
    pub fn cost(&self) -> DsdCost {
        let compiled = CrnStats::of(&self.crn);
        DsdCost {
            formal: (self.formal_stats.species, self.formal_stats.reactions),
            compiled: (compiled.species, compiled.reactions),
            fuels: self.fuels.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use molseq_kinetics::{CompiledCrn, OdeOptions, SimSpec, Simulation};

    fn simulate(system: &DsdSystem, init: &State, t_end: f64) -> molseq_kinetics::Trace {
        let compiled = CompiledCrn::new(system.crn(), &SimSpec::default());
        Simulation::new(system.crn(), &compiled)
            .init(init)
            .options(
                OdeOptions::default()
                    .with_t_end(t_end)
                    .with_record_interval(t_end / 100.0),
            )
            .run()
            .unwrap()
    }

    #[test]
    fn unimolecular_transfer_completes() {
        let formal: Crn = "A -> B @slow".parse().unwrap();
        let a = formal.find_species("A").unwrap();
        let b = formal.find_species("B").unwrap();
        let dsd =
            DsdSystem::compile(&formal, RateAssignment::default(), &DsdParams::default()).unwrap();
        let init = dsd.initial_state(&[50.0, 0.0]);
        let trace = simulate(&dsd, &init, 20.0);
        let fin = trace.final_state();
        assert!(
            fin[dsd.signal(b).index()] > 49.0,
            "B = {}",
            fin[dsd.signal(b).index()]
        );
        assert!(fin[dsd.signal(a).index()] < 1.0);
    }

    #[test]
    fn unimolecular_rate_is_roughly_preserved() {
        // A -> B at k=1: after t=1, [A] ≈ 50/e.
        let formal: Crn = "A -> B @slow".parse().unwrap();
        let a = formal.find_species("A").unwrap();
        let dsd =
            DsdSystem::compile(&formal, RateAssignment::default(), &DsdParams::default()).unwrap();
        let init = dsd.initial_state(&[50.0, 0.0]);
        let trace = simulate(&dsd, &init, 1.0);
        let free_a = trace.final_state()[dsd.signal(a).index()];
        let expected = 50.0 / std::f64::consts::E;
        assert!((free_a - expected).abs() < 2.0, "{free_a} vs {expected}");
    }

    #[test]
    fn bimolecular_annihilation_preserves_difference() {
        let formal: Crn = "X + Y -> 0 @fast".parse().unwrap();
        let x = formal.find_species("X").unwrap();
        let y = formal.find_species("Y").unwrap();
        let dsd =
            DsdSystem::compile(&formal, RateAssignment::default(), &DsdParams::default()).unwrap();
        let init = dsd.initial_state(&[30.0, 12.0]);
        let trace = simulate(&dsd, &init, 50.0);
        let fin = trace.final_state();
        let x_apparent: f64 = dsd.apparent(x).iter().map(|s| fin[s.index()]).sum();
        let y_free = fin[dsd.signal(y).index()];
        assert!((x_apparent - 18.0).abs() < 1.0, "X left: {x_apparent}");
        assert!(y_free < 1.0, "Y left: {y_free}");
    }

    #[test]
    fn dimerization_is_normalized() {
        let formal: Crn = "2X -> Y @fast".parse().unwrap();
        let y = formal.find_species("Y").unwrap();
        let dsd =
            DsdSystem::compile(&formal, RateAssignment::default(), &DsdParams::default()).unwrap();
        let init = dsd.initial_state(&[40.0, 0.0]);
        let trace = simulate(&dsd, &init, 50.0);
        let fin = trace.final_state();
        assert!(
            (fin[dsd.signal(y).index()] - 20.0).abs() < 1.0,
            "Y = {}",
            fin[dsd.signal(y).index()]
        );
    }

    #[test]
    fn zero_order_source_produces_linearly() {
        let formal: Crn = "0 -> X @slow".parse().unwrap();
        let x = formal.find_species("X").unwrap();
        let dsd =
            DsdSystem::compile(&formal, RateAssignment::default(), &DsdParams::default()).unwrap();
        let init = dsd.initial_state(&[0.0]);
        let trace = simulate(&dsd, &init, 10.0);
        let fin = trace.final_state()[dsd.signal(x).index()];
        assert!((fin - 10.0).abs() < 0.2, "X = {fin} after t=10 at k=1");
    }

    #[test]
    fn rejects_trimolecular() {
        let formal: Crn = "3X -> Y @fast".parse().unwrap();
        let err = DsdSystem::compile(&formal, RateAssignment::default(), &DsdParams::default())
            .unwrap_err();
        assert!(matches!(err, DsdError::UnsupportedOrder { order: 3, .. }));
    }

    #[test]
    fn rejects_bad_parameters() {
        let formal: Crn = "A -> B @slow".parse().unwrap();
        for params in [
            DsdParams {
                fuel: 0.0,
                ..DsdParams::default()
            },
            DsdParams {
                q_max: -1.0,
                ..DsdParams::default()
            },
            DsdParams {
                bind_fraction: 1.5,
                ..DsdParams::default()
            },
        ] {
            assert!(matches!(
                DsdSystem::compile(&formal, RateAssignment::default(), &params),
                Err(DsdError::InvalidParameter { .. })
            ));
        }
    }

    #[test]
    fn cost_reports_blowup() {
        let formal: Crn = "A -> B @slow\nA + B -> 0 @fast\n0 -> A @slow"
            .parse()
            .unwrap();
        let dsd =
            DsdSystem::compile(&formal, RateAssignment::default(), &DsdParams::default()).unwrap();
        let cost = dsd.cost();
        assert_eq!(cost.formal, (2, 3));
        assert!(cost.compiled.0 > 2, "more species");
        assert!(cost.compiled.1 > 3, "more reactions");
        assert_eq!(cost.fuels, 2 + 2 + 1);
    }

    #[test]
    fn leak_produces_untriggered_output() {
        // A -> B with *zero* A present: with leak, B still appears
        let formal: Crn = "A -> B @slow".parse().unwrap();
        let b = formal.find_species("B").unwrap();
        let leaky = DsdParams {
            leak: 1e-6,
            ..DsdParams::default()
        };
        let dsd = DsdSystem::compile(&formal, RateAssignment::default(), &leaky).unwrap();
        let init = dsd.initial_state(&[0.0, 0.0]);
        let trace = simulate(&dsd, &init, 10.0);
        let spurious = trace.final_state()[dsd.signal(b).index()];
        // leak flux = 1e-6 · C² = 0.1 per unit time → ~1 after t = 10
        assert!(spurious > 0.3, "leak must produce output: {spurious}");

        // without leak: nothing
        let clean =
            DsdSystem::compile(&formal, RateAssignment::default(), &DsdParams::default()).unwrap();
        let trace = simulate(&clean, &clean.initial_state(&[0.0, 0.0]), 10.0);
        assert!(trace.final_state()[clean.signal(b).index()] < 1e-9);
    }

    #[test]
    fn mapping_feeds_trajectory_comparison() {
        use molseq_kinetics::{compare_trajectories, OdeOptions, SimSpec, State};
        let formal: Crn = "A -> B @slow\nA + B -> 0 @fast".parse().unwrap();
        let a = formal.find_species("A").unwrap();
        let mut init = State::new(&formal);
        init.set(a, 40.0);
        let opts = OdeOptions::default()
            .with_t_end(20.0)
            .with_record_interval(0.2);
        let formal_compiled = CompiledCrn::new(&formal, &SimSpec::default());
        let formal_trace = Simulation::new(&formal, &formal_compiled)
            .init(&init)
            .options(opts)
            .run()
            .unwrap();

        let dsd =
            DsdSystem::compile(&formal, RateAssignment::default(), &DsdParams::default()).unwrap();
        let dsd_compiled = CompiledCrn::new(dsd.crn(), &SimSpec::default());
        let dsd_trace = Simulation::new(dsd.crn(), &dsd_compiled)
            .init(&dsd.initial_state(init.as_slice()))
            .options(opts)
            .run()
            .unwrap();

        let report = compare_trajectories(&formal_trace, &dsd_trace, &dsd.mapping());
        // the DSD image tracks the formal trajectory within a few percent
        // of the 40-unit amplitude (cascade latency + gate sequestration)
        assert!(report.max_abs < 4.0, "{report:?}");
        assert!(report.rms < 1.5, "{report:?}");
    }

    #[test]
    fn fuel_depletion_slows_but_does_not_break() {
        // with tiny fuel, the unimolecular transfer still completes, later
        let formal: Crn = "A -> B @slow".parse().unwrap();
        let b = formal.find_species("B").unwrap();
        let lean = DsdParams {
            fuel: 100.0,
            ..DsdParams::default()
        };
        let dsd = DsdSystem::compile(&formal, RateAssignment::default(), &lean).unwrap();
        let init = dsd.initial_state(&[50.0, 0.0]);
        let trace = simulate(&dsd, &init, 60.0);
        let fin = trace.final_state()[dsd.signal(b).index()];
        assert!(fin > 49.0, "B = {fin}");
    }

    #[test]
    fn error_display() {
        let e = DsdError::UnsupportedOrder {
            reaction: 4,
            order: 3,
        };
        assert!(e.to_string().contains("molecularity 3"));
        let p = DsdError::InvalidParameter {
            name: "fuel",
            value: -1.0,
        };
        assert!(p.to_string().contains("fuel"));
    }
}
