//! Domain-level strand specifications.
//!
//! The kinetic compiler (the crate root) turns a formal network into the
//! *reaction-level* picture of its DNA implementation. This module adds
//! the next level of detail a wet lab would ask for: a **domain-level**
//! specification in the style of Soloveichik et al. — every formal species
//! becomes a three-domain signal strand `t? a? b?` (a toehold and two
//! branch-migration domains), and every formal reaction becomes a set of
//! gate and translator complexes built from those domains and their
//! complements.
//!
//! [`StrandLibrary::assign_sequences`] goes one step further and assigns
//! concrete nucleotide sequences to the domains, with the basic sanity
//! constraints a designer would check first: unique subwords between
//! distinct domains, no long G runs, and bounded GC content.

use crate::DsdError;
use molseq_crn::Crn;
use std::collections::HashMap;
use std::fmt;

/// The role of a domain within a strand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomainKind {
    /// A short binding-initiation domain (reversible binding strength).
    Toehold,
    /// A long branch-migration domain (irreversible displacement).
    Branch,
}

/// One domain occurrence on a strand (possibly complemented).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Domain {
    /// Base name, e.g. `t3` or `a3`.
    pub name: String,
    /// Toehold or branch.
    pub kind: DomainKind,
    /// True for the Watson–Crick complement (written `name*`).
    pub complemented: bool,
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}",
            self.name,
            if self.complemented { "*" } else { "" }
        )
    }
}

/// A single-stranded species: an ordered run of domains, 5′ to 3′.
#[derive(Debug, Clone, PartialEq)]
pub struct Strand {
    /// Name (matches the formal species for signal strands).
    pub name: String,
    /// Domains 5′→3′.
    pub domains: Vec<Domain>,
}

impl fmt::Display for Strand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: 5'-", self.name)?;
        for (i, d) in self.domains.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{d}")?;
        }
        f.write_str("-3'")
    }
}

/// A multi-strand fuel complex (gate or translator).
#[derive(Debug, Clone, PartialEq)]
pub struct Complex {
    /// Name (matches the compiler's fuel species, e.g. `dsd.G3`).
    pub name: String,
    /// The bottom (template) strand, written 3′→5′ as complements.
    pub bottom: Vec<Domain>,
    /// Names of the strands initially hybridized on top.
    pub top: Vec<String>,
    /// What the complex implements.
    pub note: String,
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: bottom 3'-", self.name)?;
        for (i, d) in self.bottom.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "-5'  top [{}]  ({})", self.top.join(", "), self.note)
    }
}

/// The full domain-level specification of a compiled system.
#[derive(Debug, Clone, PartialEq)]
pub struct StrandLibrary {
    strands: Vec<Strand>,
    complexes: Vec<Complex>,
}

impl StrandLibrary {
    /// Derives the library from a formal network (the same reactions the
    /// kinetic compiler translates).
    ///
    /// # Errors
    ///
    /// [`DsdError::UnsupportedOrder`] for reactions of molecularity ≥ 3,
    /// mirroring the kinetic compiler.
    pub fn from_formal(crn: &Crn) -> Result<Self, DsdError> {
        let mut strands = Vec::new();
        for (id, species) in crn.species_iter() {
            let i = id.index();
            strands.push(Strand {
                name: species.name().to_owned(),
                domains: vec![
                    Domain {
                        name: format!("t{i}"),
                        kind: DomainKind::Toehold,
                        complemented: false,
                    },
                    Domain {
                        name: format!("a{i}"),
                        kind: DomainKind::Branch,
                        complemented: false,
                    },
                    Domain {
                        name: format!("b{i}"),
                        kind: DomainKind::Branch,
                        complemented: false,
                    },
                ],
            });
        }

        let mut complexes = Vec::new();
        for (j, reaction) in crn.reactions().iter().enumerate() {
            let order = reaction.order();
            if order > 2 {
                return Err(DsdError::UnsupportedOrder { reaction: j, order });
            }
            let reactant_names: Vec<String> = reaction
                .reactants()
                .iter()
                .map(|t| crn.species_name(t.species).to_owned())
                .collect();
            let product_names: Vec<String> = reaction
                .products()
                .iter()
                .map(|t| crn.species_name(t.species).to_owned())
                .collect();
            // the gate's bottom strand is complementary to the reactant
            // signals it consumes, in binding order (a dimerization binds
            // two copies of the same signal, so its domains repeat)
            let mut bottom = Vec::new();
            for t in reaction.reactants() {
                let i = t.species.index();
                for _ in 0..t.stoich {
                    for (name, kind) in [
                        (format!("t{i}"), DomainKind::Toehold),
                        (format!("a{i}"), DomainKind::Branch),
                        (format!("b{i}"), DomainKind::Branch),
                    ] {
                        bottom.push(Domain {
                            name,
                            kind,
                            complemented: true,
                        });
                    }
                }
            }
            if bottom.is_empty() {
                // zero-order source: an unstable fuel carrying the product
                let Some(first) = reaction.products().first() else {
                    continue;
                };
                let i = first.species.index();
                bottom.push(Domain {
                    name: format!("t{i}"),
                    kind: DomainKind::Toehold,
                    complemented: true,
                });
            }
            complexes.push(Complex {
                name: format!("dsd.G{j}"),
                bottom,
                top: product_names.clone(),
                note: format!(
                    "gate for formal reaction {j}: {} -> {}",
                    if reactant_names.is_empty() {
                        "0".to_owned()
                    } else {
                        reactant_names.join(" + ")
                    },
                    if product_names.is_empty() {
                        "0".to_owned()
                    } else {
                        product_names.join(" + ")
                    }
                ),
            });
            if order >= 1 {
                // translator releasing the products
                let bottom = reaction
                    .products()
                    .iter()
                    .flat_map(|t| {
                        let i = t.species.index();
                        [
                            Domain {
                                name: format!("t{i}"),
                                kind: DomainKind::Toehold,
                                complemented: true,
                            },
                            Domain {
                                name: format!("a{i}"),
                                kind: DomainKind::Branch,
                                complemented: true,
                            },
                        ]
                    })
                    .collect();
                complexes.push(Complex {
                    name: format!("dsd.T{j}"),
                    bottom,
                    top: product_names,
                    note: format!("translator for formal reaction {j}"),
                });
            }
        }
        Ok(StrandLibrary { strands, complexes })
    }

    /// The signal strands.
    #[must_use]
    pub fn strands(&self) -> &[Strand] {
        &self.strands
    }

    /// The fuel complexes.
    #[must_use]
    pub fn complexes(&self) -> &[Complex] {
        &self.complexes
    }

    /// A human-readable listing of the whole library.
    #[must_use]
    pub fn listing(&self) -> String {
        let mut out = String::new();
        out.push_str("signal strands:\n");
        for s in &self.strands {
            out.push_str(&format!("  {s}\n"));
        }
        out.push_str("fuel complexes:\n");
        for c in &self.complexes {
            out.push_str(&format!("  {c}\n"));
        }
        out
    }

    /// Assigns concrete sequences to every domain, deterministically from
    /// `seed`. Toeholds get `toehold_len` nucleotides, branches
    /// `branch_len`. The generator enforces three designer sanity rules:
    /// GC content between 30% and 70% per domain, no runs of four equal
    /// bases, and distinct domains never sharing a window of
    /// `min(toehold_len, 6)` consecutive bases.
    ///
    /// # Errors
    ///
    /// [`DsdError::InvalidParameter`] if lengths are too short (< 4 for
    /// toeholds, < 8 for branches) or if the generator cannot satisfy the
    /// constraints (practically unreachable below a few thousand domains).
    pub fn assign_sequences(
        &self,
        toehold_len: usize,
        branch_len: usize,
        seed: u64,
    ) -> Result<SequenceAssignment, DsdError> {
        if toehold_len < 4 {
            return Err(DsdError::InvalidParameter {
                name: "toehold_len",
                value: toehold_len as f64,
            });
        }
        if branch_len < 8 {
            return Err(DsdError::InvalidParameter {
                name: "branch_len",
                value: branch_len as f64,
            });
        }
        let mut domains: Vec<(String, DomainKind)> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let all = self
            .strands
            .iter()
            .flat_map(|s| s.domains.iter())
            .chain(self.complexes.iter().flat_map(|c| c.bottom.iter()));
        for d in all {
            if seen.insert(d.name.clone()) {
                domains.push((d.name.clone(), d.kind));
            }
        }

        let window = toehold_len.min(6);
        let mut rng_state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            // xorshift64*
            rng_state ^= rng_state >> 12;
            rng_state ^= rng_state << 25;
            rng_state ^= rng_state >> 27;
            rng_state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let bases = [b'A', b'C', b'G', b'T'];
        let mut used_windows: std::collections::HashSet<Vec<u8>> = std::collections::HashSet::new();
        let mut sequences = HashMap::new();

        for (name, kind) in &domains {
            let len = match kind {
                DomainKind::Toehold => toehold_len,
                DomainKind::Branch => branch_len,
            };
            let mut ok = None;
            'attempts: for _ in 0..10_000 {
                let candidate: Vec<u8> = (0..len).map(|_| bases[(next() % 4) as usize]).collect();
                // GC content
                let gc = candidate
                    .iter()
                    .filter(|&&b| b == b'G' || b == b'C')
                    .count() as f64
                    / len as f64;
                if !(0.3..=0.7).contains(&gc) {
                    continue;
                }
                // no runs of 4
                if candidate.windows(4).any(|w| w.iter().all(|&b| b == w[0])) {
                    continue;
                }
                // unique windows against everything assigned so far (and
                // against reverse complements, which the complement strand
                // will carry)
                let rc = reverse_complement(&candidate);
                for w in candidate.windows(window).chain(rc.windows(window)) {
                    if used_windows.contains(w) {
                        continue 'attempts;
                    }
                }
                for w in candidate.windows(window).chain(rc.windows(window)) {
                    used_windows.insert(w.to_vec());
                }
                ok = Some(candidate);
                break;
            }
            let Some(sequence) = ok else {
                return Err(DsdError::InvalidParameter {
                    name: "sequence space",
                    value: domains.len() as f64,
                });
            };
            sequences.insert(
                name.clone(),
                String::from_utf8(sequence).expect("ACGT is UTF-8"),
            );
        }
        Ok(SequenceAssignment { sequences })
    }
}

fn reverse_complement(seq: &[u8]) -> Vec<u8> {
    seq.iter()
        .rev()
        .map(|&b| match b {
            b'A' => b'T',
            b'T' => b'A',
            b'G' => b'C',
            _ => b'G',
        })
        .collect()
}

/// Concrete nucleotide sequences for every domain of a library.
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceAssignment {
    sequences: HashMap<String, String>,
}

impl SequenceAssignment {
    /// The sequence of a domain (`None` for unknown names). Complemented
    /// domains are obtained with [`SequenceAssignment::complement_of`].
    #[must_use]
    pub fn sequence(&self, domain: &str) -> Option<&str> {
        self.sequences.get(domain).map(String::as_str)
    }

    /// The reverse complement of a domain's sequence.
    #[must_use]
    pub fn complement_of(&self, domain: &str) -> Option<String> {
        self.sequences
            .get(domain)
            .map(|s| String::from_utf8(reverse_complement(s.as_bytes())).expect("ACGT is UTF-8"))
    }

    /// Number of assigned domains.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sequences.len()
    }

    /// True if nothing was assigned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty()
    }

    /// Renders a strand as a concrete sequence, 5′→3′.
    #[must_use]
    pub fn render_strand(&self, strand: &Strand) -> String {
        strand
            .domains
            .iter()
            .map(|d| {
                if d.complemented {
                    self.complement_of(&d.name).unwrap_or_default()
                } else {
                    self.sequence(&d.name).unwrap_or_default().to_owned()
                }
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn library() -> StrandLibrary {
        let crn: Crn = "0 -> r @slow\nA -> B @slow\nA + B -> C @fast"
            .parse()
            .unwrap();
        StrandLibrary::from_formal(&crn).unwrap()
    }

    #[test]
    fn every_species_gets_a_three_domain_strand() {
        let lib = library();
        // species: r, A, B, C
        assert_eq!(lib.strands().len(), 4);
        for s in lib.strands() {
            assert_eq!(s.domains.len(), 3);
            assert_eq!(s.domains[0].kind, DomainKind::Toehold);
            assert!(!s.domains[0].complemented);
        }
    }

    #[test]
    fn gates_are_complementary_to_their_reactants() {
        let lib = library();
        // reaction 2 is A + B -> C: its gate binds A then B
        let gate = lib
            .complexes()
            .iter()
            .find(|c| c.name == "dsd.G2")
            .expect("gate exists");
        assert_eq!(gate.bottom.len(), 6);
        assert!(gate.bottom.iter().all(|d| d.complemented));
        assert!(gate.note.contains("A + B -> C"));
    }

    #[test]
    fn zero_order_sources_are_unstable_fuels() {
        let lib = library();
        let gate = lib
            .complexes()
            .iter()
            .find(|c| c.name == "dsd.G0")
            .expect("source gate");
        assert_eq!(gate.bottom.len(), 1);
        assert!(gate.note.contains("0 -> r"));
        // sources have no translator
        assert!(!lib.complexes().iter().any(|c| c.name == "dsd.T0"));
    }

    #[test]
    fn trimolecular_is_rejected() {
        let crn: Crn = "3X -> Y @fast".parse().unwrap();
        assert!(matches!(
            StrandLibrary::from_formal(&crn),
            Err(DsdError::UnsupportedOrder { order: 3, .. })
        ));
    }

    #[test]
    fn listing_mentions_everything() {
        let lib = library();
        let text = lib.listing();
        assert!(text.contains("signal strands:"));
        assert!(text.contains("fuel complexes:"));
        assert!(text.contains("dsd.G1"));
        assert!(text.contains("5'-"));
    }

    #[test]
    fn sequences_satisfy_the_constraints() {
        let lib = library();
        let assignment = lib.assign_sequences(6, 20, 42).unwrap();
        assert!(!assignment.is_empty());
        for s in lib.strands() {
            for d in &s.domains {
                let seq = assignment.sequence(&d.name).expect("assigned");
                let expected_len = match d.kind {
                    DomainKind::Toehold => 6,
                    DomainKind::Branch => 20,
                };
                assert_eq!(seq.len(), expected_len);
                let gc =
                    seq.chars().filter(|&c| c == 'G' || c == 'C').count() as f64 / seq.len() as f64;
                assert!((0.3..=0.7).contains(&gc), "{seq}");
                assert!(
                    !seq.as_bytes()
                        .windows(4)
                        .any(|w| w.iter().all(|&b| b == w[0])),
                    "{seq} has a homopolymer run"
                );
            }
        }
    }

    #[test]
    fn sequences_are_deterministic_in_the_seed() {
        let lib = library();
        let a = lib.assign_sequences(6, 20, 7).unwrap();
        let b = lib.assign_sequences(6, 20, 7).unwrap();
        let c = lib.assign_sequences(6, 20, 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn complement_round_trips() {
        let lib = library();
        let assignment = lib.assign_sequences(6, 20, 1).unwrap();
        let seq = assignment.sequence("t0").unwrap();
        let rc = assignment.complement_of("t0").unwrap();
        let back = String::from_utf8(reverse_complement(rc.as_bytes())).unwrap();
        assert_eq!(seq, back);
    }

    #[test]
    fn render_strand_concatenates_domains() {
        let lib = library();
        let assignment = lib.assign_sequences(6, 12, 3).unwrap();
        let rendered = assignment.render_strand(&lib.strands()[0]);
        // toehold + 2 branches + 2 separators
        assert_eq!(rendered.len(), 6 + 12 + 12 + 2);
    }

    #[test]
    fn rejects_too_short_domains() {
        let lib = library();
        assert!(lib.assign_sequences(3, 20, 0).is_err());
        assert!(lib.assign_sequences(6, 7, 0).is_err());
    }
}
