//! Positive rational gains with molecular-feasible denominators.

use molseq_sync::SyncError;
use std::fmt;

/// A positive rational gain `p/q`.
///
/// The denominator must factor into 2s and 3s: a molecular scaling
/// reaction `qX → pY` is a `q`-body collision, so each synthesized stage
/// divides by at most 3 and larger denominators are built as cascades
/// (`1/4 = 1/2 · 1/2`, `1/12 = 1/2 · 1/2 · 1/3`, …).
///
/// # Examples
///
/// ```
/// use molseq_dsp::Ratio;
///
/// let half = Ratio::new(1, 2)?;
/// assert_eq!(half.as_f64(), 0.5);
/// assert_eq!(half.stages(), vec![(1, 2)]);
///
/// let twelfth = Ratio::new(5, 12)?;
/// assert_eq!(twelfth.stages(), vec![(5, 2), (1, 2), (1, 3)]);
/// # Ok::<(), molseq_sync::SyncError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    p: u32,
    q: u32,
}

impl Ratio {
    /// Creates a ratio, reducing it to lowest terms.
    ///
    /// # Errors
    ///
    /// [`SyncError::UnsupportedScale`] if `p` or `q` is zero, or if the
    /// reduced denominator has a prime factor other than 2 or 3.
    pub fn new(p: u32, q: u32) -> Result<Self, SyncError> {
        if p == 0 || q == 0 {
            return Err(SyncError::UnsupportedScale { p, q });
        }
        let g = gcd(p, q);
        let (p, q) = (p / g, q / g);
        let mut rest = q;
        while rest.is_multiple_of(2) {
            rest /= 2;
        }
        while rest.is_multiple_of(3) {
            rest /= 3;
        }
        if rest != 1 {
            return Err(SyncError::UnsupportedScale { p, q });
        }
        Ok(Ratio { p, q })
    }

    /// The ratio `1/1`.
    #[must_use]
    pub fn one() -> Self {
        Ratio { p: 1, q: 1 }
    }

    /// Numerator (lowest terms).
    #[must_use]
    pub fn numer(self) -> u32 {
        self.p
    }

    /// Denominator (lowest terms).
    #[must_use]
    pub fn denom(self) -> u32 {
        self.q
    }

    /// The gain as a float.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        f64::from(self.p) / f64::from(self.q)
    }

    /// Decomposes the gain into scaling stages `(p_i, q_i)` with every
    /// `q_i ∈ {1, 2, 3}`: the numerator rides on the first stage and the
    /// denominator's 2/3 factors become one stage each.
    #[must_use]
    pub fn stages(self) -> Vec<(u32, u32)> {
        let mut factors = Vec::new();
        let mut rest = self.q;
        while rest.is_multiple_of(2) {
            factors.push(2);
            rest /= 2;
        }
        while rest.is_multiple_of(3) {
            factors.push(3);
            rest /= 3;
        }
        if factors.is_empty() {
            return vec![(self.p, 1)];
        }
        let mut stages = Vec::with_capacity(factors.len());
        for (i, q) in factors.into_iter().enumerate() {
            let p = if i == 0 { self.p } else { 1 };
            stages.push((p, q));
        }
        stages
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.q == 1 {
            write!(f, "{}", self.p)
        } else {
            write!(f, "{}/{}", self.p, self.q)
        }
    }
}

fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_to_lowest_terms() {
        let r = Ratio::new(4, 8).unwrap();
        assert_eq!((r.numer(), r.denom()), (1, 2));
        assert_eq!(r.to_string(), "1/2");
        assert_eq!(Ratio::new(6, 2).unwrap().to_string(), "3");
    }

    #[test]
    fn rejects_unfactorable_denominators() {
        assert!(Ratio::new(1, 5).is_err());
        assert!(Ratio::new(1, 7).is_err());
        assert!(Ratio::new(0, 2).is_err());
        assert!(Ratio::new(2, 0).is_err());
        // 5/10 reduces to 1/2: fine
        assert!(Ratio::new(5, 10).is_ok());
    }

    #[test]
    fn stage_products_equal_the_ratio() {
        for (p, q) in [(1, 2), (3, 4), (5, 12), (7, 1), (2, 3), (5, 18)] {
            let r = Ratio::new(p, q).unwrap();
            let product: f64 = r
                .stages()
                .iter()
                .map(|&(sp, sq)| f64::from(sp) / f64::from(sq))
                .product();
            assert!((product - r.as_f64()).abs() < 1e-12, "{p}/{q}");
            for &(_, sq) in &r.stages() {
                assert!(sq <= 3);
            }
        }
    }

    #[test]
    fn one_is_identity() {
        assert_eq!(Ratio::one().as_f64(), 1.0);
        assert_eq!(Ratio::one().stages(), vec![(1, 1)]);
    }
}
