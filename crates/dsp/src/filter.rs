//! Ready-made filter structures with ideal reference models.

use crate::{Ratio, SfgBuilder};
use molseq_kinetics::{BatchedOdeWorkspace, CompiledCrn};
use molseq_sync::{
    drive_cycles, drive_cycles_batch, BatchCell, ClockSpec, CompiledSystem, CycleResources,
    RunConfig, SyncError,
};

/// A compiled molecular filter plus its ideal floating-point reference.
///
/// The difference equation is
/// `y(n) = max(Σᵢ bᵢ·x(n−i) − Σⱼ aⱼ·y(n−j), 0)` — the clamp mirrors the
/// molecular implementation, where a negative-coefficient branch is a
/// clamped subtraction (concentrations cannot go negative).
#[derive(Debug, Clone)]
pub struct Filter {
    system: CompiledSystem,
    feedforward: Vec<f64>,
    feedback: Vec<f64>,
    description: String,
}

impl Filter {
    /// The compiled system (input port `"x"`, output port `"y"`).
    #[must_use]
    pub fn system(&self) -> &CompiledSystem {
        &self.system
    }

    /// A human-readable description of the structure.
    #[must_use]
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The feedforward coefficients `b₀, b₁, …`.
    #[must_use]
    pub fn feedforward(&self) -> &[f64] {
        &self.feedforward
    }

    /// The feedback coefficients `a₁, a₂, …` (subtracted).
    #[must_use]
    pub fn feedback(&self) -> &[f64] {
        &self.feedback
    }

    /// The ideal response to an input sequence (zero initial conditions).
    #[must_use]
    pub fn ideal_response(&self, samples: &[f64]) -> Vec<f64> {
        let mut y = Vec::with_capacity(samples.len());
        for n in 0..samples.len() {
            let mut acc = 0.0;
            for (i, &b) in self.feedforward.iter().enumerate() {
                if n >= i {
                    acc += b * samples[n - i];
                }
            }
            for (j, &a) in self.feedback.iter().enumerate() {
                let lag = j + 1;
                if n >= lag {
                    acc -= a * y[n - lag];
                }
            }
            y.push(acc.max(0.0));
        }
        y
    }

    /// Runs the molecular filter on an input sequence and returns one
    /// output value per input sample, aligned with
    /// [`ideal_response`](Self::ideal_response). When `compiled` is
    /// supplied, it drives that pre-built network instead of compiling the
    /// filter's network per call (the sweep path: compile the filter once
    /// and [`CompiledCrn::rebind`] per cell; `config.spec` is then ignored
    /// in favour of the rates baked into `compiled`).
    ///
    /// Output `y(n)` is computed during cycle `n` and committed into the
    /// output register at its end, so the cycle-`n` plateau reading *is*
    /// `y(n)`.
    ///
    /// # Errors
    ///
    /// Propagates harness errors from [`drive_cycles`].
    pub fn respond_with(
        &self,
        samples: &[f64],
        config: &RunConfig,
        compiled: Option<&CompiledCrn>,
    ) -> Result<Vec<f64>, SyncError> {
        let run = drive_cycles(
            &self.system,
            &[("x", samples)],
            samples.len(),
            config,
            CycleResources {
                compiled,
                workspace: None,
            },
        )?;
        let series = run.register_series("y")?;
        Ok(series[..samples.len()].to_vec())
    }

    /// Runs the molecular filter under several rate bindings at once
    /// through the batched lock-step engine
    /// ([`drive_cycles_batch`]): one compiled cell per rate binding, all
    /// sharing this filter's network structure, each result bit-identical
    /// to a solo [`respond_with`](Self::respond_with) call with the same
    /// configuration. `workspace` is reused across calls.
    ///
    /// # Errors
    ///
    /// Shared-setup errors fail the whole call; per-cell harness errors
    /// come back in the per-cell results.
    pub fn respond_batch(
        &self,
        samples: &[f64],
        cells: &[BatchCell<'_, '_>],
        workspace: &mut BatchedOdeWorkspace,
    ) -> Result<Vec<Result<Vec<f64>, SyncError>>, SyncError> {
        let runs = drive_cycles_batch(
            &self.system,
            &[("x", samples)],
            samples.len(),
            cells,
            workspace,
        )?;
        Ok(runs
            .into_iter()
            .map(|run| {
                let run = run?;
                let series = run.register_series("y")?;
                Ok(series[..samples.len()].to_vec())
            })
            .collect())
    }
}

/// Root-mean-square error between two equal-length sequences.
///
/// # Panics
///
/// Panics if the sequences differ in length or are empty.
#[must_use]
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sequences must align");
    assert!(!a.is_empty(), "sequences must be non-empty");
    let sum: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (sum / a.len() as f64).sqrt()
}

/// An `n`-tap moving-average filter: `y(n) = (x(n) + … + x(n−taps+1)) / taps`.
///
/// The 2-tap instance is the paper's running example.
///
/// # Errors
///
/// [`SyncError::UnsupportedScale`] if `taps` is zero or has a prime factor
/// other than 2 or 3; compilation errors are propagated.
pub fn moving_average(taps: usize, clock: ClockSpec) -> Result<Filter, SyncError> {
    if taps == 0 {
        return Err(SyncError::InvalidAmount { value: 0.0 });
    }
    let weight = Ratio::new(
        1,
        u32::try_from(taps).map_err(|_| SyncError::InvalidAmount { value: taps as f64 })?,
    )?;
    let coeffs = vec![weight; taps];
    let mut filter = fir(&coeffs, clock)?;
    filter.description = format!("{taps}-tap moving average");
    Ok(filter)
}

/// A finite-impulse-response filter `y(n) = Σᵢ cᵢ·x(n−i)`.
///
/// # Errors
///
/// [`SyncError::InvalidAmount`] for an empty coefficient list;
/// compilation errors are propagated.
pub fn fir(coeffs: &[Ratio], clock: ClockSpec) -> Result<Filter, SyncError> {
    if coeffs.is_empty() {
        return Err(SyncError::InvalidAmount { value: 0.0 });
    }
    let mut sfg = SfgBuilder::new(clock);
    let x = sfg.input("x");
    let mut taps = Vec::with_capacity(coeffs.len());
    let mut tap = x;
    for (i, &c) in coeffs.iter().enumerate() {
        if i > 0 {
            tap = sfg.delay(tap);
        }
        taps.push(sfg.gain(tap, c)?);
    }
    let y = if taps.len() == 1 {
        taps[0]
    } else {
        sfg.add(&taps)
    };
    sfg.output("y", y);
    Ok(Filter {
        system: sfg.compile()?,
        feedforward: coeffs.iter().map(|c| c.as_f64()).collect(),
        feedback: Vec::new(),
        description: format!("FIR({})", coeffs.len()),
    })
}

/// A first-order recursive filter `y(n) = a·y(n−1) + b·x(n)` (a leaky
/// integrator for `a < 1`).
///
/// # Errors
///
/// Compilation errors are propagated.
pub fn iir_first_order(a: Ratio, b: Ratio, clock: ClockSpec) -> Result<Filter, SyncError> {
    let mut sfg = SfgBuilder::new(clock);
    let x = sfg.input("x");
    let state = sfg.feedback("state");
    let fed_back = sfg.gain(state, a)?;
    let fresh = sfg.gain(x, b)?;
    let y = sfg.add(&[fed_back, fresh]);
    sfg.bind_feedback("state", y)?;
    sfg.output("y", y);
    Ok(Filter {
        system: sfg.compile()?,
        // y(n) = b·x(n) + a·y(n−1): feedforward [b], feedback [−a] — the
        // reference model subtracts feedback terms, so store −a.
        feedforward: vec![b.as_f64()],
        feedback: vec![-a.as_f64()],
        description: format!("IIR1(a={a}, b={b})"),
    })
}

/// A biquad section
/// `y(n) = max(b₀x(n) + b₁x(n−1) + b₂x(n−2) − a₁y(n−1) − a₂y(n−2), 0)`,
/// with all coefficient magnitudes given as positive rationals (the `aⱼ`
/// branch is subtracted by clamped molecular subtraction).
///
/// # Errors
///
/// Compilation errors are propagated.
pub fn biquad(b: [Ratio; 3], a: [Ratio; 2], clock: ClockSpec) -> Result<Filter, SyncError> {
    let mut sfg = SfgBuilder::new(clock);
    let x = sfg.input("x");
    let x1 = sfg.named_delay("x1", x);
    let x2 = sfg.named_delay("x2", x1);
    let y1 = sfg.feedback("y1");
    let y2 = sfg.named_delay("y2", y1);

    let p0 = sfg.gain(x, b[0])?;
    let p1 = sfg.gain(x1, b[1])?;
    let p2 = sfg.gain(x2, b[2])?;
    let pos = sfg.add(&[p0, p1, p2]);

    let n1 = sfg.gain(y1, a[0])?;
    let n2 = sfg.gain(y2, a[1])?;
    let neg = sfg.add(&[n1, n2]);

    let y = sfg.sub(pos, neg);
    sfg.bind_feedback("y1", y)?;
    sfg.output("y", y);
    Ok(Filter {
        system: sfg.compile()?,
        feedforward: b.iter().map(|c| c.as_f64()).collect(),
        feedback: a.iter().map(|c| c.as_f64()).collect(),
        description: format!(
            "biquad(b=[{},{},{}], a=[{},{}])",
            b[0], b[1], b[2], a[0], a[1]
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_ideal_model() {
        let f = moving_average(2, ClockSpec::default()).unwrap();
        assert_eq!(f.ideal_response(&[10.0, 30.0, 50.0]), vec![5.0, 20.0, 40.0]);
        assert_eq!(f.feedforward(), &[0.5, 0.5]);
        assert!(f.feedback().is_empty());
        assert!(f.description().contains("moving average"));
    }

    #[test]
    fn fir_rejects_empty() {
        assert!(fir(&[], ClockSpec::default()).is_err());
        assert!(moving_average(0, ClockSpec::default()).is_err());
        assert!(
            moving_average(5, ClockSpec::default()).is_err(),
            "1/5 unsupported"
        );
    }

    #[test]
    fn iir_ideal_model_accumulates() {
        let f = iir_first_order(
            Ratio::new(1, 2).unwrap(),
            Ratio::new(1, 2).unwrap(),
            ClockSpec::default(),
        )
        .unwrap();
        // y(n) = 0.5 y(n-1) + 0.5 x(n), x = [4, 4, 4] → y = [2, 3, 3.5]
        assert_eq!(f.ideal_response(&[4.0, 4.0, 4.0]), vec![2.0, 3.0, 3.5]);
    }

    #[test]
    fn biquad_ideal_model_clamps() {
        let f = biquad(
            [
                Ratio::new(1, 2).unwrap(),
                Ratio::new(1, 4).unwrap(),
                Ratio::new(1, 4).unwrap(),
            ],
            [Ratio::new(1, 2).unwrap(), Ratio::new(1, 4).unwrap()],
            ClockSpec::default(),
        )
        .unwrap();
        let y = f.ideal_response(&[8.0, 0.0, 0.0, 0.0]);
        assert_eq!(y[0], 4.0); // 0.5·8
        assert_eq!(y[1], 0.0); // 0.25·8 − 0.5·4 = 0, clamped at 0
        assert!(y.iter().all(|&v| v >= 0.0));
    }

    /// The batched path over a small rate-ratio grid of the paper's
    /// moving-average example agrees with per-cell scalar runs exactly
    /// (the engine's contract is bit-identity, so no tolerance needed).
    #[test]
    fn moving_average_grid_batched_matches_scalar() {
        use molseq_crn::RateAssignment;
        use molseq_kinetics::SimSpec;
        let f = moving_average(2, ClockSpec::default()).unwrap();
        let samples = [10.0, 50.0, 80.0];
        let base = CompiledCrn::new(f.system().crn(), &SimSpec::default());
        let ratios = [100.0, 400.0, 1000.0, 4000.0];
        let compiled: Vec<CompiledCrn> = ratios
            .iter()
            .map(|&r| base.rebind(&SimSpec::new(RateAssignment::from_ratio(r))))
            .collect();
        let cells: Vec<BatchCell> = compiled
            .iter()
            .map(|c| BatchCell {
                compiled: c,
                config: RunConfig::default(),
            })
            .collect();
        let mut ws = BatchedOdeWorkspace::new();
        let batched = f.respond_batch(&samples, &cells, &mut ws).unwrap();
        assert_eq!(batched.len(), ratios.len());
        for (c, result) in compiled.iter().zip(batched) {
            let scalar = f
                .respond_with(&samples, &RunConfig::default(), Some(c))
                .unwrap();
            assert_eq!(scalar, result.unwrap());
        }
    }

    #[test]
    fn rmse_basics() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sequences must align")]
    fn rmse_checks_lengths() {
        let _ = rmse(&[1.0], &[1.0, 2.0]);
    }
}
