//! # molseq-dsp — DSP synthesis onto molecular synchronous circuits
//!
//! The application layer the paper's evaluation leans on (following the
//! authors' ICCAD 2010 synthesis flow): signal-flow graphs — delays, gains,
//! adders — compiled onto the clocked molecular framework of `molseq-sync`.
//!
//! * [`Ratio`] — positive rational gains. Because a molecular scaling
//!   reaction `qX → pY` is a `q`-body collision, denominators are limited
//!   to products of 2s and 3s and are synthesized as cascades.
//! * [`SfgBuilder`] — a thin, DSP-flavoured wrapper over
//!   [`SyncCircuit`](molseq_sync::SyncCircuit).
//! * [`Filter`] — a compiled filter together with its ideal (floating
//!   point) reference model, so experiments can report molecular-vs-ideal
//!   error per output sample.
//! * [`moving_average`], [`fir`], [`iir_first_order`], [`biquad`] — the
//!   standard structures, ready to run.
//!
//! ## Example
//!
//! ```
//! use molseq_dsp::moving_average;
//! use molseq_sync::ClockSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let filter = moving_average(2, ClockSpec::default())?;
//! // ideal reference: y(n) = (x(n) + x(n-1)) / 2
//! let ideal = filter.ideal_response(&[10.0, 30.0]);
//! assert_eq!(ideal, vec![5.0, 20.0]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod filter;
mod ratio;
mod sfg;

pub use filter::{biquad, fir, iir_first_order, moving_average, rmse, Filter};
pub use ratio::Ratio;
pub use sfg::SfgBuilder;
