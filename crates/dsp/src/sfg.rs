//! The signal-flow-graph builder.

use crate::Ratio;
use molseq_sync::{compile_netlist, ClockSpec, CompiledSystem, Netlist, Node, SyncError};

/// A DSP-flavoured façade over the netlist IR ([`Netlist`]): the same
/// expression DAG, with rational gains synthesized as scaling cascades
/// and auto-named delay registers, compiled through the one shared
/// lowering path ([`compile_netlist`]).
///
/// # Examples
///
/// A first-order leaky integrator `y(n+1) = ¾·y(n) + ¼·x(n)`:
///
/// ```
/// use molseq_dsp::{Ratio, SfgBuilder};
/// use molseq_sync::ClockSpec;
///
/// # fn main() -> Result<(), molseq_sync::SyncError> {
/// let mut sfg = SfgBuilder::new(ClockSpec::default());
/// let x = sfg.input("x");
/// let y_state = sfg.feedback("y_state");
/// let fed_back = sfg.gain(y_state, Ratio::new(3, 4)?)?;
/// let fresh = sfg.gain(x, Ratio::new(1, 4)?)?;
/// let next = sfg.add(&[fed_back, fresh]);
/// sfg.bind_feedback("y_state", next)?;
/// sfg.output("y", y_state);
/// let system = sfg.compile()?;
/// assert!(system.output_species("y").is_ok());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SfgBuilder {
    clock: ClockSpec,
    net: Netlist,
    auto_delays: usize,
    auto_gains: usize,
}

impl SfgBuilder {
    /// Creates an empty signal-flow graph.
    #[must_use]
    pub fn new(clock: ClockSpec) -> Self {
        SfgBuilder {
            clock,
            net: Netlist::new(),
            auto_delays: 0,
            auto_gains: 0,
        }
    }

    /// The underlying IR.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.net
    }

    /// Declares an input port.
    pub fn input(&mut self, name: &str) -> Node {
        self.net.input(name)
    }

    /// A unit delay (`z⁻¹`), auto-named.
    pub fn delay(&mut self, src: Node) -> Node {
        self.auto_delays += 1;
        self.net.delay(&format!("z{}", self.auto_delays), src, 0.0)
    }

    /// A named unit delay.
    pub fn named_delay(&mut self, name: &str, src: Node) -> Node {
        self.net.delay(name, src, 0.0)
    }

    /// A feedback register (bind its source later with
    /// [`bind_feedback`](Self::bind_feedback)).
    pub fn feedback(&mut self, name: &str) -> Node {
        self.net.register(name, 0.0)
    }

    /// Binds the source of a feedback register.
    ///
    /// # Errors
    ///
    /// [`SyncError::UnknownPort`] if no register has that name.
    pub fn bind_feedback(&mut self, name: &str, source: Node) -> Result<(), SyncError> {
        self.net.bind(name, source).map_err(SyncError::from)
    }

    /// A rational gain, synthesized as a cascade of molecular scaling
    /// stages (each at most a three-body collision).
    ///
    /// # Errors
    ///
    /// Propagates [`SyncError::UnsupportedScale`] from [`Ratio`]
    /// construction — but the `Ratio` passed in is already validated, so
    /// this only fails for internal inconsistencies.
    pub fn gain(&mut self, src: Node, ratio: Ratio) -> Result<Node, SyncError> {
        self.auto_gains += 1;
        let mut node = src;
        for (p, q) in ratio.stages() {
            if (p, q) == (1, 1) {
                continue;
            }
            node = self.net.scale(node, p, q);
        }
        Ok(node)
    }

    /// Sums any number of signals.
    pub fn add(&mut self, terms: &[Node]) -> Node {
        self.net.add(terms)
    }

    /// Clamped difference `max(a − b, 0)` — used for negative filter
    /// coefficients (the subtracted branch).
    pub fn sub(&mut self, a: Node, b: Node) -> Node {
        self.net.sub(a, b)
    }

    /// Declares an output port.
    pub fn output(&mut self, name: &str, src: Node) {
        self.net.output(name, src);
    }

    /// Compiles to a reaction system.
    ///
    /// # Errors
    ///
    /// See [`compile_netlist`].
    pub fn compile(self) -> Result<CompiledSystem, SyncError> {
        compile_netlist(self.net, self.clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_cascades_compile() {
        let mut sfg = SfgBuilder::new(ClockSpec::default());
        let x = sfg.input("x");
        let g = sfg.gain(x, Ratio::new(5, 12).unwrap()).unwrap();
        sfg.output("y", g);
        assert!(sfg.compile().is_ok());
    }

    #[test]
    fn unit_gain_is_a_wire() {
        let mut sfg = SfgBuilder::new(ClockSpec::default());
        let x = sfg.input("x");
        let g = sfg.gain(x, Ratio::one()).unwrap();
        assert_eq!(g, x, "unit gain adds no nodes");
        sfg.output("y", g);
        assert!(sfg.compile().is_ok());
    }

    #[test]
    fn delays_autoname_uniquely() {
        let mut sfg = SfgBuilder::new(ClockSpec::default());
        let x = sfg.input("x");
        let d1 = sfg.delay(x);
        let d2 = sfg.delay(d1);
        sfg.output("y", d2);
        assert!(sfg.compile().is_ok());
    }

    #[test]
    fn unbound_feedback_fails_compilation() {
        let mut sfg = SfgBuilder::new(ClockSpec::default());
        let f = sfg.feedback("loop");
        sfg.output("y", f);
        assert!(sfg.compile().is_err());
    }
}
