//! Multi-entry history over a persisted perf trajectory.
//!
//! The `trend --append` flag folds each run's headline numbers into a
//! `BENCH_*.json`-style `"trajectory"` array; this module is the reader
//! side: it parses that array back into [`TrajectoryEntry`] values,
//! renders the whole history as one markdown/JSON report, and optionally
//! gates on *drift* — the movement between the oldest and newest of the
//! last K entries, compared with the same metric-class rules a two-run
//! trend uses ([`classify_metric`], [`TrendOptions`]).
//!
//! Entries whose `experiments` list differs from the newest entry's are
//! excluded from the gate window (a quick-run baseline is not comparable
//! to a full run) but still shown in the report.

use crate::read::JsonValue;
use crate::summary::format_metric;
use crate::trend::{
    classify_metric, exact_equal, timing_verdict, tolerance_verdict, verdict_word, MetricClass,
    MetricDelta, TrendOptions, TrendVerdict,
};
use serde::Serialize;

/// One appended run in a `"trajectory"` array.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TrajectoryEntry {
    /// The run's label (`--label`, default `"run"`).
    pub label: String,
    /// When the entry was appended (seconds since the Unix epoch; 0 when
    /// the writer could not read the clock).
    pub unix_time: f64,
    /// The experiment ids the run covered.
    pub experiments: Vec<String>,
    /// Total cells across those experiments.
    pub cells: f64,
    /// Sum of per-cell wall clocks, in seconds.
    pub cell_wall_secs: f64,
    /// Summed exact-class metrics, in recorded order.
    pub metrics: Vec<(String, f64)>,
}

/// The drift comparison over the gate window.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HistoryGate {
    /// The requested window (`--gate-last K`).
    pub window: usize,
    /// Entries in the window sharing the newest entry's experiment set —
    /// the entries the gate actually considered. Fewer than 2 means
    /// nothing was comparable and the gate passes vacuously.
    pub compared: usize,
    /// Window entries excluded for covering a different experiment set.
    pub skipped: usize,
    /// The label of the entry the newest compares against (the oldest
    /// comparable entry in the window).
    pub baseline_label: Option<String>,
    /// Metrics that moved between that baseline and the newest entry.
    pub deltas: Vec<MetricDelta>,
    /// The gate verdict.
    pub verdict: TrendVerdict,
}

/// A trajectory rendered as a report, with an optional drift gate.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HistoryReport {
    /// Every entry, in file (append) order.
    pub entries: Vec<TrajectoryEntry>,
    /// The drift gate, when one was requested.
    pub gate: Option<HistoryGate>,
}

/// Parses the `"trajectory"` array of a `BENCH_*.json`-style document.
///
/// # Errors
///
/// A message naming the offending entry when the document has no
/// top-level `trajectory` array or an entry's fields have the wrong
/// shape. Absent optional fields default (label `"run"`, empty
/// experiment list, zero counts).
pub fn parse_trajectory(doc: &JsonValue) -> Result<Vec<TrajectoryEntry>, String> {
    let Some(entries) = doc.get("trajectory").and_then(JsonValue::as_array) else {
        return Err("no top-level `trajectory` array".to_owned());
    };
    entries
        .iter()
        .enumerate()
        .map(|(i, entry)| {
            if entry.as_object().is_none() {
                return Err(format!("trajectory[{i}] is not an object"));
            }
            let experiments = match entry.get("experiments") {
                None => Vec::new(),
                Some(v) => v
                    .as_array()
                    .ok_or_else(|| format!("trajectory[{i}].experiments is not an array"))?
                    .iter()
                    .map(|id| {
                        id.as_str().map(str::to_owned).ok_or_else(|| {
                            format!("trajectory[{i}].experiments holds a non-string")
                        })
                    })
                    .collect::<Result<_, String>>()?,
            };
            let metrics = match entry.get("metrics") {
                None => Vec::new(),
                Some(v) => v
                    .as_object()
                    .ok_or_else(|| format!("trajectory[{i}].metrics is not an object"))?
                    .iter()
                    .map(|(name, value)| {
                        // null is how non-finite values travel
                        let value = match value {
                            JsonValue::Null => f64::NAN,
                            other => other.as_f64().ok_or_else(|| {
                                format!("trajectory[{i}].metrics.{name} is not a number")
                            })?,
                        };
                        Ok((name.clone(), value))
                    })
                    .collect::<Result<_, String>>()?,
            };
            let number = |key: &str| entry.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0);
            Ok(TrajectoryEntry {
                label: entry
                    .get("label")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("run")
                    .to_owned(),
                unix_time: number("unix_time"),
                experiments,
                cells: number("cells"),
                cell_wall_secs: number("cell_wall_secs"),
                metrics,
            })
        })
        .collect()
}

/// The metric view the gate compares: the entry's summed metrics plus the
/// synthetic `cells` (exact — a changed cell count is a shape change) and
/// `cell_wall_secs` (a timing, by its name) columns.
fn gate_metrics(entry: &TrajectoryEntry) -> Vec<(String, f64)> {
    let mut out = vec![
        ("cells".to_owned(), entry.cells),
        ("cell_wall_secs".to_owned(), entry.cell_wall_secs),
    ];
    out.extend(entry.metrics.iter().cloned());
    out
}

fn compare_entries(
    baseline: &TrajectoryEntry,
    latest: &TrajectoryEntry,
    opts: &TrendOptions,
) -> Vec<MetricDelta> {
    let base = gate_metrics(baseline);
    let cand = gate_metrics(latest);
    let mut names: Vec<&str> = cand.iter().map(|(n, _)| n.as_str()).collect();
    for (name, _) in &base {
        if !names.contains(&name.as_str()) {
            names.push(name);
        }
    }
    let mut deltas = Vec::new();
    for name in names {
        let b = base.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        let c = cand.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        let override_tol = opts.tolerance_for(name);
        let class = if override_tol.is_some() {
            MetricClass::Tolerance
        } else {
            classify_metric(name)
        };
        let verdict = match (b, c) {
            // the metric schema grows across PRs (new counters appear as
            // engines land); a metric only the newest entry records has no
            // drift to measure — but one that *disappeared* is a shape
            // change and gates
            (None, Some(_)) => TrendVerdict::Unchanged,
            (Some(_), None) => TrendVerdict::Regressed,
            (Some(b), Some(c)) => match class {
                MetricClass::Exact if exact_equal(b, c) => TrendVerdict::Unchanged,
                MetricClass::Exact => TrendVerdict::Regressed,
                MetricClass::Timing => timing_verdict(b, c, opts),
                MetricClass::Tolerance => {
                    tolerance_verdict(b, c, override_tol.expect("class implies an override"))
                }
            },
            (None, None) => unreachable!("name came from one of the sides"),
        };
        if verdict != TrendVerdict::Unchanged {
            deltas.push(MetricDelta {
                name: name.to_owned(),
                baseline: b,
                candidate: c,
                class,
                verdict,
            });
        }
    }
    deltas
}

/// Builds the history report: every entry, plus — when `gate_last` is
/// `Some(k)` — a drift gate comparing the newest entry against the oldest
/// of the last `k` entries that cover the same experiment set.
///
/// The gate passes vacuously (verdict [`TrendVerdict::Unchanged`], no
/// deltas) when fewer than two window entries are comparable: a fresh
/// trajectory, or a window full of runs over different experiment sets,
/// has no drift to measure.
#[must_use]
pub fn history_report(
    entries: &[TrajectoryEntry],
    gate_last: Option<usize>,
    opts: &TrendOptions,
) -> HistoryReport {
    let gate = gate_last.map(|window| {
        let start = entries.len().saturating_sub(window);
        let in_window = &entries[start..];
        let reference = in_window.last();
        let comparable: Vec<&TrajectoryEntry> = in_window
            .iter()
            .filter(|e| reference.is_some_and(|newest| e.experiments == newest.experiments))
            .collect();
        let skipped = in_window.len() - comparable.len();
        if comparable.len() < 2 {
            return HistoryGate {
                window,
                compared: comparable.len(),
                skipped,
                baseline_label: None,
                deltas: Vec::new(),
                verdict: TrendVerdict::Unchanged,
            };
        }
        let baseline = comparable[0];
        let latest = *comparable.last().expect("len >= 2");
        let deltas = compare_entries(baseline, latest, opts);
        let verdict = if deltas.iter().any(|d| d.verdict == TrendVerdict::Regressed) {
            TrendVerdict::Regressed
        } else if deltas.is_empty() {
            TrendVerdict::Unchanged
        } else {
            TrendVerdict::Improved
        };
        HistoryGate {
            window,
            compared: comparable.len(),
            skipped,
            baseline_label: Some(baseline.label.clone()),
            deltas,
            verdict,
        }
    });
    HistoryReport {
        entries: entries.to_vec(),
        gate,
    }
}

impl HistoryReport {
    /// `true` when CI should fail.
    #[must_use]
    pub fn is_regression(&self) -> bool {
        self.gate
            .as_ref()
            .is_some_and(|g| g.verdict == TrendVerdict::Regressed)
    }

    /// The whole report as a JSON document (for machine consumption).
    #[must_use]
    pub fn to_json(&self) -> String {
        Serialize::to_json(self)
    }

    /// The report as a GitHub-flavoured markdown block: one overview row
    /// per entry (metric columns are the union across entries, in first
    /// appearance order), then the drift-gate verdict when a gate ran.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut columns: Vec<&str> = Vec::new();
        for entry in &self.entries {
            for (name, _) in &entry.metrics {
                if !columns.contains(&name.as_str()) {
                    columns.push(name);
                }
            }
        }
        let mut out = String::from("| # | label | experiments | cells | cell wall (s)");
        for name in &columns {
            out.push_str(&format!(" | {name}"));
        }
        out.push_str(" |\n|---|---|---|---|---|");
        out.push_str(&"---|".repeat(columns.len()));
        out.push('\n');
        for (i, entry) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {}",
                i,
                entry.label,
                entry.experiments.join(" "),
                format_metric(entry.cells),
                format_metric(entry.cell_wall_secs),
            ));
            for name in &columns {
                let value = entry
                    .metrics
                    .iter()
                    .find(|(n, _)| n == name)
                    .map_or_else(|| "—".to_owned(), |(_, v)| format_metric(*v));
                out.push_str(&format!(" | {value}"));
            }
            out.push_str(" |\n");
        }
        if let Some(gate) = &self.gate {
            out.push_str(&format!(
                "\n**drift gate** — last {} entries: {} compared",
                gate.window, gate.compared
            ));
            if gate.skipped > 0 {
                out.push_str(&format!(
                    ", {} skipped (different experiment set)",
                    gate.skipped
                ));
            }
            if let Some(label) = &gate.baseline_label {
                out.push_str(&format!(", drift measured against `{label}`"));
            }
            out.push('\n');
            if !gate.deltas.is_empty() {
                out.push_str("\n| metric | oldest | newest | verdict |\n|---|---|---|---|\n");
                for d in &gate.deltas {
                    out.push_str(&format!(
                        "| {} | {} | {} | {} |\n",
                        d.name,
                        d.baseline.map_or_else(|| "—".to_owned(), format_metric),
                        d.candidate.map_or_else(|| "—".to_owned(), format_metric),
                        verdict_word(d.verdict),
                    ));
                }
            }
            out.push_str(&format!(
                "\n**verdict: {}**\n",
                verdict_word(gate.verdict).to_uppercase()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(label: &str, experiments: &[&str], wall: f64, steps: f64) -> TrajectoryEntry {
        TrajectoryEntry {
            label: label.to_owned(),
            unix_time: 0.0,
            experiments: experiments.iter().map(|&s| s.to_owned()).collect(),
            cells: 6.0,
            cell_wall_secs: wall,
            metrics: vec![
                ("ode_steps_accepted".to_owned(), steps),
                ("ssa_events".to_owned(), 100.0),
            ],
        }
    }

    #[test]
    fn parses_a_bench_style_trajectory() {
        let doc = JsonValue::parse(
            r#"{"trajectory":[
                {"label":"a","unix_time":5,"experiments":["e10"],"cells":6,
                 "cell_wall_secs":1.5,"metrics":{"ssa_events":10,"residual":null}},
                {"cells":2}
            ]}"#,
        )
        .unwrap();
        let entries = parse_trajectory(&doc).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].label, "a");
        assert_eq!(entries[0].experiments, vec!["e10".to_owned()]);
        assert_eq!(entries[0].metrics[0], ("ssa_events".to_owned(), 10.0));
        assert!(entries[0].metrics[1].1.is_nan(), "null reads back as NaN");
        assert_eq!(entries[1].label, "run", "label defaults");
        assert!(entries[1].experiments.is_empty());

        assert!(parse_trajectory(&JsonValue::parse("{}").unwrap()).is_err());
        let bad = JsonValue::parse(r#"{"trajectory":[{"metrics":[1]}]}"#).unwrap();
        assert!(parse_trajectory(&bad).unwrap_err().contains("metrics"));
    }

    #[test]
    fn stable_history_passes_the_gate() {
        let entries = vec![
            entry("one", &["e10"], 10.0, 500.0),
            entry("two", &["e10"], 10.3, 500.0),
            entry("three", &["e10"], 9.8, 500.0),
        ];
        let report = history_report(&entries, Some(3), &TrendOptions::default());
        let gate = report.gate.as_ref().unwrap();
        assert_eq!(gate.compared, 3);
        assert_eq!(gate.skipped, 0);
        assert_eq!(gate.baseline_label.as_deref(), Some("one"));
        assert_eq!(gate.verdict, TrendVerdict::Unchanged);
        assert!(!report.is_regression());
        // every entry shows up in the rendered table
        let md = report.to_markdown();
        for label in ["one", "two", "three"] {
            assert!(md.contains(label), "{md}");
        }
        assert!(md.contains("verdict: UNCHANGED"), "{md}");
    }

    #[test]
    fn counter_drift_in_the_window_gates() {
        let entries = vec![
            entry("old", &["e10"], 10.0, 480.0), // outside the window
            entry("base", &["e10"], 10.0, 500.0),
            entry("new", &["e10"], 10.0, 510.0), // deterministic drift
        ];
        let report = history_report(&entries, Some(2), &TrendOptions::default());
        let gate = report.gate.as_ref().unwrap();
        assert_eq!(gate.verdict, TrendVerdict::Regressed);
        assert!(report.is_regression());
        assert_eq!(gate.deltas.len(), 1);
        assert_eq!(gate.deltas[0].name, "ode_steps_accepted");
        assert_eq!(gate.deltas[0].baseline, Some(500.0));
        assert_eq!(gate.deltas[0].candidate, Some(510.0));

        // a tolerance override turns the same drift into a pass
        let relaxed = TrendOptions::default().with_tolerance("ode_steps_accepted", 0.1);
        let report = history_report(&entries, Some(2), &relaxed);
        assert!(!report.is_regression());
    }

    #[test]
    fn wall_drift_uses_the_timing_tolerance_and_direction() {
        let fast_then_slow = vec![
            entry("base", &["e10"], 10.0, 500.0),
            entry("new", &["e10"], 16.0, 500.0), // +60% > the 50% default
        ];
        let report = history_report(&fast_then_slow, Some(2), &TrendOptions::default());
        assert!(report.is_regression());

        let slow_then_fast = vec![
            entry("base", &["e10"], 20.0, 500.0),
            entry("new", &["e10"], 8.0, 500.0), // -60% beats the 50% band
        ];
        let report = history_report(&slow_then_fast, Some(2), &TrendOptions::default());
        let gate = report.gate.as_ref().unwrap();
        assert_eq!(gate.verdict, TrendVerdict::Improved, "faster never fails");
        assert!(!report.is_regression());
    }

    #[test]
    fn schema_growth_passes_but_disappearing_metrics_gate() {
        // a counter only the newest entry records (a new engine landed)
        // has no drift to measure and must not gate
        let mut grown = entry("new", &["e10"], 10.0, 500.0);
        grown.metrics.push(("batch_width".to_owned(), 16.0));
        let entries = vec![entry("base", &["e10"], 10.0, 500.0), grown];
        let report = history_report(&entries, Some(2), &TrendOptions::default());
        assert!(!report.is_regression(), "new metrics are schema growth");

        // a counter that vanished is a shape change and gates
        let mut shrunk = entry("new", &["e10"], 10.0, 500.0);
        shrunk.metrics.retain(|(n, _)| n != "ssa_events");
        let entries = vec![entry("base", &["e10"], 10.0, 500.0), shrunk];
        let report = history_report(&entries, Some(2), &TrendOptions::default());
        assert!(report.is_regression(), "a disappearing metric gates");
    }

    #[test]
    fn entries_with_other_experiment_sets_are_skipped_not_compared() {
        let entries = vec![
            entry("full", &["e10", "e6"], 50.0, 9000.0),
            entry("quick base", &["e10"], 10.0, 500.0),
            entry("full again", &["e10", "e6"], 50.0, 9999.0),
            entry("quick new", &["e10"], 10.0, 500.0),
        ];
        let report = history_report(&entries, Some(4), &TrendOptions::default());
        let gate = report.gate.as_ref().unwrap();
        assert_eq!(gate.compared, 2, "only the two quick runs are comparable");
        assert_eq!(gate.skipped, 2);
        assert_eq!(gate.baseline_label.as_deref(), Some("quick base"));
        assert_eq!(gate.verdict, TrendVerdict::Unchanged);

        // a single comparable entry passes vacuously
        let report = history_report(&entries[..2], Some(2), &TrendOptions::default());
        let gate = report.gate.as_ref().unwrap();
        assert_eq!(gate.compared, 1);
        assert_eq!(gate.verdict, TrendVerdict::Unchanged);
        assert!(gate.baseline_label.is_none());
    }

    #[test]
    fn report_serializes_to_parseable_json() {
        let entries = vec![
            entry("base", &["e10"], 10.0, 500.0),
            entry("new", &["e10"], 10.0, 501.0),
        ];
        let report = history_report(&entries, Some(2), &TrendOptions::default());
        let doc = JsonValue::parse(&report.to_json()).expect("valid JSON");
        assert_eq!(
            doc.get("entries")
                .and_then(JsonValue::as_array)
                .map(<[_]>::len),
            Some(2)
        );
        let gate = doc.get("gate").expect("gate present");
        assert_eq!(
            gate.get("verdict").and_then(JsonValue::as_str),
            Some("Regressed")
        );
    }
}
