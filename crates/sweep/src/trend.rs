//! Regression trending over persisted sweep summaries.
//!
//! The metrics pipeline persists *what every cell did* (`--summary`
//! writes per-cell simulator counters next to status and timing); this
//! module is the part that finally reads two such runs and says whether
//! anything moved. The comparison is metric-class aware:
//!
//! * **Deterministic counters** — step counts, LU factorizations, SSA
//!   events, final integration times, seeds — must match *exactly*. Any
//!   difference, in either direction, is a regression verdict: the
//!   reproduction's claims (e.g. E6's error cliff at the rate-ratio
//!   boundary) only stay reproduced while these numbers are stable, and a
//!   "2× fewer steps" surprise deserves a deliberately regenerated
//!   baseline, not a silent pass.
//! * **Wall-clock readings** — the per-cell `wall_secs` column and any
//!   metric whose name marks it as a timing (see [`classify_metric`]) —
//!   are machine- and load-dependent, so they compare against a relative
//!   tolerance plus an absolute noise floor ([`TrendOptions`]); getting
//!   *faster* beyond the same threshold is reported as an improvement,
//!   never a failure.
//! * **Per-metric overrides** — [`TrendOptions::tolerances`] (the CLI's
//!   repeatable `--tolerance name=REL` flag) moves a named metric out of
//!   its class into an explicit relative band, for counters that are
//!   deterministic in principle but platform-noisy in practice (e.g.
//!   Newton iteration totals under differing FMA contraction).
//!
//! Cells pair by label (duplicate labels pair positionally); cells present
//! on only one side, like experiments present in only one directory, are
//! structural changes and gate by default. [`compare_summaries`] compares
//! two loaded summaries, [`compare_dirs`] two `--summary` directories, and
//! [`DirTrend::to_markdown`] / [`DirTrend::to_json`] render the verdict
//! for humans and for CI.

use crate::read::{read_summary_csv, read_summary_json, ReadError};
use crate::summary::{format_metric, JobRecord, JobStatus, SweepSummary};
use serde::Serialize;
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// A per-metric relative tolerance override: the named metric is compared
/// against `max(|baseline|, |candidate|) * rel_tol` instead of its class
/// default (no absolute noise floor — the caller chose the band
/// deliberately). The band is symmetric in the larger magnitude so a
/// zero-baseline metric (e.g. `batch_width` appearing in a batched run)
/// can still be overridden away.
///
/// This is how a gate keeps exact comparison for most counters while
/// allowing a deliberately noisy one (e.g. `newton_iterations` across
/// platform-dependent rounding) a bounded drift band.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricTolerance {
    /// The exact metric name the override applies to (`"wall_secs"` is
    /// allowed and overrides the per-cell wall-time column).
    pub name: String,
    /// Relative tolerance: the metric may move by `max(|baseline|,
    /// |candidate|) * rel_tol` in either direction before the movement
    /// counts; beyond that, growth regresses and shrinkage improves.
    pub rel_tol: f64,
}

/// Tolerances and gating policy for a trend comparison.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TrendOptions {
    /// Relative tolerance for wall-clock comparisons: a timing may grow by
    /// `baseline * wall_rel_tol` before it counts as a regression.
    pub wall_rel_tol: f64,
    /// Absolute noise floor, in seconds: timing deltas smaller than this
    /// never gate, whatever the relative change (sub-floor cells are all
    /// scheduler noise).
    pub wall_floor_secs: f64,
    /// When `true` (the default), an experiment id present in only one of
    /// the compared directories is itself a regression. Disable when the
    /// candidate is a deliberate subset run (e.g. `repro e10
    /// --trend-against` a full-run baseline).
    pub require_matching_experiments: bool,
    /// Per-metric relative tolerance overrides (first match by name wins).
    /// An overridden metric is compared as [`MetricClass::Tolerance`]
    /// instead of its name-derived class.
    pub tolerances: Vec<MetricTolerance>,
}

impl Default for TrendOptions {
    /// 50% relative wall tolerance, 50 ms noise floor, matching
    /// experiment sets required, no per-metric overrides.
    fn default() -> Self {
        TrendOptions {
            wall_rel_tol: 0.5,
            wall_floor_secs: 0.05,
            require_matching_experiments: true,
            tolerances: Vec::new(),
        }
    }
}

impl TrendOptions {
    /// Sets the relative wall-clock tolerance (builder style).
    #[must_use]
    pub fn with_wall_rel_tol(mut self, tol: f64) -> Self {
        self.wall_rel_tol = tol;
        self
    }

    /// Sets the absolute wall-clock noise floor (builder style).
    #[must_use]
    pub fn with_wall_floor_secs(mut self, secs: f64) -> Self {
        self.wall_floor_secs = secs;
        self
    }

    /// Sets whether mismatched experiment sets gate (builder style).
    #[must_use]
    pub fn with_require_matching_experiments(mut self, require: bool) -> Self {
        self.require_matching_experiments = require;
        self
    }

    /// Adds a per-metric relative tolerance override (builder style).
    #[must_use]
    pub fn with_tolerance(mut self, name: impl Into<String>, rel_tol: f64) -> Self {
        self.tolerances.push(MetricTolerance {
            name: name.into(),
            rel_tol,
        });
        self
    }

    /// The relative tolerance overriding `name`'s comparison, if any
    /// (first match wins).
    #[must_use]
    pub fn tolerance_for(&self, name: &str) -> Option<f64> {
        self.tolerances
            .iter()
            .find(|t| t.name == name)
            .map(|t| t.rel_tol)
    }
}

/// How a metric is compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum MetricClass {
    /// Deterministic counter: compared exactly, any change gates.
    Exact,
    /// Wall-clock reading: compared with tolerance plus noise floor.
    Timing,
    /// Explicitly overridden: compared against a caller-supplied relative
    /// band (see [`MetricTolerance`]).
    Tolerance,
}

/// Classifies a metric by name: `wall_secs` itself, names ending in
/// `_secs` or `_wall`, and names starting with `wall_` are
/// [`MetricClass::Timing`]; everything else — the simulator counters, the
/// final integration time, the seed — is [`MetricClass::Exact`].
#[must_use]
pub fn classify_metric(name: &str) -> MetricClass {
    if name == "wall_secs"
        || name.ends_with("_secs")
        || name.ends_with("_wall")
        || name.starts_with("wall_")
    {
        MetricClass::Timing
    } else {
        MetricClass::Exact
    }
}

/// The outcome of a comparison, at any granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TrendVerdict {
    /// Nothing moved beyond tolerance.
    Unchanged,
    /// Only wall-clock readings moved, and only downward.
    Improved,
    /// A deterministic value changed, a timing exceeded tolerance, or the
    /// compared structures do not match.
    Regressed,
}

/// One metric's movement between baseline and candidate.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricDelta {
    /// The metric name (`"wall_secs"` for the cell's wall-time column).
    pub name: String,
    /// The baseline value; `None` when the metric is new in the candidate.
    pub baseline: Option<f64>,
    /// The candidate value; `None` when the metric disappeared.
    pub candidate: Option<f64>,
    /// How the metric was compared.
    pub class: MetricClass,
    /// What the movement means.
    pub verdict: TrendVerdict,
}

/// A paired cell whose comparison found movement. Unchanged cells are only
/// counted, not materialized.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CellTrend {
    /// The cell label both sides share.
    pub label: String,
    /// The baseline cell's terminal status.
    pub baseline_status: JobStatus,
    /// The candidate cell's terminal status.
    pub candidate_status: JobStatus,
    /// Metrics that moved (regressions and improvements only).
    pub deltas: Vec<MetricDelta>,
    /// The cell's overall verdict.
    pub verdict: TrendVerdict,
}

/// The comparison of one experiment's two summaries.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SummaryTrend {
    /// Cells in the baseline summary.
    pub baseline_cells: usize,
    /// Cells in the candidate summary.
    pub candidate_cells: usize,
    /// The baseline sweep's wall time (informational — worker counts may
    /// differ between runs, so sweep-level wall never gates).
    pub baseline_wall_secs: f64,
    /// The candidate sweep's wall time (informational).
    pub candidate_wall_secs: f64,
    /// Paired cells with movement, in candidate order.
    pub cells: Vec<CellTrend>,
    /// Labels present only in the baseline (a structural regression).
    pub missing: Vec<String>,
    /// Labels present only in the candidate (a structural regression).
    pub added: Vec<String>,
    /// Paired cells with no movement.
    pub unchanged: usize,
    /// Paired cells whose only movement was wall-clock improvement.
    pub improved: usize,
    /// Paired cells with at least one regressed comparison.
    pub regressed: usize,
    /// The experiment's overall verdict.
    pub verdict: TrendVerdict,
}

/// Compares two exact values, treating NaN as equal to NaN (both writers
/// persist every non-finite value as `null`, which reads back as NaN).
pub(crate) fn exact_equal(a: f64, b: f64) -> bool {
    a == b || (a.is_nan() && b.is_nan())
}

/// A job's metrics as CSV semantics see them: last value per name, in
/// first-recorded order.
fn last_values(job: &JobRecord) -> Vec<(&str, f64)> {
    let mut out: Vec<(&str, f64)> = Vec::with_capacity(job.metrics.len());
    for (name, value) in &job.metrics {
        if let Some(entry) = out.iter_mut().find(|(n, _)| *n == name.as_str()) {
            entry.1 = *value;
        } else {
            out.push((name.as_str(), *value));
        }
    }
    out
}

/// Compares one timing reading. Returns the verdict of the movement.
pub(crate) fn timing_verdict(baseline: f64, candidate: f64, opts: &TrendOptions) -> TrendVerdict {
    let threshold = (baseline.abs() * opts.wall_rel_tol).max(opts.wall_floor_secs);
    if candidate - baseline > threshold {
        TrendVerdict::Regressed
    } else if baseline - candidate > threshold {
        TrendVerdict::Improved
    } else {
        TrendVerdict::Unchanged
    }
}

/// Compares a metric under a per-metric relative override (no absolute
/// floor).
pub(crate) fn tolerance_verdict(baseline: f64, candidate: f64, rel_tol: f64) -> TrendVerdict {
    let threshold = baseline.abs().max(candidate.abs()) * rel_tol;
    if candidate - baseline > threshold {
        TrendVerdict::Regressed
    } else if baseline - candidate > threshold {
        TrendVerdict::Improved
    } else {
        TrendVerdict::Unchanged
    }
}

fn compare_cell(base: &JobRecord, cand: &JobRecord, opts: &TrendOptions) -> CellTrend {
    let mut deltas = Vec::new();
    let base_metrics = last_values(base);
    let cand_metrics = last_values(cand);

    // candidate order first, then baseline-only names
    let mut names: Vec<&str> = cand_metrics.iter().map(|(n, _)| *n).collect();
    for (name, _) in &base_metrics {
        if !names.contains(name) {
            names.push(name);
        }
    }

    for name in names {
        let b = base_metrics
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v);
        let c = cand_metrics
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v);
        let override_tol = opts.tolerance_for(name);
        let class = if override_tol.is_some() {
            MetricClass::Tolerance
        } else {
            classify_metric(name)
        };
        let verdict = match (b, c) {
            // a metric appearing or disappearing is a shape change
            (None, Some(_)) | (Some(_), None) => TrendVerdict::Regressed,
            (Some(b), Some(c)) => match class {
                MetricClass::Exact if exact_equal(b, c) => TrendVerdict::Unchanged,
                MetricClass::Exact => TrendVerdict::Regressed,
                MetricClass::Timing => timing_verdict(b, c, opts),
                MetricClass::Tolerance => {
                    tolerance_verdict(b, c, override_tol.expect("class implies an override"))
                }
            },
            (None, None) => unreachable!("name came from one of the sides"),
        };
        if verdict != TrendVerdict::Unchanged {
            deltas.push(MetricDelta {
                name: name.to_owned(),
                baseline: b,
                candidate: c,
                class,
                verdict,
            });
        }
    }

    // the per-cell wall-time column: a timing, unless overridden by name
    let (wall_class, wall_verdict) = match opts.tolerance_for("wall_secs") {
        Some(tol) => (
            MetricClass::Tolerance,
            tolerance_verdict(base.wall_secs, cand.wall_secs, tol),
        ),
        None => (
            MetricClass::Timing,
            timing_verdict(base.wall_secs, cand.wall_secs, opts),
        ),
    };
    if wall_verdict != TrendVerdict::Unchanged {
        deltas.push(MetricDelta {
            name: "wall_secs".to_owned(),
            baseline: Some(base.wall_secs),
            candidate: Some(cand.wall_secs),
            class: wall_class,
            verdict: wall_verdict,
        });
    }

    let status_changed = base.status != cand.status;
    let verdict = if status_changed || deltas.iter().any(|d| d.verdict == TrendVerdict::Regressed) {
        TrendVerdict::Regressed
    } else if deltas.is_empty() {
        TrendVerdict::Unchanged
    } else {
        TrendVerdict::Improved
    };
    CellTrend {
        label: cand.label.clone(),
        baseline_status: base.status,
        candidate_status: cand.status,
        deltas,
        verdict,
    }
}

/// Compares two summaries of the same sweep cell-by-cell.
///
/// Cells pair by label; a label recorded several times pairs positionally
/// (first baseline occurrence with first candidate occurrence, and so on).
/// Unpaired cells land in [`SummaryTrend::missing`] / `added` and force a
/// regressed verdict — a sweep that changed shape is not comparable, and
/// silently skipping cells would defeat the gate.
#[must_use]
pub fn compare_summaries(
    baseline: &SweepSummary,
    candidate: &SweepSummary,
    opts: &TrendOptions,
) -> SummaryTrend {
    let mut by_label: HashMap<&str, Vec<&JobRecord>> = HashMap::new();
    for job in &baseline.jobs {
        by_label.entry(job.label.as_str()).or_default().push(job);
    }

    let mut consumed: HashMap<&str, usize> = HashMap::new();
    let mut cells = Vec::new();
    let mut added = Vec::new();
    let (mut unchanged, mut improved, mut regressed) = (0usize, 0usize, 0usize);
    for cand in &candidate.jobs {
        let taken = consumed.entry(cand.label.as_str()).or_insert(0);
        let base = by_label
            .get(cand.label.as_str())
            .and_then(|group| group.get(*taken));
        let Some(base) = base else {
            added.push(cand.label.clone());
            continue;
        };
        *taken += 1;
        let cell = compare_cell(base, cand, opts);
        match cell.verdict {
            TrendVerdict::Unchanged => unchanged += 1,
            TrendVerdict::Improved => improved += 1,
            TrendVerdict::Regressed => regressed += 1,
        }
        if cell.verdict != TrendVerdict::Unchanged {
            cells.push(cell);
        }
    }
    // baseline cells never paired, in job order
    let missing: Vec<String> = baseline
        .jobs
        .iter()
        .filter(|job| {
            let group = &by_label[job.label.as_str()];
            let used = consumed.get(job.label.as_str()).copied().unwrap_or(0);
            // the first `used` occurrences of this label were paired
            let occurrence = group
                .iter()
                .position(|j| std::ptr::eq(*j, *job))
                .expect("job indexed by its own label");
            occurrence >= used
        })
        .map(|job| job.label.clone())
        .collect();

    let verdict = if regressed > 0 || !missing.is_empty() || !added.is_empty() {
        TrendVerdict::Regressed
    } else if improved > 0 {
        TrendVerdict::Improved
    } else {
        TrendVerdict::Unchanged
    };
    SummaryTrend {
        baseline_cells: baseline.jobs.len(),
        candidate_cells: candidate.jobs.len(),
        baseline_wall_secs: baseline.wall_secs,
        candidate_wall_secs: candidate.wall_secs,
        cells,
        missing,
        added,
        unchanged,
        improved,
        regressed,
        verdict,
    }
}

/// One experiment's comparison inside a directory-level trend.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ExperimentTrend {
    /// The experiment id (the `<id>.summary.json` file stem).
    pub id: String,
    /// The experiment's comparison.
    pub trend: SummaryTrend,
}

/// The comparison of two `--summary` directories.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DirTrend {
    /// Experiments present in both directories, by id.
    pub experiments: Vec<ExperimentTrend>,
    /// Experiment ids present only in the baseline directory.
    pub missing: Vec<String>,
    /// Experiment ids present only in the candidate directory.
    pub added: Vec<String>,
    /// The overall verdict (the gate: regressed ⇒ exit nonzero).
    pub verdict: TrendVerdict,
}

impl DirTrend {
    /// `true` when CI should fail.
    #[must_use]
    pub fn is_regression(&self) -> bool {
        self.verdict == TrendVerdict::Regressed
    }

    /// The whole report as a JSON document (for machine consumption).
    #[must_use]
    pub fn to_json(&self) -> String {
        Serialize::to_json(self)
    }

    /// The report as a GitHub-flavoured markdown table block: one overview
    /// row per experiment, one detail table per experiment with movement,
    /// and a bold overall verdict line. Detail tables are capped at
    /// [`MARKDOWN_MAX_ROWS`] rows each.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::from(
            "| experiment | baseline cells | candidate cells | unchanged | improved | regressed | verdict |\n\
             |---|---|---|---|---|---|---|\n",
        );
        for exp in &self.experiments {
            let t = &exp.trend;
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} |\n",
                exp.id,
                t.baseline_cells,
                t.candidate_cells,
                t.unchanged,
                t.improved,
                t.regressed + t.missing.len() + t.added.len(),
                verdict_word(t.verdict),
            ));
        }
        for id in &self.missing {
            out.push_str(&format!(
                "| {id} | ? | — | — | — | — | missing in candidate |\n"
            ));
        }
        for id in &self.added {
            out.push_str(&format!(
                "| {id} | — | ? | — | — | — | missing in baseline |\n"
            ));
        }
        for exp in &self.experiments {
            let t = &exp.trend;
            if t.verdict == TrendVerdict::Unchanged {
                continue;
            }
            out.push_str(&format!("\n**{}** — cells with movement:\n\n", exp.id));
            out.push_str(
                "| cell | metric | baseline | candidate | verdict |\n|---|---|---|---|---|\n",
            );
            let mut rows = 0usize;
            let mut emit = |line: String| {
                if rows < MARKDOWN_MAX_ROWS {
                    out.push_str(&line);
                }
                rows += 1;
            };
            for cell in &t.cells {
                if cell.baseline_status != cell.candidate_status {
                    emit(format!(
                        "| {} | status | {} | {} | regressed |\n",
                        cell.label,
                        cell.baseline_status.as_str(),
                        cell.candidate_status.as_str(),
                    ));
                }
                for d in &cell.deltas {
                    emit(format!(
                        "| {} | {} | {} | {} | {} |\n",
                        cell.label,
                        d.name,
                        d.baseline.map_or_else(|| "—".to_owned(), format_metric),
                        d.candidate.map_or_else(|| "—".to_owned(), format_metric),
                        verdict_word(d.verdict),
                    ));
                }
            }
            for label in &t.missing {
                emit(format!("| {label} | — | present | missing | regressed |\n"));
            }
            for label in &t.added {
                emit(format!("| {label} | — | missing | present | regressed |\n"));
            }
            if rows > MARKDOWN_MAX_ROWS {
                out.push_str(&format!("\n… and {} more rows\n", rows - MARKDOWN_MAX_ROWS));
            }
        }
        out.push_str(&format!(
            "\n**verdict: {}**\n",
            verdict_word(self.verdict).to_uppercase()
        ));
        out
    }
}

/// Detail-table row cap per experiment in [`DirTrend::to_markdown`].
pub const MARKDOWN_MAX_ROWS: usize = 50;

pub(crate) fn verdict_word(v: TrendVerdict) -> &'static str {
    match v {
        TrendVerdict::Unchanged => "unchanged",
        TrendVerdict::Improved => "improved",
        TrendVerdict::Regressed => "regressed",
    }
}

/// Loads every summary in a `--summary` directory: files named
/// `<id>.summary.json` (preferred) or `<id>.summary.csv` (fallback when no
/// JSON twin exists), sorted by id.
///
/// # Errors
///
/// [`ReadError`] when the directory cannot be listed, a file cannot be
/// read, or a summary fails to parse.
pub fn load_summaries(dir: &Path) -> Result<Vec<(String, SweepSummary)>, ReadError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| ReadError::new(format!("cannot list {}: {e}", dir.display())))?;
    let mut by_id: Vec<(String, PathBuf)> = Vec::new();
    for entry in entries {
        let entry =
            entry.map_err(|e| ReadError::new(format!("cannot list {}: {e}", dir.display())))?;
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let (id, is_json) = if let Some(stem) = name.strip_suffix(".summary.json") {
            (stem.to_owned(), true)
        } else if let Some(stem) = name.strip_suffix(".summary.csv") {
            (stem.to_owned(), false)
        } else {
            continue;
        };
        match by_id.iter_mut().find(|(known, _)| *known == id) {
            Some(entry) if is_json => entry.1 = path, // JSON wins over CSV
            Some(_) => {}
            None => by_id.push((id, path)),
        }
    }
    by_id.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = Vec::with_capacity(by_id.len());
    for (id, path) in by_id {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| ReadError::new(format!("cannot read {}: {e}", path.display())))?;
        let summary = if path.extension().is_some_and(|e| e == "json") {
            read_summary_json(&text)
        } else {
            read_summary_csv(&text)
        }
        .map_err(|e| ReadError::new(format!("{}: {}", path.display(), e.message())))?;
        out.push((id, summary));
    }
    Ok(out)
}

/// Compares two `--summary` directories experiment-by-experiment.
///
/// Experiments pair by file stem (`e10.summary.json` ↔
/// `e10.summary.csv`); ids present on only one side go to
/// [`DirTrend::missing`] / `added` and gate unless
/// [`TrendOptions::require_matching_experiments`] is off.
///
/// # Errors
///
/// [`ReadError`] when either directory cannot be loaded (see
/// [`load_summaries`]).
pub fn compare_dirs(
    baseline: &Path,
    candidate: &Path,
    opts: &TrendOptions,
) -> Result<DirTrend, ReadError> {
    let base = load_summaries(baseline)?;
    let cand = load_summaries(candidate)?;
    let mut experiments = Vec::new();
    let mut missing = Vec::new();
    let mut added = Vec::new();
    for (id, base_summary) in &base {
        match cand.iter().find(|(cid, _)| cid == id) {
            Some((_, cand_summary)) => experiments.push(ExperimentTrend {
                id: id.clone(),
                trend: compare_summaries(base_summary, cand_summary, opts),
            }),
            None => missing.push(id.clone()),
        }
    }
    for (id, _) in &cand {
        if !base.iter().any(|(bid, _)| bid == id) {
            added.push(id.clone());
        }
    }
    let structural =
        opts.require_matching_experiments && (!missing.is_empty() || !added.is_empty());
    let verdict = if structural
        || experiments
            .iter()
            .any(|e| e.trend.verdict == TrendVerdict::Regressed)
    {
        TrendVerdict::Regressed
    } else if experiments
        .iter()
        .any(|e| e.trend.verdict == TrendVerdict::Improved)
    {
        TrendVerdict::Improved
    } else {
        TrendVerdict::Unchanged
    };
    Ok(DirTrend {
        experiments,
        missing,
        added,
        verdict,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(label: &str, status: JobStatus, wall: f64, metrics: &[(&str, f64)]) -> JobRecord {
        JobRecord {
            index: 0,
            label: label.to_owned(),
            status,
            wall_secs: wall,
            detail: String::new(),
            metrics: metrics.iter().map(|(n, v)| ((*n).to_owned(), *v)).collect(),
        }
    }

    fn summary(jobs: Vec<JobRecord>) -> SweepSummary {
        let total = jobs.len();
        SweepSummary {
            total,
            succeeded: total,
            failed: 0,
            panicked: 0,
            budget_exceeded: 0,
            cancelled: 0,
            workers: 1,
            wall_secs: 0.1,
            min_job_secs: 0.0,
            mean_job_secs: 0.0,
            max_job_secs: 0.0,
            jobs,
        }
    }

    #[test]
    fn metric_classification_by_name() {
        assert_eq!(classify_metric("ode_steps_accepted"), MetricClass::Exact);
        assert_eq!(classify_metric("final_time"), MetricClass::Exact);
        assert_eq!(classify_metric("seed"), MetricClass::Exact);
        assert_eq!(classify_metric("wall_secs"), MetricClass::Timing);
        assert_eq!(classify_metric("setup_secs"), MetricClass::Timing);
        assert_eq!(classify_metric("phase1_wall"), MetricClass::Timing);
        assert_eq!(classify_metric("wall_budget_used"), MetricClass::Timing);
    }

    #[test]
    fn identical_summaries_are_unchanged() {
        let s = summary(vec![
            job("a", JobStatus::Ok, 0.01, &[("ssa_events", 120.0)]),
            job("b", JobStatus::Failed, 0.02, &[("ssa_events", 7.0)]),
        ]);
        let t = compare_summaries(&s, &s.clone(), &TrendOptions::default());
        assert_eq!(t.verdict, TrendVerdict::Unchanged);
        assert_eq!(t.unchanged, 2);
        assert!(t.cells.is_empty());
    }

    #[test]
    fn changed_counter_regresses_in_either_direction() {
        let base = summary(vec![job("a", JobStatus::Ok, 0.01, &[("steps", 100.0)])]);
        for cand_value in [200.0, 50.0] {
            let cand = summary(vec![job(
                "a",
                JobStatus::Ok,
                0.01,
                &[("steps", cand_value)],
            )]);
            let t = compare_summaries(&base, &cand, &TrendOptions::default());
            assert_eq!(t.verdict, TrendVerdict::Regressed, "steps → {cand_value}");
            let delta = &t.cells[0].deltas[0];
            assert_eq!(delta.name, "steps");
            assert_eq!(delta.baseline, Some(100.0));
            assert_eq!(delta.candidate, Some(cand_value));
        }
    }

    #[test]
    fn nan_counters_compare_equal_to_nan() {
        let base = summary(vec![job(
            "a",
            JobStatus::Ok,
            0.01,
            &[("residual", f64::NAN)],
        )]);
        let cand = summary(vec![job(
            "a",
            JobStatus::Ok,
            0.01,
            &[("residual", f64::NAN)],
        )]);
        let t = compare_summaries(&base, &cand, &TrendOptions::default());
        assert_eq!(t.verdict, TrendVerdict::Unchanged);
    }

    #[test]
    fn wall_clock_respects_tolerance_and_floor() {
        let opts = TrendOptions::default()
            .with_wall_rel_tol(0.5)
            .with_wall_floor_secs(0.05);
        // under the floor: a 10× blowup of a 1 ms cell is noise
        let base = summary(vec![job("a", JobStatus::Ok, 0.001, &[])]);
        let cand = summary(vec![job("a", JobStatus::Ok, 0.010, &[])]);
        assert_eq!(
            compare_summaries(&base, &cand, &opts).verdict,
            TrendVerdict::Unchanged
        );
        // above the floor and beyond 50%: gates
        let base = summary(vec![job("a", JobStatus::Ok, 1.0, &[])]);
        let cand = summary(vec![job("a", JobStatus::Ok, 1.6, &[])]);
        let t = compare_summaries(&base, &cand, &opts);
        assert_eq!(t.verdict, TrendVerdict::Regressed);
        assert_eq!(t.cells[0].deltas[0].class, MetricClass::Timing);
        // beyond 50% faster: improvement, not failure
        let cand = summary(vec![job("a", JobStatus::Ok, 0.4, &[])]);
        let t = compare_summaries(&base, &cand, &opts);
        assert_eq!(t.verdict, TrendVerdict::Improved);
        assert_eq!(t.improved, 1);
    }

    #[test]
    fn timing_named_metric_uses_tolerance() {
        let base = summary(vec![job("a", JobStatus::Ok, 0.01, &[("setup_secs", 1.0)])]);
        let within = summary(vec![job("a", JobStatus::Ok, 0.01, &[("setup_secs", 1.2)])]);
        assert_eq!(
            compare_summaries(&base, &within, &TrendOptions::default()).verdict,
            TrendVerdict::Unchanged
        );
        let beyond = summary(vec![job("a", JobStatus::Ok, 0.01, &[("setup_secs", 2.0)])]);
        assert_eq!(
            compare_summaries(&base, &beyond, &TrendOptions::default()).verdict,
            TrendVerdict::Regressed
        );
    }

    #[test]
    fn tolerance_override_relaxes_an_exact_counter() {
        let base = summary(vec![job(
            "a",
            JobStatus::Ok,
            0.01,
            &[("newton_iterations", 100.0)],
        )]);
        let within = summary(vec![job(
            "a",
            JobStatus::Ok,
            0.01,
            &[("newton_iterations", 115.0)],
        )]);
        let opts = TrendOptions::default().with_tolerance("newton_iterations", 0.2);
        // 15% drift sits inside the 20% band that would gate exactly
        assert_eq!(
            compare_summaries(&base, &within, &TrendOptions::default()).verdict,
            TrendVerdict::Regressed
        );
        assert_eq!(
            compare_summaries(&base, &within, &opts).verdict,
            TrendVerdict::Unchanged
        );
        // beyond the band: regresses upward, improves downward
        let beyond = summary(vec![job(
            "a",
            JobStatus::Ok,
            0.01,
            &[("newton_iterations", 130.0)],
        )]);
        let t = compare_summaries(&base, &beyond, &opts);
        assert_eq!(t.verdict, TrendVerdict::Regressed);
        assert_eq!(t.cells[0].deltas[0].class, MetricClass::Tolerance);
        let faster = summary(vec![job(
            "a",
            JobStatus::Ok,
            0.01,
            &[("newton_iterations", 70.0)],
        )]);
        assert_eq!(
            compare_summaries(&base, &faster, &opts).verdict,
            TrendVerdict::Improved
        );
    }

    #[test]
    fn tolerance_override_reaches_the_wall_column() {
        // 1 ms → 10 ms sits under the default 50 ms floor, but a strict
        // wall_secs override has no floor and gates it.
        let base = summary(vec![job("a", JobStatus::Ok, 0.001, &[])]);
        let cand = summary(vec![job("a", JobStatus::Ok, 0.010, &[])]);
        let opts = TrendOptions::default().with_tolerance("wall_secs", 0.5);
        let t = compare_summaries(&base, &cand, &opts);
        assert_eq!(t.verdict, TrendVerdict::Regressed);
        assert_eq!(t.cells[0].deltas[0].class, MetricClass::Tolerance);
    }

    #[test]
    fn status_change_regresses() {
        let base = summary(vec![job("a", JobStatus::Ok, 0.01, &[])]);
        let cand = summary(vec![job("a", JobStatus::Panicked, 0.01, &[])]);
        let t = compare_summaries(&base, &cand, &TrendOptions::default());
        assert_eq!(t.verdict, TrendVerdict::Regressed);
        assert_eq!(t.cells[0].baseline_status, JobStatus::Ok);
        assert_eq!(t.cells[0].candidate_status, JobStatus::Panicked);
    }

    #[test]
    fn metric_appearing_or_disappearing_regresses() {
        let base = summary(vec![job("a", JobStatus::Ok, 0.01, &[("steps", 5.0)])]);
        let cand = summary(vec![job("a", JobStatus::Ok, 0.01, &[])]);
        let t = compare_summaries(&base, &cand, &TrendOptions::default());
        assert_eq!(t.verdict, TrendVerdict::Regressed);
        assert_eq!(t.cells[0].deltas[0].candidate, None);
        let t = compare_summaries(&cand, &base, &TrendOptions::default());
        assert_eq!(t.cells[0].deltas[0].baseline, None);
    }

    #[test]
    fn missing_and_added_cells_gate() {
        let base = summary(vec![
            job("a", JobStatus::Ok, 0.01, &[]),
            job("b", JobStatus::Ok, 0.01, &[]),
        ]);
        let cand = summary(vec![
            job("a", JobStatus::Ok, 0.01, &[]),
            job("c", JobStatus::Ok, 0.01, &[]),
        ]);
        let t = compare_summaries(&base, &cand, &TrendOptions::default());
        assert_eq!(t.missing, vec!["b".to_owned()]);
        assert_eq!(t.added, vec!["c".to_owned()]);
        assert_eq!(t.verdict, TrendVerdict::Regressed);
    }

    #[test]
    fn duplicate_labels_pair_positionally() {
        let base = summary(vec![
            job("rep", JobStatus::Ok, 0.01, &[("steps", 1.0)]),
            job("rep", JobStatus::Ok, 0.01, &[("steps", 2.0)]),
        ]);
        let cand = summary(vec![
            job("rep", JobStatus::Ok, 0.01, &[("steps", 1.0)]),
            job("rep", JobStatus::Ok, 0.01, &[("steps", 2.0)]),
        ]);
        let t = compare_summaries(&base, &cand, &TrendOptions::default());
        assert_eq!(t.verdict, TrendVerdict::Unchanged, "{t:?}");
        // swapping the two values pairs first-with-first: both regress
        let swapped = summary(vec![
            job("rep", JobStatus::Ok, 0.01, &[("steps", 2.0)]),
            job("rep", JobStatus::Ok, 0.01, &[("steps", 1.0)]),
        ]);
        let t = compare_summaries(&base, &swapped, &TrendOptions::default());
        assert_eq!(t.regressed, 2);
    }

    #[test]
    fn duplicate_metric_names_compare_by_last_value() {
        let base = summary(vec![job(
            "a",
            JobStatus::Ok,
            0.01,
            &[("steps", 1.0), ("steps", 9.0)],
        )]);
        let cand = summary(vec![job("a", JobStatus::Ok, 0.01, &[("steps", 9.0)])]);
        let t = compare_summaries(&base, &cand, &TrendOptions::default());
        assert_eq!(t.verdict, TrendVerdict::Unchanged, "{t:?}");
    }

    #[test]
    fn markdown_report_names_the_moving_metric() {
        let base = summary(vec![job("n=3", JobStatus::Ok, 0.01, &[("steps", 100.0)])]);
        let cand = summary(vec![job("n=3", JobStatus::Ok, 0.01, &[("steps", 240.0)])]);
        let dir = DirTrend {
            experiments: vec![ExperimentTrend {
                id: "e6".to_owned(),
                trend: compare_summaries(&base, &cand, &TrendOptions::default()),
            }],
            missing: Vec::new(),
            added: Vec::new(),
            verdict: TrendVerdict::Regressed,
        };
        let md = dir.to_markdown();
        assert!(
            md.contains("| n=3 | steps | 100 | 240 | regressed |"),
            "{md}"
        );
        assert!(md.contains("**verdict: REGRESSED**"), "{md}");
        let json = dir.to_json();
        assert!(json.contains("\"verdict\":\"Regressed\""), "{json}");
        assert!(json.contains("\"id\":\"e6\""), "{json}");
    }
}
