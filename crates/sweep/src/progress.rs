//! Live progress reporting for running sweeps.

use std::time::Duration;

/// A snapshot emitted after every completed job.
///
/// Ticks arrive in **completion** order (not job order) and from worker
/// threads, so observers must be `Send + Sync`; the engine's result
/// ordering is unaffected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgressTick {
    /// Jobs finished so far (in any state), including this one.
    pub completed: usize,
    /// Total jobs in the sweep.
    pub total: usize,
    /// Jobs finished in a non-success state so far.
    pub failed: usize,
    /// Label of the job that just finished.
    pub label: String,
    /// Wall time since the sweep started.
    pub elapsed: Duration,
}

impl ProgressTick {
    /// Renders the tick as a one-line status, e.g.
    /// `[ 3/10] ratio=100 (1 failed, 2.41s)`.
    #[must_use]
    pub fn render(&self) -> String {
        let width = self.total.to_string().len();
        let mut line = format!("[{:>width$}/{}] {}", self.completed, self.total, self.label);
        if self.failed > 0 {
            line.push_str(&format!(" ({} failed)", self.failed));
        }
        line.push_str(&format!(" {:.2?}", self.elapsed));
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_mentions_failures_only_when_present() {
        let mut tick = ProgressTick {
            completed: 3,
            total: 10,
            failed: 0,
            label: "ratio=100".into(),
            elapsed: Duration::from_millis(2410),
        };
        let line = tick.render();
        assert!(line.starts_with("[ 3/10] ratio=100"), "{line}");
        assert!(!line.contains("failed"));
        tick.failed = 1;
        assert!(tick.render().contains("(1 failed)"));
    }
}
