//! The worker pool: scoped threads, fault isolation, ordered results.

use crate::job::{derive_seed, CancelToken, GroupJob, JobCtx, JobError, SweepJob};
use crate::{JobBudget, ProgressTick, SweepSummary};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

/// Sweep-wide configuration: worker count, master seed, per-job budget.
///
/// # Examples
///
/// ```
/// use molseq_sweep::SweepOptions;
///
/// let opts = SweepOptions::default().with_workers(4).with_seed(42);
/// assert_eq!(opts.workers(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepOptions {
    workers: usize,
    seed: u64,
    budget: JobBudget,
    batch_width: usize,
}

impl Default for SweepOptions {
    /// Auto worker count (`available_parallelism`), seed `0`, unlimited
    /// budget, scalar cells (batch width 1).
    fn default() -> Self {
        SweepOptions {
            workers: 0,
            seed: 0,
            budget: JobBudget::unlimited(),
            batch_width: 1,
        }
    }
}

impl SweepOptions {
    /// Sets the worker-thread count (builder style). `0` means "one per
    /// available hardware thread". `1` runs the jobs serially on the
    /// calling thread — useful as the reference for determinism checks.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the master seed from which every job's seed is derived
    /// (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-job budget (builder style).
    #[must_use]
    pub fn with_budget(mut self, budget: JobBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The configured worker count (`0` = auto).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The configured master seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured per-job budget.
    #[must_use]
    pub fn budget(&self) -> JobBudget {
        self.budget
    }

    /// Sets the lock-step batch width (builder style): how many
    /// structurally identical cells a batch-aware job builder should pack
    /// into one [`GroupJob`]. `1` (the default) means scalar cells; the
    /// engine itself only schedules whatever units it is given, so this
    /// knob is advisory to the builder, not enforced here. Widths that
    /// are `0` are treated as 1.
    #[must_use]
    pub fn with_batch_width(mut self, width: usize) -> Self {
        self.batch_width = width;
        self
    }

    /// The configured lock-step batch width (`0` is normalized to 1).
    #[must_use]
    pub fn batch_width(&self) -> usize {
        self.batch_width.max(1)
    }

    /// The worker count the engine will actually use for `job_count` jobs:
    /// the configured count (or `available_parallelism` when auto), capped
    /// by the number of jobs, and at least 1.
    #[must_use]
    pub fn resolved_workers(&self, job_count: usize) -> usize {
        let configured = if self.workers == 0 {
            thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.workers
        };
        configured.min(job_count).max(1)
    }
}

/// How one cell of the sweep ended.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome<T> {
    /// The job returned a value.
    Ok(T),
    /// The job returned [`JobError::Failed`].
    Failed(String),
    /// The job panicked; the payload message was captured, the worker
    /// survived, and the rest of the sweep completed normally.
    Panicked(String),
    /// The job exhausted its [`JobBudget`].
    BudgetExceeded(String),
    /// The job was cancelled via a [`CancelToken`] — either before it
    /// started (the token was already raised) or at a cooperative
    /// checkpoint mid-run.
    Cancelled(String),
}

/// One cell of the sweep: index, label, wall time, and outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult<T> {
    /// The job's position in the sweep (results are returned in this
    /// order, regardless of completion order).
    pub index: usize,
    /// The job's label.
    pub label: String,
    /// The job's wall time.
    pub wall: Duration,
    /// How the job ended.
    pub outcome: CellOutcome<T>,
    /// Metrics the job recorded via
    /// [`JobCtx::record_metric`](crate::JobCtx::record_metric), in call
    /// order. Kept even for failed cells — a job that records counters
    /// before erroring still reports how far it got.
    pub metrics: Vec<(String, f64)>,
}

impl<T> CellResult<T> {
    /// The value, if the job succeeded.
    #[must_use]
    pub fn value(&self) -> Option<&T> {
        match &self.outcome {
            CellOutcome::Ok(v) => Some(v),
            _ => None,
        }
    }

    /// `true` if the job returned a value.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(self.outcome, CellOutcome::Ok(_))
    }

    /// The failure message, if the job did not succeed.
    #[must_use]
    pub fn detail(&self) -> Option<&str> {
        match &self.outcome {
            CellOutcome::Ok(_) => None,
            CellOutcome::Failed(msg)
            | CellOutcome::Panicked(msg)
            | CellOutcome::BudgetExceeded(msg)
            | CellOutcome::Cancelled(msg) => Some(msg),
        }
    }
}

/// Everything a sweep produces: per-cell results in job order plus the
/// aggregate [`SweepSummary`].
#[derive(Debug, Clone)]
pub struct SweepOutcome<T> {
    /// Per-cell results, in job order.
    pub cells: Vec<CellResult<T>>,
    /// Aggregate statistics over the whole sweep.
    pub summary: SweepSummary,
}

impl<T> SweepOutcome<T> {
    /// The successful values in job order (`None` where a cell failed).
    #[must_use]
    pub fn values(&self) -> Vec<Option<&T>> {
        self.cells.iter().map(CellResult::value).collect()
    }

    /// Consumes the outcome, yielding owned values in job order (`None`
    /// where a cell failed).
    #[must_use]
    pub fn into_values(self) -> Vec<Option<T>> {
        self.cells
            .into_iter()
            .map(|cell| match cell.outcome {
                CellOutcome::Ok(v) => Some(v),
                _ => None,
            })
            .collect()
    }
}

/// Runs `jobs` on a pool of scoped worker threads and returns their
/// results **in job order**.
///
/// Guarantees:
///
/// * **Determinism** — each job's [`JobCtx::seed`] depends only on the
///   sweep seed and the job index, and results are slotted by index, so
///   output is bit-identical whatever the worker count or scheduling.
/// * **Fault isolation** — a panicking job becomes
///   [`CellOutcome::Panicked`] for that cell; every other cell still runs
///   to completion. (The process-global panic hook still prints the panic
///   message; wrap noisy sweeps in `std::panic::set_hook` if needed.)
/// * **No oversubscription** — at most
///   [`SweepOptions::resolved_workers`] jobs run at once; with one worker
///   the jobs run serially on the calling thread, no threads spawned.
pub fn run_sweep<'a, T: Send>(jobs: &[SweepJob<'a, T>], opts: &SweepOptions) -> SweepOutcome<T> {
    run_sweep_with_progress(jobs, opts, |_| {})
}

/// Like [`run_sweep`], invoking `on_tick` after every completed job.
///
/// Ticks arrive in completion order, possibly from worker threads
/// concurrently — the observer must serialize its own side effects (a
/// `println!` is fine: stdout is line-locked).
pub fn run_sweep_with_progress<'a, T: Send>(
    jobs: &[SweepJob<'a, T>],
    opts: &SweepOptions,
    on_tick: impl Fn(&ProgressTick) + Send + Sync,
) -> SweepOutcome<T> {
    let started = Instant::now();
    let workers = opts.resolved_workers(jobs.len());
    let total = jobs.len();
    let completed = AtomicUsize::new(0);
    let failed = AtomicUsize::new(0);
    let tick = |cell: &CellResult<T>| {
        if !cell.is_ok() {
            failed.fetch_add(1, Ordering::Relaxed);
        }
        on_tick(&ProgressTick {
            completed: completed.fetch_add(1, Ordering::Relaxed) + 1,
            total,
            failed: failed.load(Ordering::Relaxed),
            label: cell.label.clone(),
            elapsed: started.elapsed(),
        });
    };

    let cells: Vec<CellResult<T>> = if workers <= 1 {
        jobs.iter()
            .enumerate()
            .map(|(index, job)| {
                let cell = execute(job, index, opts);
                tick(&cell);
                cell
            })
            .collect()
    } else {
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<CellResult<T>>>> =
            (0..total).map(|_| Mutex::new(None)).collect();
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= total {
                        break;
                    }
                    let cell = execute(&jobs[index], index, opts);
                    tick(&cell);
                    *slots[index].lock().expect("result slot poisoned") = Some(cell);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every slot is filled before the scope ends")
            })
            .collect()
    };

    let summary = SweepSummary::from_cells(&cells, workers, started.elapsed());
    SweepOutcome { cells, summary }
}

fn execute<T>(job: &SweepJob<'_, T>, index: usize, opts: &SweepOptions) -> CellResult<T> {
    run_cell(job, index, opts, None)
}

/// One schedulable unit of a batch-aware sweep: either an independent
/// cell or a [`GroupJob`] whose cells advance together in one call.
#[derive(Debug)]
pub enum SweepUnit<'a, T> {
    /// One independent cell, executed exactly like [`run_sweep`] would.
    Single(SweepJob<'a, T>),
    /// A lock-step batch of cells, executed by one closure invocation.
    Group(GroupJob<'a, T>),
}

impl<T> SweepUnit<'_, T> {
    /// How many sweep cells this unit owns.
    #[must_use]
    pub fn width(&self) -> usize {
        match self {
            SweepUnit::Single(_) => 1,
            SweepUnit::Group(group) => group.width(),
        }
    }
}

/// Runs a mixed list of singles and lock-step groups and returns
/// per-cell results **in global cell order** — unit order, with a group's
/// cells consecutive.
///
/// The determinism contract of [`run_sweep`] carries over with the group
/// extension: each cell's index and seed depend only on its global
/// position (unit order), never on scheduling, so a sweep built with any
/// batch width and run on any worker count reports the same per-cell
/// seeds, labels and result order. A panicking group poisons exactly its
/// own cells (every member becomes
/// [`CellOutcome::Panicked`]); all other units still complete. A group's
/// wall time is attributed to each of its cells (the members ran
/// concurrently in one engine call).
pub fn run_units<'a, T: Send>(units: &[SweepUnit<'a, T>], opts: &SweepOptions) -> SweepOutcome<T> {
    run_units_with_progress(units, opts, |_| {})
}

/// Like [`run_units`], invoking `on_tick` once per completed *cell* (a
/// finished group ticks once per member), in completion order.
pub fn run_units_with_progress<'a, T: Send>(
    units: &[SweepUnit<'a, T>],
    opts: &SweepOptions,
    on_tick: impl Fn(&ProgressTick) + Send + Sync,
) -> SweepOutcome<T> {
    let started = Instant::now();
    let bases: Vec<usize> = units
        .iter()
        .scan(0usize, |acc, unit| {
            let base = *acc;
            *acc += unit.width();
            Some(base)
        })
        .collect();
    let total: usize = units.iter().map(SweepUnit::width).sum();
    let workers = opts.resolved_workers(units.len());
    let completed = AtomicUsize::new(0);
    let failed = AtomicUsize::new(0);
    let tick = |cells: &[CellResult<T>]| {
        for cell in cells {
            if !cell.is_ok() {
                failed.fetch_add(1, Ordering::Relaxed);
            }
            on_tick(&ProgressTick {
                completed: completed.fetch_add(1, Ordering::Relaxed) + 1,
                total,
                failed: failed.load(Ordering::Relaxed),
                label: cell.label.clone(),
                elapsed: started.elapsed(),
            });
        }
    };

    let cells: Vec<CellResult<T>> = if workers <= 1 {
        units
            .iter()
            .zip(&bases)
            .flat_map(|(unit, &base)| {
                let cells = execute_unit(unit, base, opts);
                tick(&cells);
                cells
            })
            .collect()
    } else {
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Vec<CellResult<T>>>>> =
            (0..units.len()).map(|_| Mutex::new(None)).collect();
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let unit = cursor.fetch_add(1, Ordering::Relaxed);
                    if unit >= units.len() {
                        break;
                    }
                    let cells = execute_unit(&units[unit], bases[unit], opts);
                    tick(&cells);
                    *slots[unit].lock().expect("result slot poisoned") = Some(cells);
                });
            }
        });
        slots
            .into_iter()
            .flat_map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every slot is filled before the scope ends")
            })
            .collect()
    };

    let summary = SweepSummary::from_cells(&cells, workers, started.elapsed());
    SweepOutcome { cells, summary }
}

fn execute_unit<T>(
    unit: &SweepUnit<'_, T>,
    base: usize,
    opts: &SweepOptions,
) -> Vec<CellResult<T>> {
    match unit {
        SweepUnit::Single(job) => vec![run_cell(job, base, opts, None)],
        SweepUnit::Group(group) => run_group(group, base, opts, None),
    }
}

/// Runs one [`GroupJob`] exactly the way [`run_units`] would — member
/// cells indexed `base..base + width`, the same per-cell seed derivation,
/// shared `catch_unwind` fault isolation, and the same outcome mapping —
/// but under the caller's own scheduling, with an optional [`CancelToken`].
///
/// The group analogue of [`run_cell`]: an external dispatcher (a batch
/// server routing a grouped submission through the lock-step kinetics
/// path) gets member rows bit-identical to an in-process `run_units` of
/// the same unit at the same base index. A token already raised when the
/// group starts short-circuits every member to
/// [`CellOutcome::Cancelled`] without invoking the closure.
pub fn run_group<T>(
    group: &GroupJob<'_, T>,
    base: usize,
    opts: &SweepOptions,
    cancel: Option<&CancelToken>,
) -> Vec<CellResult<T>> {
    if let Some(token) = cancel {
        if token.is_cancelled() {
            return group
                .labels()
                .iter()
                .enumerate()
                .map(|(k, label)| CellResult {
                    index: base + k,
                    label: label.clone(),
                    wall: Duration::ZERO,
                    outcome: CellOutcome::Cancelled("cancelled before start".into()),
                    metrics: Vec::new(),
                })
                .collect();
        }
    }
    let ctxs: Vec<JobCtx> = (0..group.width())
        .map(|k| {
            JobCtx::with_cancel(
                base + k,
                derive_seed(opts.seed(), base + k),
                opts.budget(),
                cancel.cloned(),
            )
        })
        .collect();
    let started = Instant::now();
    let caught = catch_unwind(AssertUnwindSafe(|| group.call(&ctxs)));
    let wall = started.elapsed();
    let mut results = match caught {
        Ok(results) => results.into_iter().map(Some).collect::<Vec<_>>(),
        Err(payload) => {
            let msg = panic_message(payload.as_ref());
            return group
                .labels()
                .iter()
                .zip(&ctxs)
                .enumerate()
                .map(|(k, (label, ctx))| CellResult {
                    index: base + k,
                    label: label.clone(),
                    wall,
                    outcome: CellOutcome::Panicked(msg.clone()),
                    metrics: ctx.take_metrics(),
                })
                .collect();
        }
    };
    let returned = results.len();
    results.resize_with(group.width(), || None);
    group
        .labels()
        .iter()
        .zip(&ctxs)
        .zip(results)
        .enumerate()
        .map(|(k, ((label, ctx), result))| {
            let outcome = match result {
                Some(Ok(value)) => CellOutcome::Ok(value),
                Some(Err(JobError::Failed(msg))) => CellOutcome::Failed(msg),
                Some(Err(JobError::BudgetExceeded(msg))) => CellOutcome::BudgetExceeded(msg),
                Some(Err(JobError::Cancelled(msg))) => CellOutcome::Cancelled(msg),
                None => CellOutcome::Failed(format!(
                    "group job returned {returned} results for {} cells",
                    group.width()
                )),
            };
            CellResult {
                index: base + k,
                label: label.clone(),
                wall,
                outcome,
                metrics: ctx.take_metrics(),
            }
        })
        .collect()
}

/// Runs a single sweep cell exactly the way [`run_sweep`] would — same
/// seed derivation, same `catch_unwind` fault isolation, same budget and
/// outcome mapping — but under the caller's own scheduling, with an
/// optional [`CancelToken`].
///
/// This is the building block for external dispatchers (a batch server's
/// persistent worker pool, a work-stealing harness) that cannot hand a
/// whole job slice to [`run_sweep`] but still need their per-cell results
/// bit-identical to it. A token that is already raised when the cell
/// starts short-circuits to [`CellOutcome::Cancelled`] without invoking
/// the closure, so draining a cancelled queue is cheap and deterministic.
pub fn run_cell<T>(
    job: &SweepJob<'_, T>,
    index: usize,
    opts: &SweepOptions,
    cancel: Option<&CancelToken>,
) -> CellResult<T> {
    if let Some(token) = cancel {
        if token.is_cancelled() {
            return CellResult {
                index,
                label: job.label().to_owned(),
                wall: Duration::ZERO,
                outcome: CellOutcome::Cancelled("cancelled before start".into()),
                metrics: Vec::new(),
            };
        }
    }
    let ctx = JobCtx::with_cancel(
        index,
        derive_seed(opts.seed(), index),
        opts.budget(),
        cancel.cloned(),
    );
    let started = Instant::now();
    let caught = catch_unwind(AssertUnwindSafe(|| job.call(&ctx)));
    let wall = started.elapsed();
    let outcome = match caught {
        Ok(Ok(value)) => CellOutcome::Ok(value),
        Ok(Err(JobError::Failed(msg))) => CellOutcome::Failed(msg),
        Ok(Err(JobError::BudgetExceeded(msg))) => CellOutcome::BudgetExceeded(msg),
        Ok(Err(JobError::Cancelled(msg))) => CellOutcome::Cancelled(msg),
        Err(payload) => CellOutcome::Panicked(panic_message(payload.as_ref())),
    };
    CellResult {
        index,
        label: job.label().to_owned(),
        wall,
        outcome,
        metrics: ctx.take_metrics(),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolved_workers_caps_and_floors() {
        let auto = SweepOptions::default();
        assert!(auto.resolved_workers(1000) >= 1);
        assert_eq!(auto.resolved_workers(1), 1);
        assert_eq!(auto.resolved_workers(0), 1);
        let four = SweepOptions::default().with_workers(4);
        assert_eq!(four.resolved_workers(2), 2);
        assert_eq!(four.resolved_workers(100), 4);
    }

    #[test]
    fn results_come_back_in_job_order() {
        // Jobs finish in reverse submission order (later jobs are
        // quicker); the cells must still come back index-ordered.
        let jobs: Vec<SweepJob<'_, usize>> = (0..8)
            .map(|i| {
                SweepJob::infallible(format!("j{i}"), move |ctx| {
                    std::thread::sleep(Duration::from_millis(8 - i as u64));
                    ctx.index()
                })
            })
            .collect();
        let out = run_sweep(&jobs, &SweepOptions::default().with_workers(4));
        for (i, cell) in out.cells.iter().enumerate() {
            assert_eq!(cell.index, i);
            assert_eq!(cell.label, format!("j{i}"));
            assert_eq!(cell.value(), Some(&i));
        }
    }

    #[test]
    fn progress_ticks_count_every_job() {
        let jobs: Vec<SweepJob<'_, ()>> = (0..10)
            .map(|i| SweepJob::infallible(format!("j{i}"), |_| ()))
            .collect();
        let seen = Mutex::new(Vec::new());
        let out =
            run_sweep_with_progress(&jobs, &SweepOptions::default().with_workers(3), |tick| {
                seen.lock().unwrap().push((tick.completed, tick.total))
            });
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 10);
        assert!(seen.iter().all(|&(_, total)| total == 10));
        let mut counts: Vec<usize> = seen.iter().map(|&(c, _)| c).collect();
        counts.sort_unstable();
        assert_eq!(counts, (1..=10).collect::<Vec<_>>());
        assert_eq!(out.summary.succeeded, 10);
    }

    #[test]
    fn recorded_metrics_reach_the_cell_even_on_failure() {
        let jobs = vec![
            SweepJob::<'_, ()>::new("ok", |ctx| {
                ctx.record_metric("events", 7.0);
                Ok(())
            }),
            SweepJob::new("fails late", |ctx| {
                ctx.record_metric("events", 3.0);
                Err(crate::JobError::failed("diverged"))
            }),
        ];
        let out = run_sweep(&jobs, &SweepOptions::default().with_workers(1));
        assert_eq!(out.cells[0].metrics, vec![("events".to_string(), 7.0)]);
        assert_eq!(out.cells[1].metrics, vec![("events".to_string(), 3.0)]);
        assert!(!out.cells[1].is_ok());
    }

    #[test]
    fn run_cell_matches_run_sweep_and_honours_cancellation() {
        let jobs: Vec<SweepJob<'_, u64>> = (0..4)
            .map(|i| SweepJob::infallible(format!("j{i}"), |ctx| ctx.seed()))
            .collect();
        let opts = SweepOptions::default().with_workers(2).with_seed(99);
        let swept = run_sweep(&jobs, &opts);
        for (index, job) in jobs.iter().enumerate() {
            let solo = run_cell(job, index, &opts, None);
            assert_eq!(solo.value(), swept.cells[index].value(), "seed parity");
        }
        // a raised token short-circuits without invoking the closure
        let token = CancelToken::new();
        token.cancel();
        let cell = run_cell(&jobs[0], 0, &opts, Some(&token));
        assert!(matches!(cell.outcome, CellOutcome::Cancelled(_)));
        assert_eq!(cell.detail(), Some("cancelled before start"));
        // a mid-run cancellation surfaces through ctx.check()
        let mid = CancelToken::new();
        let raiser = mid.clone();
        let job = SweepJob::<'_, ()>::new("mid", move |ctx| {
            raiser.cancel();
            ctx.check()?;
            Ok(())
        });
        let cell = run_cell(&job, 0, &opts, Some(&mid));
        assert!(matches!(cell.outcome, CellOutcome::Cancelled(_)));
        assert_eq!(cell.detail(), Some("cancel token raised"));
    }

    #[test]
    fn grouped_units_match_a_flat_sweep_cell_for_cell() {
        // 7 cells packed as [group of 3, single, group of 2, single] must
        // report the same indices, labels and seeds as 7 flat jobs.
        let opts = SweepOptions::default().with_workers(3).with_seed(42);
        let flat: Vec<SweepJob<'_, u64>> = (0..7)
            .map(|i| SweepJob::infallible(format!("c{i}"), |ctx| ctx.seed()))
            .collect();
        let reference = run_sweep(&flat, &opts);
        let group = |range: std::ops::Range<usize>| {
            SweepUnit::Group(GroupJob::new(
                range.clone().map(|i| format!("c{i}")).collect(),
                move |ctxs| ctxs.iter().map(|ctx| Ok(ctx.seed())).collect(),
            ))
        };
        let single =
            |i: usize| SweepUnit::Single(SweepJob::infallible(format!("c{i}"), |ctx| ctx.seed()));
        let units = vec![group(0..3), single(3), group(4..6), single(6)];
        let grouped = run_units(&units, &opts);
        assert_eq!(grouped.cells.len(), 7);
        for (a, b) in reference.cells.iter().zip(&grouped.cells) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.label, b.label);
            assert_eq!(a.value(), b.value(), "seed parity at {}", a.index);
        }
        // and the packing must not depend on the worker count
        let serial = run_units(&units, &opts.with_workers(1));
        for (a, b) in grouped.cells.iter().zip(&serial.cells) {
            assert_eq!(a.value(), b.value());
        }
    }

    #[test]
    fn panicking_group_poisons_only_its_own_cells() {
        let units: Vec<SweepUnit<'_, usize>> = vec![
            SweepUnit::Group(GroupJob::new(vec!["g0".into(), "g1".into()], |_| {
                panic!("batch exploded")
            })),
            SweepUnit::Single(SweepJob::infallible("ok", |ctx| ctx.index())),
        ];
        let out = run_units(&units, &SweepOptions::default().with_workers(2));
        assert!(matches!(
            out.cells[0].outcome,
            CellOutcome::Panicked(ref m) if m.contains("batch exploded")
        ));
        assert!(matches!(out.cells[1].outcome, CellOutcome::Panicked(_)));
        assert_eq!(out.cells[2].value(), Some(&2));
        assert_eq!(out.summary.succeeded, 1);
    }

    #[test]
    fn short_group_results_become_failures_not_misalignment() {
        let units: Vec<SweepUnit<'_, u32>> = vec![SweepUnit::Group(GroupJob::new(
            vec!["a".into(), "b".into(), "c".into()],
            |_| vec![Ok(1), Ok(2)], // one result missing
        ))];
        let out = run_units(&units, &SweepOptions::default().with_workers(1));
        assert_eq!(out.cells[0].value(), Some(&1));
        assert_eq!(out.cells[1].value(), Some(&2));
        assert!(matches!(
            out.cells[2].outcome,
            CellOutcome::Failed(ref m) if m.contains("2 results for 3 cells")
        ));
    }

    #[test]
    fn unit_progress_ticks_once_per_cell() {
        let units: Vec<SweepUnit<'_, ()>> = vec![
            SweepUnit::Group(GroupJob::new(vec!["a".into(), "b".into()], |ctxs| {
                ctxs.iter().map(|_| Ok(())).collect()
            })),
            SweepUnit::Single(SweepJob::infallible("c", |_| ())),
        ];
        let seen = Mutex::new(Vec::new());
        run_units_with_progress(&units, &SweepOptions::default().with_workers(1), |tick| {
            seen.lock().unwrap().push((tick.completed, tick.total));
        });
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen, vec![(1, 3), (2, 3), (3, 3)]);
    }

    #[test]
    fn batch_width_defaults_to_scalar_and_normalizes_zero() {
        assert_eq!(SweepOptions::default().batch_width(), 1);
        assert_eq!(SweepOptions::default().with_batch_width(8).batch_width(), 8);
        assert_eq!(SweepOptions::default().with_batch_width(0).batch_width(), 1);
    }

    #[test]
    fn jobs_borrow_sweep_wide_data() {
        let shared = vec![2.0f64; 1000];
        let jobs: Vec<SweepJob<'_, f64>> = (0..6)
            .map(|i| {
                let shared = &shared;
                SweepJob::infallible(format!("j{i}"), move |_| {
                    shared.iter().sum::<f64>() * i as f64
                })
            })
            .collect();
        let out = run_sweep(&jobs, &SweepOptions::default().with_workers(3));
        for (i, cell) in out.cells.iter().enumerate() {
            assert_eq!(cell.value(), Some(&(2000.0 * i as f64)));
        }
    }
}
