//! Readers for persisted sweep artifacts.
//!
//! The sweep engine has always been write-only: [`SweepSummary::to_json`]
//! and [`SweepSummary::to_csv`] persist a run, and nothing in the
//! workspace could load one back (the vendored serde stub serializes but
//! never deserializes). This module closes that gap with hand-rolled
//! parsers kept inside the stub's API subset, so swapping the real serde
//! back in never conflicts with them:
//!
//! * [`JsonValue`] — a minimal ordered JSON document model with a lenient
//!   recursive-descent parser and compact/pretty renderers. Number tokens
//!   keep their source lexeme, so a parse → edit → render cycle (the
//!   `trend --append` perf-trajectory workflow) does not reformat
//!   untouched values.
//! * [`read_summary_json`] — the exact inverse of `to_json`: every
//!   summary the writer can produce reads back value-identical, with JSON
//!   `null` metric values mapped to NaN ("recorded but not finite").
//! * [`read_summary_csv`] — the inverse of `to_csv` at row level: quoted
//!   labels (commas, quotes, embedded newlines), union metric columns and
//!   `null` cells all round-trip; re-serializing the parsed summary
//!   reproduces the input CSV byte-for-byte. Aggregates the CSV does not
//!   carry (sweep wall time, worker count) are recomputed or zeroed.
//!
//! Both readers also accept the pre-unification legacy CSV forms for
//! non-finite metrics (`NaN`, `inf`, `-inf`), which older summary
//! artifacts may still contain.

use crate::summary::{JobRecord, JobStatus, SweepSummary};
use std::fmt;

/// Why a persisted artifact could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadError {
    msg: String,
}

impl ReadError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        ReadError { msg: msg.into() }
    }

    /// The human-readable failure description.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for ReadError {}

/// A parsed JSON document.
///
/// Object member order is preserved (members are a `Vec`, not a map), and
/// numbers remember their source lexeme, so rendering a parsed-and-edited
/// document back out leaves every untouched value byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as parsed value plus source lexeme.
    Number {
        /// The parsed value.
        value: f64,
        /// The exact token from the source (or a canonical rendering for
        /// constructed numbers), emitted verbatim by the renderers.
        raw: String,
    },
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in member order.
    Object(Vec<(String, JsonValue)>),
}

/// Deepest value nesting the parser accepts; beyond this it reports an
/// error instead of risking a stack overflow on hostile input.
const MAX_DEPTH: usize = 128;

impl JsonValue {
    /// Parses a JSON document.
    ///
    /// The grammar is standard JSON, slightly lenient on number tokens
    /// (anything `f64::from_str` accepts, e.g. `1.` or `+5`, parses).
    ///
    /// # Errors
    ///
    /// [`ReadError`] with a byte offset on malformed input, unbalanced
    /// structure, trailing garbage, or nesting deeper than 128 levels.
    pub fn parse(text: &str) -> Result<JsonValue, ReadError> {
        let mut p = Parser {
            text,
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.parse_value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after JSON document"));
        }
        Ok(value)
    }

    /// A number value with a canonical lexeme: integer-valued finite
    /// numbers render without a fractional part, other finite numbers in
    /// shortest round-trip form, non-finite numbers as [`JsonValue::Null`].
    #[must_use]
    pub fn from_f64(value: f64) -> JsonValue {
        if !value.is_finite() {
            return JsonValue::Null;
        }
        let raw = if value.fract() == 0.0 && value.abs() < 9.0e15 {
            format!("{value:.0}")
        } else {
            format!("{value}")
        };
        JsonValue::Number { value, raw }
    }

    /// Object member lookup (first match). `None` for non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members
                .iter()
                .find(|(k, _)| k.as_str() == key)
                .map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mutable object member lookup (first match).
    #[must_use]
    pub fn get_mut(&mut self, key: &str) -> Option<&mut JsonValue> {
        match self {
            JsonValue::Object(members) => members
                .iter_mut()
                .find(|(k, _)| k.as_str() == key)
                .map(|(_, v)| v),
            _ => None,
        }
    }

    /// Upserts an object member: replaces the first member named `key`, or
    /// appends one. No-op on non-objects.
    pub fn set(&mut self, key: &str, value: JsonValue) {
        if let JsonValue::Object(members) = self {
            if let Some((_, v)) = members.iter_mut().find(|(k, _)| k.as_str() == key) {
                *v = value;
            } else {
                members.push((key.to_owned(), value));
            }
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number { value, .. } => Some(*value),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Mutable access to the elements, if this is an array.
    #[must_use]
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<JsonValue>> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members in order, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Renders the document compactly (no whitespace), matching the
    /// vendored serde stub's output format.
    pub fn render_compact(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number { raw, .. } => out.push_str(raw),
            JsonValue::String(s) => serde::write_json_string(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_compact(out);
                }
                out.push(']');
            }
            JsonValue::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    serde::write_json_string(k, out);
                    out.push(':');
                    v.render_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// The document rendered with two-space indentation (the
    /// `BENCH_*.json` house style), with a trailing newline.
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render_pretty_at(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_pretty_at(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    v.render_pretty_at(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    serde::write_json_string(k, out);
                    out.push_str(": ");
                    v.render_pretty_at(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.render_compact(out),
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

/// Recursive-descent JSON parser state.
struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, msg: &str) -> ReadError {
        ReadError::new(format!("json: {msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.text[self.pos..].starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<JsonValue, ReadError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.bytes.get(self.pos) {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') if self.eat("null") => Ok(JsonValue::Null),
            Some(b't') if self.eat("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(JsonValue::Array(items));
                        }
                        _ => return Err(self.error("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                loop {
                    self.skip_ws();
                    if self.bytes.get(self.pos) != Some(&b'"') {
                        return Err(self.error("expected string object key"));
                    }
                    let key = self.parse_string()?;
                    self.skip_ws();
                    if self.bytes.get(self.pos) != Some(&b':') {
                        return Err(self.error("expected `:` after object key"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let value = self.parse_value(depth + 1)?;
                    members.push((key, value));
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(JsonValue::Object(members));
                        }
                        _ => return Err(self.error("expected `,` or `}` in object")),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, ReadError> {
        let start = self.pos;
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let raw = &self.text[start..self.pos];
        let value: f64 = raw
            .parse()
            .map_err(|_| ReadError::new(format!("json: invalid number `{raw}` at byte {start}")))?;
        Ok(JsonValue::Number {
            value,
            raw: raw.to_owned(),
        })
    }

    /// Parses a string literal (cursor on the opening quote). Unescaped
    /// content is copied by slice, so UTF-8 passes through untouched;
    /// `\uXXXX` escapes (including surrogate pairs) are decoded.
    fn parse_string(&mut self) -> Result<String, ReadError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        let mut run_start = self.pos;
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    out.push_str(&self.text[run_start..self.pos]);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(&self.text[run_start..self.pos]);
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // high surrogate: a `\uXXXX` low surrogate
                                // must follow
                                if !self.eat("\\u") {
                                    return Err(self.error("lone high surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(unit)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid \\u escape")),
                            }
                            // parse_hex4 leaves the cursor after the last
                            // hex digit; skip the +1 below
                            run_start = self.pos;
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                    run_start = self.pos;
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, ReadError> {
        let Some(hex) = self.text.get(self.pos..self.pos + 4) else {
            return Err(self.error("truncated \\u escape"));
        };
        let unit =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape digits"))?;
        self.pos += 4;
        Ok(unit)
    }
}

/// Looks up a required object member.
fn field<'a>(obj: &'a JsonValue, name: &str) -> Result<&'a JsonValue, ReadError> {
    obj.get(name)
        .ok_or_else(|| ReadError::new(format!("summary json: missing field `{name}`")))
}

fn field_f64(obj: &JsonValue, name: &str) -> Result<f64, ReadError> {
    field(obj, name)?
        .as_f64()
        .ok_or_else(|| ReadError::new(format!("summary json: field `{name}` is not a number")))
}

fn field_usize(obj: &JsonValue, name: &str) -> Result<usize, ReadError> {
    let v = field_f64(obj, name)?;
    if v.fract() != 0.0 || !(0.0..9.0e15).contains(&v) {
        return Err(ReadError::new(format!(
            "summary json: field `{name}` is not a non-negative integer (got {v})"
        )));
    }
    Ok(v as usize)
}

/// Like [`field_usize`] but tolerating an absent member: fields added to
/// the summary schema after artifacts were first persisted (`cancelled`)
/// default instead of failing, so checked-in baselines still load.
fn field_usize_or(obj: &JsonValue, name: &str, default: usize) -> Result<usize, ReadError> {
    if obj.get(name).is_none() {
        return Ok(default);
    }
    field_usize(obj, name)
}

fn field_str<'a>(obj: &'a JsonValue, name: &str) -> Result<&'a str, ReadError> {
    field(obj, name)?
        .as_str()
        .ok_or_else(|| ReadError::new(format!("summary json: field `{name}` is not a string")))
}

/// Reads a summary previously written by [`SweepSummary::to_json`].
///
/// The exact inverse of the writer: all aggregate fields are taken
/// verbatim, per-job metric pairs keep their order, and a JSON `null`
/// metric value (how both writers persist non-finite values) reads back
/// as NaN. Unknown fields are ignored, so summaries written by future
/// revisions with extra fields still load.
///
/// # Errors
///
/// [`ReadError`] on malformed JSON or a document missing the summary
/// schema's fields.
pub fn read_summary_json(text: &str) -> Result<SweepSummary, ReadError> {
    let doc = JsonValue::parse(text)?;
    if doc.as_object().is_none() {
        return Err(ReadError::new("summary json: document is not an object"));
    }
    let jobs_value = field(&doc, "jobs")?
        .as_array()
        .ok_or_else(|| ReadError::new("summary json: `jobs` is not an array"))?;
    let mut jobs = Vec::with_capacity(jobs_value.len());
    for (row, job) in jobs_value.iter().enumerate() {
        jobs.push(
            read_job(job)
                .map_err(|e| ReadError::new(format!("summary json: job {row}: {}", e.message())))?,
        );
    }
    Ok(SweepSummary {
        total: field_usize(&doc, "total")?,
        succeeded: field_usize(&doc, "succeeded")?,
        failed: field_usize(&doc, "failed")?,
        panicked: field_usize(&doc, "panicked")?,
        budget_exceeded: field_usize(&doc, "budget_exceeded")?,
        cancelled: field_usize_or(&doc, "cancelled", 0)?,
        workers: field_usize(&doc, "workers")?,
        wall_secs: field_f64(&doc, "wall_secs")?,
        min_job_secs: field_f64(&doc, "min_job_secs")?,
        mean_job_secs: field_f64(&doc, "mean_job_secs")?,
        max_job_secs: field_f64(&doc, "max_job_secs")?,
        jobs,
    })
}

fn read_job(job: &JsonValue) -> Result<JobRecord, ReadError> {
    let status_name = field_str(job, "status")?;
    let Some(status) = JobStatus::parse(status_name) else {
        return Err(ReadError::new(format!("unknown status `{status_name}`")));
    };
    let pairs = field(job, "metrics")?
        .as_array()
        .ok_or_else(|| ReadError::new("`metrics` is not an array"))?;
    let mut metrics = Vec::with_capacity(pairs.len());
    for pair in pairs {
        let Some([name, value]) = pair.as_array().and_then(|a| <&[_; 2]>::try_from(a).ok()) else {
            return Err(ReadError::new("metric entry is not a [name, value] pair"));
        };
        let Some(name) = name.as_str() else {
            return Err(ReadError::new("metric name is not a string"));
        };
        // `null` is how both writers persist non-finite values
        let value = match value {
            JsonValue::Null => f64::NAN,
            other => other
                .as_f64()
                .ok_or_else(|| ReadError::new("metric value is not a number or null"))?,
        };
        metrics.push((name.to_owned(), value));
    }
    Ok(JobRecord {
        index: field_usize(job, "index")?,
        label: field_str(job, "label")?.to_owned(),
        status,
        wall_secs: field_f64(job, "wall_secs")?,
        detail: field_str(job, "detail")?.to_owned(),
        metrics,
    })
}

/// Reads a summary previously written by [`SweepSummary::to_csv`].
///
/// Per-job rows round-trip exactly — quoted labels (commas, quotes,
/// embedded newlines), union metric columns in header order, empty cells
/// for never-recorded metrics, and `null` cells for non-finite values
/// (read back as NaN; the legacy `NaN`/`inf`/`-inf` forms written before
/// the writers were unified are accepted too). Re-serializing the result
/// with `to_csv` reproduces the input byte-for-byte.
///
/// The CSV carries no sweep-level aggregates, so success/failure counts
/// and min/mean/max job times are recomputed from the rows, while
/// `workers` and the sweep's own `wall_secs` — not recoverable — are 0.
///
/// # Errors
///
/// [`ReadError`] on an unrecognized header, unbalanced quoting, a row
/// with the wrong column count, or unparseable numeric cells.
pub fn read_summary_csv(text: &str) -> Result<SweepSummary, ReadError> {
    let records = parse_csv_records(text)?;
    let Some((header, rows)) = records.split_first() else {
        return Err(ReadError::new("summary csv: missing header"));
    };
    const FIXED: [&str; 5] = ["index", "label", "status", "wall_secs", "detail"];
    if header.len() < FIXED.len() || header[..FIXED.len()] != FIXED {
        return Err(ReadError::new(format!(
            "summary csv: unrecognized header `{}`",
            header.join(",")
        )));
    }
    let metric_names = &header[FIXED.len()..];

    let mut jobs = Vec::with_capacity(rows.len());
    let mut counts = [0usize; 5]; // ok, failed, panicked, budget, cancelled
    let mut min = f64::INFINITY;
    let mut max = 0.0f64;
    let mut sum = 0.0f64;
    for (row_no, row) in rows.iter().enumerate() {
        let context = |msg: String| ReadError::new(format!("summary csv: row {row_no}: {msg}"));
        if row.len() != header.len() {
            return Err(context(format!(
                "expected {} fields, found {}",
                header.len(),
                row.len()
            )));
        }
        let index: usize = row[0]
            .parse()
            .map_err(|_| context(format!("invalid index `{}`", row[0])))?;
        let Some(status) = JobStatus::parse(&row[2]) else {
            return Err(context(format!("unknown status `{}`", row[2])));
        };
        let wall_secs: f64 = row[3]
            .parse()
            .map_err(|_| context(format!("invalid wall_secs `{}`", row[3])))?;
        let mut metrics = Vec::new();
        for (name, cell) in metric_names.iter().zip(&row[FIXED.len()..]) {
            if cell.is_empty() {
                continue; // never recorded
            }
            let value = if cell == "null" {
                f64::NAN
            } else {
                // also accepts the legacy `NaN` / `inf` / `-inf` cells
                cell.parse()
                    .map_err(|_| context(format!("invalid metric `{name}` value `{cell}`")))?
            };
            metrics.push((name.clone(), value));
        }
        counts[match status {
            JobStatus::Ok => 0,
            JobStatus::Failed => 1,
            JobStatus::Panicked => 2,
            JobStatus::BudgetExceeded => 3,
            JobStatus::Cancelled => 4,
        }] += 1;
        min = min.min(wall_secs);
        max = max.max(wall_secs);
        sum += wall_secs;
        jobs.push(JobRecord {
            index,
            label: row[1].clone(),
            status,
            wall_secs,
            detail: row[4].clone(),
            metrics,
        });
    }
    let total = jobs.len();
    Ok(SweepSummary {
        total,
        succeeded: counts[0],
        failed: counts[1],
        panicked: counts[2],
        budget_exceeded: counts[3],
        cancelled: counts[4],
        workers: 0,
        wall_secs: 0.0,
        min_job_secs: if total == 0 { 0.0 } else { min },
        mean_job_secs: if total == 0 { 0.0 } else { sum / total as f64 },
        max_job_secs: max,
        jobs,
    })
}

/// Splits CSV text into records of unescaped fields, honouring quoting:
/// quoted fields may contain commas, doubled quotes, and newlines.
fn parse_csv_records(text: &str) -> Result<Vec<Vec<String>>, ReadError> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut fld = String::new();
    let mut field_started = false;
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if !field_started => {
                // quoted field: consume to the closing quote
                field_started = true;
                loop {
                    match chars.next() {
                        None => return Err(ReadError::new("csv: unterminated quoted field")),
                        Some('"') => {
                            if chars.peek() == Some(&'"') {
                                chars.next();
                                fld.push('"');
                            } else {
                                break;
                            }
                        }
                        Some(other) => fld.push(other),
                    }
                }
            }
            ',' => {
                record.push(std::mem::take(&mut fld));
                field_started = false;
            }
            '\n' | '\r' => {
                if c == '\r' && chars.peek() == Some(&'\n') {
                    chars.next();
                }
                record.push(std::mem::take(&mut fld));
                records.push(std::mem::take(&mut record));
                field_started = false;
            }
            other => {
                fld.push(other);
                field_started = true;
            }
        }
    }
    // text without a trailing newline still yields its last record
    if field_started || !fld.is_empty() || !record.is_empty() {
        record.push(fld);
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_scalars_parse() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("\"a b\"").unwrap().as_str(), Some("a b"));
        let n = JsonValue::parse("-12.5e2").unwrap();
        assert_eq!(n.as_f64(), Some(-1250.0));
    }

    #[test]
    fn json_numbers_keep_their_lexeme() {
        let doc = JsonValue::parse("{\"a\": 10, \"b\": 0.14199}").unwrap();
        let mut out = String::new();
        doc.render_compact(&mut out);
        // `10` must not become `10.0`, `0.14199` must not be reformatted
        assert_eq!(out, "{\"a\":10,\"b\":0.14199}");
    }

    #[test]
    fn json_string_escapes_round_trip() {
        let doc = JsonValue::parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(doc.as_str(), Some("a\"b\\c\nd\u{41}\u{e9}"));
        // surrogate pair
        let astral = JsonValue::parse(r#""😀""#).unwrap();
        assert_eq!(astral.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn json_structure_errors_are_reported() {
        assert!(JsonValue::parse("{\"a\":1").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("1 2").is_err());
        assert!(JsonValue::parse("{\"a\" 1}").is_err());
        assert!(JsonValue::parse("\"abc").is_err());
        let deep = format!("{}1{}", "[".repeat(200), "]".repeat(200));
        assert!(JsonValue::parse(&deep).is_err(), "depth limit enforced");
    }

    #[test]
    fn json_object_edits_preserve_member_order() {
        let mut doc = JsonValue::parse("{\"keep\": 1, \"arr\": []}").unwrap();
        doc.get_mut("arr")
            .and_then(JsonValue::as_array_mut)
            .unwrap()
            .push(JsonValue::from_f64(7.0));
        doc.set("new", JsonValue::Bool(false));
        let mut out = String::new();
        doc.render_compact(&mut out);
        assert_eq!(out, "{\"keep\":1,\"arr\":[7],\"new\":false}");
    }

    #[test]
    fn pretty_rendering_indents_by_two() {
        let doc = JsonValue::parse("{\"a\":[1,2],\"b\":{},\"c\":{\"d\":null}}").unwrap();
        assert_eq!(
            doc.render_pretty(),
            "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {},\n  \"c\": {\n    \"d\": null\n  }\n}\n"
        );
    }

    #[test]
    fn from_f64_uses_canonical_lexemes() {
        assert_eq!(
            JsonValue::from_f64(7.0),
            JsonValue::Number {
                value: 7.0,
                raw: "7".to_owned()
            }
        );
        assert_eq!(JsonValue::from_f64(0.5).as_f64(), Some(0.5));
        assert_eq!(JsonValue::from_f64(f64::NAN), JsonValue::Null);
    }

    #[test]
    fn csv_records_handle_quoting_and_embedded_newlines() {
        let recs = parse_csv_records("a,\"b,c\",\"d\"\"e\"\n\"multi\nline\",2,3\n").unwrap();
        assert_eq!(
            recs,
            vec![
                vec!["a".to_owned(), "b,c".to_owned(), "d\"e".to_owned()],
                vec!["multi\nline".to_owned(), "2".to_owned(), "3".to_owned()],
            ]
        );
        // no trailing newline still yields the final record
        let recs = parse_csv_records("x,y").unwrap();
        assert_eq!(recs, vec![vec!["x".to_owned(), "y".to_owned()]]);
        assert!(parse_csv_records("\"open").is_err());
    }

    #[test]
    fn summary_csv_reader_rejects_malformed_rows() {
        assert!(read_summary_csv("not,a,summary\n").is_err());
        let missing_cols = "index,label,status,wall_secs,detail\n0,a,Ok\n";
        assert!(read_summary_csv(missing_cols).is_err());
        let bad_status = "index,label,status,wall_secs,detail\n0,a,Exploded,0.1,\n";
        assert!(read_summary_csv(bad_status).is_err());
    }

    #[test]
    fn summary_csv_reader_accepts_legacy_non_finite_forms() {
        let csv = "index,label,status,wall_secs,detail,residual,peak\n\
                   0,a,Ok,0.100000,,NaN,inf\n\
                   1,b,Ok,0.200000,,null,-inf\n";
        let s = read_summary_csv(csv).unwrap();
        assert!(s.jobs[0].metrics[0].1.is_nan());
        assert_eq!(s.jobs[0].metrics[1].1, f64::INFINITY);
        assert!(s.jobs[1].metrics[0].1.is_nan());
        assert_eq!(s.jobs[1].metrics[1].1, f64::NEG_INFINITY);
        // re-serialization uses the unified `null` form for all of them
        let rewritten = s.to_csv();
        assert!(
            rewritten.contains("0,a,Ok,0.100000,,null,null"),
            "{rewritten}"
        );
    }

    #[test]
    fn summary_json_reader_defaults_missing_cancelled_to_zero() {
        // artifacts persisted before the `cancelled` field existed
        let legacy = "{\"total\":0,\"succeeded\":0,\"failed\":0,\"panicked\":0,\
             \"budget_exceeded\":0,\"workers\":1,\"wall_secs\":0.0,\"min_job_secs\":0.0,\
             \"mean_job_secs\":0.0,\"max_job_secs\":0.0,\"jobs\":[]}";
        let s = read_summary_json(legacy).unwrap();
        assert_eq!(s.cancelled, 0);
    }

    #[test]
    fn summary_csv_reader_counts_cancelled_rows() {
        let csv = "index,label,status,wall_secs,detail\n\
                   0,a,Ok,0.100000,\n\
                   1,b,Cancelled,0.000000,cancelled before start\n";
        let s = read_summary_csv(csv).unwrap();
        assert_eq!(s.cancelled, 1);
        assert_eq!(s.succeeded, 1);
        assert_eq!(s.to_csv(), csv);
    }

    #[test]
    fn summary_json_reader_requires_schema_fields() {
        assert!(read_summary_json("[]").is_err());
        assert!(read_summary_json("{\"total\":1}").is_err());
        let bad_status = "{\"total\":0,\"succeeded\":0,\"failed\":0,\"panicked\":0,\
             \"budget_exceeded\":0,\"workers\":1,\"wall_secs\":0.0,\"min_job_secs\":0.0,\
             \"mean_job_secs\":0.0,\"max_job_secs\":0.0,\"jobs\":[{\"index\":0,\
             \"label\":\"a\",\"status\":\"Nope\",\"wall_secs\":0.1,\"detail\":\"\",\
             \"metrics\":[]}]}";
        let err = read_summary_json(bad_status).unwrap_err();
        assert!(err.message().contains("unknown status"), "{err}");
    }
}
