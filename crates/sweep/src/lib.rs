//! # molseq-sweep — parallel, fault-isolated batch simulation
//!
//! The paper-reproduction experiments are parameter sweeps: the same
//! network simulated under many rate assignments, jitter draws, leak
//! levels, or stochastic seeds. This crate turns such a sweep into a batch
//! of [`SweepJob`]s executed on a pool of scoped worker threads
//! ([`run_sweep`]), with three properties the experiments rely on:
//!
//! * **Determinism** — results come back in job order and each job's RNG
//!   seed ([`JobCtx::seed`]) is a pure function of the sweep seed and the
//!   job index, so parallel output is bit-identical to serial output.
//! * **Fault isolation** — every job runs under `catch_unwind` with a
//!   cooperative [`JobBudget`]; one diverging stiff integration is
//!   reported as a failed cell ([`CellOutcome`]), not a dead sweep.
//! * **Observability** — the engine aggregates a [`SweepSummary`]
//!   (success/failure counts, per-job wall times, min/mean/max),
//!   exportable as JSON or CSV, and can stream [`ProgressTick`]s while
//!   running.
//!
//! Persisted summaries are also *readable*: [`read_summary_json`] and
//! [`read_summary_csv`] invert the exporters exactly, and the trend layer
//! ([`compare_summaries`], [`compare_dirs`]) diffs two runs cell-by-cell —
//! deterministic simulator counters must match exactly, wall-clock
//! readings compare against a tolerance ([`TrendOptions`]) — so a
//! persisted baseline can gate CI against silent metric regressions.
//!
//! The crate is deliberately simulation-agnostic — a job is any
//! `Fn(&JobCtx) -> Result<T, JobError>` — and std-only: the pool is built
//! on `std::thread::scope`, sized by `available_parallelism`, so jobs may
//! borrow sweep-wide data (a compiled network, an input sequence) without
//! `Arc`.
//!
//! ## Example
//!
//! ```
//! use molseq_sweep::{run_sweep, SweepJob, SweepOptions};
//!
//! // One job per parameter value, all borrowing one input sequence.
//! let input = vec![1.0, 4.0, 2.0, 8.0];
//! let gains = [0.5, 1.0, 2.0, 4.0];
//! let jobs: Vec<SweepJob<'_, f64>> = gains
//!     .iter()
//!     .map(|&g| {
//!         let input = &input;
//!         SweepJob::infallible(format!("gain={g}"), move |_ctx| {
//!             input.iter().map(|x| g * x).sum::<f64>()
//!         })
//!     })
//!     .collect();
//!
//! let out = run_sweep(&jobs, &SweepOptions::default().with_workers(2));
//! assert_eq!(out.summary.succeeded, 4);
//! assert_eq!(out.cells[2].value(), Some(&30.0)); // job order, not finish order
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod history;
mod job;
mod pool;
mod progress;
mod read;
mod summary;
mod trend;

pub use history::{history_report, parse_trajectory, HistoryGate, HistoryReport, TrajectoryEntry};
pub use job::{derive_seed, CancelToken, GroupJob, JobBudget, JobCtx, JobError, SweepJob};
pub use pool::{
    run_cell, run_group, run_sweep, run_sweep_with_progress, run_units, run_units_with_progress,
    CellOutcome, CellResult, SweepOptions, SweepOutcome, SweepUnit,
};
pub use progress::ProgressTick;
pub use read::{read_summary_csv, read_summary_json, JsonValue, ReadError};
pub use summary::{JobRecord, JobStatus, SweepSummary};
pub use trend::{
    classify_metric, compare_dirs, compare_summaries, load_summaries, CellTrend, DirTrend,
    ExperimentTrend, MetricClass, MetricDelta, MetricTolerance, SummaryTrend, TrendOptions,
    TrendVerdict, MARKDOWN_MAX_ROWS,
};
