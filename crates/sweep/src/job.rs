//! The unit of sweep work: a labelled, seeded, budgeted closure.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared flag for cooperatively cancelling in-flight work.
///
/// Cloning the token is cheap (an `Arc` bump) and every clone observes the
/// same flag. A job whose [`JobCtx`] carries a token observes cancellation
/// at its budget checkpoints — [`JobCtx::check`], [`JobCtx::record_steps`],
/// and therefore inside any simulator driven through
/// [`JobCtx::step_hook`] — and ends as
/// [`CellOutcome::Cancelled`](crate::CellOutcome::Cancelled). Like the
/// budgets, cancellation is cooperative: std threads cannot be preempted,
/// so a closure that never consults its context runs to completion.
///
/// # Examples
///
/// ```
/// use molseq_sweep::CancelToken;
///
/// let token = CancelToken::new();
/// let observer = token.clone();
/// assert!(!observer.is_cancelled());
/// token.cancel();
/// assert!(observer.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Raises the flag. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether [`cancel`](Self::cancel) has been called on any clone.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Resource limits applied to every job of a sweep.
///
/// Both limits are **cooperative**: the engine cannot preempt a running
/// closure (std threads are not cancellable), so a job only observes its
/// budget at the points where it consults the [`JobCtx`] —
/// [`JobCtx::check`] for wall time, [`JobCtx::record_steps`] for steps.
/// Simulation step budgets are better expressed in the simulator options
/// (e.g. `OdeOptions::with_max_steps`), which enforce them densely; the
/// step budget here exists for work without such a knob.
///
/// # Examples
///
/// ```
/// use molseq_sweep::JobBudget;
/// use std::time::Duration;
///
/// let budget = JobBudget::unlimited()
///     .with_max_wall(Duration::from_secs(30))
///     .with_max_steps(1_000_000);
/// assert_eq!(budget.max_steps(), Some(1_000_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JobBudget {
    max_wall: Option<Duration>,
    max_steps: Option<u64>,
}

impl JobBudget {
    /// A budget with no limits (the default).
    #[must_use]
    pub fn unlimited() -> Self {
        JobBudget::default()
    }

    /// Caps a job's wall-clock time (builder style). Checked by
    /// [`JobCtx::check`]; note that wall time is machine-dependent, so
    /// sweeps that must be bit-reproducible should prefer step budgets.
    #[must_use]
    pub fn with_max_wall(mut self, limit: Duration) -> Self {
        self.max_wall = Some(limit);
        self
    }

    /// Caps a job's self-reported step count (builder style). Checked by
    /// [`JobCtx::record_steps`]; deterministic across machines.
    #[must_use]
    pub fn with_max_steps(mut self, limit: u64) -> Self {
        self.max_steps = Some(limit);
        self
    }

    /// The wall-clock limit, if any.
    #[must_use]
    pub fn max_wall(&self) -> Option<Duration> {
        self.max_wall
    }

    /// The step limit, if any.
    #[must_use]
    pub fn max_steps(&self) -> Option<u64> {
        self.max_steps
    }
}

/// Why a job did not produce a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job detected a domain failure (a simulation error, a
    /// divergence, a missing port, …).
    Failed(String),
    /// The job exhausted its [`JobBudget`].
    BudgetExceeded(String),
    /// The job observed its [`CancelToken`] raised and stopped early.
    Cancelled(String),
}

impl JobError {
    /// Convenience constructor wrapping any displayable error as
    /// [`JobError::Failed`].
    pub fn failed(err: impl fmt::Display) -> Self {
        JobError::Failed(err.to_string())
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Failed(msg) => write!(f, "job failed: {msg}"),
            JobError::BudgetExceeded(msg) => write!(f, "job budget exceeded: {msg}"),
            JobError::Cancelled(msg) => write!(f, "job cancelled: {msg}"),
        }
    }
}

impl std::error::Error for JobError {}

/// Per-job context handed to the closure: its position in the sweep, its
/// deterministic seed, and its budget meters.
///
/// The seed depends only on the sweep seed and the job index — never on
/// which worker thread runs the job or in what order — which is what makes
/// parallel sweeps bit-identical to serial ones.
#[derive(Debug)]
pub struct JobCtx {
    index: usize,
    seed: u64,
    budget: JobBudget,
    cancel: Option<CancelToken>,
    started: Instant,
    steps: Cell<u64>,
    metrics: RefCell<Vec<(String, f64)>>,
}

impl JobCtx {
    pub(crate) fn new(index: usize, seed: u64, budget: JobBudget) -> Self {
        JobCtx::with_cancel(index, seed, budget, None)
    }

    pub(crate) fn with_cancel(
        index: usize,
        seed: u64,
        budget: JobBudget,
        cancel: Option<CancelToken>,
    ) -> Self {
        JobCtx {
            index,
            seed,
            budget,
            cancel,
            started: Instant::now(),
            steps: Cell::new(0),
            metrics: RefCell::new(Vec::new()),
        }
    }

    /// This job's position in the sweep's job list.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// The deterministic per-job RNG seed, derived from the sweep seed and
    /// the job index. Jobs that need randomness should seed from this so
    /// that sweep output does not depend on scheduling.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Wall-clock time since this job started.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Cooperative wall-budget and cancellation checkpoint: call between
    /// phases of a long job and propagate the error with `?`.
    ///
    /// # Errors
    ///
    /// [`JobError::Cancelled`] if this context carries a raised
    /// [`CancelToken`]; [`JobError::BudgetExceeded`] once elapsed wall
    /// time passes the budget's `max_wall`.
    pub fn check(&self) -> Result<(), JobError> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(JobError::Cancelled("cancel token raised".into()));
            }
        }
        if let Some(limit) = self.budget.max_wall() {
            let elapsed = self.elapsed();
            if elapsed > limit {
                return Err(JobError::BudgetExceeded(format!(
                    "wall {elapsed:.2?} > limit {limit:.2?}"
                )));
            }
        }
        Ok(())
    }

    /// Adds `n` to this job's step meter and checks it against the step
    /// budget. Deterministic, unlike wall checks.
    ///
    /// # Errors
    ///
    /// [`JobError::BudgetExceeded`] once the accumulated count passes the
    /// budget's `max_steps`.
    pub fn record_steps(&self, n: u64) -> Result<(), JobError> {
        let total = self.steps.get().saturating_add(n);
        self.steps.set(total);
        if let Some(limit) = self.budget.max_steps() {
            if total > limit {
                return Err(JobError::BudgetExceeded(format!(
                    "steps {total} > limit {limit}"
                )));
            }
        }
        Ok(())
    }

    /// The steps recorded so far via [`record_steps`](Self::record_steps).
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps.get()
    }

    /// Adapts this context's budget meters to the simulators' step-hook
    /// signature (`Fn(u64, f64) -> ControlFlow<String>`): bind the return
    /// value and pass a reference as `OdeOptions::with_step_hook` /
    /// `SsaOptions::with_step_hook`, and the sweep's wall/step budgets are
    /// then enforced *inside* the integration loop instead of only between
    /// jobs.
    ///
    /// The hook receives each simulator call's cumulative step count; the
    /// adapter records only the per-call increment, so one job may drive
    /// several simulations (e.g. a harness's horizon-doubling retries,
    /// whose counters restart) against a single shared meter.
    ///
    /// # Examples
    ///
    /// ```
    /// use molseq_sweep::{JobBudget, JobCtx};
    /// use std::ops::ControlFlow;
    ///
    /// let ctx = JobCtx::new_for_test(0, 1, JobBudget::unlimited().with_max_steps(100));
    /// let hook = ctx.step_hook();
    /// assert!(matches!(hook(90, 1.0), ControlFlow::Continue(())));
    /// assert!(matches!(hook(101, 2.0), ControlFlow::Break(_)));
    /// ```
    pub fn step_hook(&self) -> impl Fn(u64, f64) -> std::ops::ControlFlow<String> + '_ {
        let last = Cell::new(0u64);
        move |steps, _t| {
            // a new simulator call restarts its counter at 1
            let delta = if steps < last.get() {
                steps
            } else {
                steps - last.get()
            };
            last.set(steps);
            if let Err(e) = self.record_steps(delta) {
                return std::ops::ControlFlow::Break(e.to_string());
            }
            if let Err(e) = self.check() {
                return std::ops::ControlFlow::Break(e.to_string());
            }
            std::ops::ControlFlow::Continue(())
        }
    }

    /// Records a named per-cell metric (a simulator counter, a measured
    /// latency, a convergence residual, …). The engine copies recorded
    /// metrics into [`CellResult::metrics`](crate::CellResult) and the
    /// summary's [`JobRecord::metrics`](crate::JobRecord), so they land in
    /// the sweep's JSON/CSV artefacts without the job's payload type
    /// having to carry them.
    ///
    /// Metrics are kept in call order; recording the same name twice keeps
    /// both entries, and the summary's CSV export uses the **last** value
    /// for a repeated name.
    ///
    /// # Examples
    ///
    /// ```
    /// use molseq_sweep::{JobBudget, JobCtx};
    ///
    /// let ctx = JobCtx::new_for_test(0, 1, JobBudget::unlimited());
    /// ctx.record_metric("ssa_events", 1024.0);
    /// ctx.record_metric("final_time", 50.0);
    /// ```
    pub fn record_metric(&self, name: impl Into<String>, value: f64) {
        self.metrics.borrow_mut().push((name.into(), value));
    }

    /// Drains the recorded metrics (engine-side, after the job returns).
    /// Tolerates a borrow leaked by a panicking job: the metrics are then
    /// simply dropped with the rest of the cell's work.
    pub(crate) fn take_metrics(&self) -> Vec<(String, f64)> {
        match self.metrics.try_borrow_mut() {
            Ok(mut m) => std::mem::take(&mut *m),
            Err(_) => Vec::new(),
        }
    }

    /// Test-only constructor (public so doctests and downstream
    /// integration tests can fabricate a context without running a sweep).
    #[doc(hidden)]
    #[must_use]
    pub fn new_for_test(index: usize, seed: u64, budget: JobBudget) -> Self {
        JobCtx::new(index, seed, budget)
    }
}

/// Derives the per-job seed from the sweep seed and job index with a
/// SplitMix64 finalizer, so adjacent indices get statistically independent
/// seeds.
///
/// This is the exact function [`run_sweep`](crate::run_sweep) uses for
/// [`JobCtx::seed`]; it is public so external schedulers (e.g. a server
/// dispatching cells one at a time onto a persistent pool) can reproduce
/// a sweep's per-cell seeds bit-for-bit.
#[must_use]
pub fn derive_seed(sweep_seed: u64, index: usize) -> u64 {
    let mut z = sweep_seed
        .wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A labelled unit of sweep work.
///
/// The closure receives a [`JobCtx`] and returns either a value or a
/// [`JobError`]. The lifetime parameter lets jobs borrow sweep-wide data
/// (a compiled network, an input sequence) without cloning it per cell —
/// the engine runs them on scoped threads.
///
/// # Examples
///
/// ```
/// use molseq_sweep::SweepJob;
///
/// let base = vec![1.0, 2.0, 3.0];
/// let jobs: Vec<SweepJob<'_, f64>> = (0..4)
///     .map(|i| {
///         let base = &base;
///         SweepJob::infallible(format!("cell {i}"), move |_ctx| {
///             base.iter().sum::<f64>() * i as f64
///         })
///     })
///     .collect();
/// assert_eq!(jobs.len(), 4);
/// ```
pub struct SweepJob<'a, T> {
    label: String,
    run: JobFn<'a, T>,
}

/// The boxed work closure a [`SweepJob`] carries.
type JobFn<'a, T> = Box<dyn Fn(&JobCtx) -> Result<T, JobError> + Send + Sync + 'a>;

impl<'a, T> SweepJob<'a, T> {
    /// Creates a job from a fallible closure.
    pub fn new(
        label: impl Into<String>,
        run: impl Fn(&JobCtx) -> Result<T, JobError> + Send + Sync + 'a,
    ) -> Self {
        SweepJob {
            label: label.into(),
            run: Box::new(run),
        }
    }

    /// Creates a job from a closure that cannot fail (panics are still
    /// caught and isolated by the engine).
    pub fn infallible(
        label: impl Into<String>,
        run: impl Fn(&JobCtx) -> T + Send + Sync + 'a,
    ) -> Self {
        SweepJob::new(label, move |ctx| Ok(run(ctx)))
    }

    /// The job's human-readable label (parameter values, typically).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    pub(crate) fn call(&self, ctx: &JobCtx) -> Result<T, JobError> {
        (self.run)(ctx)
    }
}

impl<T> fmt::Debug for SweepJob<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SweepJob")
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

/// A batch of sweep cells executed by **one** closure invocation — the
/// scheduling unit behind lock-step batched simulation, where one engine
/// call advances several cells together (e.g.
/// `molseq_kinetics::run_ode_batch`).
///
/// The closure receives one [`JobCtx`] per cell — each carrying that
/// cell's *global* sweep index, deterministic seed and budget meters,
/// exactly as if the cells were independent [`SweepJob`]s — and must
/// return one result per cell, in order. The engine fans the results back
/// out into per-cell [`CellResult`](crate::CellResult)s; the group's wall
/// time is shared by every member (the members ran concurrently in one
/// call, so per-member wall time is not separable).
pub struct GroupJob<'a, T> {
    labels: Vec<String>,
    run: GroupFn<'a, T>,
}

/// The boxed work closure a [`GroupJob`] carries.
type GroupFn<'a, T> = Box<dyn Fn(&[JobCtx]) -> Vec<Result<T, JobError>> + Send + Sync + 'a>;

impl<'a, T> GroupJob<'a, T> {
    /// Creates a group from per-cell labels and a closure producing one
    /// result per label.
    ///
    /// # Panics
    ///
    /// Panics if `labels` is empty — a group owns at least one cell.
    pub fn new(
        labels: Vec<String>,
        run: impl Fn(&[JobCtx]) -> Vec<Result<T, JobError>> + Send + Sync + 'a,
    ) -> Self {
        assert!(!labels.is_empty(), "a group job owns at least one cell");
        GroupJob {
            labels,
            run: Box::new(run),
        }
    }

    /// The per-cell labels, in result order.
    #[must_use]
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// How many cells this group owns.
    #[must_use]
    pub fn width(&self) -> usize {
        self.labels.len()
    }

    pub(crate) fn call(&self, ctxs: &[JobCtx]) -> Vec<Result<T, JobError>> {
        (self.run)(ctxs)
    }
}

impl<T> fmt::Debug for GroupJob<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GroupJob")
            .field("labels", &self.labels)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let a: Vec<u64> = (0..64).map(|i| derive_seed(7, i)).collect();
        let b: Vec<u64> = (0..64).map(|i| derive_seed(7, i)).collect();
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), a.len(), "no seed collisions");
        assert_ne!(derive_seed(7, 0), derive_seed(8, 0));
    }

    #[test]
    fn seed_derivation_is_pinned_to_golden_values() {
        // The exact outputs are load-bearing: the server reproduces sweep
        // seeds cell by cell, persisted summaries embed them, and the
        // batched engines owe bit-identity to the scalar paths that
        // consumed them. Any change here silently invalidates every
        // stored baseline, so the function is pinned value by value.
        // `derive_seed(0, 0)` is SplitMix64's first output for seed 0 —
        // a cross-check against the published reference sequence.
        let golden: [(u64, usize, u64); 10] = [
            (0, 0, 0xE220_A839_7B1D_CDAF),
            (0, 1, 0x6E78_9E6A_A1B9_65F4),
            (0, 2, 0x06C4_5D18_8009_454F),
            (7, 0, 0x63CB_E1E4_5932_0DD7),
            (7, 1, 0x044C_3CD7_F43C_661C),
            (11, 0, 0x50F5_647D_2380_309D),
            (11, 5, 0x8D4B_C9E1_7AB0_580E),
            (u64::MAX, 0, 0xE4D9_7177_1B65_2C20),
            (u64::MAX, usize::MAX, 0xB4D0_55FC_F2CB_BD7B),
            (42, 1_000_000, 0xB053_C533_12AC_3FFB),
        ];
        for (sweep_seed, index, expected) in golden {
            assert_eq!(
                derive_seed(sweep_seed, index),
                expected,
                "derive_seed({sweep_seed}, {index})"
            );
        }
    }

    #[test]
    fn step_budget_trips_deterministically() {
        let budget = JobBudget::unlimited().with_max_steps(10);
        let ctx = JobCtx::new(0, 1, budget);
        assert!(ctx.record_steps(6).is_ok());
        assert!(ctx.record_steps(4).is_ok());
        assert_eq!(ctx.steps(), 10);
        let err = ctx.record_steps(1).unwrap_err();
        assert!(matches!(err, JobError::BudgetExceeded(_)), "{err}");
    }

    #[test]
    fn wall_budget_checkpoints() {
        let ctx = JobCtx::new(0, 1, JobBudget::unlimited());
        assert!(ctx.check().is_ok());
        let tight = JobCtx::new(0, 1, JobBudget::unlimited().with_max_wall(Duration::ZERO));
        std::thread::sleep(Duration::from_millis(1));
        assert!(tight.check().is_err());
    }

    #[test]
    fn step_hook_meters_deltas_and_survives_counter_resets() {
        let ctx = JobCtx::new(0, 1, JobBudget::unlimited().with_max_steps(100));
        let hook = ctx.step_hook();
        // first simulator call: cumulative 1, 2, ... 60
        assert!(hook(60, 0.5).is_continue());
        assert_eq!(ctx.steps(), 60);
        // second call restarts its counter: 10 fresh steps, not a rollback
        assert!(hook(10, 0.1).is_continue());
        assert_eq!(ctx.steps(), 70);
        // pushing past the budget breaks with the budget message
        let broke = hook(50, 0.2);
        assert!(matches!(broke, std::ops::ControlFlow::Break(ref m) if m.contains("budget")));
    }

    #[test]
    fn metrics_record_in_call_order_and_drain_once() {
        let ctx = JobCtx::new(0, 1, JobBudget::unlimited());
        ctx.record_metric("events", 10.0);
        ctx.record_metric("final_time", 2.5);
        ctx.record_metric("events", 12.0); // duplicates are kept
        assert_eq!(
            ctx.take_metrics(),
            vec![
                ("events".to_string(), 10.0),
                ("final_time".to_string(), 2.5),
                ("events".to_string(), 12.0),
            ]
        );
        assert!(ctx.take_metrics().is_empty(), "drained exactly once");
    }

    #[test]
    fn cancel_token_trips_check_and_step_hook() {
        let token = CancelToken::new();
        let ctx = JobCtx::with_cancel(0, 1, JobBudget::unlimited(), Some(token.clone()));
        assert!(ctx.check().is_ok());
        let hook = ctx.step_hook();
        assert!(hook(5, 0.1).is_continue());
        token.cancel();
        assert!(matches!(ctx.check(), Err(JobError::Cancelled(_))));
        let broke = hook(10, 0.2);
        assert!(matches!(broke, std::ops::ControlFlow::Break(ref m) if m.contains("cancelled")));
    }

    #[test]
    fn error_display_is_informative() {
        let e = JobError::failed("port `y` missing");
        assert_eq!(e.to_string(), "job failed: port `y` missing");
        let b = JobError::BudgetExceeded("steps 11 > limit 10".into());
        assert!(b.to_string().contains("budget exceeded"));
    }
}
