//! Aggregated sweep statistics, exportable as JSON or CSV.

use crate::pool::{CellOutcome, CellResult};
use serde::Serialize;
use std::time::Duration;

/// The terminal state of one sweep cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum JobStatus {
    /// The job returned a value.
    Ok,
    /// The job returned [`JobError::Failed`](crate::JobError::Failed).
    Failed,
    /// The job panicked; the panic was caught and isolated.
    Panicked,
    /// The job exhausted its [`JobBudget`](crate::JobBudget).
    BudgetExceeded,
    /// The job was cancelled via a [`CancelToken`](crate::CancelToken).
    Cancelled,
}

impl JobStatus {
    /// `true` only for [`JobStatus::Ok`].
    #[must_use]
    pub fn is_ok(self) -> bool {
        matches!(self, JobStatus::Ok)
    }

    /// The status's canonical serialized name (`"Ok"`, `"Failed"`,
    /// `"Panicked"`, `"BudgetExceeded"`, `"Cancelled"`) — the form both
    /// the JSON and CSV exporters write and [`JobStatus::parse`] accepts.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Ok => "Ok",
            JobStatus::Failed => "Failed",
            JobStatus::Panicked => "Panicked",
            JobStatus::BudgetExceeded => "BudgetExceeded",
            JobStatus::Cancelled => "Cancelled",
        }
    }

    /// Parses a canonical status name back into a [`JobStatus`]; the
    /// inverse of [`JobStatus::as_str`]. Returns `None` for anything else.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "Ok" => Some(JobStatus::Ok),
            "Failed" => Some(JobStatus::Failed),
            "Panicked" => Some(JobStatus::Panicked),
            "BudgetExceeded" => Some(JobStatus::BudgetExceeded),
            "Cancelled" => Some(JobStatus::Cancelled),
            _ => None,
        }
    }
}

/// One cell's row in the summary: everything except the payload value.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JobRecord {
    /// The job's position in the sweep.
    pub index: usize,
    /// The job's label.
    pub label: String,
    /// How the job ended.
    pub status: JobStatus,
    /// The job's wall time, in seconds.
    pub wall_secs: f64,
    /// Failure detail (empty for successful jobs).
    pub detail: String,
    /// Metrics the job recorded via
    /// [`JobCtx::record_metric`](crate::JobCtx::record_metric), in call
    /// order. Serialized to JSON as an array of `[name, value]` pairs.
    pub metrics: Vec<(String, f64)>,
}

/// Aggregate statistics for one sweep run.
///
/// Serializable to JSON via [`to_json`](Self::to_json) (the whole summary,
/// nested) and to CSV via [`to_csv`](Self::to_csv) (one row per job).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SweepSummary {
    /// Total jobs in the sweep.
    pub total: usize,
    /// Jobs that returned a value.
    pub succeeded: usize,
    /// Jobs that returned a domain failure.
    pub failed: usize,
    /// Jobs that panicked.
    pub panicked: usize,
    /// Jobs that exhausted their budget.
    pub budget_exceeded: usize,
    /// Jobs cancelled via a [`CancelToken`](crate::CancelToken).
    pub cancelled: usize,
    /// Worker threads the engine actually used.
    pub workers: usize,
    /// Wall time of the whole sweep, in seconds.
    pub wall_secs: f64,
    /// Fastest single job, in seconds (0 for an empty sweep).
    pub min_job_secs: f64,
    /// Mean job time, in seconds (0 for an empty sweep).
    pub mean_job_secs: f64,
    /// Slowest single job, in seconds (0 for an empty sweep).
    pub max_job_secs: f64,
    /// Per-job rows, in job order.
    pub jobs: Vec<JobRecord>,
}

impl SweepSummary {
    pub(crate) fn from_cells<T>(cells: &[CellResult<T>], workers: usize, wall: Duration) -> Self {
        let mut succeeded = 0;
        let mut failed = 0;
        let mut panicked = 0;
        let mut budget_exceeded = 0;
        let mut cancelled = 0;
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        let mut sum = 0.0f64;
        let jobs: Vec<JobRecord> = cells
            .iter()
            .map(|cell| {
                let (status, detail) = match &cell.outcome {
                    CellOutcome::Ok(_) => {
                        succeeded += 1;
                        (JobStatus::Ok, String::new())
                    }
                    CellOutcome::Failed(msg) => {
                        failed += 1;
                        (JobStatus::Failed, msg.clone())
                    }
                    CellOutcome::Panicked(msg) => {
                        panicked += 1;
                        (JobStatus::Panicked, msg.clone())
                    }
                    CellOutcome::BudgetExceeded(msg) => {
                        budget_exceeded += 1;
                        (JobStatus::BudgetExceeded, msg.clone())
                    }
                    CellOutcome::Cancelled(msg) => {
                        cancelled += 1;
                        (JobStatus::Cancelled, msg.clone())
                    }
                };
                let wall_secs = cell.wall.as_secs_f64();
                min = min.min(wall_secs);
                max = max.max(wall_secs);
                sum += wall_secs;
                JobRecord {
                    index: cell.index,
                    label: cell.label.clone(),
                    status,
                    wall_secs,
                    detail,
                    metrics: cell.metrics.clone(),
                }
            })
            .collect();
        let total = cells.len();
        SweepSummary {
            total,
            succeeded,
            failed,
            panicked,
            budget_exceeded,
            cancelled,
            workers,
            wall_secs: wall.as_secs_f64(),
            min_job_secs: if total == 0 { 0.0 } else { min },
            mean_job_secs: if total == 0 { 0.0 } else { sum / total as f64 },
            max_job_secs: max,
            jobs,
        }
    }

    /// Jobs that did not succeed, in job order.
    #[must_use]
    pub fn failures(&self) -> Vec<&JobRecord> {
        self.jobs.iter().filter(|j| !j.status.is_ok()).collect()
    }

    /// The whole summary as a JSON object (per-job rows nested under
    /// `"jobs"`).
    #[must_use]
    pub fn to_json(&self) -> String {
        Serialize::to_json(self)
    }

    /// The union of metric names recorded across all jobs, sorted
    /// lexicographically.
    ///
    /// This single ordering is shared by every consumer that lays metrics
    /// out side by side — [`to_csv`](Self::to_csv) column order, the batch
    /// server's `stats` output — so two summaries over the same metric set
    /// are column-compatible regardless of which job ran first or which
    /// worker recorded a name earliest.
    #[must_use]
    pub fn metric_columns(&self) -> Vec<&str> {
        let mut metric_names: Vec<&str> = Vec::new();
        for job in &self.jobs {
            for (name, _) in &job.metrics {
                if !metric_names.contains(&name.as_str()) {
                    metric_names.push(name);
                }
            }
        }
        metric_names.sort_unstable();
        metric_names
    }

    /// Per-job rows as CSV with an `index,label,status,wall_secs,detail`
    /// header. Fields containing commas, quotes, or newlines are quoted.
    ///
    /// When any job recorded metrics, one column per distinct metric name
    /// (the sorted union from [`metric_columns`](Self::metric_columns)) is
    /// appended after `detail`; a job that did not record a given metric
    /// leaves that cell empty, and a job that recorded the same name twice
    /// contributes its last value. Sweeps without metrics keep the
    /// historical five-column header byte-for-byte.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let metric_names = self.metric_columns();
        let mut out = String::from("index,label,status,wall_secs,detail");
        for name in &metric_names {
            out.push(',');
            push_csv_field(&mut out, name);
        }
        out.push('\n');
        for job in &self.jobs {
            out.push_str(&job.index.to_string());
            out.push(',');
            push_csv_field(&mut out, &job.label);
            out.push(',');
            out.push_str(job.status.as_str());
            out.push(',');
            out.push_str(&format!("{:.6}", job.wall_secs));
            out.push(',');
            push_csv_field(&mut out, &job.detail);
            for name in &metric_names {
                out.push(',');
                if let Some((_, v)) = job.metrics.iter().rev().find(|(n, _)| n == name) {
                    out.push_str(&format_metric(*v));
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Renders a metric value compactly: integer-valued counters (the common
/// case — event counts, step counts, seeds) print without a fractional
/// part, everything else with `f64`'s shortest round-trip form.
///
/// Non-finite values render as `null`, matching the JSON writer (the
/// vendored serde stub serializes non-finite `f64` as JSON `null`, like
/// `serde_json`), so the two persisted forms agree: a NaN metric is
/// `null` in both artifacts, and the readers in [`crate::read`] map it
/// back to NaN. An empty CSV cell still means "metric never recorded" —
/// distinct from `null`, which means "recorded but not finite".
pub(crate) fn format_metric(v: f64) -> String {
    if !v.is_finite() {
        "null".to_owned()
    } else if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

pub(crate) fn push_csv_field(out: &mut String, field: &str) {
    if field.contains([',', '"', '\n', '\r']) {
        out.push('"');
        out.push_str(&field.replace('"', "\"\""));
        out.push('"');
    } else {
        out.push_str(field);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cells() -> Vec<CellResult<u32>> {
        vec![
            CellResult {
                index: 0,
                label: "a=1".into(),
                wall: Duration::from_millis(10),
                outcome: CellOutcome::Ok(1),
                metrics: Vec::new(),
            },
            CellResult {
                index: 1,
                label: "a=2, b=3".into(),
                wall: Duration::from_millis(30),
                outcome: CellOutcome::Failed("diverged at t=4".into()),
                metrics: Vec::new(),
            },
            CellResult {
                index: 2,
                label: "a=3".into(),
                wall: Duration::from_millis(20),
                outcome: CellOutcome::Panicked("index out of bounds".into()),
                metrics: Vec::new(),
            },
        ]
    }

    fn cells_with_metrics() -> Vec<CellResult<u32>> {
        vec![
            CellResult {
                index: 0,
                label: "rep=0".into(),
                wall: Duration::from_millis(10),
                outcome: CellOutcome::Ok(1),
                metrics: vec![
                    ("ssa_events".to_string(), 120.0),
                    ("final_time".to_string(), 49.5),
                ],
            },
            CellResult {
                index: 1,
                label: "rep=1".into(),
                wall: Duration::from_millis(12),
                outcome: CellOutcome::Ok(2),
                // different metric set, plus a repeated name (last wins)
                metrics: vec![
                    ("final_time".to_string(), 50.0),
                    ("tau_leaps".to_string(), 8.0),
                    ("tau_leaps".to_string(), 9.0),
                ],
            },
            CellResult {
                index: 2,
                label: "rep=2".into(),
                wall: Duration::from_millis(9),
                outcome: CellOutcome::Failed("boom".into()),
                metrics: Vec::new(),
            },
        ]
    }

    #[test]
    fn counts_and_timing_aggregate() {
        let s = SweepSummary::from_cells(&cells(), 4, Duration::from_millis(35));
        assert_eq!((s.total, s.succeeded, s.failed, s.panicked), (3, 1, 1, 1));
        assert_eq!(s.budget_exceeded, 0);
        assert_eq!(s.workers, 4);
        assert!((s.min_job_secs - 0.010).abs() < 1e-9);
        assert!((s.mean_job_secs - 0.020).abs() < 1e-9);
        assert!((s.max_job_secs - 0.030).abs() < 1e-9);
        assert_eq!(s.failures().len(), 2);
    }

    #[test]
    fn cancelled_cells_aggregate_and_round_trip_their_status() {
        let cells = vec![CellResult {
            index: 0,
            label: "rep=0".into(),
            wall: Duration::ZERO,
            outcome: CellOutcome::<u32>::Cancelled("cancelled before start".into()),
            metrics: Vec::new(),
        }];
        let s = SweepSummary::from_cells(&cells, 1, Duration::from_millis(1));
        assert_eq!(s.cancelled, 1);
        assert_eq!(s.succeeded, 0);
        assert_eq!(s.jobs[0].status, JobStatus::Cancelled);
        assert_eq!(JobStatus::parse("Cancelled"), Some(JobStatus::Cancelled));
        assert_eq!(JobStatus::Cancelled.as_str(), "Cancelled");
        assert!(s.to_json().contains("\"cancelled\":1"));
    }

    #[test]
    fn empty_sweep_has_zero_stats() {
        let s = SweepSummary::from_cells::<u32>(&[], 1, Duration::ZERO);
        assert_eq!(s.total, 0);
        assert_eq!(s.min_job_secs, 0.0);
        assert_eq!(s.mean_job_secs, 0.0);
        assert_eq!(s.max_job_secs, 0.0);
        assert_eq!(s.to_csv(), "index,label,status,wall_secs,detail\n");
    }

    #[test]
    fn json_nests_job_rows() {
        let s = SweepSummary::from_cells(&cells(), 2, Duration::from_millis(35));
        let json = s.to_json();
        assert!(json.contains("\"total\":3"), "{json}");
        assert!(json.contains("\"status\":\"Panicked\""), "{json}");
        assert!(json.contains("\"detail\":\"diverged at t=4\""), "{json}");
    }

    #[test]
    fn csv_quotes_fields_with_commas() {
        let s = SweepSummary::from_cells(&cells(), 2, Duration::from_millis(35));
        let csv = s.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(
            lines[2].starts_with("1,\"a=2, b=3\",Failed,"),
            "{}",
            lines[2]
        );
        assert!(lines[1].starts_with("0,a=1,Ok,"), "{}", lines[1]);
    }

    #[test]
    fn csv_appends_metric_columns_in_sorted_union_order() {
        let s = SweepSummary::from_cells(&cells_with_metrics(), 2, Duration::from_millis(31));
        assert_eq!(
            s.metric_columns(),
            vec!["final_time", "ssa_events", "tau_leaps"]
        );
        let csv = s.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        // sorted union, not first-seen order: recording order must not
        // leak into the artifact layout
        assert_eq!(
            lines[0],
            "index,label,status,wall_secs,detail,final_time,ssa_events,tau_leaps"
        );
        assert!(lines[1].ends_with(",49.5,120,"), "{}", lines[1]);
        // repeated `tau_leaps` keeps the last value; missing `ssa_events`
        // leaves an empty cell
        assert!(lines[2].ends_with(",50,,9"), "{}", lines[2]);
        // a failed job with no metrics still gets the empty cells
        assert!(lines[3].ends_with(",boom,,,"), "{}", lines[3]);
    }

    #[test]
    fn csv_header_is_unchanged_without_metrics() {
        let s = SweepSummary::from_cells(&cells(), 2, Duration::from_millis(35));
        assert!(s
            .to_csv()
            .starts_with("index,label,status,wall_secs,detail\n"));
    }

    #[test]
    fn json_carries_metric_pairs() {
        let s = SweepSummary::from_cells(&cells_with_metrics(), 2, Duration::from_millis(31));
        let json = s.to_json();
        assert!(
            json.contains("\"metrics\":[[\"ssa_events\",120.0]"),
            "{json}"
        );
        assert!(json.contains("[\"final_time\",49.5]"), "{json}");
        assert!(json.contains("\"metrics\":[]"), "{json}");
    }

    #[test]
    fn metric_values_format_compactly() {
        assert_eq!(format_metric(120.0), "120");
        assert_eq!(format_metric(49.5), "49.5");
        assert_eq!(format_metric(-3.0), "-3");
        // beyond exact-integer range, fall through to `{}` formatting
        assert_eq!(format_metric(1.0e18), format!("{}", 1.0e18f64));
        // negative zero keeps its sign and round-trips through `parse`
        assert_eq!(format_metric(-0.0), "-0");
        assert!("-0".parse::<f64>().unwrap().is_sign_negative());
    }

    #[test]
    fn non_finite_metrics_serialize_as_null_in_both_writers() {
        // the JSON writer (serde stub) has always emitted `null` for
        // non-finite floats; the CSV writer must agree
        assert_eq!(format_metric(f64::NAN), "null");
        assert_eq!(format_metric(f64::INFINITY), "null");
        assert_eq!(format_metric(f64::NEG_INFINITY), "null");

        let cells = vec![CellResult {
            index: 0,
            label: "rep=0".into(),
            wall: Duration::from_millis(10),
            outcome: CellOutcome::Ok(1u32),
            metrics: vec![
                ("residual".to_string(), f64::NAN),
                ("ssa_events".to_string(), 7.0),
            ],
        }];
        let s = SweepSummary::from_cells(&cells, 1, Duration::from_millis(10));
        let json = s.to_json();
        assert!(json.contains("[\"residual\",null]"), "{json}");
        let csv = s.to_csv();
        let row = csv.lines().nth(1).unwrap();
        assert!(row.ends_with(",null,7"), "{row}");
    }
}
