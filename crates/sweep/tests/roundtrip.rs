//! Property tests: every summary the writers can produce must read back
//! through the `read` module.
//!
//! * JSON is lossless (modulo the documented non-finite → `null` → NaN
//!   collapse), so `read_summary_json(to_json(s))` must re-serialize to
//!   the identical JSON document.
//! * CSV drops sweep-level aggregates and per-job metric duplicates by
//!   design, so the property there is serialization stability:
//!   `read_summary_csv(csv).to_csv() == csv`.
//!
//! The generator deliberately covers the writer's hard cases: labels and
//! details with commas, quotes and newlines; empty sweeps; cells missing
//! some metric columns; duplicate metric names inside one cell; NaN
//! metric values.

use molseq_sweep::{read_summary_csv, read_summary_json, JobRecord, JobStatus, SweepSummary};
use proptest::prelude::*;

/// Characters the label/detail generator draws from — heavy on CSV and
/// JSON metacharacters.
const LABEL_CHARS: &[char] = &[
    'a', 'b', 'k', '=', '1', '7', '.', ' ', ',', '"', '\n', '\r', '\t', '\\', 'é', 'Ω',
];

/// Metric names the generator draws from; a small pool forces collisions
/// (duplicate names within a cell, shared columns across cells).
const METRIC_NAMES: &[&str] = &[
    "ode_steps_accepted",
    "ssa_events",
    "final_time",
    "seed",
    "metric,with\"punct",
];

fn text(rng_draws: Vec<usize>) -> String {
    rng_draws.into_iter().map(|i| LABEL_CHARS[i]).collect()
}

fn status(choice: usize) -> JobStatus {
    [
        JobStatus::Ok,
        JobStatus::Failed,
        JobStatus::Panicked,
        JobStatus::BudgetExceeded,
        JobStatus::Cancelled,
    ][choice]
}

/// One generated metric: (name index, value). Values mix integers (the
/// counter case), fractions, and NaN.
fn metric(name_idx: usize, value_kind: usize, magnitude: u32) -> (String, f64) {
    let value = match value_kind {
        0 => f64::from(magnitude),       // integer-valued counter
        1 => f64::from(magnitude) / 8.0, // fractional
        2 => -f64::from(magnitude),      // negative counter
        _ => f64::NAN,                   // recorded-but-undefined
    };
    (METRIC_NAMES[name_idx].to_string(), value)
}

/// A generated job before materialization: index, label chars, status
/// choice, wall in 0.1 ms units, detail chars, metric draws.
type RawJob = (
    usize,
    Vec<usize>,
    usize,
    u32,
    Vec<usize>,
    Vec<(usize, usize, u32)>,
);

fn job_strategy() -> impl Strategy<Value = RawJob> {
    // the vendored proptest stub supports tuples up to arity 4, so the six
    // components are generated as two nested triples
    (
        (
            0usize..1000,                                      // index
            collection::vec(0usize..LABEL_CHARS.len(), 0..12), // label chars
            0usize..5,                                         // status
        ),
        (
            0u32..50_000,                                      // wall, 0.1 ms units
            collection::vec(0usize..LABEL_CHARS.len(), 0..12), // detail chars
            collection::vec((0usize..METRIC_NAMES.len(), 0usize..4, 0u32..100_000), 0..6), // metrics
        ),
    )
        .prop_map(|((index, label, st), (wall, detail, metrics))| {
            (index, label, st, wall, detail, metrics)
        })
}

fn build_summary(workers: usize, wall: u32, raw_jobs: Vec<RawJob>) -> SweepSummary {
    let jobs: Vec<JobRecord> = raw_jobs
        .into_iter()
        .map(|(index, label, st, wall, detail, metrics)| JobRecord {
            index,
            label: text(label),
            status: status(st),
            wall_secs: f64::from(wall) / 10_000.0,
            detail: text(detail),
            metrics: metrics
                .into_iter()
                .map(|(n, k, m)| metric(n, k, m))
                .collect(),
        })
        .collect();
    // aggregates consistent with the rows, as the engine would produce
    let total = jobs.len();
    let succeeded = jobs.iter().filter(|j| j.status == JobStatus::Ok).count();
    let failed = jobs
        .iter()
        .filter(|j| j.status == JobStatus::Failed)
        .count();
    let panicked = jobs
        .iter()
        .filter(|j| j.status == JobStatus::Panicked)
        .count();
    let budget_exceeded = jobs
        .iter()
        .filter(|j| j.status == JobStatus::BudgetExceeded)
        .count();
    let cancelled = jobs
        .iter()
        .filter(|j| j.status == JobStatus::Cancelled)
        .count();
    let min = jobs
        .iter()
        .map(|j| j.wall_secs)
        .fold(f64::INFINITY, f64::min);
    let max = jobs.iter().map(|j| j.wall_secs).fold(0.0, f64::max);
    let sum: f64 = jobs.iter().map(|j| j.wall_secs).sum();
    SweepSummary {
        total,
        succeeded,
        failed,
        panicked,
        budget_exceeded,
        cancelled,
        workers,
        wall_secs: f64::from(wall) / 10_000.0,
        min_job_secs: if total == 0 { 0.0 } else { min },
        mean_job_secs: if total == 0 { 0.0 } else { sum / total as f64 },
        max_job_secs: max,
        jobs,
    }
}

/// NaN-aware value equality between two summaries (derived `PartialEq`
/// would reject NaN metrics that round-tripped perfectly).
fn summaries_equal(a: &SweepSummary, b: &SweepSummary) -> bool {
    let scalar = |a: f64, b: f64| a == b || (a.is_nan() && b.is_nan());
    a.total == b.total
        && a.succeeded == b.succeeded
        && a.failed == b.failed
        && a.panicked == b.panicked
        && a.budget_exceeded == b.budget_exceeded
        && a.cancelled == b.cancelled
        && a.workers == b.workers
        && scalar(a.wall_secs, b.wall_secs)
        && scalar(a.min_job_secs, b.min_job_secs)
        && scalar(a.mean_job_secs, b.mean_job_secs)
        && scalar(a.max_job_secs, b.max_job_secs)
        && a.jobs.len() == b.jobs.len()
        && a.jobs.iter().zip(&b.jobs).all(|(x, y)| {
            x.index == y.index
                && x.label == y.label
                && x.status == y.status
                && scalar(x.wall_secs, y.wall_secs)
                && x.detail == y.detail
                && x.metrics.len() == y.metrics.len()
                && x.metrics
                    .iter()
                    .zip(&y.metrics)
                    .all(|((n1, v1), (n2, v2))| n1 == n2 && scalar(*v1, *v2))
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

    #[test]
    fn json_round_trips_value_and_document(
        workers in 0usize..16,
        wall in 0u32..100_000,
        raw_jobs in collection::vec(job_strategy(), 0..8),
    ) {
        let summary = build_summary(workers, wall, raw_jobs);
        let json = summary.to_json();
        let parsed = read_summary_json(&json).expect("writer output must parse");
        prop_assert!(
            summaries_equal(&summary, &parsed),
            "value mismatch:\n  wrote: {summary:?}\n  read:  {parsed:?}"
        );
        // document-level stability: re-serializing reproduces the bytes
        prop_assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn csv_round_trips_rows_and_document(
        workers in 0usize..16,
        wall in 0u32..100_000,
        raw_jobs in collection::vec(job_strategy(), 0..8),
    ) {
        let summary = build_summary(workers, wall, raw_jobs);
        let csv = summary.to_csv();
        let parsed = read_summary_csv(&csv).expect("writer output must parse");
        // row identity: same labels, statuses and details in order
        prop_assert_eq!(parsed.jobs.len(), summary.jobs.len());
        for (wrote, read) in summary.jobs.iter().zip(&parsed.jobs) {
            prop_assert_eq!(wrote.index, read.index);
            prop_assert_eq!(&wrote.label, &read.label);
            prop_assert_eq!(wrote.status, read.status);
            prop_assert_eq!(&wrote.detail, &read.detail);
        }
        // document-level stability through a full read → write cycle
        prop_assert_eq!(parsed.to_csv(), csv);
    }

    #[test]
    fn csv_then_json_then_csv_is_stable(
        raw_jobs in collection::vec(job_strategy(), 0..6),
    ) {
        // chaining the two formats must not corrupt rows: CSV → summary →
        // JSON → summary → CSV reproduces the first CSV
        let summary = build_summary(2, 1000, raw_jobs);
        let csv = summary.to_csv();
        let via_csv = read_summary_csv(&csv).expect("csv parses");
        let via_json = read_summary_json(&via_csv.to_json()).expect("json parses");
        prop_assert_eq!(via_json.to_csv(), csv);
    }
}

#[test]
fn empty_sweep_round_trips_in_both_formats() {
    let summary = build_summary(1, 0, Vec::new());
    let parsed = read_summary_json(&summary.to_json()).unwrap();
    assert!(summaries_equal(&summary, &parsed));
    let csv = summary.to_csv();
    assert_eq!(csv, "index,label,status,wall_secs,detail\n");
    assert_eq!(read_summary_csv(&csv).unwrap().to_csv(), csv);
}

#[test]
fn nan_metric_cell_round_trips_as_null_in_both_formats() {
    let raw = vec![(
        0usize,
        vec![0usize],
        0usize,
        100u32,
        vec![],
        vec![(0, 3, 0)],
    )];
    let summary = build_summary(1, 100, raw);
    assert!(summary.jobs[0].metrics[0].1.is_nan(), "generator sanity");

    let json = summary.to_json();
    assert!(json.contains(",null]"), "JSON persists NaN as null: {json}");
    let parsed = read_summary_json(&json).unwrap();
    assert!(parsed.jobs[0].metrics[0].1.is_nan());
    assert_eq!(parsed.to_json(), json);

    let csv = summary.to_csv();
    assert!(
        csv.lines().nth(1).unwrap().ends_with(",null"),
        "CSV persists NaN as null: {csv}"
    );
    let parsed = read_summary_csv(&csv).unwrap();
    assert!(parsed.jobs[0].metrics[0].1.is_nan());
    assert_eq!(parsed.to_csv(), csv);
}
