//! Integration tests for the sweep engine: parallel/serial determinism,
//! fault isolation, budgets, and edge cases.

use molseq_sweep::{
    run_sweep, CellOutcome, JobBudget, JobError, JobStatus, SweepJob, SweepOptions,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Duration;

/// A seed-dependent pseudo-simulation: enough arithmetic that scheduling
/// races would surface as value differences if seeds leaked between jobs.
fn noisy_sum(seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..512).map(|_| rng.random::<f64>()).sum()
}

fn rng_jobs(n: usize) -> Vec<SweepJob<'static, f64>> {
    (0..n)
        .map(|i| SweepJob::infallible(format!("draw {i}"), |ctx| noisy_sum(ctx.seed())))
        .collect()
}

#[test]
fn parallel_results_are_bit_identical_to_serial() {
    let jobs = rng_jobs(40);
    let serial = run_sweep(&jobs, &SweepOptions::default().with_workers(1).with_seed(9));
    for workers in [2, 4, 8] {
        let parallel = run_sweep(
            &jobs,
            &SweepOptions::default().with_workers(workers).with_seed(9),
        );
        // Bit-identical: f64 equality, not approximate.
        for (s, p) in serial.cells.iter().zip(&parallel.cells) {
            assert_eq!(s.index, p.index);
            assert_eq!(s.label, p.label);
            assert_eq!(s.value(), p.value(), "workers={workers} index={}", s.index);
        }
    }
}

#[test]
fn sweep_seed_changes_every_job_seed() {
    let jobs = rng_jobs(8);
    let a = run_sweep(&jobs, &SweepOptions::default().with_workers(1).with_seed(1));
    let b = run_sweep(&jobs, &SweepOptions::default().with_workers(1).with_seed(2));
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        assert_ne!(ca.value(), cb.value());
    }
}

#[test]
fn a_panicking_job_is_a_failed_cell_not_a_dead_sweep() {
    let jobs: Vec<SweepJob<'_, usize>> = (0..16)
        .map(|i| {
            SweepJob::infallible(format!("cell {i}"), move |ctx| {
                assert!(ctx.index() != 7, "cell 7 diverged");
                ctx.index()
            })
        })
        .collect();
    let out = run_sweep(&jobs, &SweepOptions::default().with_workers(4));
    assert_eq!(out.summary.total, 16);
    assert_eq!(out.summary.succeeded, 15);
    assert_eq!(out.summary.panicked, 1);
    for (i, cell) in out.cells.iter().enumerate() {
        if i == 7 {
            match &cell.outcome {
                CellOutcome::Panicked(msg) => {
                    assert!(msg.contains("cell 7 diverged"), "{msg}")
                }
                other => panic!("expected a panicked cell, got {other:?}"),
            }
        } else {
            assert_eq!(cell.value(), Some(&i), "cell {i} must still complete");
        }
    }
    assert_eq!(out.summary.jobs[7].status, JobStatus::Panicked);
}

#[test]
fn domain_failures_are_reported_per_cell() {
    let jobs: Vec<SweepJob<'_, f64>> = (0..6)
        .map(|i| {
            SweepJob::new(format!("leak={i}"), move |_ctx| {
                if i % 2 == 0 {
                    Ok(f64::from(i))
                } else {
                    Err(JobError::Failed(format!("no settling at leak {i}")))
                }
            })
        })
        .collect();
    let out = run_sweep(&jobs, &SweepOptions::default().with_workers(3));
    assert_eq!(out.summary.succeeded, 3);
    assert_eq!(out.summary.failed, 3);
    assert_eq!(out.summary.panicked, 0);
    assert_eq!(
        out.values(),
        vec![Some(&0.0), None, Some(&2.0), None, Some(&4.0), None]
    );
    assert!(out.summary.jobs[1].detail.contains("no settling at leak 1"));
}

#[test]
fn step_budget_trips_as_budget_exceeded() {
    let jobs: Vec<SweepJob<'_, u64>> = (0..4)
        .map(|i| {
            SweepJob::new(format!("cell {i}"), move |ctx| {
                // Even cells stay inside the budget, odd cells blow it.
                let steps = if i % 2 == 0 { 10 } else { 1000 };
                for _ in 0..steps {
                    ctx.record_steps(1)?;
                }
                Ok(ctx.steps())
            })
        })
        .collect();
    let opts = SweepOptions::default()
        .with_workers(2)
        .with_budget(JobBudget::unlimited().with_max_steps(100));
    let out = run_sweep(&jobs, &opts);
    assert_eq!(out.summary.succeeded, 2);
    assert_eq!(out.summary.budget_exceeded, 2);
    assert!(matches!(
        out.cells[1].outcome,
        CellOutcome::BudgetExceeded(_)
    ));
    assert_eq!(out.cells[0].value(), Some(&10));
}

#[test]
fn wall_budget_checkpoints_cut_long_jobs() {
    let jobs: Vec<SweepJob<'_, u32>> = vec![
        SweepJob::new("quick", |_ctx| Ok(1)),
        SweepJob::new("slow", |ctx| {
            for _ in 0..100 {
                std::thread::sleep(Duration::from_millis(1));
                ctx.check()?;
            }
            Ok(2)
        }),
    ];
    let opts = SweepOptions::default()
        .with_workers(1)
        .with_budget(JobBudget::unlimited().with_max_wall(Duration::from_millis(5)));
    let out = run_sweep(&jobs, &opts);
    assert_eq!(out.cells[0].value(), Some(&1));
    assert!(matches!(
        out.cells[1].outcome,
        CellOutcome::BudgetExceeded(_)
    ));
}

#[test]
fn empty_sweep_completes_immediately() {
    let jobs: Vec<SweepJob<'_, f64>> = Vec::new();
    let out = run_sweep(&jobs, &SweepOptions::default());
    assert!(out.cells.is_empty());
    assert_eq!(out.summary.total, 0);
    assert_eq!(
        out.summary.to_csv(),
        "index,label,status,wall_secs,detail\n"
    );
}

#[test]
fn single_job_sweep_runs_serially() {
    let jobs = vec![SweepJob::infallible("only", |ctx| ctx.seed())];
    let out = run_sweep(&jobs, &SweepOptions::default().with_workers(8).with_seed(3));
    assert_eq!(out.summary.total, 1);
    assert_eq!(out.summary.workers, 1, "one job never needs two workers");
    assert!(out.cells[0].is_ok());
}

#[test]
fn summary_exports_round_trip_the_cells() {
    let jobs: Vec<SweepJob<'_, u32>> = vec![
        SweepJob::new("ok cell", |_| Ok(1)),
        SweepJob::new("bad, cell", |_| Err(JobError::failed("boom"))),
    ];
    let out = run_sweep(&jobs, &SweepOptions::default().with_workers(1));
    let json = out.summary.to_json();
    assert!(json.contains("\"succeeded\":1"), "{json}");
    assert!(json.contains("\"label\":\"bad, cell\""), "{json}");
    let csv = out.summary.to_csv();
    assert!(csv.contains("\"bad, cell\",Failed"), "{csv}");
    assert_eq!(csv.lines().count(), 3);
}

#[test]
fn into_values_preserves_order_and_gaps() {
    let jobs: Vec<SweepJob<'_, String>> = (0..5)
        .map(|i| {
            SweepJob::new(format!("v{i}"), move |_| {
                if i == 2 {
                    Err(JobError::failed("gap"))
                } else {
                    Ok(format!("value-{i}"))
                }
            })
        })
        .collect();
    let out = run_sweep(&jobs, &SweepOptions::default().with_workers(2));
    let values = out.into_values();
    assert_eq!(values.len(), 5);
    assert_eq!(values[0].as_deref(), Some("value-0"));
    assert_eq!(values[2], None);
    assert_eq!(values[4].as_deref(), Some("value-4"));
}
