//! Property tests on the network layer: display/parse round-trips and
//! structural invariants, over randomly generated networks.

#![allow(clippy::needless_range_loop)]

use molseq_crn::{conservation_laws, stoichiometry_matrix, Crn, Rate};
use proptest::prelude::*;

/// Canonicalizes a formatted reaction for comparison: term order inside a
/// side follows species-*id* order, which depends on interning order and
/// therefore changes across a parse round-trip; sort terms by name instead.
fn normalize(formatted: &str) -> String {
    let (body, rate) = formatted.rsplit_once(" @").expect("rate suffix");
    let (lhs, rhs) = body.split_once(" -> ").expect("arrow");
    let sort_side = |side: &str| -> String {
        let mut terms: Vec<&str> = side.split(" + ").collect();
        terms.sort_unstable();
        terms.join(" + ")
    };
    format!("{} -> {} @{}", sort_side(lhs), sort_side(rhs), rate)
}

/// A strategy for random small reaction networks.
fn arbitrary_crn() -> impl Strategy<Value = Crn> {
    // each reaction: (reactant indices with stoich, product indices, rate)
    let term = (0usize..6, 1u32..3);
    let side = proptest::collection::vec(term, 0..3);
    let rate = prop_oneof![
        Just(Rate::Fast),
        Just(Rate::Slow),
        (1u32..1000).prop_map(|k| Rate::Fixed(f64::from(k) / 8.0)),
    ];
    let reaction = (side.clone(), side, rate);
    proptest::collection::vec(reaction, 1..8).prop_filter_map(
        "reactions must be non-empty",
        |reactions| {
            let mut crn = Crn::new();
            let species: Vec<_> = (0..6).map(|i| crn.species(format!("S{i}"))).collect();
            let mut added = 0;
            for (lhs, rhs, rate) in reactions {
                if lhs.is_empty() && rhs.is_empty() {
                    continue;
                }
                let reactants: Vec<_> = lhs.iter().map(|&(i, s)| (species[i], s)).collect();
                let products: Vec<_> = rhs.iter().map(|&(i, s)| (species[i], s)).collect();
                crn.reaction(&reactants, &products, rate)
                    .expect("valid by construction");
                added += 1;
            }
            if added == 0 {
                None
            } else {
                Some(crn)
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        failure_persistence: None,
        ..ProptestConfig::default()
    })]

    /// Display → parse reproduces the network exactly (species that only
    /// exist unused are the one permitted difference, so networks here
    /// always use all species they mention).
    #[test]
    fn display_parse_round_trip(crn in arbitrary_crn()) {
        let text: String = crn
            .to_string()
            .lines()
            .skip(1) // drop the `# N species…` header
            .collect::<Vec<_>>()
            .join("\n");
        let reparsed: Crn = text.parse().expect("rendered text parses");
        // compare reaction by reaction via the canonical format
        prop_assert_eq!(crn.reactions().len(), reparsed.reactions().len());
        for j in 0..crn.reactions().len() {
            prop_assert_eq!(
                normalize(&crn.format_reaction(j)),
                normalize(&reparsed.format_reaction(j))
            );
        }
    }

    /// Every conservation law is a true left null vector of the
    /// stoichiometry matrix.
    #[test]
    fn conservation_laws_annihilate_stoichiometry(crn in arbitrary_crn()) {
        let s = stoichiometry_matrix(&crn);
        for law in conservation_laws(&crn) {
            for j in 0..crn.reactions().len() {
                let dot: i64 = (0..crn.species_count())
                    .map(|i| law[i] * s[i][j])
                    .sum();
                prop_assert_eq!(dot, 0, "law {:?} vs reaction {}", law, j);
            }
        }
    }

    /// Reaction order equals total reactant stoichiometry and never
    /// exceeds what the terms say.
    #[test]
    fn orders_are_consistent(crn in arbitrary_crn()) {
        for r in crn.reactions() {
            let total: u32 = r.reactants().iter().map(|t| t.stoich).sum();
            prop_assert_eq!(r.order(), total);
        }
    }

    /// Merging a network into an empty one under a prefix preserves the
    /// reaction structure.
    #[test]
    fn merge_prefixed_preserves_reactions(crn in arbitrary_crn()) {
        let mut top = Crn::new();
        let map = top.merge_prefixed(&crn, "m.");
        prop_assert_eq!(top.reactions().len(), crn.reactions().len());
        for (orig_id, merged_id) in map.iter().enumerate() {
            let orig_name = crn.species_name(molseq_crn::SpeciesId::from_index(orig_id));
            prop_assert_eq!(top.species_name(*merged_id), format!("m.{orig_name}"));
        }
    }
}
