//! Species identifiers and metadata.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A handle to a molecular type registered in a [`Crn`](crate::Crn).
///
/// `SpeciesId` is a cheap, `Copy` index. It is only meaningful relative to
/// the network that produced it; using an id from one network inside another
/// is caught by [`Crn::reaction`](crate::Crn::reaction) when the index is out
/// of range, but ids that happen to be in range are *not* distinguished.
/// Construct networks through a single [`Crn`](crate::Crn) value to stay safe.
///
/// # Examples
///
/// ```
/// use molseq_crn::Crn;
///
/// let mut crn = Crn::new();
/// let x = crn.species("X");
/// assert_eq!(crn.species_name(x), "X");
/// // interning: the same name yields the same id
/// assert_eq!(x, crn.species("X"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SpeciesId(pub(crate) u32);

impl SpeciesId {
    /// Returns the raw index of this species inside its network.
    ///
    /// Indices are dense: the `i`-th registered species has index `i`.
    /// This is the row index used by
    /// [`stoichiometry_matrix`](crate::stoichiometry_matrix) and by the
    /// state vectors in `molseq-kinetics`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `SpeciesId` from a raw index.
    ///
    /// Intended for deserialization and for tooling that stores indices;
    /// prefer obtaining ids from [`Crn::species`](crate::Crn::species).
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        SpeciesId(u32::try_from(index).expect("species index fits in u32"))
    }
}

impl fmt::Display for SpeciesId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Metadata for one molecular type.
///
/// Currently a species carries only its name; higher layers (for example the
/// color categories of `molseq-sync`) keep their own side tables keyed by
/// [`SpeciesId`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Species {
    name: String,
}

impl Species {
    /// Creates a species with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Species { name: name.into() }
    }

    /// The species name, as registered.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for Species {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrips_through_index() {
        let id = SpeciesId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "s7");
    }

    #[test]
    fn species_displays_its_name() {
        let s = Species::new("ATP");
        assert_eq!(s.name(), "ATP");
        assert_eq!(s.to_string(), "ATP");
    }
}
