//! Reachability analysis.
//!
//! A structural over-approximation of which species can ever be produced:
//! starting from a seed set, a reaction can fire once all its reactants
//! are producible, and then its products become producible. Useful as a
//! design-time sanity check (an output species that is not reachable from
//! the initial state is a wiring bug) and used by the construct test
//! suites.

use crate::{Crn, SpeciesId};

/// Computes the set of species reachable (producible) from `seeds`, as a
/// boolean vector indexed by [`SpeciesId::index`](crate::SpeciesId::index).
///
/// Zero-order reactions need no reactants, so their products are always
/// reachable. The analysis ignores quantities and rates — it is a
/// *possibility* over-approximation, not a dynamics statement.
///
/// # Examples
///
/// ```
/// use molseq_crn::{reachable_species, Crn};
///
/// let crn: Crn = "A -> B @slow\nB + C -> D @fast".parse().unwrap();
/// let a = crn.find_species("A").unwrap();
/// let d = crn.find_species("D").unwrap();
///
/// // with only A seeded, C is missing, so D is unreachable
/// let from_a = reachable_species(&crn, &[a]);
/// assert!(!from_a[d.index()]);
///
/// // seeding C as well unlocks it
/// let c = crn.find_species("C").unwrap();
/// let from_ac = reachable_species(&crn, &[a, c]);
/// assert!(from_ac[d.index()]);
/// ```
#[must_use]
pub fn reachable_species(crn: &Crn, seeds: &[SpeciesId]) -> Vec<bool> {
    let mut reachable = vec![false; crn.species_count()];
    for &s in seeds {
        reachable[s.index()] = true;
    }
    // fixed point: at most `reactions` rounds
    loop {
        let mut changed = false;
        for r in crn.reactions() {
            let enabled = r.reactants().iter().all(|t| reachable[t.species.index()]);
            if !enabled {
                continue;
            }
            for t in r.products() {
                if !reachable[t.species.index()] {
                    reachable[t.species.index()] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            return reachable;
        }
    }
}

/// Lists the names of species that are **not** reachable from `seeds` —
/// empty means every species can, in principle, be produced.
///
/// # Examples
///
/// ```
/// use molseq_crn::{unreachable_species, Crn};
///
/// let crn: Crn = "0 -> r @slow\nX -> Y @fast".parse().unwrap();
/// // nothing seeded: r is reachable (zero-order source), X and Y are not
/// let missing = unreachable_species(&crn, &[]);
/// assert_eq!(missing, vec!["X".to_owned(), "Y".to_owned()]);
/// ```
#[must_use]
pub fn unreachable_species(crn: &Crn, seeds: &[SpeciesId]) -> Vec<String> {
    let reachable = reachable_species(crn, seeds);
    crn.species_iter()
        .filter(|(id, _)| !reachable[id.index()])
        .map(|(_, s)| s.name().to_owned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_order_sources_are_always_on() {
        let crn: Crn = "0 -> r @slow\nr + A -> B @fast".parse().unwrap();
        let a = crn.find_species("A").unwrap();
        let b = crn.find_species("B").unwrap();
        let reach = reachable_species(&crn, &[a]);
        assert!(reach[b.index()], "r from the source + seeded A yields B");
        let reach_empty = reachable_species(&crn, &[]);
        assert!(!reach_empty[b.index()], "without A, B stays unreachable");
    }

    #[test]
    fn chains_propagate() {
        let crn: Crn = "A -> B @slow\nB -> C @slow\nC -> D @slow".parse().unwrap();
        let a = crn.find_species("A").unwrap();
        let reach = reachable_species(&crn, &[a]);
        assert!(reach.iter().all(|&r| r), "the whole chain lights up");
    }

    #[test]
    fn catalysts_must_be_present() {
        let crn: Crn = "K + X -> K + Y @fast".parse().unwrap();
        let x = crn.find_species("X").unwrap();
        let y = crn.find_species("Y").unwrap();
        let missing = unreachable_species(&crn, &[x]);
        assert_eq!(missing, vec!["K".to_owned(), "Y".to_owned()]);
        let k = crn.find_species("K").unwrap();
        assert!(reachable_species(&crn, &[x, k])[y.index()]);
    }

    #[test]
    fn empty_network_has_nothing_unreachable() {
        let crn = Crn::new();
        assert!(unreachable_species(&crn, &[]).is_empty());
    }
}
