//! Reactions and stoichiometric terms.

use crate::{Rate, SpeciesId};
use serde::{Deserialize, Serialize};

/// One side-entry of a reaction: a species with an integer stoichiometric
/// coefficient.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Term {
    /// Which species.
    pub species: SpeciesId,
    /// How many copies participate (always ≥ 1).
    pub stoich: u32,
}

impl Term {
    /// Creates a term.
    #[must_use]
    pub fn new(species: SpeciesId, stoich: u32) -> Self {
        Term { species, stoich }
    }
}

impl From<(SpeciesId, u32)> for Term {
    fn from((species, stoich): (SpeciesId, u32)) -> Self {
        Term { species, stoich }
    }
}

/// A mass-action chemical reaction.
///
/// Reactants and products are kept in *canonical* form: terms are sorted by
/// species id and duplicate species are merged, so `X + X -> Y` and
/// `2X -> Y` are the same reaction. Zero-order reactions (no reactants, for
/// example the slow sources that generate absence indicators) and
/// annihilations (no products) are both legal; a reaction with neither is
/// rejected at construction.
///
/// Reactions are created through [`Crn::reaction`](crate::Crn::reaction) or
/// [`Crn::reaction_labeled`](crate::Crn::reaction_labeled); the fields here
/// are read-only views.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reaction {
    pub(crate) reactants: Vec<Term>,
    pub(crate) products: Vec<Term>,
    pub(crate) rate: Rate,
    pub(crate) label: Option<String>,
}

impl Reaction {
    pub(crate) fn canonicalize(mut terms: Vec<Term>) -> Vec<Term> {
        terms.sort_by_key(|t| t.species);
        let mut out: Vec<Term> = Vec::with_capacity(terms.len());
        for t in terms {
            match out.last_mut() {
                Some(last) if last.species == t.species => last.stoich += t.stoich,
                _ => out.push(t),
            }
        }
        out
    }

    /// The reactant terms, sorted by species id with duplicates merged.
    #[must_use]
    pub fn reactants(&self) -> &[Term] {
        &self.reactants
    }

    /// The product terms, sorted by species id with duplicates merged.
    #[must_use]
    pub fn products(&self) -> &[Term] {
        &self.products
    }

    /// The coarse rate category (or explicit constant).
    #[must_use]
    pub fn rate(&self) -> Rate {
        self.rate
    }

    /// The optional human-readable label attached by the construct that
    /// generated this reaction (for example `"delay[1] red->green seed"`).
    #[must_use]
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }

    /// Total molecularity of the left-hand side (0 for source reactions,
    /// 1 for unimolecular, 2 for bimolecular, …).
    #[must_use]
    pub fn order(&self) -> u32 {
        self.reactants.iter().map(|t| t.stoich).sum()
    }

    /// Net change of `species` when this reaction fires once
    /// (products minus reactants). Zero if the species is a pure catalyst.
    #[must_use]
    pub fn net_change(&self, species: SpeciesId) -> i64 {
        let minus: i64 = self
            .reactants
            .iter()
            .filter(|t| t.species == species)
            .map(|t| i64::from(t.stoich))
            .sum();
        let plus: i64 = self
            .products
            .iter()
            .filter(|t| t.species == species)
            .map(|t| i64::from(t.stoich))
            .sum();
        plus - minus
    }

    /// True if `species` appears on both sides with equal stoichiometry and
    /// on the reactant side (it enables the reaction without being consumed).
    #[must_use]
    pub fn is_catalyst(&self, species: SpeciesId) -> bool {
        let on_left = self.reactants.iter().any(|t| t.species == species);
        on_left && self.net_change(species) == 0
    }

    /// Iterates over every species mentioned by the reaction (each once).
    pub fn species(&self) -> impl Iterator<Item = SpeciesId> + '_ {
        let mut seen: Vec<SpeciesId> = self
            .reactants
            .iter()
            .chain(self.products.iter())
            .map(|t| t.species)
            .collect();
        seen.sort_unstable();
        seen.dedup();
        seen.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Crn, Rate};

    fn simple() -> (Crn, SpeciesId, SpeciesId, SpeciesId) {
        let mut crn = Crn::new();
        let x = crn.species("X");
        let y = crn.species("Y");
        let z = crn.species("Z");
        (crn, x, y, z)
    }

    #[test]
    fn duplicate_terms_are_merged() {
        let (mut crn, x, y, _) = simple();
        crn.reaction(&[(x, 1), (x, 1)], &[(y, 1)], Rate::Fast)
            .unwrap();
        let r = &crn.reactions()[0];
        assert_eq!(r.reactants(), &[Term::new(x, 2)]);
        assert_eq!(r.order(), 2);
    }

    #[test]
    fn net_change_and_catalyst() {
        let (mut crn, x, y, z) = simple();
        // z is a catalyst: z + x -> z + 2y
        crn.reaction(&[(z, 1), (x, 1)], &[(z, 1), (y, 2)], Rate::Slow)
            .unwrap();
        let r = &crn.reactions()[0];
        assert_eq!(r.net_change(x), -1);
        assert_eq!(r.net_change(y), 2);
        assert_eq!(r.net_change(z), 0);
        assert!(r.is_catalyst(z));
        assert!(!r.is_catalyst(x));
        assert!(!r.is_catalyst(y)); // y is produced, not enabling
    }

    #[test]
    fn species_iterator_is_deduplicated() {
        let (mut crn, x, y, z) = simple();
        crn.reaction(&[(x, 2), (z, 1)], &[(z, 1), (y, 1)], Rate::Fast)
            .unwrap();
        let r = &crn.reactions()[0];
        let all: Vec<_> = r.species().collect();
        assert_eq!(all, vec![x, y, z]);
    }

    #[test]
    fn zero_order_reaction_is_order_zero() {
        let (mut crn, _, y, _) = simple();
        crn.reaction(&[], &[(y, 1)], Rate::Slow).unwrap();
        assert_eq!(crn.reactions()[0].order(), 0);
    }
}
