//! Coarse rate categories and their numeric interpretation.
//!
//! The design discipline of the paper is that a construct may only assume
//! *two* rate categories — every reaction is either `fast` or `slow`, and the
//! computed answer must be identical for any numeric assignment in which fast
//! reactions are fast **relative to** slow ones. It does not matter how fast
//! one fast reaction is relative to another fast reaction.
//!
//! [`Rate`] captures the category on the reaction; [`RateAssignment`] picks
//! the numbers at simulation time, which is what makes the robustness sweeps
//! of experiment E6/E7 one-liners.

use crate::CrnError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kinetic rate of a reaction, as declared by a construct.
///
/// # Examples
///
/// ```
/// use molseq_crn::{Rate, RateAssignment};
///
/// let assign = RateAssignment::new(1000.0, 1.0).unwrap();
/// assert_eq!(assign.value_of(Rate::Fast), 1000.0);
/// assert_eq!(assign.value_of(Rate::Slow), 1.0);
/// assert_eq!(assign.value_of(Rate::Fixed(2.5)), 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Rate {
    /// A reaction in the fast category.
    Fast,
    /// A reaction in the slow category (includes the slow zero-order
    /// indicator sources).
    Slow,
    /// A reaction with an explicit rate constant, used by layers that model
    /// physical kinetics directly (for example the strand-displacement
    /// compiler, whose toehold binding rates are physical quantities).
    Fixed(f64),
}

impl Rate {
    /// True if this rate belongs to the fast category.
    #[must_use]
    pub fn is_fast(self) -> bool {
        matches!(self, Rate::Fast)
    }

    /// True if this rate belongs to the slow category.
    #[must_use]
    pub fn is_slow(self) -> bool {
        matches!(self, Rate::Slow)
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rate::Fast => f.write_str("fast"),
            Rate::Slow => f.write_str("slow"),
            Rate::Fixed(k) => write!(f, "{k}"),
        }
    }
}

/// A numeric interpretation of the coarse categories.
///
/// An assignment is valid when both constants are finite and strictly
/// positive. The paper's simulations use `k_fast = 1000`, `k_slow = 1`,
/// which is [`RateAssignment::default`].
///
/// # Examples
///
/// ```
/// use molseq_crn::RateAssignment;
///
/// let default = RateAssignment::default();
/// assert_eq!(default.ratio(), 1000.0);
///
/// let stressed = RateAssignment::from_ratio(10.0);
/// assert_eq!(stressed.value_of(molseq_crn::Rate::Fast), 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateAssignment {
    k_fast: f64,
    k_slow: f64,
}

impl RateAssignment {
    /// Creates an assignment from explicit constants.
    ///
    /// # Errors
    ///
    /// Returns [`CrnError::InvalidRate`] if either constant is not finite and
    /// strictly positive, or if `k_fast < k_slow` (a "fast" category slower
    /// than the slow one violates the design contract of every construct in
    /// this workspace).
    pub fn new(k_fast: f64, k_slow: f64) -> Result<Self, CrnError> {
        let ok = |k: f64| k.is_finite() && k > 0.0;
        if !ok(k_fast) || !ok(k_slow) {
            return Err(CrnError::InvalidRate {
                value: if ok(k_fast) { k_slow } else { k_fast },
            });
        }
        if k_fast < k_slow {
            return Err(CrnError::InvalidRate { value: k_fast });
        }
        Ok(RateAssignment { k_fast, k_slow })
    }

    /// Creates an assignment with `k_slow = 1` and `k_fast = ratio`.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not finite or is below `1.0`.
    #[must_use]
    pub fn from_ratio(ratio: f64) -> Self {
        RateAssignment::new(ratio, 1.0).expect("ratio must be finite and >= 1")
    }

    /// The numeric constant for the fast category.
    #[must_use]
    pub fn k_fast(self) -> f64 {
        self.k_fast
    }

    /// The numeric constant for the slow category.
    #[must_use]
    pub fn k_slow(self) -> f64 {
        self.k_slow
    }

    /// `k_fast / k_slow` — the separation between the categories.
    #[must_use]
    pub fn ratio(self) -> f64 {
        self.k_fast / self.k_slow
    }

    /// Resolves a [`Rate`] to its numeric constant under this assignment.
    #[must_use]
    pub fn value_of(self, rate: Rate) -> f64 {
        match rate {
            Rate::Fast => self.k_fast,
            Rate::Slow => self.k_slow,
            Rate::Fixed(k) => k,
        }
    }
}

impl Default for RateAssignment {
    /// The assignment used throughout the paper's simulations:
    /// `k_fast = 1000`, `k_slow = 1`.
    fn default() -> Self {
        RateAssignment {
            k_fast: 1000.0,
            k_slow: 1.0,
        }
    }
}

impl fmt::Display for RateAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k_fast={}, k_slow={}", self.k_fast, self.k_slow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let a = RateAssignment::default();
        assert_eq!(a.k_fast(), 1000.0);
        assert_eq!(a.k_slow(), 1.0);
        assert_eq!(a.ratio(), 1000.0);
    }

    #[test]
    fn rejects_nonpositive_rates() {
        assert!(RateAssignment::new(0.0, 1.0).is_err());
        assert!(RateAssignment::new(10.0, -1.0).is_err());
        assert!(RateAssignment::new(f64::NAN, 1.0).is_err());
        assert!(RateAssignment::new(f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn rejects_inverted_categories() {
        assert!(RateAssignment::new(0.5, 1.0).is_err());
    }

    #[test]
    fn fixed_rates_bypass_assignment() {
        let a = RateAssignment::from_ratio(100.0);
        assert_eq!(a.value_of(Rate::Fixed(7.25)), 7.25);
    }

    #[test]
    fn rate_predicates_and_display() {
        assert!(Rate::Fast.is_fast());
        assert!(!Rate::Fast.is_slow());
        assert!(Rate::Slow.is_slow());
        assert_eq!(Rate::Fast.to_string(), "fast");
        assert_eq!(Rate::Slow.to_string(), "slow");
        assert_eq!(Rate::Fixed(2.0).to_string(), "2");
    }
}
