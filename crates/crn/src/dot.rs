//! Graphviz export of reaction networks.
//!
//! The generated graph is bipartite: elliptical species nodes and square
//! reaction nodes, with reactant edges into reactions and product edges
//! out. Catalysts (net-zero species on the reactant side) get dashed
//! edges. Render with `dot -Tsvg network.dot -o network.svg`.

use crate::{Crn, Rate};
use std::fmt::Write as _;

/// Renders the network in Graphviz `dot` syntax.
///
/// # Examples
///
/// ```
/// use molseq_crn::{to_dot, Crn};
///
/// let crn: Crn = "X + C -> Y + C @fast".parse().unwrap();
/// let dot = to_dot(&crn);
/// assert!(dot.starts_with("digraph crn {"));
/// assert!(dot.contains("\"X\""));
/// assert!(dot.contains("style=dashed")); // the catalyst edge
/// ```
#[must_use]
pub fn to_dot(crn: &Crn) -> String {
    let mut out = String::from("digraph crn {\n  rankdir=LR;\n  node [fontsize=10];\n");
    for (_, species) in crn.species_iter() {
        let _ = writeln!(out, "  \"{}\" [shape=ellipse];", escape(species.name()));
    }
    for (j, reaction) in crn.reactions().iter().enumerate() {
        let color = match reaction.rate() {
            Rate::Fast => "firebrick",
            Rate::Slow => "steelblue",
            Rate::Fixed(_) => "darkgreen",
        };
        let label = reaction
            .label()
            .map_or_else(|| format!("r{j}"), |l| format!("r{j}: {l}"));
        let _ = writeln!(
            out,
            "  r{j} [shape=box, color={color}, label=\"{}\"];",
            escape(&label)
        );
        for term in reaction.reactants() {
            let style = if reaction.is_catalyst(term.species) {
                ", style=dashed"
            } else {
                ""
            };
            let weight = if term.stoich > 1 {
                format!(", label=\"{}\"", term.stoich)
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "  \"{}\" -> r{j} [color={color}{style}{weight}];",
                escape(crn.species_name(term.species))
            );
        }
        for term in reaction.products() {
            let weight = if term.stoich > 1 {
                format!(", label=\"{}\"", term.stoich)
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "  r{j} -> \"{}\" [color={color}{weight}];",
                escape(crn.species_name(term.species))
            );
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_species_and_reactions() {
        let crn: Crn = "0 -> r @slow\n2X -> Y @fast".parse().unwrap();
        let dot = to_dot(&crn);
        assert!(dot.contains("\"r\" [shape=ellipse]"));
        assert!(dot.contains("r0 [shape=box, color=steelblue"));
        assert!(dot.contains("r1 [shape=box, color=firebrick"));
        // stoichiometry 2 labels the edge
        assert!(dot.contains("label=\"2\""));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn escapes_quotes() {
        let mut crn = Crn::new();
        let x = crn.species("weird\"name");
        crn.reaction(&[(x, 1)], &[], crate::Rate::Fast).unwrap();
        let dot = to_dot(&crn);
        assert!(dot.contains("weird\\\"name"));
    }
}
