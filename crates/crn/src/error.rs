//! Error type for network construction and parsing.

use std::error::Error;
use std::fmt;

/// Errors produced while building, parsing or validating a network.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CrnError {
    /// A [`SpeciesId`](crate::SpeciesId) did not belong to the network it was
    /// used with.
    UnknownSpecies {
        /// The raw index of the offending id.
        index: usize,
        /// How many species the network actually has.
        species_count: usize,
    },
    /// A reaction was declared with no reactants and no products.
    EmptyReaction,
    /// A stoichiometric coefficient of zero was supplied.
    ZeroStoichiometry {
        /// The species whose coefficient was zero.
        species: String,
    },
    /// A rate constant was not finite and strictly positive, or a fast/slow
    /// assignment was inverted.
    InvalidRate {
        /// The offending value.
        value: f64,
    },
    /// The reaction text could not be parsed.
    Parse {
        /// Line number (1-based) within the parsed text.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
}

impl fmt::Display for CrnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrnError::UnknownSpecies {
                index,
                species_count,
            } => write!(
                f,
                "species index {index} is out of range for a network with {species_count} species"
            ),
            CrnError::EmptyReaction => f.write_str("reaction has neither reactants nor products"),
            CrnError::ZeroStoichiometry { species } => {
                write!(f, "stoichiometric coefficient of `{species}` is zero")
            }
            CrnError::InvalidRate { value } => {
                write!(
                    f,
                    "rate constant {value} is not finite and positive, or fast < slow"
                )
            }
            CrnError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
        }
    }
}

impl Error for CrnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            CrnError::UnknownSpecies {
                index: 9,
                species_count: 3,
            },
            CrnError::EmptyReaction,
            CrnError::ZeroStoichiometry {
                species: "X".into(),
            },
            CrnError::InvalidRate { value: -1.0 },
            CrnError::Parse {
                line: 2,
                message: "missing arrow".into(),
            },
        ];
        for e in errors {
            let text = e.to_string();
            assert!(!text.is_empty());
            assert!(text.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + std::error::Error>() {}
        assert_bounds::<CrnError>();
    }
}
