//! The chemical reaction network container.

use crate::reaction::{Reaction, Term};
use crate::{CrnError, Rate, Species, SpeciesId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

/// A chemical reaction network: a set of interned species and a list of
/// mass-action reactions over them.
///
/// `Crn` is the unit of composition in this workspace. Construct builders
/// (delay elements, clocks, combinational modules, compiled strand
/// displacement systems) all *append* species and reactions to a `Crn`;
/// simulators consume a finished `Crn` by value or reference.
///
/// # Examples
///
/// Building the absence-indicator idiom from the paper by hand:
///
/// ```
/// use molseq_crn::{Crn, Rate};
///
/// # fn main() -> Result<(), molseq_crn::CrnError> {
/// let mut crn = Crn::new();
/// let r = crn.species("r");     // absence indicator for the red category
/// let red = crn.species("R1");  // a red signal species
///
/// crn.reaction(&[], &[(r, 1)], Rate::Slow)?;            // ∅ → r   (slow source)
/// crn.reaction(&[(r, 1), (red, 1)], &[(red, 1)], Rate::Fast)?; // r + R1 → R1
/// assert_eq!(crn.species_count(), 2);
/// assert_eq!(crn.reactions().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Crn {
    species: Vec<Species>,
    index: HashMap<String, SpeciesId>,
    reactions: Vec<Reaction>,
}

impl Crn {
    /// Creates an empty network.
    #[must_use]
    pub fn new() -> Self {
        Crn::default()
    }

    /// Returns the id for `name`, registering the species if it is new.
    ///
    /// Species are interned: calling this twice with the same name returns
    /// the same id.
    pub fn species(&mut self, name: impl AsRef<str>) -> SpeciesId {
        let name = name.as_ref();
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = SpeciesId::from_index(self.species.len());
        self.species.push(Species::new(name));
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Looks up a species by name without registering it.
    #[must_use]
    pub fn find_species(&self, name: &str) -> Option<SpeciesId> {
        self.index.get(name).copied()
    }

    /// The name of a registered species.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this network.
    #[must_use]
    pub fn species_name(&self, id: SpeciesId) -> &str {
        self.species[id.index()].name()
    }

    /// Number of registered species.
    #[must_use]
    pub fn species_count(&self) -> usize {
        self.species.len()
    }

    /// Iterates over `(id, species)` pairs in registration order.
    pub fn species_iter(&self) -> impl Iterator<Item = (SpeciesId, &Species)> {
        self.species
            .iter()
            .enumerate()
            .map(|(i, s)| (SpeciesId::from_index(i), s))
    }

    /// All ids, in registration order.
    pub fn species_ids(&self) -> impl Iterator<Item = SpeciesId> + '_ {
        (0..self.species.len()).map(SpeciesId::from_index)
    }

    /// The reactions added so far, in insertion order.
    #[must_use]
    pub fn reactions(&self) -> &[Reaction] {
        &self.reactions
    }

    /// Adds a reaction and returns its index.
    ///
    /// Terms are given as `(species, stoichiometry)` pairs; duplicates are
    /// merged and sides are canonicalized (see [`Reaction`]).
    ///
    /// # Errors
    ///
    /// * [`CrnError::EmptyReaction`] if both sides are empty.
    /// * [`CrnError::ZeroStoichiometry`] if any coefficient is zero.
    /// * [`CrnError::UnknownSpecies`] if an id is out of range for this
    ///   network.
    /// * [`CrnError::InvalidRate`] if a [`Rate::Fixed`] constant is not
    ///   finite and positive.
    pub fn reaction(
        &mut self,
        reactants: &[(SpeciesId, u32)],
        products: &[(SpeciesId, u32)],
        rate: Rate,
    ) -> Result<usize, CrnError> {
        self.add_reaction(reactants, products, rate, None)
    }

    /// Adds a reaction carrying a label (used in diagnostics and listings).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Crn::reaction`].
    pub fn reaction_labeled(
        &mut self,
        reactants: &[(SpeciesId, u32)],
        products: &[(SpeciesId, u32)],
        rate: Rate,
        label: impl Into<String>,
    ) -> Result<usize, CrnError> {
        self.add_reaction(reactants, products, rate, Some(label.into()))
    }

    fn add_reaction(
        &mut self,
        reactants: &[(SpeciesId, u32)],
        products: &[(SpeciesId, u32)],
        rate: Rate,
        label: Option<String>,
    ) -> Result<usize, CrnError> {
        if reactants.is_empty() && products.is_empty() {
            return Err(CrnError::EmptyReaction);
        }
        if let Rate::Fixed(k) = rate {
            if !(k.is_finite() && k > 0.0) {
                return Err(CrnError::InvalidRate { value: k });
            }
        }
        for &(id, stoich) in reactants.iter().chain(products.iter()) {
            if id.index() >= self.species.len() {
                return Err(CrnError::UnknownSpecies {
                    index: id.index(),
                    species_count: self.species.len(),
                });
            }
            if stoich == 0 {
                return Err(CrnError::ZeroStoichiometry {
                    species: self.species_name(id).to_owned(),
                });
            }
        }
        let reaction = Reaction {
            reactants: Reaction::canonicalize(reactants.iter().map(|&t| Term::from(t)).collect()),
            products: Reaction::canonicalize(products.iter().map(|&t| Term::from(t)).collect()),
            rate,
            label,
        };
        self.reactions.push(reaction);
        Ok(self.reactions.len() - 1)
    }

    /// Copies every species and reaction of `other` into `self`, renaming
    /// each species `"X"` of `other` to `"{prefix}X"`.
    ///
    /// Returns the mapping from `other`'s species ids to the corresponding
    /// ids in `self` (indexable by `other_id.index()`). Species that already
    /// exist under the prefixed name are shared, which is how constructs are
    /// wired together.
    pub fn merge_prefixed(&mut self, other: &Crn, prefix: &str) -> Vec<SpeciesId> {
        let map: Vec<SpeciesId> = other
            .species
            .iter()
            .map(|s| self.species(format!("{prefix}{}", s.name())))
            .collect();
        for r in &other.reactions {
            let remap = |terms: &[Term]| -> Vec<(SpeciesId, u32)> {
                terms
                    .iter()
                    .map(|t| (map[t.species.index()], t.stoich))
                    .collect()
            };
            let reactants = remap(&r.reactants);
            let products = remap(&r.products);
            self.add_reaction(&reactants, &products, r.rate, r.label.clone())
                .expect("merging a valid network preserves validity");
        }
        map
    }

    /// Renders one reaction as text, e.g. `"X + 2Y -> Z @fast"`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn format_reaction(&self, index: usize) -> String {
        let r = &self.reactions[index];
        let side = |terms: &[Term]| -> String {
            if terms.is_empty() {
                return "0".to_owned();
            }
            terms
                .iter()
                .map(|t| {
                    if t.stoich == 1 {
                        self.species_name(t.species).to_owned()
                    } else {
                        format!("{}{}", t.stoich, self.species_name(t.species))
                    }
                })
                .collect::<Vec<_>>()
                .join(" + ")
        };
        let rate = match r.rate {
            Rate::Fast => "@fast".to_owned(),
            Rate::Slow => "@slow".to_owned(),
            Rate::Fixed(k) => format!("@{k}"),
        };
        format!("{} -> {} {}", side(&r.reactants), side(&r.products), rate)
    }

    /// Checks structural well-formedness beyond what construction enforces
    /// and returns human-readable issues (empty means clean).
    ///
    /// Current checks:
    /// * species that appear in no reaction,
    /// * reactions that change nothing (all species net-zero),
    /// * duplicate reactions (same sides and rate category).
    #[must_use]
    pub fn validate(&self) -> Vec<String> {
        let mut issues = Vec::new();
        let mut used = vec![false; self.species.len()];
        for r in &self.reactions {
            for s in r.species() {
                used[s.index()] = true;
            }
        }
        for (i, u) in used.iter().enumerate() {
            if !u {
                issues.push(format!(
                    "species `{}` is never used by any reaction",
                    self.species[i].name()
                ));
            }
        }
        for (i, r) in self.reactions.iter().enumerate() {
            if r.species().all(|s| r.net_change(s) == 0) {
                issues.push(format!(
                    "reaction {i} (`{}`) has no net effect",
                    self.format_reaction(i)
                ));
            }
        }
        let mut seen: HashMap<String, usize> = HashMap::new();
        for i in 0..self.reactions.len() {
            let key = self.format_reaction(i);
            if let Some(&first) = seen.get(&key) {
                issues.push(format!(
                    "reaction {i} duplicates reaction {first} (`{key}`)"
                ));
            } else {
                seen.insert(key, i);
            }
        }
        issues
    }

    /// A stable 64-bit fingerprint of this network's *structure*: species
    /// names in registration order, each reaction's canonical reactant and
    /// product terms, and each reaction's [`Rate`] **category** (a
    /// [`Rate::Fixed`] constant is part of the structure; the numeric
    /// values a `Fast`/`Slow` tag later resolves to are not).
    ///
    /// The hash is a hand-rolled FNV-1a, so it is identical across
    /// processes, platforms, and runs — unlike `std`'s randomized
    /// `DefaultHasher` — which makes it usable as a persistent cache key:
    /// two networks built independently (or parsed from the same reaction
    /// text) hash equal exactly when a compiled form of one can be rebound
    /// to serve the other. Reaction labels are documentation, not
    /// structure, and do not contribute.
    #[must_use]
    pub fn structural_hash(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_usize(self.species.len());
        for s in &self.species {
            h.write_bytes(s.name().as_bytes());
            h.write_u8(0xFF); // name terminator: ["ab","c"] != ["a","bc"]
        }
        h.write_usize(self.reactions.len());
        for r in &self.reactions {
            let mut side = |terms: &[Term]| {
                h.write_usize(terms.len());
                for t in terms {
                    h.write_usize(t.species.index());
                    h.write_u64(u64::from(t.stoich));
                }
            };
            side(r.reactants());
            side(r.products());
            match r.rate() {
                Rate::Fast => h.write_u8(1),
                Rate::Slow => h.write_u8(2),
                Rate::Fixed(k) => {
                    h.write_u8(3);
                    h.write_u64(k.to_bits());
                }
            }
        }
        h.finish()
    }
}

/// Minimal FNV-1a accumulator backing [`Crn::structural_hash`]. Kept local
/// (not `std::hash::Hasher`) because the whole point is a byte-for-byte
/// specified, process-stable digest.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write_u8(&mut self, byte: u8) {
        self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(0x100_0000_01b3);
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Crn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "# {} species, {} reactions",
            self.species.len(),
            self.reactions.len()
        )?;
        for i in 0..self.reactions.len() {
            match self.reactions[i].label() {
                Some(label) => writeln!(f, "{}  # {label}", self.format_reaction(i))?,
                None => writeln!(f, "{}", self.format_reaction(i))?,
            }
        }
        Ok(())
    }
}

impl FromStr for Crn {
    type Err = CrnError;

    /// Parses reaction text; see [`parse_reactions`](crate::parse_reactions)
    /// for the grammar.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        crate::parse_reactions(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut crn = Crn::new();
        let a = crn.species("A");
        let b = crn.species("B");
        assert_ne!(a, b);
        assert_eq!(crn.species("A"), a);
        assert_eq!(crn.find_species("B"), Some(b));
        assert_eq!(crn.find_species("C"), None);
        assert_eq!(crn.species_count(), 2);
    }

    #[test]
    fn structural_hash_is_stable_and_structure_sensitive() {
        let build = |label: Option<&str>| {
            let mut crn = Crn::new();
            let x = crn.species("X");
            let y = crn.species("Y");
            match label {
                Some(l) => crn
                    .reaction_labeled(&[(x, 1)], &[(y, 1)], Rate::Fast, l)
                    .unwrap(),
                None => crn.reaction(&[(x, 1)], &[(y, 1)], Rate::Fast).unwrap(),
            };
            crn
        };
        let a = build(None);
        // independently built identical structure hashes equal; labels are
        // not structure
        assert_eq!(a.structural_hash(), build(None).structural_hash());
        assert_eq!(a.structural_hash(), build(Some("tag")).structural_hash());
        // parse round-trip (how a server receives networks) preserves it
        let reparsed: Crn = a.to_string().parse().unwrap();
        assert_eq!(reparsed.structural_hash(), a.structural_hash());
        // any structural change — species name, stoichiometry, rate
        // category, explicit constant — moves the hash
        let mut renamed = Crn::new();
        let x = renamed.species("X");
        let z = renamed.species("Z");
        renamed.reaction(&[(x, 1)], &[(z, 1)], Rate::Fast).unwrap();
        assert_ne!(renamed.structural_hash(), a.structural_hash());
        let mut doubled = build(None);
        let x = doubled.find_species("X").unwrap();
        let y = doubled.find_species("Y").unwrap();
        doubled.reaction(&[(y, 2)], &[(x, 1)], Rate::Slow).unwrap();
        assert_ne!(doubled.structural_hash(), a.structural_hash());
        let mut slow = Crn::new();
        let x = slow.species("X");
        let y = slow.species("Y");
        slow.reaction(&[(x, 1)], &[(y, 1)], Rate::Slow).unwrap();
        assert_ne!(slow.structural_hash(), a.structural_hash());
        let mut fixed1 = Crn::new();
        let x = fixed1.species("X");
        let y = fixed1.species("Y");
        fixed1
            .reaction(&[(x, 1)], &[(y, 1)], Rate::Fixed(1.0))
            .unwrap();
        let mut fixed2 = Crn::new();
        let x = fixed2.species("X");
        let y = fixed2.species("Y");
        fixed2
            .reaction(&[(x, 1)], &[(y, 1)], Rate::Fixed(2.0))
            .unwrap();
        assert_ne!(fixed1.structural_hash(), fixed2.structural_hash());
    }

    #[test]
    fn foreign_id_is_rejected() {
        let mut a = Crn::new();
        let mut b = Crn::new();
        let x_in_b = b.species("X");
        let err = a.reaction(&[(x_in_b, 1)], &[], Rate::Fast).unwrap_err();
        assert!(matches!(err, CrnError::UnknownSpecies { .. }));
    }

    #[test]
    fn empty_reaction_is_rejected() {
        let mut crn = Crn::new();
        assert_eq!(
            crn.reaction(&[], &[], Rate::Fast),
            Err(CrnError::EmptyReaction)
        );
    }

    #[test]
    fn zero_stoichiometry_is_rejected() {
        let mut crn = Crn::new();
        let x = crn.species("X");
        let err = crn.reaction(&[(x, 0)], &[(x, 1)], Rate::Fast).unwrap_err();
        assert!(matches!(err, CrnError::ZeroStoichiometry { .. }));
    }

    #[test]
    fn invalid_fixed_rate_is_rejected() {
        let mut crn = Crn::new();
        let x = crn.species("X");
        let err = crn.reaction(&[(x, 1)], &[], Rate::Fixed(-3.0)).unwrap_err();
        assert!(matches!(err, CrnError::InvalidRate { .. }));
    }

    #[test]
    fn formatting_round_trip() {
        let mut crn = Crn::new();
        let x = crn.species("X");
        let y = crn.species("Y");
        let z = crn.species("Z");
        crn.reaction(&[(x, 1), (y, 2)], &[(z, 1)], Rate::Fast)
            .unwrap();
        crn.reaction(&[], &[(x, 1)], Rate::Slow).unwrap();
        crn.reaction(&[(z, 1)], &[], Rate::Fixed(2.5)).unwrap();
        assert_eq!(crn.format_reaction(0), "X + 2Y -> Z @fast");
        assert_eq!(crn.format_reaction(1), "0 -> X @slow");
        assert_eq!(crn.format_reaction(2), "Z -> 0 @2.5");
    }

    #[test]
    fn merge_prefixed_shares_species_and_copies_reactions() {
        let mut module = Crn::new();
        let min = module.species("in");
        let mout = module.species("out");
        module
            .reaction(&[(min, 1)], &[(mout, 1)], Rate::Slow)
            .unwrap();

        let mut top = Crn::new();
        let pre_existing = top.species("m1.out");
        let map = top.merge_prefixed(&module, "m1.");
        assert_eq!(map[mout.index()], pre_existing);
        assert_eq!(top.reactions().len(), 1);
        assert_eq!(top.format_reaction(0), "m1.in -> m1.out @slow");
    }

    #[test]
    fn validate_reports_unused_and_no_effect() {
        let mut crn = Crn::new();
        let x = crn.species("X");
        let _unused = crn.species("U");
        let cat = crn.species("C");
        // no net effect: C + X -> C + X
        crn.reaction(&[(cat, 1), (x, 1)], &[(cat, 1), (x, 1)], Rate::Fast)
            .unwrap();
        let issues = crn.validate();
        assert!(issues.iter().any(|i| i.contains("`U`")));
        assert!(issues.iter().any(|i| i.contains("no net effect")));
    }

    #[test]
    fn validate_reports_duplicates() {
        let mut crn = Crn::new();
        let x = crn.species("X");
        let y = crn.species("Y");
        crn.reaction(&[(x, 1)], &[(y, 1)], Rate::Fast).unwrap();
        crn.reaction(&[(x, 1)], &[(y, 1)], Rate::Fast).unwrap();
        let issues = crn.validate();
        assert!(issues.iter().any(|i| i.contains("duplicates")));
    }

    #[test]
    fn display_lists_reactions() {
        let mut crn = Crn::new();
        let x = crn.species("X");
        let y = crn.species("Y");
        crn.reaction_labeled(&[(x, 1)], &[(y, 1)], Rate::Slow, "transfer")
            .unwrap();
        let text = crn.to_string();
        assert!(text.contains("X -> Y @slow"));
        assert!(text.contains("# transfer"));
    }

    #[test]
    fn serde_traits_are_implemented() {
        fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_serde::<Crn>();
    }
}
