//! Structural analysis: stoichiometry, conservation laws, size statistics.
//!
//! Conservation laws matter in this workspace because the synchronous scheme
//! is built on *quantity transfer*: a delay chain conserves total signal
//! quantity across its color categories (modulo external sources and sinks),
//! and the test suites use [`conservation_laws`] to verify that generated
//! constructs really do.

// The elimination code follows the usual matrix-index notation.
#![allow(clippy::needless_range_loop)]

use crate::{Crn, Rate};
use serde::{Deserialize, Serialize};

/// The net stoichiometry matrix `S` of a network: `S[i][j]` is the net
/// change of species `i` when reaction `j` fires once.
///
/// Rows are indexed by [`SpeciesId::index`](crate::SpeciesId::index), columns by reaction index.
///
/// # Examples
///
/// ```
/// use molseq_crn::{stoichiometry_matrix, Crn};
///
/// let crn: Crn = "X -> Y @slow".parse().unwrap();
/// let s = stoichiometry_matrix(&crn);
/// assert_eq!(s, vec![vec![-1], vec![1]]);
/// ```
#[must_use]
pub fn stoichiometry_matrix(crn: &Crn) -> Vec<Vec<i64>> {
    let mut matrix = vec![vec![0i64; crn.reactions().len()]; crn.species_count()];
    for (j, r) in crn.reactions().iter().enumerate() {
        for s in r.species() {
            matrix[s.index()][j] = r.net_change(s);
        }
    }
    matrix
}

/// Computes a basis of integer conservation laws of the network: vectors
/// `w` with `wᵀ · S = 0`, meaning the weighted sum `Σ w_i · [species_i]` is
/// invariant under every reaction.
///
/// The basis is returned as integer weight vectors (one entry per species,
/// scaled to smallest integers with positive leading entry). Networks with
/// zero-order sources or annihilations typically conserve nothing; a closed
/// delay ring conserves the total of its color triple.
///
/// # Examples
///
/// ```
/// use molseq_crn::{conservation_laws, Crn};
///
/// // A one-element ring: R -> G -> B -> R. Total R+G+B is conserved.
/// let crn: Crn = "R -> G @slow\nG -> B @slow\nB -> R @slow".parse().unwrap();
/// let laws = conservation_laws(&crn);
/// assert_eq!(laws, vec![vec![1, 1, 1]]);
/// ```
#[must_use]
pub fn conservation_laws(crn: &Crn) -> Vec<Vec<i64>> {
    // Solve wᵀ S = 0, i.e. Sᵀ w = 0: null space of the transpose,
    // computed with exact rational arithmetic (i128 numerator/denominator
    // pairs are avoided by scaling rows to integers after each elimination).
    let n_species = crn.species_count();
    let n_reactions = crn.reactions().len();
    if n_species == 0 {
        return Vec::new();
    }
    // rows: one per reaction (equations), columns: species (unknowns).
    let mut rows: Vec<Vec<i128>> = Vec::with_capacity(n_reactions);
    let s = stoichiometry_matrix(crn);
    for j in 0..n_reactions {
        rows.push((0..n_species).map(|i| i128::from(s[i][j])).collect());
    }

    // Integer Gaussian elimination to row echelon form.
    let mut pivot_cols: Vec<usize> = Vec::new();
    let mut rank = 0usize;
    for col in 0..n_species {
        let Some(pivot_row) = (rank..rows.len()).find(|&r| rows[r][col] != 0) else {
            continue;
        };
        rows.swap(rank, pivot_row);
        let pivot = rows[rank][col];
        for r in 0..rows.len() {
            if r != rank && rows[r][col] != 0 {
                let factor = rows[r][col];
                for c in 0..n_species {
                    rows[r][c] = rows[r][c] * pivot - rows[rank][c] * factor;
                }
                reduce_row(&mut rows[r]);
            }
        }
        reduce_row(&mut rows[rank]);
        pivot_cols.push(col);
        rank += 1;
        if rank == rows.len() {
            break;
        }
    }

    // Free columns parameterize the null space.
    let mut laws = Vec::new();
    let is_pivot = |c: usize| pivot_cols.contains(&c);
    for free in (0..n_species).filter(|&c| !is_pivot(c)) {
        let mut w = vec![0i128; n_species];
        w[free] = 1;
        // Back-substitute. The elimination above cleared each pivot column
        // from every other row, so for pivot row `r` with pivot column `pc`
        // the equation reads `pivot·w[pc] + Σ_{free c} row[c]·w[c] = 0` —
        // each equation is independent. Scale the whole vector whenever the
        // division would not be exact, to stay in integers.
        for (r, &pc) in pivot_cols.iter().enumerate() {
            let pivot = rows[r][pc];
            let rhs = |w: &[i128]| -> i128 {
                (0..n_species)
                    .filter(|&c| c != pc)
                    .map(|c| rows[r][c] * w[c])
                    .sum()
            };
            let value = rhs(&w);
            if value % pivot != 0 {
                let scale = pivot.abs() / gcd(value.abs(), pivot.abs());
                for x in &mut w {
                    *x *= scale;
                }
            }
            let value = rhs(&w);
            debug_assert_eq!(value % pivot, 0);
            w[pc] = -value / pivot;
        }
        normalize(&mut w);
        laws.push(w.iter().map(|&x| x as i64).collect());
    }
    laws
}

fn reduce_row(row: &mut [i128]) {
    let mut g: i128 = 0;
    for &x in row.iter() {
        g = gcd(g, x.abs());
    }
    if g > 1 {
        for x in row.iter_mut() {
            *x /= g;
        }
    }
}

fn normalize(w: &mut [i128]) {
    let mut g: i128 = 0;
    for &x in w.iter() {
        g = gcd(g, x.abs());
    }
    if g > 1 {
        for x in w.iter_mut() {
            *x /= g;
        }
    }
    if let Some(first) = w.iter().find(|&&x| x != 0) {
        if *first < 0 {
            for x in w.iter_mut() {
                *x = -*x;
            }
        }
    }
}

fn gcd(a: i128, b: i128) -> i128 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Size and shape statistics of a network, used by the construct-cost table
/// (experiment E5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CrnStats {
    /// Number of species.
    pub species: usize,
    /// Number of reactions.
    pub reactions: usize,
    /// Reactions in the fast category.
    pub fast: usize,
    /// Reactions in the slow category.
    pub slow: usize,
    /// Reactions with explicit rate constants.
    pub fixed: usize,
    /// Zero-order reactions (sources).
    pub order0: usize,
    /// Unimolecular reactions.
    pub order1: usize,
    /// Bimolecular reactions.
    pub order2: usize,
    /// Reactions of molecularity three or higher.
    pub order3_plus: usize,
}

impl CrnStats {
    /// Gathers statistics for a network.
    ///
    /// # Examples
    ///
    /// ```
    /// use molseq_crn::{Crn, CrnStats};
    ///
    /// let crn: Crn = "0 -> r @slow\nr + R1 -> R1 @fast".parse().unwrap();
    /// let stats = CrnStats::of(&crn);
    /// assert_eq!(stats.species, 2);
    /// assert_eq!(stats.order0, 1);
    /// assert_eq!(stats.order2, 1);
    /// ```
    #[must_use]
    pub fn of(crn: &Crn) -> Self {
        let mut stats = CrnStats {
            species: crn.species_count(),
            reactions: crn.reactions().len(),
            ..CrnStats::default()
        };
        for r in crn.reactions() {
            match r.rate() {
                Rate::Fast => stats.fast += 1,
                Rate::Slow => stats.slow += 1,
                Rate::Fixed(_) => stats.fixed += 1,
            }
            match r.order() {
                0 => stats.order0 += 1,
                1 => stats.order1 += 1,
                2 => stats.order2 += 1,
                _ => stats.order3_plus += 1,
            }
        }
        stats
    }
}

/// Evaluates a conservation law against a state vector: `Σ w_i · x_i`.
///
/// A helper for tests and experiment harnesses that watch invariants along a
/// trajectory. `state` is indexed by [`SpeciesId::index`](crate::SpeciesId::index).
///
/// # Panics
///
/// Panics if `law` and `state` have different lengths.
#[must_use]
pub fn law_value(law: &[i64], state: &[f64]) -> f64 {
    assert_eq!(law.len(), state.len(), "law and state must align");
    law.iter().zip(state).map(|(&w, &x)| w as f64 * x).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_conserves_total() {
        let crn: Crn = "R -> G @slow\nG -> B @slow\nB -> R @slow".parse().unwrap();
        let laws = conservation_laws(&crn);
        assert_eq!(laws, vec![vec![1, 1, 1]]);
        assert_eq!(law_value(&laws[0], &[3.0, 4.0, 5.0]), 12.0);
    }

    #[test]
    fn source_breaks_conservation() {
        let crn: Crn = "0 -> X @slow".parse().unwrap();
        assert!(conservation_laws(&crn).is_empty());
    }

    #[test]
    fn two_independent_rings_give_two_laws() {
        let crn: Crn = "A -> B @slow\nB -> A @slow\nC -> D @fast\nD -> C @fast"
            .parse()
            .unwrap();
        let laws = conservation_laws(&crn);
        assert_eq!(laws.len(), 2);
        for law in &laws {
            // each law is supported on exactly one ring
            let nonzero: Vec<_> = law.iter().filter(|&&x| x != 0).collect();
            assert_eq!(nonzero.len(), 2);
            assert!(nonzero.iter().all(|&&x| x == 1));
        }
    }

    #[test]
    fn dimerization_weights_are_rational() {
        // 2X -> Y conserves X + 2Y.
        let crn: Crn = "2X -> Y @fast".parse().unwrap();
        let laws = conservation_laws(&crn);
        assert_eq!(laws, vec![vec![1, 2]]);
    }

    #[test]
    fn catalyst_is_conserved_alone() {
        let crn: Crn = "C + X -> C + Y @slow".parse().unwrap();
        let laws = conservation_laws(&crn);
        // C alone, and X+Y, in some basis order
        assert_eq!(laws.len(), 2);
        let total: Vec<i64> = laws.iter().fold(vec![0; 3], |mut acc, law| {
            for (a, &l) in acc.iter_mut().zip(law) {
                *a += l;
            }
            acc
        });
        // Both C and X+Y conserved => some combination covers all three species.
        assert!(total.iter().all(|&x| x > 0));
    }

    #[test]
    fn stats_count_categories_and_orders() {
        let crn: Crn = "0 -> r @slow\nA -> B @fast\nA + B -> C @fast\n3A -> C @2.0"
            .parse()
            .unwrap();
        let stats = CrnStats::of(&crn);
        assert_eq!(stats.reactions, 4);
        assert_eq!(stats.fast, 2);
        assert_eq!(stats.slow, 1);
        assert_eq!(stats.fixed, 1);
        assert_eq!(stats.order0, 1);
        assert_eq!(stats.order1, 1);
        assert_eq!(stats.order2, 1);
        assert_eq!(stats.order3_plus, 1);
    }

    #[test]
    fn empty_network_has_no_laws() {
        let crn = Crn::new();
        assert!(conservation_laws(&crn).is_empty());
    }

    #[test]
    fn stoichiometry_matrix_shape() {
        let crn: Crn = "X + Y -> Z @fast\nZ -> X @slow".parse().unwrap();
        let s = stoichiometry_matrix(&crn);
        assert_eq!(s.len(), 3);
        assert_eq!(s[0], vec![-1, 1]); // X
        assert_eq!(s[1], vec![-1, 0]); // Y
        assert_eq!(s[2], vec![1, -1]); // Z
    }
}
