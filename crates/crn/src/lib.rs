//! # molseq-crn — chemical reaction network data model
//!
//! This crate is the foundation of the `molseq` workspace. It defines the
//! vocabulary everything else speaks:
//!
//! * [`SpeciesId`] / [`Species`] — interned molecular types,
//! * [`Reaction`] — a mass-action reaction with integer stoichiometry,
//! * [`Rate`] — a *coarse* rate category (`Fast`, `Slow`, or `Fixed`),
//!   following the paper's central design rule that correctness must depend
//!   only on "fast ≫ slow", never on specific kinetic constants,
//! * [`RateAssignment`] — a numeric interpretation of the categories chosen
//!   at simulation time, so one network can be swept across rate ratios,
//! * [`Crn`] — the network itself, with a builder API and a text parser.
//!
//! The crate deliberately contains **no kinetics**: simulation lives in
//! `molseq-kinetics`, construction idioms in `molseq-modules` and
//! `molseq-sync`.
//!
//! ## Example
//!
//! ```
//! use molseq_crn::{Crn, Rate};
//!
//! # fn main() -> Result<(), molseq_crn::CrnError> {
//! let mut crn = Crn::new();
//! let x = crn.species("X");
//! let y = crn.species("Y");
//! crn.reaction(&[(x, 1)], &[(y, 1)], Rate::Slow)?;
//! assert_eq!(crn.reactions().len(), 1);
//!
//! // The same network, from text:
//! let parsed: Crn = "X -> Y @slow".parse()?;
//! assert_eq!(parsed.reactions().len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod dot;
mod error;
mod network;
mod parse;
mod perturb;
mod rate;
mod reach;
mod reaction;
mod species;

pub use analysis::{conservation_laws, law_value, stoichiometry_matrix, CrnStats};
pub use dot::to_dot;
pub use error::CrnError;
pub use network::Crn;
pub use parse::parse_reactions;
pub use perturb::{JitterSpec, RateJitter};
pub use rate::{Rate, RateAssignment};
pub use reach::{reachable_species, unreachable_species};
pub use reaction::{Reaction, Term};
pub use species::{Species, SpeciesId};
