//! A small text format for reaction networks.
//!
//! The grammar, one reaction per line:
//!
//! ```text
//! line     := [ side ] "->" [ side ] [ "@" rate ] [ "#" comment ]
//! side     := term { "+" term } | "0"
//! term     := [ integer ] name
//! name     := identifier ([A-Za-z_][A-Za-z0-9_.'\[\]]*)
//! rate     := "fast" | "slow" | float            (default: slow)
//! ```
//!
//! Blank lines and lines starting with `#` are skipped. `0` (or nothing)
//! denotes the empty side, so `0 -> r @slow` is a zero-order source and
//! `X + Y -> 0 @fast` is an annihilation.
//!
//! The format exists for tests, examples and golden files; programmatic
//! construction through [`Crn`](crate::Crn) is the primary interface.

use crate::{Crn, CrnError, Rate, SpeciesId};

/// Parses reaction text into a [`Crn`].
///
/// # Errors
///
/// Returns [`CrnError::Parse`] with a 1-based line number for any malformed
/// line, and propagates network-construction errors (which cannot occur for
/// text accepted by the grammar, but are surfaced rather than hidden).
///
/// # Examples
///
/// ```
/// use molseq_crn::parse_reactions;
///
/// # fn main() -> Result<(), molseq_crn::CrnError> {
/// let crn = parse_reactions(
///     "# absence indicator for the red category
///      0 -> r @slow
///      r + R1 -> R1 @fast
///      b + R1 -> G1 @slow",
/// )?;
/// assert_eq!(crn.reactions().len(), 3);
/// assert!(crn.find_species("G1").is_some());
/// # Ok(())
/// # }
/// ```
pub fn parse_reactions(text: &str) -> Result<Crn, CrnError> {
    let mut crn = Crn::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let code = match raw.split('#').next() {
            Some(c) => c.trim(),
            None => "",
        };
        if code.is_empty() {
            continue;
        }
        parse_line(&mut crn, code, line)?;
    }
    Ok(crn)
}

fn parse_line(crn: &mut Crn, code: &str, line: usize) -> Result<(), CrnError> {
    let (body, rate) = match code.rsplit_once('@') {
        Some((body, rate_text)) => (body.trim(), parse_rate(rate_text.trim(), line)?),
        None => (code, Rate::Slow),
    };
    let (lhs, rhs) = body.split_once("->").ok_or_else(|| CrnError::Parse {
        line,
        message: "expected `->` between reactants and products".to_owned(),
    })?;
    let reactants = parse_side(crn, lhs.trim(), line)?;
    let products = parse_side(crn, rhs.trim(), line)?;
    crn.reaction(&reactants, &products, rate)?;
    Ok(())
}

fn parse_rate(text: &str, line: usize) -> Result<Rate, CrnError> {
    match text {
        "fast" => Ok(Rate::Fast),
        "slow" => Ok(Rate::Slow),
        other => other
            .parse::<f64>()
            .ok()
            .filter(|k| k.is_finite() && *k > 0.0)
            .map(Rate::Fixed)
            .ok_or_else(|| CrnError::Parse {
                line,
                message: format!(
                    "invalid rate `{other}` (expected fast, slow or a positive number)"
                ),
            }),
    }
}

fn parse_side(crn: &mut Crn, text: &str, line: usize) -> Result<Vec<(SpeciesId, u32)>, CrnError> {
    if text.is_empty() || text == "0" {
        return Ok(Vec::new());
    }
    text.split('+')
        .map(|term| parse_term(crn, term.trim(), line))
        .collect()
}

fn parse_term(crn: &mut Crn, term: &str, line: usize) -> Result<(SpeciesId, u32), CrnError> {
    if term.is_empty() {
        return Err(CrnError::Parse {
            line,
            message: "empty term (stray `+`?)".to_owned(),
        });
    }
    let digits: String = term.chars().take_while(char::is_ascii_digit).collect();
    let name = term[digits.len()..].trim();
    if name.is_empty() {
        return Err(CrnError::Parse {
            line,
            message: format!("term `{term}` has a coefficient but no species name"),
        });
    }
    if !is_valid_name(name) {
        return Err(CrnError::Parse {
            line,
            message: format!("invalid species name `{name}`"),
        });
    }
    let stoich: u32 = if digits.is_empty() {
        1
    } else {
        digits.parse().map_err(|_| CrnError::Parse {
            line,
            message: format!("coefficient `{digits}` is too large"),
        })?
    };
    if stoich == 0 {
        return Err(CrnError::Parse {
            line,
            message: format!("coefficient of `{name}` is zero"),
        });
    }
    Ok((crn.species(name), stoich))
}

fn is_valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '\'' | '[' | ']'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_readme_example() {
        let crn = parse_reactions("X + 2Y -> Z @fast\n0 -> r @slow\nZ -> 0 @2.5").unwrap();
        assert_eq!(crn.reactions().len(), 3);
        assert_eq!(crn.format_reaction(0), "X + 2Y -> Z @fast");
        assert_eq!(crn.format_reaction(1), "0 -> r @slow");
        assert_eq!(crn.format_reaction(2), "Z -> 0 @2.5");
    }

    #[test]
    fn default_rate_is_slow() {
        let crn = parse_reactions("A -> B").unwrap();
        assert_eq!(crn.reactions()[0].rate(), Rate::Slow);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let crn = parse_reactions("\n# a comment\nA -> B @fast  # trailing\n\n").unwrap();
        assert_eq!(crn.reactions().len(), 1);
        assert_eq!(crn.reactions()[0].rate(), Rate::Fast);
    }

    #[test]
    fn reports_line_numbers() {
        let err = parse_reactions("A -> B\nA = B\n").unwrap_err();
        match err {
            CrnError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_rate() {
        assert!(parse_reactions("A -> B @quick").is_err());
        assert!(parse_reactions("A -> B @-2").is_err());
        assert!(parse_reactions("A -> B @0").is_err());
    }

    #[test]
    fn rejects_bad_terms() {
        assert!(parse_reactions("-> ").is_err()); // empty reaction
        assert!(parse_reactions("A + -> B").is_err());
        assert!(parse_reactions("3 -> B").is_err()); // coefficient without name
        assert!(parse_reactions("0A -> B").is_err()); // zero coefficient
        assert!(parse_reactions("A! -> B").is_err()); // invalid name character
    }

    #[test]
    fn accepts_rich_names() {
        let crn = parse_reactions("clk.R -> D'[1] @fast").unwrap();
        assert!(crn.find_species("clk.R").is_some());
        assert!(crn.find_species("D'[1]").is_some());
    }

    #[test]
    fn fromstr_matches_parse() {
        let a: Crn = "X -> Y @fast".parse().unwrap();
        let b = parse_reactions("X -> Y @fast").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn round_trip_display_parse() {
        let src = "0 -> r @slow\nr + R1 -> R1 @fast\nb + R1 -> G1 @slow\n2G1 -> I_G1 @slow\nI_G1 -> 2G1 @fast\nI_G1 + R1 -> 3G1 @fast";
        let crn = parse_reactions(src).unwrap();
        // strip the header line of Display, reparse, compare
        let text: String = crn
            .to_string()
            .lines()
            .skip(1)
            .collect::<Vec<_>>()
            .join("\n");
        let again = parse_reactions(&text).unwrap();
        assert_eq!(crn, again);
    }
}
