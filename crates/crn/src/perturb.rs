//! Per-reaction rate perturbation.
//!
//! The paper's robustness claim is that computation is exact for *any* rate
//! assignment in which fast reactions are fast relative to slow ones — it
//! does not matter how fast one fast reaction is relative to another fast
//! reaction. Experiment E7 tests exactly this: every reaction's rate
//! constant is multiplied by an independent lognormal factor, and the
//! computed answers must not move.
//!
//! [`RateJitter`] produces such multiplier vectors deterministically from a
//! seed; `molseq-kinetics` accepts them alongside a
//! [`RateAssignment`](crate::RateAssignment).

use crate::Crn;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Specification of a lognormal jitter: each multiplier is
/// `exp(sigma · z)` with `z ~ N(0, 1)`.
///
/// `sigma = 0.5` spreads rates over roughly a factor of `e ≈ 2.7` either
/// way at one standard deviation — a large spread for wet chemistry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JitterSpec {
    /// Standard deviation of `ln(multiplier)`.
    pub sigma: f64,
    /// Seed for the deterministic generator.
    pub seed: u64,
}

impl JitterSpec {
    /// Creates a specification.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    #[must_use]
    pub fn new(sigma: f64, seed: u64) -> Self {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "sigma must be finite and non-negative"
        );
        JitterSpec { sigma, seed }
    }
}

/// A vector of per-reaction rate multipliers.
///
/// # Examples
///
/// ```
/// use molseq_crn::{Crn, JitterSpec, RateJitter};
///
/// let crn: Crn = "A -> B @slow\nB -> A @fast".parse().unwrap();
/// let jitter = RateJitter::sample(&crn, JitterSpec::new(0.5, 42));
/// assert_eq!(jitter.multipliers().len(), 2);
/// assert!(jitter.multipliers().iter().all(|&m| m > 0.0));
///
/// // deterministic in the seed
/// let again = RateJitter::sample(&crn, JitterSpec::new(0.5, 42));
/// assert_eq!(jitter.multipliers(), again.multipliers());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateJitter {
    multipliers: Vec<f64>,
}

impl RateJitter {
    /// The identity jitter (all multipliers `1.0`) for a network.
    #[must_use]
    pub fn identity(crn: &Crn) -> Self {
        RateJitter {
            multipliers: vec![1.0; crn.reactions().len()],
        }
    }

    /// Samples one multiplier per reaction of `crn` from the lognormal
    /// distribution described by `spec`.
    #[must_use]
    pub fn sample(crn: &Crn, spec: JitterSpec) -> Self {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let multipliers = (0..crn.reactions().len())
            .map(|_| (spec.sigma * standard_normal(&mut rng)).exp())
            .collect();
        RateJitter { multipliers }
    }

    /// Builds a jitter from explicit multipliers.
    ///
    /// # Panics
    ///
    /// Panics if any multiplier is not finite and strictly positive.
    #[must_use]
    pub fn from_multipliers(multipliers: Vec<f64>) -> Self {
        assert!(
            multipliers.iter().all(|&m| m.is_finite() && m > 0.0),
            "multipliers must be finite and positive"
        );
        RateJitter { multipliers }
    }

    /// The multiplier for each reaction, indexed by reaction index.
    #[must_use]
    pub fn multipliers(&self) -> &[f64] {
        &self.multipliers
    }

    /// The multiplier for one reaction (`1.0` if out of range, so a jitter
    /// sampled from a smaller network degrades gracefully).
    #[must_use]
    pub fn factor(&self, reaction: usize) -> f64 {
        self.multipliers.get(reaction).copied().unwrap_or(1.0)
    }
}

/// Box–Muller standard normal draw.
fn standard_normal(rng: &mut StdRng) -> f64 {
    // Avoid ln(0) by mapping the unit sample into (0, 1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Crn {
        "A -> B @slow\nB -> A @fast\nA + B -> 0 @fast"
            .parse()
            .unwrap()
    }

    #[test]
    fn identity_is_all_ones() {
        let crn = tiny();
        let j = RateJitter::identity(&crn);
        assert_eq!(j.multipliers(), &[1.0, 1.0, 1.0]);
        assert_eq!(j.factor(0), 1.0);
        assert_eq!(j.factor(99), 1.0);
    }

    #[test]
    fn zero_sigma_is_identity() {
        let crn = tiny();
        let j = RateJitter::sample(&crn, JitterSpec::new(0.0, 7));
        assert!(j.multipliers().iter().all(|&m| (m - 1.0).abs() < 1e-12));
    }

    #[test]
    fn different_seeds_differ() {
        let crn = tiny();
        let a = RateJitter::sample(&crn, JitterSpec::new(0.5, 1));
        let b = RateJitter::sample(&crn, JitterSpec::new(0.5, 2));
        assert_ne!(a.multipliers(), b.multipliers());
    }

    #[test]
    fn samples_are_positive_and_spread() {
        let crn: Crn = (0..50)
            .map(|i| format!("X{i} -> Y{i} @slow"))
            .collect::<Vec<_>>()
            .join("\n")
            .parse()
            .unwrap();
        let j = RateJitter::sample(&crn, JitterSpec::new(1.0, 3));
        assert!(j.multipliers().iter().all(|&m| m > 0.0));
        let spread = j
            .multipliers()
            .iter()
            .fold((f64::INFINITY, 0.0f64), |(lo, hi), &m| {
                (lo.min(m), hi.max(m))
            });
        assert!(spread.1 / spread.0 > 2.0, "sigma=1 should spread rates");
    }

    #[test]
    #[should_panic(expected = "multipliers must be finite and positive")]
    fn from_multipliers_validates() {
        let _ = RateJitter::from_multipliers(vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "sigma must be finite")]
    fn spec_validates_sigma() {
        let _ = JitterSpec::new(-1.0, 0);
    }
}
