//! # molseq-serve — a multi-tenant batch-simulation server
//!
//! Long-running std-only TCP service that accepts batch-simulation jobs
//! over a line-delimited JSON protocol, runs them on a persistent worker
//! pool, and streams results back incrementally. Three properties carry
//! over from the rest of the workspace:
//!
//! * **Determinism** — every cell runs through
//!   [`molseq_sweep::run_cell`], the single-cell entry point of the sweep
//!   engine, with the same seed derivation
//!   ([`molseq_sweep::derive_seed`]) and outcome mapping. Result rows
//!   carry no wall-clock fields, so the same submission produces
//!   byte-identical rows at any worker count, on any machine.
//! * **Compile once, serve many** — networks are cached across requests
//!   in a [`molseq_kinetics::CompiledCache`] keyed by the structural hash
//!   ([`molseq_crn::Crn::structural_hash`]); rate-constant overrides
//!   rebind the cached compile, which is property-tested bit-identical
//!   to compiling fresh. A tenant resubmitting a sweep (or two tenants
//!   submitting the same network) pays the compile once.
//! * **Isolation** — per-tenant admission control
//!   ([`TenantPolicy`]) bounds in-flight jobs, per-cell
//!   [`molseq_sweep::JobBudget`]s cut runaway cells deterministically,
//!   and a cooperative [`molseq_sweep::CancelToken`] per job lets clients
//!   abandon work without disturbing other tenants.
//!
//! The wire protocol is documented in the [`protocol`] module (and in
//! DESIGN.md §11); [`Client`] is the blocking reference client used by
//! the tests, the CI stage, and `repro --via-server`.
//!
//! ## Quickstart
//!
//! ```
//! use molseq_serve::{
//!     CellSpec, Client, Method, Program, Server, ServerConfig, SubmitRequest,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let server = Server::start(ServerConfig::default().with_workers(2))?;
//! let mut client = Client::connect(server.addr())?;
//!
//! let ack = client.submit(&SubmitRequest {
//!     tenant: "docs".into(),
//!     program: Program::Crn("X -> Y @slow".into()),
//!     init: vec![("X".into(), 20.0)],
//!     method: Method::Ssa,
//!     t_end: 100.0,
//!     record_interval: None,
//!     seed: 7,
//!     injections: vec![],
//!     batch: Some(1),
//!     cells: (0..3)
//!         .map(|i| CellSpec { label: format!("rep={i}"), k_fast: None, k_slow: None })
//!         .collect(),
//! })?;
//!
//! let rows = client.fetch_all(&ack.job_id)?;
//! assert_eq!(rows.len(), 3);
//! let y = ack.species.iter().position(|s| s == "Y").unwrap();
//! assert_eq!(rows[0].final_state[y], 20.0); // all X decayed to Y
//!
//! client.shutdown()?;
//! server.join();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod protocol;
mod server;

pub use client::{Client, ClientError, FetchPage, JobStatusInfo, SubmitAck};
pub use protocol::{
    rows_to_summary, stats_summary, CellRow, CellSpec, Method, Program, ProtocolError, Request,
    SubmitRequest,
};
pub use server::{Server, ServerConfig, TenantPolicy};
