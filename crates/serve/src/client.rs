//! A blocking line-JSON client for the serve wire protocol.
//!
//! One [`Client`] owns one TCP connection; every method is a synchronous
//! request/response round trip. The same client drives the end-to-end
//! tests, the `repro --via-server` smoke path, and the CI stage — there
//! is deliberately no second implementation of the protocol.

use crate::protocol::{CellRow, ProtocolError, Request, SubmitRequest};
use molseq_sweep::JsonValue;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection broke (or could not be established).
    Io(std::io::Error),
    /// The server closed the connection instead of replying — it shut
    /// down, crashed, or dropped the stream mid-request. Distinct from
    /// [`ClientError::Io`] so callers can tell an orderly remote close
    /// (retry against a restarted server, or report "server went away")
    /// from a transport fault.
    ConnectionClosed,
    /// The server's reply did not match the protocol.
    Protocol(ProtocolError),
    /// The server answered with `"ok": false`; the payload is its error
    /// message.
    Server(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::ConnectionClosed => {
                write!(f, "connection closed: the server went away before replying")
            }
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// A submission acknowledgement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitAck {
    /// The id to use in `status`/`fetch`/`cancel` calls.
    pub job_id: String,
    /// How many cells the job has.
    pub cells: usize,
    /// The network's species names in registration order — the order of
    /// every row's `final_state` vector.
    pub species: Vec<String>,
}

/// A job's progress, as reported by `status`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatusInfo {
    /// `queued`, `running`, `cancelling`, `cancelled`, or `done`.
    pub state: String,
    /// Completed cells.
    pub completed: usize,
    /// Total cells.
    pub total: usize,
}

/// One page of fetched rows.
#[derive(Debug, Clone, PartialEq)]
pub struct FetchPage {
    /// The rows, contiguous from the requested index.
    pub rows: Vec<CellRow>,
    /// The index to request next.
    pub next: usize,
    /// Whether the job has reached a terminal state.
    pub done: bool,
}

/// A blocking client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn roundtrip(&mut self, request: &Request) -> Result<JsonValue, ClientError> {
        let mut line = request.to_line();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            // a clean EOF is the server going away, not an I/O fault —
            // surface it as its own variant rather than a synthesized
            // `UnexpectedEof`
            return Err(ClientError::ConnectionClosed);
        }
        let doc = JsonValue::parse(&reply)
            .map_err(|e| ClientError::Protocol(ProtocolError::new(format!("bad reply: {e}"))))?;
        match doc.get("ok") {
            Some(JsonValue::Bool(true)) => Ok(doc),
            Some(JsonValue::Bool(false)) => Err(ClientError::Server(
                doc.get("error")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("unspecified server error")
                    .to_owned(),
            )),
            _ => Err(ClientError::Protocol(ProtocolError::new(
                "reply lacks an `ok` field",
            ))),
        }
    }

    fn field_usize(doc: &JsonValue, key: &str) -> Result<usize, ClientError> {
        doc.get(key)
            .and_then(JsonValue::as_f64)
            .filter(|n| n.fract() == 0.0 && *n >= 0.0)
            .map(|n| n as usize)
            .ok_or_else(|| {
                ClientError::Protocol(ProtocolError::new(format!("reply lacks `{key}`")))
            })
    }

    fn field_str(doc: &JsonValue, key: &str) -> Result<String, ClientError> {
        doc.get(key)
            .and_then(JsonValue::as_str)
            .map(str::to_owned)
            .ok_or_else(|| {
                ClientError::Protocol(ProtocolError::new(format!("reply lacks `{key}`")))
            })
    }

    /// Submits a job.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] if the submission is rejected (admission
    /// control, validation); `Io`/`Protocol` for transport faults.
    pub fn submit(&mut self, request: &SubmitRequest) -> Result<SubmitAck, ClientError> {
        let doc = self.roundtrip(&Request::Submit(Box::new(request.clone())))?;
        let species = doc
            .get("species")
            .and_then(JsonValue::as_array)
            .map(|items| {
                items
                    .iter()
                    .filter_map(JsonValue::as_str)
                    .map(str::to_owned)
                    .collect()
            })
            .unwrap_or_default();
        Ok(SubmitAck {
            job_id: Self::field_str(&doc, "job")?,
            cells: Self::field_usize(&doc, "cells")?,
            species,
        })
    }

    /// Queries a job's progress.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for an unknown job id.
    pub fn status(&mut self, job_id: &str) -> Result<JobStatusInfo, ClientError> {
        let doc = self.roundtrip(&Request::Status {
            job_id: job_id.to_owned(),
        })?;
        Ok(JobStatusInfo {
            state: Self::field_str(&doc, "state")?,
            completed: Self::field_usize(&doc, "completed")?,
            total: Self::field_usize(&doc, "total")?,
        })
    }

    /// Fetches completed rows starting at `from`. With `wait`, blocks
    /// until at least one new row (or a terminal state) is available.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for an unknown job id.
    pub fn fetch(
        &mut self,
        job_id: &str,
        from: usize,
        wait: bool,
    ) -> Result<FetchPage, ClientError> {
        let doc = self.roundtrip(&Request::Fetch {
            job_id: job_id.to_owned(),
            from,
            wait,
        })?;
        let rows = doc
            .get("rows")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| ClientError::Protocol(ProtocolError::new("reply lacks `rows`")))?
            .iter()
            .map(CellRow::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FetchPage {
            rows,
            next: Self::field_usize(&doc, "next")?,
            done: matches!(doc.get("done"), Some(JsonValue::Bool(true))),
        })
    }

    /// Streams a job to completion: repeated waiting fetches, rows
    /// concatenated in index order.
    ///
    /// # Errors
    ///
    /// Any error a single [`fetch`](Self::fetch) can produce.
    pub fn fetch_all(&mut self, job_id: &str) -> Result<Vec<CellRow>, ClientError> {
        let mut rows = Vec::new();
        loop {
            let page = self.fetch(job_id, rows.len(), true)?;
            rows.extend(page.rows);
            if page.done && rows.len() >= page.next {
                return Ok(rows);
            }
        }
    }

    /// Cancels a job. Cells already past their last cooperative
    /// checkpoint still finish; everything else ends `Cancelled`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for an unknown job id.
    pub fn cancel(&mut self, job_id: &str) -> Result<(), ClientError> {
        self.roundtrip(&Request::Cancel {
            job_id: job_id.to_owned(),
        })?;
        Ok(())
    }

    /// Reads the server counters, sorted by name.
    ///
    /// # Errors
    ///
    /// `Io`/`Protocol` for transport faults.
    pub fn stats(&mut self) -> Result<Vec<(String, f64)>, ClientError> {
        let doc = self.roundtrip(&Request::Stats)?;
        doc.get("counters")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| ClientError::Protocol(ProtocolError::new("reply lacks `counters`")))?
            .iter()
            .map(|pair| {
                let items = pair.as_array().filter(|a| a.len() == 2).ok_or_else(|| {
                    ClientError::Protocol(ProtocolError::new("counter entry is not a pair"))
                })?;
                let name = items[0].as_str().ok_or_else(|| {
                    ClientError::Protocol(ProtocolError::new("counter name is not a string"))
                })?;
                let value = items[1].as_f64().ok_or_else(|| {
                    ClientError::Protocol(ProtocolError::new("counter value is not a number"))
                })?;
                Ok((name.to_owned(), value))
            })
            .collect()
    }

    /// Asks the server to shut down (accept loop and workers exit once
    /// the queue drains).
    ///
    /// # Errors
    ///
    /// `Io`/`Protocol` for transport faults.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.roundtrip(&Request::Shutdown)?;
        Ok(())
    }
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Client").finish_non_exhaustive()
    }
}
