//! The server: a TCP accept loop, a persistent worker pool, the job
//! table, the compiled-CRN cache, and per-tenant admission control.
//!
//! Every simulation cell runs through [`molseq_sweep::run_cell`] — the
//! exact engine `run_sweep` uses, with the same seed derivation and fault
//! isolation — so the rows a job streams back are bit-identical to an
//! in-process sweep of the same request, whatever the worker count.

use crate::protocol::{CellRow, CellSpec, Method, Program, Request, SubmitRequest};
use molseq_crn::{Crn, RateAssignment};
use molseq_kinetics::{
    run_ode_batch, run_ssa_batch, run_tau_batch, BatchLane, BatchedOdeWorkspace,
    BatchedStochWorkspace, CompiledCache, CompiledCrn, HybridOptions, OdeOptions, Schedule,
    SimError, SimMetrics, SimSpec, Simulation, SsaBatchLane, SsaOptions, State, TauBatchLane,
    TauLeapOptions,
};
use molseq_sweep::{
    run_cell, run_group, CancelToken, CellOutcome, CellResult, GroupJob, JobBudget, JobCtx,
    JobError, JobStatus, JsonValue, SweepJob, SweepOptions,
};
use std::cell::Cell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// How long a `fetch` with `wait: true` blocks before replying with
/// whatever rows are ready, so a stalled job cannot wedge a connection.
const FETCH_WAIT_CAP: Duration = Duration::from_secs(30);

/// Per-tenant limits: how many jobs the tenant may have in flight and
/// the [`JobBudget`] every cell of its jobs runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantPolicy {
    /// Submissions beyond this many unfinished jobs are rejected.
    pub max_inflight: usize,
    /// The per-cell budget (step budgets are deterministic; wall budgets
    /// are machine-dependent and break byte-reproducibility).
    pub budget: JobBudget,
}

impl Default for TenantPolicy {
    /// Four jobs in flight, unlimited budget.
    fn default() -> Self {
        TenantPolicy {
            max_inflight: 4,
            budget: JobBudget::unlimited(),
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    addr: String,
    workers: usize,
    cache_capacity: Option<usize>,
    default_policy: TenantPolicy,
    tenant_policies: Vec<(String, TenantPolicy)>,
    fault_label: Option<String>,
}

impl Default for ServerConfig {
    /// An ephemeral local port, one worker per hardware thread, an
    /// unbounded compiled-CRN cache, the default [`TenantPolicy`] for
    /// every tenant.
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 0,
            cache_capacity: None,
            default_policy: TenantPolicy::default(),
            tenant_policies: Vec::new(),
            fault_label: None,
        }
    }
}

impl ServerConfig {
    /// Sets the bind address (builder style). Port `0` picks an
    /// ephemeral port; read the real one from [`Server::addr`].
    #[must_use]
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the worker-thread count (builder style); `0` means one per
    /// available hardware thread.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Bounds the compiled-CRN cache to `capacity` stored structures
    /// (builder style); the least-recently-used entry is evicted to admit
    /// a new one. The default is an unbounded cache. Eviction only costs
    /// recompilation time — a re-admitted structure compiles
    /// bit-identically — so results never depend on the bound.
    ///
    /// # Panics
    ///
    /// When `capacity` is zero (see [`CompiledCache::with_capacity`]).
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be at least 1");
        self.cache_capacity = Some(capacity);
        self
    }

    /// Sets the policy applied to tenants without an explicit override
    /// (builder style).
    #[must_use]
    pub fn with_default_policy(mut self, policy: TenantPolicy) -> Self {
        self.default_policy = policy;
        self
    }

    /// Overrides the policy for one named tenant (builder style).
    #[must_use]
    pub fn with_tenant_policy(mut self, tenant: impl Into<String>, policy: TenantPolicy) -> Self {
        self.tenant_policies.push((tenant.into(), policy));
        self
    }

    /// Deliberate fault injection for acceptance tests (builder style):
    /// a worker that finishes a work unit containing a cell with this
    /// exact label panics **while holding the job's progress lock** — the
    /// worst-case poisoning failure a real panic could produce. The
    /// server must keep serving every other tenant and surface the
    /// wounded job as `Failed` rather than wedging its fetchers.
    #[must_use]
    pub fn with_fault_injection(mut self, label: impl Into<String>) -> Self {
        self.fault_label = Some(label.into());
        self
    }

    fn policy_for(&self, tenant: &str) -> TenantPolicy {
        self.tenant_policies
            .iter()
            .rev()
            .find(|(name, _)| name == tenant)
            .map_or(self.default_policy, |(_, policy)| *policy)
    }

    fn resolved_workers(&self) -> usize {
        if self.workers == 0 {
            thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.workers
        }
    }
}

/// Everything the server validated out of a submission; workers only
/// read it.
struct JobPlan {
    crn: Crn,
    init: State,
    schedule: Schedule,
    method: Method,
    t_end: f64,
    record_interval: Option<f64>,
    /// Resolved lock-step lanes per queue unit (1 = scalar). ODE, SSA and
    /// tau-leap jobs group; hybrid jobs are always scalar.
    batch: usize,
    cells: Vec<PlanCell>,
}

/// One planned cell: its label and its (possibly rebound) compile.
struct PlanCell {
    label: String,
    compiled: Arc<CompiledCrn>,
}

/// A job's mutable progress, guarded by the entry's mutex.
struct JobProgress {
    rows: Vec<Option<CellRow>>,
    completed: usize,
    finished: bool,
    cancel_requested: bool,
}

struct JobEntry {
    id: String,
    tenant: String,
    plan: JobPlan,
    opts: SweepOptions,
    cancel: CancelToken,
    progress: Mutex<JobProgress>,
    progressed: Condvar,
}

#[derive(Default)]
struct Counters {
    jobs_submitted: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_cancelled: AtomicU64,
    tenant_rejections: AtomicU64,
    cells_ok: AtomicU64,
    cells_failed: AtomicU64,
    cells_panicked: AtomicU64,
    cells_budget_exceeded: AtomicU64,
    cells_cancelled: AtomicU64,
    running_cells: AtomicU64,
}

struct Shared {
    config: ServerConfig,
    cache: CompiledCache,
    /// Work units `(job, first cell index, lane count)`: one cell for
    /// scalar jobs, a lock-step group of consecutive cells otherwise.
    queue: Mutex<VecDeque<(Arc<JobEntry>, usize, usize)>>,
    queue_ready: Condvar,
    jobs: Mutex<HashMap<String, Arc<JobEntry>>>,
    inflight: Mutex<HashMap<String, usize>>,
    rejections: Mutex<BTreeMap<String, u64>>,
    counters: Counters,
    shutdown: AtomicBool,
    next_job: AtomicU64,
}

/// A running batch-simulation server.
///
/// Dropping the handle does **not** stop the server; call
/// [`shutdown`](Self::shutdown) (or send the wire `shutdown` op) and then
/// [`join`](Self::join).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the configured address, spawns the worker pool and the
    /// accept loop, and returns immediately.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from binding the listener.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let worker_count = config.resolved_workers();
        let cache = config
            .cache_capacity
            .map_or_else(CompiledCache::new, CompiledCache::with_capacity);
        let shared = Arc::new(Shared {
            config,
            cache,
            queue: Mutex::new(VecDeque::new()),
            queue_ready: Condvar::new(),
            jobs: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            rejections: Mutex::new(BTreeMap::new()),
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            next_job: AtomicU64::new(0),
        });
        let workers = (0..worker_count)
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            workers,
        })
    }

    /// The address the server is actually listening on (resolves an
    /// ephemeral port request).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A sorted snapshot of the server counters — the same data the wire
    /// `stats` op returns.
    #[must_use]
    pub fn counters(&self) -> Vec<(String, f64)> {
        snapshot_counters(&self.shared)
    }

    /// Asks the server to stop: no new connections, workers drain the
    /// queue and exit. Idempotent; the wire `shutdown` op does the same.
    pub fn shutdown(&self) {
        begin_shutdown(&self.shared, self.addr);
    }

    /// Waits for the accept loop and every worker to exit. Call after
    /// [`shutdown`](Self::shutdown) (or after a client sent the wire
    /// `shutdown` op).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn begin_shutdown(shared: &Shared, addr: SocketAddr) {
    shared.shutdown.store(true, Ordering::Release);
    shared.queue_ready.notify_all();
    // the accept loop blocks in `incoming`; poke it awake so it can
    // observe the flag
    let _ = TcpStream::connect(addr);
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let addr = listener.local_addr().ok();
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        // connection threads are detached: they exit when the client
        // disconnects, and the process exits once `join` returns
        thread::spawn(move || {
            let _ = serve_connection(stream, &shared, addr);
        });
    }
}

fn serve_connection(
    stream: TcpStream,
    shared: &Shared,
    addr: Option<SocketAddr>,
) -> io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (response, is_shutdown) = match Request::parse(&line) {
            Err(e) => (error_response(e.message()), false),
            Ok(request) => dispatch(shared, &request),
        };
        let mut out = String::new();
        response.render_compact(&mut out);
        out.push('\n');
        writer.write_all(out.as_bytes())?;
        writer.flush()?;
        if is_shutdown {
            if let Some(addr) = addr {
                begin_shutdown(shared, addr);
            }
            break;
        }
    }
    Ok(())
}

fn error_response(msg: &str) -> JsonValue {
    JsonValue::Object(vec![
        ("ok".to_owned(), JsonValue::Bool(false)),
        ("error".to_owned(), JsonValue::String(msg.to_owned())),
    ])
}

fn ok_response(mut members: Vec<(&str, JsonValue)>) -> JsonValue {
    let mut all = vec![("ok".to_owned(), JsonValue::Bool(true))];
    all.extend(members.drain(..).map(|(k, v)| (k.to_owned(), v)));
    JsonValue::Object(all)
}

fn dispatch(shared: &Shared, request: &Request) -> (JsonValue, bool) {
    match request {
        Request::Submit(req) => (
            handle_submit(shared, req).unwrap_or_else(|msg| error_response(&msg)),
            false,
        ),
        Request::Status { job_id } => (handle_status(shared, job_id), false),
        Request::Fetch { job_id, from, wait } => {
            (handle_fetch(shared, job_id, *from, *wait), false)
        }
        Request::Cancel { job_id } => (handle_cancel(shared, job_id), false),
        Request::Stats => (handle_stats(shared), false),
        Request::Shutdown => (ok_response(vec![]), true),
    }
}

/// Locks one of the server's plain shared tables, recovering the guard
/// when a panicking thread poisoned the mutex. Every structure guarded
/// this way (work queue, job table, slot and rejection maps) is valid
/// after any single interrupted update, so the data is taken as-is
/// instead of relaying the panic into whatever connection looks next.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Settles a job a panicking worker abandoned: every row the panic lost
/// becomes `Failed`, the job finishes so fetchers stop waiting, and the
/// tenant's admission slot is handed back. Idempotent — a second
/// recovery (or a racing late worker) sees the job finished.
fn fail_lost_rows(shared: &Shared, entry: &JobEntry, progress: &mut JobProgress) {
    if progress.finished {
        return;
    }
    for (index, row) in progress.rows.iter_mut().enumerate() {
        if row.is_none() {
            *row = Some(CellRow {
                index,
                label: entry.plan.cells[index].label.clone(),
                status: JobStatus::Failed,
                detail: "a worker panicked while this job was in flight; the row was lost"
                    .to_owned(),
                metrics: Vec::new(),
                final_state: Vec::new(),
            });
            shared.counters.cells_failed.fetch_add(1, Ordering::Relaxed);
        }
    }
    progress.completed = progress.rows.len();
    progress.finished = true;
    release_slot(shared, &entry.tenant);
}

/// Locks a job's progress, recovering from a poisoned mutex. A poisoned
/// guard means a thread panicked mid-update and the job can never
/// complete normally, so it is settled as `Failed` via
/// [`fail_lost_rows`] rather than wedging every fetcher and panicking
/// every status call after it.
fn lock_progress<'a>(shared: &Shared, entry: &'a JobEntry) -> MutexGuard<'a, JobProgress> {
    match entry.progress.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            let mut progress = poisoned.into_inner();
            entry.progress.clear_poison();
            fail_lost_rows(shared, entry, &mut progress);
            progress
        }
    }
}

/// Reserves an in-flight slot for `tenant`, or reports the rejection.
fn admit(shared: &Shared, tenant: &str) -> Result<(), String> {
    let policy = shared.config.policy_for(tenant);
    let mut inflight = lock_recover(&shared.inflight);
    let slot = inflight.entry(tenant.to_owned()).or_insert(0);
    if *slot >= policy.max_inflight {
        drop(inflight);
        shared
            .counters
            .tenant_rejections
            .fetch_add(1, Ordering::Relaxed);
        *lock_recover(&shared.rejections)
            .entry(tenant.to_owned())
            .or_insert(0) += 1;
        return Err(format!(
            "tenant `{tenant}` is at its in-flight limit ({})",
            policy.max_inflight
        ));
    }
    *slot += 1;
    Ok(())
}

fn release_slot(shared: &Shared, tenant: &str) {
    let mut inflight = lock_recover(&shared.inflight);
    if let Some(slot) = inflight.get_mut(tenant) {
        *slot = slot.saturating_sub(1);
    }
}

/// The width the server picks for a submission that omitted `batch`: one
/// lane per cell, capped so a huge sweep still spreads across the worker
/// pool instead of collapsing into one giant work unit.
const AUTO_BATCH_CAP: usize = 8;

/// Resolves a submission's lock-step width. An explicit width above 1 on
/// a method without a batched engine is a *method* error (distinct from
/// the parse layer's *width* error for `batch: 0`); an omitted width auto
/// -selects from the cell count — scalar for methods that cannot group.
fn resolve_batch(req: &SubmitRequest) -> Result<usize, String> {
    match req.batch {
        Some(width) => {
            if width > 1 && !req.method.supports_batch() {
                return Err(format!(
                    "`batch` widths above 1 are not supported for method `{}` \
                     (batchable methods: ode, ssa, tau)",
                    req.method.as_str()
                ));
            }
            Ok(width)
        }
        None if req.method.supports_batch() => Ok(req.cells.len().clamp(1, AUTO_BATCH_CAP)),
        None => Ok(1),
    }
}

fn handle_submit(shared: &Shared, req: &SubmitRequest) -> Result<JsonValue, String> {
    if req.cells.is_empty() {
        return Err("a submission needs at least one cell".to_owned());
    }
    if !req.t_end.is_finite() || req.t_end <= 0.0 {
        return Err("`t_end` must be finite and positive".to_owned());
    }
    let batch = resolve_batch(req)?;
    admit(shared, &req.tenant)?;
    // any validation failure from here on must hand the slot back
    let plan = match build_plan(shared, req, batch) {
        Ok(plan) => plan,
        Err(msg) => {
            release_slot(shared, &req.tenant);
            return Err(msg);
        }
    };
    let policy = shared.config.policy_for(&req.tenant);
    let id = format!("j-{}", shared.next_job.fetch_add(1, Ordering::Relaxed) + 1);
    let species: Vec<JsonValue> = plan
        .crn
        .species_iter()
        .map(|(_, s)| JsonValue::String(s.name().to_owned()))
        .collect();
    let cells = plan.cells.len();
    let entry = Arc::new(JobEntry {
        id: id.clone(),
        tenant: req.tenant.clone(),
        plan,
        opts: SweepOptions::default()
            .with_seed(req.seed)
            .with_budget(policy.budget),
        cancel: CancelToken::new(),
        progress: Mutex::new(JobProgress {
            rows: vec![None; cells],
            completed: 0,
            finished: false,
            cancel_requested: false,
        }),
        progressed: Condvar::new(),
    });
    lock_recover(&shared.jobs).insert(id.clone(), Arc::clone(&entry));
    {
        let mut queue = lock_recover(&shared.queue);
        let batch = entry.plan.batch.max(1);
        let mut base = 0;
        while base < cells {
            let width = batch.min(cells - base);
            queue.push_back((Arc::clone(&entry), base, width));
            base += width;
        }
    }
    shared.queue_ready.notify_all();
    shared
        .counters
        .jobs_submitted
        .fetch_add(1, Ordering::Relaxed);
    Ok(ok_response(vec![
        ("job", JsonValue::String(id)),
        ("cells", JsonValue::from_f64(cells as f64)),
        ("species", JsonValue::Array(species)),
    ]))
}

fn build_plan(shared: &Shared, req: &SubmitRequest, batch: usize) -> Result<JobPlan, String> {
    let (crn, mut init) = resolve_program(&req.program)?;
    for (name, amount) in &req.init {
        let species = crn
            .find_species(name)
            .ok_or_else(|| format!("init names unknown species `{name}`"))?;
        if !amount.is_finite() || *amount < 0.0 {
            return Err(format!("init amount for `{name}` must be finite and >= 0"));
        }
        init.set(species, *amount);
    }
    let mut schedule = Schedule::new();
    for (time, name, amount) in &req.injections {
        let species = crn
            .find_species(name)
            .ok_or_else(|| format!("injection names unknown species `{name}`"))?;
        if !time.is_finite() || *time < 0.0 {
            return Err("injection time must be finite and >= 0".to_owned());
        }
        if !amount.is_finite() || *amount < 0.0 {
            return Err(format!(
                "injection amount for `{name}` must be finite and >= 0"
            ));
        }
        schedule = schedule.inject(*time, species, *amount);
    }
    // one cache access per submission: the entry stores the default-spec
    // compile, and cells with rate overrides rebind from it (rebinding is
    // property-tested bit-identical to a fresh compile)
    let base = shared.cache.get_or_compile(&crn, &SimSpec::default());
    let cells = req
        .cells
        .iter()
        .map(|cell| {
            let compiled = match cell_spec(cell)? {
                None => Arc::clone(&base),
                Some(spec) => Arc::new(base.rebind(&spec)),
            };
            Ok(PlanCell {
                label: cell.label.clone(),
                compiled,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(JobPlan {
        crn,
        init,
        schedule,
        method: req.method,
        t_end: req.t_end,
        record_interval: req.record_interval,
        batch,
        cells,
    })
}

/// Resolves the submitted program into a network and the base initial
/// state that `init` overrides are applied on top of.
///
/// A `crn` program starts from the all-zero state. A `netlist` program is
/// compiled through the circuit lowering pass and starts from the compiled
/// system's initial state (clock priming, register initial values). The
/// compiled CRN is round-tripped through its text form so a netlist
/// submission is byte-identical — species order, cache key, result rows —
/// to submitting the lowered CRN text directly.
fn resolve_program(program: &Program) -> Result<(Crn, State), String> {
    match program {
        Program::Crn(text) => {
            let crn: Crn = text
                .parse()
                .map_err(|e| format!("network does not parse: {e}"))?;
            let init = State::new(&crn);
            Ok((crn, init))
        }
        Program::Netlist(src) => {
            let system =
                molseq_sync::compile_netlist_source(src, molseq_sync::ClockSpec::default())
                    .map_err(|e| format!("netlist does not compile: {e}"))?;
            let crn: Crn = system
                .crn()
                .to_string()
                .parse()
                .map_err(|e| format!("compiled netlist does not round-trip: {e}"))?;
            let compiled_init = system.initial_state();
            let mut init = State::new(&crn);
            for index in 0..system.crn().species_count() {
                let id = molseq_crn::SpeciesId::from_index(index);
                let amount = compiled_init.get(id);
                if amount != 0.0 {
                    let name = system.crn().species_name(id);
                    let species = crn.find_species(name).ok_or_else(|| {
                        format!("compiled netlist lost species `{name}` in round-trip")
                    })?;
                    init.set(species, amount);
                }
            }
            Ok((crn, init))
        }
    }
}

fn cell_spec(cell: &CellSpec) -> Result<Option<SimSpec>, String> {
    match (cell.k_fast, cell.k_slow) {
        (None, None) => Ok(None),
        (Some(k_fast), Some(k_slow)) => {
            let assignment = RateAssignment::new(k_fast, k_slow)
                .map_err(|e| format!("cell `{}`: {e}", cell.label))?;
            Ok(Some(SimSpec::new(assignment)))
        }
        _ => Err(format!(
            "cell `{}`: `k_fast` and `k_slow` must be given together",
            cell.label
        )),
    }
}

fn handle_status(shared: &Shared, job_id: &str) -> JsonValue {
    let Some(entry) = lookup(shared, job_id) else {
        return error_response(&format!("unknown job `{job_id}`"));
    };
    let progress = lock_progress(shared, &entry);
    let state = if progress.finished {
        if progress.cancel_requested {
            "cancelled"
        } else {
            "done"
        }
    } else if progress.cancel_requested {
        "cancelling"
    } else if progress.completed > 0 {
        "running"
    } else {
        "queued"
    };
    ok_response(vec![
        ("job", JsonValue::String(entry.id.clone())),
        ("state", JsonValue::String(state.to_owned())),
        ("completed", JsonValue::from_f64(progress.completed as f64)),
        ("total", JsonValue::from_f64(progress.rows.len() as f64)),
    ])
}

fn handle_fetch(shared: &Shared, job_id: &str, from: usize, wait: bool) -> JsonValue {
    let Some(entry) = lookup(shared, job_id) else {
        return error_response(&format!("unknown job `{job_id}`"));
    };
    let mut progress = lock_progress(shared, &entry);
    loop {
        // rows stream in completion order, but fetch only exposes the
        // contiguous completed prefix: what a client accumulates is in
        // index order, identical to a batch read after completion
        let ready = progress.rows.iter().take_while(|row| row.is_some()).count();
        if ready > from || progress.finished || !wait {
            let rows: Vec<JsonValue> = progress.rows[from.min(ready)..ready]
                .iter()
                .map(|row| row.as_ref().expect("prefix rows are complete").to_json())
                .collect();
            return ok_response(vec![
                ("rows", JsonValue::Array(rows)),
                ("next", JsonValue::from_f64(ready as f64)),
                ("done", JsonValue::Bool(progress.finished)),
            ]);
        }
        let (next, timeout) = match entry.progressed.wait_timeout(progress, FETCH_WAIT_CAP) {
            Ok(pair) => pair,
            Err(poisoned) => {
                // a worker panicked while we were parked on the condvar:
                // settle the job so this fetch (and every later one)
                // returns instead of waiting for rows that cannot come
                let (mut recovered, timeout) = poisoned.into_inner();
                entry.progress.clear_poison();
                fail_lost_rows(shared, &entry, &mut recovered);
                (recovered, timeout)
            }
        };
        progress = next;
        if timeout.timed_out() {
            let ready = progress.rows.iter().take_while(|row| row.is_some()).count();
            let rows: Vec<JsonValue> = progress.rows[from.min(ready)..ready]
                .iter()
                .map(|row| row.as_ref().expect("prefix rows are complete").to_json())
                .collect();
            return ok_response(vec![
                ("rows", JsonValue::Array(rows)),
                ("next", JsonValue::from_f64(ready as f64)),
                ("done", JsonValue::Bool(progress.finished)),
            ]);
        }
    }
}

fn handle_cancel(shared: &Shared, job_id: &str) -> JsonValue {
    let Some(entry) = lookup(shared, job_id) else {
        return error_response(&format!("unknown job `{job_id}`"));
    };
    entry.cancel.cancel();
    let mut progress = lock_progress(shared, &entry);
    if !progress.cancel_requested {
        progress.cancel_requested = true;
        shared
            .counters
            .jobs_cancelled
            .fetch_add(1, Ordering::Relaxed);
    }
    let state = ok_response(vec![
        ("job", JsonValue::String(entry.id.clone())),
        ("finished", JsonValue::Bool(progress.finished)),
    ]);
    drop(progress);
    entry.progressed.notify_all();
    state
}

fn handle_stats(shared: &Shared) -> JsonValue {
    let counters: Vec<JsonValue> = snapshot_counters(shared)
        .into_iter()
        .map(|(name, value)| {
            JsonValue::Array(vec![JsonValue::String(name), JsonValue::from_f64(value)])
        })
        .collect();
    ok_response(vec![("counters", JsonValue::Array(counters))])
}

fn lookup(shared: &Shared, job_id: &str) -> Option<Arc<JobEntry>> {
    lock_recover(&shared.jobs).get(job_id).cloned()
}

/// The sorted counter snapshot behind the wire `stats` op and
/// [`Server::counters`].
fn snapshot_counters(shared: &Shared) -> Vec<(String, f64)> {
    let c = &shared.counters;
    let load = |a: &AtomicU64| a.load(Ordering::Relaxed) as f64;
    let mut counters = vec![
        (
            "cache_evictions".to_owned(),
            shared.cache.evictions() as f64,
        ),
        ("cache_hits".to_owned(), shared.cache.hits() as f64),
        ("cache_misses".to_owned(), shared.cache.misses() as f64),
        (
            "cells_budget_exceeded".to_owned(),
            load(&c.cells_budget_exceeded),
        ),
        ("cells_cancelled".to_owned(), load(&c.cells_cancelled)),
        ("cells_failed".to_owned(), load(&c.cells_failed)),
        ("cells_ok".to_owned(), load(&c.cells_ok)),
        ("cells_panicked".to_owned(), load(&c.cells_panicked)),
        ("jobs_cancelled".to_owned(), load(&c.jobs_cancelled)),
        ("jobs_completed".to_owned(), load(&c.jobs_completed)),
        ("jobs_submitted".to_owned(), load(&c.jobs_submitted)),
        (
            "queued_cells".to_owned(),
            lock_recover(&shared.queue)
                .iter()
                .map(|(_, _, width)| *width as f64)
                .sum(),
        ),
        ("running_cells".to_owned(), load(&c.running_cells)),
        ("tenant_rejections".to_owned(), load(&c.tenant_rejections)),
    ];
    for (tenant, count) in lock_recover(&shared.rejections).iter() {
        counters.push((format!("rejections.{tenant}"), *count as f64));
    }
    counters.sort_by(|a, b| a.0.cmp(&b.0));
    counters
}

fn worker_loop(shared: &Shared) {
    loop {
        let item = {
            let mut queue = lock_recover(&shared.queue);
            loop {
                if let Some(item) = queue.pop_front() {
                    break Some(item);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                queue = shared
                    .queue_ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some((entry, base, width)) = item else {
            return;
        };
        shared
            .counters
            .running_cells
            .fetch_add(width as u64, Ordering::Relaxed);
        let rows = if width == 1 {
            vec![run_plan_cell(&entry, base)]
        } else {
            run_plan_group(&entry, base, width)
        };
        shared
            .counters
            .running_cells
            .fetch_sub(width as u64, Ordering::Relaxed);
        if let Some(fault) = &shared.config.fault_label {
            if rows.iter().any(|row| row.label == *fault) {
                // test-only fault injection (see
                // `ServerConfig::with_fault_injection`): die while holding
                // the progress lock, poisoning it for everyone after us
                let _guard = lock_progress(shared, &entry);
                panic!("fault injection: work unit contains cell `{fault}`");
            }
        }
        for row in &rows {
            match row.status {
                JobStatus::Ok => &shared.counters.cells_ok,
                JobStatus::Failed => &shared.counters.cells_failed,
                JobStatus::Panicked => &shared.counters.cells_panicked,
                JobStatus::BudgetExceeded => &shared.counters.cells_budget_exceeded,
                JobStatus::Cancelled => &shared.counters.cells_cancelled,
            }
            .fetch_add(1, Ordering::Relaxed);
        }
        let mut progress = lock_progress(shared, &entry);
        // a poison recovery may already have settled this job as Failed;
        // late rows from a surviving worker must not resurrect it
        if !progress.finished {
            for (k, row) in rows.into_iter().enumerate() {
                progress.rows[base + k] = Some(row);
            }
            progress.completed += width;
            let finished = progress.completed == progress.rows.len();
            let cancel_requested = progress.cancel_requested;
            progress.finished = finished;
            if finished {
                // settle the slot and counters before waking fetchers, so a
                // stats call issued right after a fetch returns sees them
                release_slot(shared, &entry.tenant);
                if !cancel_requested {
                    shared
                        .counters
                        .jobs_completed
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        drop(progress);
        entry.progressed.notify_all();
    }
}

/// Runs one cell of a job through [`run_cell`] — the sweep engine's own
/// single-cell entry point — and converts the result to a wire row.
fn run_plan_cell(entry: &JobEntry, index: usize) -> CellRow {
    let plan = &entry.plan;
    let cell = &plan.cells[index];
    let job = SweepJob::new(cell.label.clone(), move |ctx: &JobCtx| {
        simulate_cell(plan, cell, ctx)
    });
    row_from_result(run_cell(&job, index, &entry.opts, Some(&entry.cancel)))
}

/// Runs `width` consecutive cells of a job as one lock-step group: one
/// [`GroupJob`] through [`run_group`] (same per-cell seeds and outcome
/// mapping as the scalar path), whose body advances every lane together
/// via the method's batched engine — [`run_ode_batch`],
/// [`run_ssa_batch`] or [`run_tau_batch`]. Each batched engine is
/// bit-identical to its scalar integrator lane by lane (the stochastic
/// ones via per-lane RNG streams seeded exactly as the scalar path
/// seeds them), so the rows this produces are byte-identical to `width`
/// [`run_plan_cell`] calls.
fn run_plan_group(entry: &JobEntry, base: usize, width: usize) -> Vec<CellRow> {
    let plan = &entry.plan;
    let chunk = &plan.cells[base..base + width];
    let labels = chunk.iter().map(|cell| cell.label.clone()).collect();
    let group = GroupJob::new(labels, move |ctxs: &[JobCtx]| {
        let hooks: Vec<_> = ctxs.iter().map(JobCtx::step_hook).collect();
        let sinks: Vec<Cell<SimMetrics>> = ctxs
            .iter()
            .map(|_| Cell::new(SimMetrics::default()))
            .collect();
        let stoch_opts = |k: usize| {
            let mut opts = SsaOptions::default()
                .with_t_end(plan.t_end)
                .with_seed(ctxs[k].seed())
                .with_step_hook(&hooks[k])
                .with_metrics(&sinks[k]);
            if let Some(dt) = plan.record_interval {
                opts = opts.with_record_interval(dt);
            }
            opts
        };
        let results = match plan.method {
            Method::Ode => {
                let lanes: Vec<BatchLane> = chunk
                    .iter()
                    .enumerate()
                    .map(|(k, cell)| {
                        let mut opts = OdeOptions::default()
                            .with_t_end(plan.t_end)
                            .with_step_hook(&hooks[k])
                            .with_metrics(&sinks[k]);
                        if let Some(dt) = plan.record_interval {
                            opts = opts.with_record_interval(dt);
                        }
                        BatchLane {
                            compiled: &cell.compiled,
                            init: &plan.init,
                            schedule: &plan.schedule,
                            options: opts,
                        }
                    })
                    .collect();
                let mut workspace = BatchedOdeWorkspace::new();
                run_ode_batch(&plan.crn, &lanes, &mut workspace)
            }
            Method::Ssa => {
                let lanes: Vec<SsaBatchLane> = chunk
                    .iter()
                    .enumerate()
                    .map(|(k, cell)| SsaBatchLane {
                        compiled: &cell.compiled,
                        init: &plan.init,
                        schedule: &plan.schedule,
                        options: stoch_opts(k),
                    })
                    .collect();
                let mut workspace = BatchedStochWorkspace::new();
                run_ssa_batch(&plan.crn, &lanes, &mut workspace)
            }
            Method::Tau => {
                let lanes: Vec<TauBatchLane> = chunk
                    .iter()
                    .enumerate()
                    .map(|(k, cell)| TauBatchLane {
                        compiled: &cell.compiled,
                        init: &plan.init,
                        schedule: &plan.schedule,
                        options: TauLeapOptions {
                            base: stoch_opts(k),
                            ..TauLeapOptions::default()
                        },
                    })
                    .collect();
                let mut workspace = BatchedStochWorkspace::new();
                run_tau_batch(&plan.crn, &lanes, &mut workspace)
            }
            Method::Hybrid => {
                unreachable!("hybrid submissions never enqueue grouped units")
            }
        };
        results
            .into_iter()
            .zip(ctxs)
            .zip(&sinks)
            .map(|((result, ctx), sink)| {
                record_metrics(ctx, sink.get());
                let trace = result.map_err(map_sim_error)?;
                Ok(trace.final_state().to_vec())
            })
            .collect()
    });
    run_group(&group, base, &entry.opts, Some(&entry.cancel))
        .into_iter()
        .map(row_from_result)
        .collect()
}

fn row_from_result(result: CellResult<Vec<f64>>) -> CellRow {
    let final_state = match &result.outcome {
        CellOutcome::Ok(state) => state.clone(),
        _ => Vec::new(),
    };
    let status = match &result.outcome {
        CellOutcome::Ok(_) => JobStatus::Ok,
        CellOutcome::Failed(_) => JobStatus::Failed,
        CellOutcome::Panicked(_) => JobStatus::Panicked,
        CellOutcome::BudgetExceeded(_) => JobStatus::BudgetExceeded,
        CellOutcome::Cancelled(_) => JobStatus::Cancelled,
    };
    let detail = result.detail().unwrap_or("").to_owned();
    CellRow {
        index: result.index,
        label: result.label,
        status,
        detail,
        metrics: result.metrics,
        final_state,
    }
}

fn simulate_cell(plan: &JobPlan, cell: &PlanCell, ctx: &JobCtx) -> Result<Vec<f64>, JobError> {
    let hook = ctx.step_hook();
    let sink = Cell::new(SimMetrics::default());
    let result = match plan.method {
        Method::Ssa => {
            let mut opts = SsaOptions::default()
                .with_t_end(plan.t_end)
                .with_seed(ctx.seed())
                .with_step_hook(&hook)
                .with_metrics(&sink);
            if let Some(dt) = plan.record_interval {
                opts = opts.with_record_interval(dt);
            }
            Simulation::new(&plan.crn, &cell.compiled)
                .init(&plan.init)
                .schedule(&plan.schedule)
                .options(opts)
                .run()
        }
        Method::Ode => {
            let mut opts = OdeOptions::default()
                .with_t_end(plan.t_end)
                .with_step_hook(&hook)
                .with_metrics(&sink);
            if let Some(dt) = plan.record_interval {
                opts = opts.with_record_interval(dt);
            }
            Simulation::new(&plan.crn, &cell.compiled)
                .init(&plan.init)
                .schedule(&plan.schedule)
                .options(opts)
                .run()
        }
        Method::Tau => {
            let mut base = SsaOptions::default()
                .with_t_end(plan.t_end)
                .with_seed(ctx.seed())
                .with_step_hook(&hook)
                .with_metrics(&sink);
            if let Some(dt) = plan.record_interval {
                base = base.with_record_interval(dt);
            }
            Simulation::new(&plan.crn, &cell.compiled)
                .init(&plan.init)
                .schedule(&plan.schedule)
                .options(TauLeapOptions {
                    base,
                    ..TauLeapOptions::default()
                })
                .run()
        }
        Method::Hybrid => {
            let mut opts = HybridOptions::default()
                .with_t_end(plan.t_end)
                .with_seed(ctx.seed())
                .with_step_hook(&hook)
                .with_metrics(&sink);
            if let Some(dt) = plan.record_interval {
                opts = opts.with_record_interval(dt);
            }
            Simulation::new(&plan.crn, &cell.compiled)
                .init(&plan.init)
                .schedule(&plan.schedule)
                .options(opts)
                .run()
        }
    };
    record_metrics(ctx, sink.get());
    let trace = result.map_err(map_sim_error)?;
    Ok(trace.final_state().to_vec())
}

/// Maps a simulator error to the sweep outcome it represents. The step
/// hook relays the sweep context's own verdict: a raised cancel token and
/// an exhausted budget both surface as `Interrupted`, distinguished by
/// the relayed message.
fn map_sim_error(e: SimError) -> JobError {
    match e {
        SimError::Interrupted { time, reason } => {
            if reason.contains("cancelled") {
                JobError::Cancelled(reason)
            } else {
                JobError::BudgetExceeded(format!("interrupted at t = {time}: {reason}"))
            }
        }
        other => JobError::failed(other),
    }
}

/// Records the simulator counters under the same metric names the bench
/// experiments use, so server rows aggregate through the identical
/// summary/trend pipeline.
fn record_metrics(ctx: &JobCtx, m: SimMetrics) {
    ctx.record_metric("ode_steps_accepted", m.ode_steps_accepted as f64);
    ctx.record_metric("ode_steps_rejected", m.ode_steps_rejected as f64);
    ctx.record_metric("lu_factorizations", m.lu_factorizations as f64);
    ctx.record_metric("ssa_events", m.ssa_events as f64);
    ctx.record_metric("tau_leaps", m.tau_leaps as f64);
    ctx.record_metric("tau_leaps_implicit", m.tau_leaps_implicit as f64);
    ctx.record_metric("newton_iterations", m.newton_iterations as f64);
    ctx.record_metric("leap_switchovers", m.leap_switchovers as f64);
    ctx.record_metric("hybrid_slow_events", m.hybrid_slow_events as f64);
    ctx.record_metric("hybrid_fast_steps", m.hybrid_fast_steps as f64);
    ctx.record_metric("hybrid_repartitions", m.hybrid_repartitions as f64);
    ctx.record_metric("batch_width", m.batch_width as f64);
    ctx.record_metric("lanes_retired", m.lanes_retired as f64);
    ctx.record_metric("final_time", m.final_time);
    ctx.record_metric("seed", m.seed as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_policies_resolve_per_tenant_with_overrides() {
        let strict = TenantPolicy {
            max_inflight: 1,
            budget: JobBudget::unlimited().with_max_steps(10),
        };
        let config = ServerConfig::default().with_tenant_policy("greedy", strict);
        assert_eq!(config.policy_for("greedy"), strict);
        assert_eq!(config.policy_for("anyone"), TenantPolicy::default());
        // later overrides win
        let relaxed = TenantPolicy {
            max_inflight: 9,
            budget: JobBudget::unlimited(),
        };
        let config = config.with_tenant_policy("greedy", relaxed);
        assert_eq!(config.policy_for("greedy"), relaxed);
    }

    #[test]
    fn resolved_workers_defaults_to_parallelism() {
        assert!(ServerConfig::default().resolved_workers() >= 1);
        assert_eq!(
            ServerConfig::default().with_workers(3).resolved_workers(),
            3
        );
    }

    #[test]
    fn poisoned_progress_is_recovered_and_the_job_settles_failed() {
        let shared = Shared {
            config: ServerConfig::default(),
            cache: CompiledCache::new(),
            queue: Mutex::new(VecDeque::new()),
            queue_ready: Condvar::new(),
            jobs: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            rejections: Mutex::new(BTreeMap::new()),
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            next_job: AtomicU64::new(0),
        };
        let req = SubmitRequest {
            tenant: "acme".to_owned(),
            program: Program::Crn("X -> Y @slow".to_owned()),
            init: vec![("X".to_owned(), 5.0)],
            method: Method::Ssa,
            t_end: 1.0,
            record_interval: None,
            seed: 1,
            injections: vec![],
            batch: Some(1),
            cells: vec![
                CellSpec {
                    label: "a".to_owned(),
                    k_fast: None,
                    k_slow: None,
                },
                CellSpec {
                    label: "b".to_owned(),
                    k_fast: None,
                    k_slow: None,
                },
            ],
        };
        admit(&shared, "acme").expect("slot free");
        let plan = build_plan(&shared, &req, 1).expect("plan builds");
        let entry = Arc::new(JobEntry {
            id: "j-test".to_owned(),
            tenant: "acme".to_owned(),
            plan,
            opts: SweepOptions::default(),
            cancel: CancelToken::new(),
            progress: Mutex::new(JobProgress {
                rows: vec![None, None],
                completed: 0,
                finished: false,
                cancel_requested: false,
            }),
            progressed: Condvar::new(),
        });

        // poison the progress mutex exactly as a panicking worker would
        let poisoner = Arc::clone(&entry);
        let outcome = thread::spawn(move || {
            let _guard = poisoner.progress.lock().expect("first lock");
            panic!("deliberate poison");
        })
        .join();
        assert!(outcome.is_err());
        assert!(entry.progress.is_poisoned());

        {
            let progress = lock_progress(&shared, &entry);
            assert!(progress.finished);
            assert_eq!(progress.completed, 2);
            let row = progress.rows[1].as_ref().expect("row filled in");
            assert_eq!(row.status, JobStatus::Failed);
            assert!(row.detail.contains("panicked"), "{}", row.detail);
            assert_eq!(row.label, "b");
        }
        // the tenant's slot came back, the poison flag is gone, and a
        // second recovery is a no-op
        assert_eq!(
            *lock_recover(&shared.inflight).get("acme").expect("slot"),
            0
        );
        assert!(!entry.progress.is_poisoned());
        let again = lock_progress(&shared, &entry);
        assert_eq!(again.completed, 2);
        assert_eq!(shared.counters.cells_failed.load(Ordering::Relaxed), 2);
    }
}
